/// \file sync.h
/// \brief Annotated synchronization primitives (Clang Thread Safety
/// Analysis).
///
/// Every lock in KathDB goes through these wrappers instead of the raw
/// standard-library types so that lock discipline is a *compile-time*
/// contract, not a convention sampled by ThreadSanitizer:
///
///  - `Mutex` / `SharedMutex` are capabilities. A member annotated
///    `KATHDB_GUARDED_BY(mu_)` cannot be touched without holding `mu_`;
///    a private helper annotated `KATHDB_REQUIRES(mu_)` cannot be called
///    without it — clang's `-Wthread-safety` turns a missing lock into a
///    build break (the CI `thread-safety` job runs with
///    `-Werror=thread-safety`).
///  - `MutexLock` / `ReaderLock` / `WriterLock` are the RAII guards.
///  - `CondVar` couples to `Mutex` (the caller holds the mutex across
///    `Wait`, exactly like `std::condition_variable`, and the analysis
///    treats the lock as held throughout — which is the contract the
///    woken predicate re-check relies on).
///
/// On non-clang compilers the annotation macros expand to nothing and
/// the wrappers are zero-cost forwarding shims over `std::mutex` /
/// `std::shared_mutex` / `std::condition_variable`.
///
/// \ingroup kathdb_common

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------- macros

#if defined(__clang__)
#define KATHDB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define KATHDB_THREAD_ANNOTATION_(x)  // no-op: gcc/msvc ignore the analysis
#endif

/// Declares a class to be a lockable capability ("mutex").
#define KATHDB_CAPABILITY(x) KATHDB_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires in its constructor and releases
/// in its destructor.
#define KATHDB_SCOPED_CAPABILITY KATHDB_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated member may only be accessed while holding the given
/// capability (reads need at least shared access, writes exclusive).
#define KATHDB_GUARDED_BY(x) KATHDB_THREAD_ANNOTATION_(guarded_by(x))

/// The pointed-to data (not the pointer itself) is protected by the
/// given capability.
#define KATHDB_PT_GUARDED_BY(x) KATHDB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-ordering contract: this capability must be acquired before /
/// after the listed ones (deadlock detection).
#define KATHDB_ACQUIRED_BEFORE(...) \
  KATHDB_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define KATHDB_ACQUIRED_AFTER(...) \
  KATHDB_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the capability
/// exclusively (internal "*Locked" helpers).
#define KATHDB_REQUIRES(...) \
  KATHDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// ... while holding at least shared access.
#define KATHDB_REQUIRES_SHARED(...) \
  KATHDB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define KATHDB_ACQUIRE(...) \
  KATHDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define KATHDB_ACQUIRE_SHARED(...) \
  KATHDB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (held on entry).
#define KATHDB_RELEASE(...) \
  KATHDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define KATHDB_RELEASE_SHARED(...) \
  KATHDB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define KATHDB_RELEASE_GENERIC(...) \
  KATHDB_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define KATHDB_TRY_ACQUIRE(...) \
  KATHDB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define KATHDB_TRY_ACQUIRE_SHARED(...) \
  KATHDB_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// The function must NOT be called while holding the capability
/// (non-reentrancy / deadlock contract on public entry points whose
/// bodies take the lock).
#define KATHDB_EXCLUDES(...) \
  KATHDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime boundaries the analysis cannot see through) that
/// the capability is held.
#define KATHDB_ASSERT_CAPABILITY(x) \
  KATHDB_THREAD_ANNOTATION_(assert_capability(x))

/// The function returns a reference to the given capability.
#define KATHDB_RETURN_CAPABILITY(x) \
  KATHDB_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function is deliberately unchecked. Every use must
/// carry a comment explaining why it is safe.
#define KATHDB_NO_THREAD_SAFETY_ANALYSIS \
  KATHDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace kathdb::common {

// ---------------------------------------------------------------- mutexes

/// \brief Annotated exclusive mutex (wraps std::mutex).
class KATHDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KATHDB_ACQUIRE() { mu_.lock(); }
  void Unlock() KATHDB_RELEASE() { mu_.unlock(); }
  bool TryLock() KATHDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief Annotated reader/writer mutex (wraps std::shared_mutex).
class KATHDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() KATHDB_ACQUIRE() { mu_.lock(); }
  void Unlock() KATHDB_RELEASE() { mu_.unlock(); }
  bool TryLock() KATHDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() KATHDB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() KATHDB_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() KATHDB_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

// ---------------------------------------------------------------- guards

/// \brief RAII exclusive lock over a Mutex.
class KATHDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KATHDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() KATHDB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief RAII exclusive lock over a SharedMutex.
class KATHDB_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) KATHDB_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() KATHDB_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief RAII shared (read) lock over a SharedMutex.
class KATHDB_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) KATHDB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() KATHDB_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// ---------------------------------------------------------------- condvar

/// \brief Condition variable coupled to Mutex.
///
/// `Wait*` must be called with `mu` held (enforced by the analysis); the
/// mutex is atomically released while blocked and reacquired before
/// return, exactly like `std::condition_variable`. Spurious wakeups are
/// possible — callers loop on their predicate (or use the predicate
/// overloads, which loop internally).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken).
  void Wait(Mutex& mu) KATHDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // the caller's scope still owns the mutex
  }

  /// Blocks until `pred()` holds. NOTE: clang's analysis does not see
  /// into the predicate lambda — predicates that read guarded state
  /// should be thin wrappers over a `KATHDB_REQUIRES` helper, or callers
  /// use an explicit `while (!p) Wait(mu);` loop instead.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) KATHDB_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Blocks until notified or `micros` elapsed. Returns false on
  /// timeout (the predicate must be re-checked either way).
  bool WaitFor(Mutex& mu, int64_t micros) KATHDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    auto status = cv_.wait_for(lk, std::chrono::microseconds(micros));
    lk.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kathdb::common
