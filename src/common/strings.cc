#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace kathdb {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::vector<std::string> SplitAny(std::string_view s,
                                  std::string_view delims) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (delims.find(c) != std::string_view::npos) {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ContainsIgnoreCase(std::string_view hay, std::string_view needle) {
  if (needle.empty()) return true;
  std::string h = ToLower(hay);
  std::string n = ToLower(needle);
  return h.find(n) != std::string::npos;
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

int ApproxTokenCount(std::string_view text) {
  int tokens = 0;
  bool in_word = false;
  bool in_punct = false;
  for (char c : text) {
    bool alnum = std::isalnum(static_cast<unsigned char>(c)) != 0;
    bool space = std::isspace(static_cast<unsigned char>(c)) != 0;
    if (alnum) {
      if (!in_word) ++tokens;
      in_word = true;
      in_punct = false;
    } else if (!space) {
      if (!in_punct) ++tokens;
      in_punct = true;
      in_word = false;
    } else {
      in_word = in_punct = false;
    }
  }
  return tokens;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string PadRight(std::string_view s, size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace kathdb
