/// \file hash.h
/// \brief 64-bit hashing primitives for caches and sharding.
///
/// The service-layer result cache keys entries by a 64-bit fingerprint of
/// (function spec, input contents). These helpers provide the building
/// blocks: FNV-1a over bytes, a splitmix64 finalizer for avalanche, and a
/// boost-style combiner. The shard-selection trick (multiply by the golden
/// ratio, take the top bits) follows the memory-efficient O(1) lookup
/// structures of SHIP / Othello hashing: uniformly spreading keys over
/// mutex stripes so concurrent readers rarely collide.
///
/// \ingroup kathdb_common

#pragma once

#include <cstdint>
#include <string_view>

namespace kathdb::common {

/// FNV-1a over a byte string (64-bit offset basis / prime).
inline uint64_t Fnv1a64(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= static_cast<uint64_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 finalizer: full-avalanche mix of a 64-bit value.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Folds `v` into the running hash `h` (order-sensitive).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return Mix64(h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
}

/// Maps a (well-mixed) key onto one of `shards` stripes. `shards` must be
/// a power of two; the multiply pushes entropy into the top bits first so
/// sequential keys do not land on sequential stripes.
inline size_t ShardOf(uint64_t key, size_t shards) {
  return static_cast<size_t>((key * 0x9E3779B97F4A7C15ULL) >> 32) &
         (shards - 1);
}

/// Rounds up to the next power of two (min 1).
inline size_t CeilPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace kathdb::common
