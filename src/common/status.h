/// \file status.h
/// \brief RocksDB-style Status / Result<T> error handling for KathDB.
///
/// KathDB never throws exceptions across public API boundaries. Every
/// fallible operation returns a Status (or a Result<T> carrying either a
/// value or a Status). Error codes distinguish *syntactic* failures, which
/// the execution engine self-repairs (Section 5 of the paper), from
/// *semantic* anomalies, which are escalated to the user channel.
///
/// \ingroup kathdb_common

#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace kathdb {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kNotSupported,
  kRuntimeError,
  /// A function body failed to execute (exception analogue). The agentic
  /// monitor treats these as candidates for automatic repair.
  kSyntacticError,
  /// The function executed but its output is judged inconsistent with the
  /// user's intent. The monitor escalates these to the user.
  kSemanticError,
  /// Plan verification rejected a draft logical plan.
  kPlanRejected,
  /// The user aborted an interactive exchange.
  kUserAborted,
  /// The service is overloaded (admission queue full) or shutting down;
  /// the caller should back off and retry.
  kUnavailable,
};

/// Number of StatusCode values (for per-code counter arrays).
inline constexpr int kNumStatusCodes =
    static_cast<int>(StatusCode::kUnavailable) + 1;

/// Stable name of a status code ("OK", "Unavailable", ...), as used by
/// Status::ToString and the service layer's per-status counters.
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation: a code plus a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status IOError(std::string m) {
    return Status(StatusCode::kIOError, std::move(m));
  }
  static Status NotSupported(std::string m) {
    return Status(StatusCode::kNotSupported, std::move(m));
  }
  static Status RuntimeError(std::string m) {
    return Status(StatusCode::kRuntimeError, std::move(m));
  }
  static Status SyntacticError(std::string m) {
    return Status(StatusCode::kSyntacticError, std::move(m));
  }
  static Status SemanticError(std::string m) {
    return Status(StatusCode::kSemanticError, std::move(m));
  }
  static Status PlanRejected(std::string m) {
    return Status(StatusCode::kPlanRejected, std::move(m));
  }
  static Status UserAborted(std::string m) {
    return Status(StatusCode::kUserAborted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsSyntacticError() const {
    return code_ == StatusCode::kSyntacticError;
  }
  bool IsSemanticError() const { return code_ == StatusCode::kSemanticError; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// Renders "OK" or "<Code>: <message>" for logs and explanations.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. `status.ok()` must be false.
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(var_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOkStatus = Status::OK();
    if (ok()) return kOkStatus;
    return std::get<Status>(var_);
  }

  /// Pre: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> var_;
};

/// Propagates an error status from an expression returning Status.
#define KATHDB_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::kathdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result<T> expression and binds its value, or propagates.
#define KATHDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define KATHDB_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define KATHDB_ASSIGN_OR_RETURN_NAME(a, b) KATHDB_ASSIGN_OR_RETURN_CAT(a, b)
#define KATHDB_ASSIGN_OR_RETURN(lhs, expr)                                 \
  KATHDB_ASSIGN_OR_RETURN_IMPL(                                            \
      KATHDB_ASSIGN_OR_RETURN_NAME(_kathdb_res_, __LINE__), lhs, expr)

}  // namespace kathdb
