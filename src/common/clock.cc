#include "common/clock.h"

#include <chrono>
#include <thread>
#include <vector>

namespace kathdb::common {

Clock* Clock::System() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

int64_t SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::SleepFor(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0)));
}

void SystemClock::WaitUntil(Mutex& mu, CondVar& cv, int64_t deadline_micros) {
  int64_t now = NowMicros();
  if (deadline_micros <= now) return;
  cv.WaitFor(mu, deadline_micros - now);
}

void ManualClock::WaitUntil(Mutex& mu, CondVar& cv, int64_t deadline_micros) {
  if (deadline_micros <= NowMicros()) return;
  // Virtual time only moves via Advance(), which fires the wakers that
  // notify `cv`; a plain wait (no timeout) keeps tests fully
  // deterministic. Spurious wakeups are fine — callers re-check.
  cv.Wait(mu);
}

void ManualClock::Advance(double ms) {
  if (ms > 0.0) {
    now_micros_.fetch_add(static_cast<int64_t>(ms * 1000.0),
                          std::memory_order_acq_rel);
  }
  std::vector<std::function<void()>> to_fire;
  {
    MutexLock lock(mu_);
    to_fire.reserve(wakers_.size());
    for (const auto& [id, waker] : wakers_) to_fire.push_back(waker);
  }
  for (const auto& waker : to_fire) waker();
}

int64_t ManualClock::RegisterWaker(std::function<void()> waker) {
  MutexLock lock(mu_);
  int64_t id = next_waker_id_++;
  wakers_[id] = std::move(waker);
  return id;
}

void ManualClock::UnregisterWaker(int64_t id) {
  MutexLock lock(mu_);
  wakers_.erase(id);
}

}  // namespace kathdb::common
