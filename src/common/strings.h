/// \file strings.h
/// \brief Small string utilities shared across KathDB modules.
///
/// \ingroup kathdb_common

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace kathdb {

/// Lower-cases ASCII characters; leaves other bytes untouched.
std::string ToLower(std::string_view s);

/// Splits on any character in `delims`; empty pieces are dropped.
std::vector<std::string> SplitAny(std::string_view s, std::string_view delims);

/// Splits on a single delimiter, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `hay` contains `needle` case-insensitively.
bool ContainsIgnoreCase(std::string_view hay, std::string_view needle);

/// Lower-cased alphanumeric word tokens ("Guilty by Suspicion!" ->
/// {"guilty","by","suspicion"}). Used by the embedder and token meter.
std::vector<std::string> Tokenize(std::string_view text);

/// Approximate LLM token count of a prompt/completion: word tokens plus
/// punctuation clusters. Deterministic; used by the usage meter.
int ApproxTokenCount(std::string_view text);

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros (used in explanation rendering).
std::string FormatDouble(double v, int digits = 6);

/// `s` padded with spaces on the right to at least `width` characters;
/// longer strings are returned unchanged (never truncated).
std::string PadRight(std::string_view s, size_t width);

}  // namespace kathdb
