/// \file rng.h
/// \brief Deterministic pseudo-randomness for reproducible experiments.
///
/// All stochastic components (dataset generation, simulated detector noise,
/// lineage sampling) draw from seeded SplitMix64/xorshift generators so a
/// given seed always reproduces the same experiment.
///
/// \ingroup kathdb_common

#pragma once

#include <cstdint>
#include <string_view>

namespace kathdb {

/// SplitMix64 hash step; also used as a stateless string/int hasher.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Stable 64-bit hash of a string (FNV-1a finished with SplitMix64).
inline uint64_t HashString(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return SplitMix64(h);
}

/// \brief Small deterministic PRNG (xorshift128+ seeded via SplitMix64).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    s0_ = SplitMix64(seed);
    s1_ = SplitMix64(s0_);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [lo, hi] inclusive. Pre: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Bernoulli draw with probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Approximately normal via sum of uniforms (Irwin–Hall, 12 draws).
  double NextGaussian(double mean = 0.0, double stddev = 1.0) {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) sum += NextDouble();
    return mean + stddev * (sum - 6.0);
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace kathdb
