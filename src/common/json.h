/// \file json.h
/// \brief Minimal JSON value, parser and serializer.
///
/// KathDB emits every logical-plan node in an exact JSON layout (Figure 3
/// of the paper) so the downstream compiler can ingest it without
/// post-processing, and persists generated function specs to disk as JSON.
/// Object keys preserve insertion order so serialized plans are stable.
///
/// \ingroup kathdb_common

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace kathdb {

/// \brief An ordered JSON value (null, bool, int, double, string, array,
/// object). Objects keep key insertion order for stable serialization.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Int(int64_t i);
  static Json Double(double d);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  /// Parses a JSON document. Returns InvalidArgument on malformed input.
  static Result<Json> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return type_ == Type::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double AsDouble() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return str_; }

  // ---- array API ----
  size_t size() const;
  /// Appends to an array (value must be an array).
  void Append(Json v);
  const Json& at(size_t i) const { return arr_[i]; }
  const std::vector<Json>& items() const { return arr_; }

  // ---- object API ----
  /// Sets a key (value must be an object). Overwrites but keeps position.
  void Set(const std::string& key, Json v);
  bool Has(const std::string& key) const;
  /// Pre: Has(key).
  const Json& Get(const std::string& key) const;
  /// Returns `def` when the key is absent.
  std::string GetString(const std::string& key,
                        const std::string& def = "") const;
  int64_t GetInt(const std::string& key, int64_t def = 0) const;
  double GetDouble(const std::string& key, double def = 0.0) const;
  bool GetBool(const std::string& key, bool def = false) const;
  const std::vector<std::pair<std::string, Json>>& entries() const {
    return obj_;
  }

  /// Serializes. `indent` > 0 pretty-prints with that many spaces.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace kathdb
