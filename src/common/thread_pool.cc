#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace kathdb::common {

ThreadPool::ThreadPool(int workers, size_t max_queue)
    : max_queue_(max_queue) {
  int n = std::max(1, workers);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) return false;
    if (max_queue_ != 0 && queue_.size() >= max_queue_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!(queue_.empty() && running_ == 0)) idle_cv_.Wait(mu_);
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

size_t ThreadPool::active() const {
  MutexLock lock(mu_);
  return running_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) {
        // shutdown_ with a drained queue: exit after waking Wait() callers.
        idle_cv_.NotifyAll();
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      MutexLock lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace kathdb::common
