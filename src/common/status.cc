#include "common/status.h"

namespace kathdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kSyntacticError:
      return "SyntacticError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kPlanRejected:
      return "PlanRejected";
    case StatusCode::kUserAborted:
      return "UserAborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace kathdb
