/// \file clock.h
/// \brief Injectable time source for latency simulation and batching.
///
/// Everything in KathDB that "waits" — simulated model round trips,
/// scripted user think time, the batch scheduler's flush deadline — goes
/// through a Clock so production code runs on the wall clock while tests
/// drive a ManualClock deterministically (no real sleep_for, no flaky
/// timing under ThreadSanitizer).
///
/// \ingroup kathdb_common

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>

#include "common/sync.h"

namespace kathdb::common {

/// \brief Abstract monotonic time source.
///
/// Implementations must be safe for concurrent use.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic "now" in microseconds.
  virtual int64_t NowMicros() const = 0;

  /// Blocks the caller for `ms` of this clock's time. On the system clock
  /// this is a real sleep; on a manual clock it advances virtual time and
  /// returns immediately.
  virtual void SleepFor(double ms) = 0;

  /// Waits on `cv` (with `mu` held) until notified or until this
  /// clock's time reaches `deadline_micros`. May wake spuriously; callers
  /// must re-check their predicate and the clock. On a manual clock this
  /// waits for a notification only — Advance() wakes registered wakers so
  /// deadline expiry is re-evaluated.
  virtual void WaitUntil(Mutex& mu, CondVar& cv, int64_t deadline_micros)
      KATHDB_REQUIRES(mu) = 0;

  /// Process-wide wall clock singleton.
  static Clock* System();
};

/// \brief Wall-clock implementation over std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  int64_t NowMicros() const override;
  void SleepFor(double ms) override;
  void WaitUntil(Mutex& mu, CondVar& cv, int64_t deadline_micros)
      KATHDB_REQUIRES(mu) override;
};

/// \brief Virtual clock for deterministic tests.
///
/// Time only moves when a test (or a SleepFor caller) calls Advance().
/// Components that block on deadlines register a waker; Advance() invokes
/// every waker after bumping the time so deadline loops re-evaluate. A
/// waker must be safe to call from any thread (typical implementation:
/// take the component's lock, drop it, notify its condition variable).
/// The clock must outlive every component holding a registration.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_micros = 0) : now_micros_(start_micros) {}

  int64_t NowMicros() const override {
    return now_micros_.load(std::memory_order_acquire);
  }

  /// SleepFor on a manual clock advances virtual time: the "sleeper" is
  /// modelled as the thing that makes time pass (a simulated model RTT),
  /// so deadline waiters elsewhere observe the jump.
  void SleepFor(double ms) override { Advance(ms); }

  void WaitUntil(Mutex& mu, CondVar& cv, int64_t deadline_micros)
      KATHDB_REQUIRES(mu) override;

  /// Moves virtual time forward and fires every registered waker.
  void Advance(double ms) KATHDB_EXCLUDES(mu_);

  /// Registers a waker invoked after every Advance(); returns an id for
  /// UnregisterWaker. Wakers run on the advancing thread.
  int64_t RegisterWaker(std::function<void()> waker) KATHDB_EXCLUDES(mu_);
  void UnregisterWaker(int64_t id) KATHDB_EXCLUDES(mu_);

 private:
  std::atomic<int64_t> now_micros_;
  Mutex mu_;
  int64_t next_waker_id_ KATHDB_GUARDED_BY(mu_) = 1;
  std::map<int64_t, std::function<void()>> wakers_ KATHDB_GUARDED_BY(mu_);
};

}  // namespace kathdb::common
