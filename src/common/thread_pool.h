/// \file thread_pool.h
/// \brief Fixed-size worker pool with a bounded FIFO task queue.
///
/// Deliberately work-stealing-free: one shared queue, N workers, a single
/// mutex + two condition variables. Query tasks are coarse (an entire NL
/// pipeline run), so a shared queue never becomes the bottleneck and the
/// simple design is easy to reason about under ThreadSanitizer. The bound
/// turns overload into backpressure: TrySubmit refuses instead of growing
/// the queue without limit, which is what the service layer's admission
/// control wants.
///
/// \ingroup kathdb_common

#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace kathdb::common {

/// \brief N workers draining one bounded FIFO queue.
class ThreadPool {
 public:
  /// Starts `workers` threads (min 1). `max_queue` bounds the number of
  /// *pending* (not yet running) tasks; 0 means unbounded.
  explicit ThreadPool(int workers, size_t max_queue = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; returns false when the queue is at capacity or the
  /// pool is shutting down (the caller sheds load).
  bool TrySubmit(std::function<void()> task) KATHDB_EXCLUDES(mu_);

  /// Blocks until every queued task has been picked up *and* finished.
  void Wait() KATHDB_EXCLUDES(mu_);

  /// Stops accepting work, drains the queue, joins. Idempotent.
  void Shutdown() KATHDB_EXCLUDES(mu_);

  int workers() const { return static_cast<int>(threads_.size()); }
  size_t queue_depth() const KATHDB_EXCLUDES(mu_);
  /// Tasks currently executing on a worker.
  size_t active() const KATHDB_EXCLUDES(mu_);

 private:
  void WorkerLoop() KATHDB_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar work_cv_;   // workers wait for tasks
  CondVar idle_cv_;   // Wait() waits for quiescence
  std::deque<std::function<void()>> queue_ KATHDB_GUARDED_BY(mu_);
  size_t max_queue_ = 0;  ///< immutable after construction
  size_t running_ KATHDB_GUARDED_BY(mu_) = 0;
  bool shutdown_ KATHDB_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  ///< written in ctor/Shutdown only
};

}  // namespace kathdb::common
