#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace kathdb {

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}
Json Json::Int(int64_t i) {
  Json j;
  j.type_ = Type::kInt;
  j.int_ = i;
  return j;
}
Json Json::Double(double d) {
  Json j;
  j.type_ = Type::kDouble;
  j.double_ = d;
  return j;
}
Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}
Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}
Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

void Json::Append(Json v) { arr_.push_back(std::move(v)); }

void Json::Set(const std::string& key, Json v) {
  for (auto& kv : obj_) {
    if (kv.first == key) {
      kv.second = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

bool Json::Has(const std::string& key) const {
  for (const auto& kv : obj_) {
    if (kv.first == key) return true;
  }
  return false;
}

const Json& Json::Get(const std::string& key) const {
  static const Json kNull;
  for (const auto& kv : obj_) {
    if (kv.first == key) return kv.second;
  }
  return kNull;
}

std::string Json::GetString(const std::string& key,
                            const std::string& def) const {
  if (!Has(key)) return def;
  const Json& v = Get(key);
  return v.is_string() ? v.AsString() : def;
}
int64_t Json::GetInt(const std::string& key, int64_t def) const {
  if (!Has(key)) return def;
  const Json& v = Get(key);
  return v.is_number() ? v.AsInt() : def;
}
double Json::GetDouble(const std::string& key, double def) const {
  if (!Has(key)) return def;
  const Json& v = Get(key);
  return v.is_number() ? v.AsDouble() : def;
}
bool Json::GetBool(const std::string& key, bool def) const {
  if (!Has(key)) return def;
  const Json& v = Get(key);
  return v.type() == Type::kBool ? v.AsBool() : def;
}

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Result<Json> Parse() {
    SkipWs();
    KATHDB_ASSIGN_OR_RETURN(Json v, ParseValue());
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::InvalidArgument("trailing characters in JSON at pos " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (pos_ >= s_.size()) return Status::InvalidArgument("unexpected EOF");
    char c = s_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      KATHDB_ASSIGN_OR_RETURN(std::string str, ParseString());
      return Json::Str(std::move(str));
    }
    if (s_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return Json::Bool(true);
    }
    if (s_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return Json::Bool(false);
    }
    if (s_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return Json::Null();
    }
    return ParseNumber();
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    bool is_double = false;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Status::InvalidArgument("invalid number");
    std::string tok(s_.substr(start, pos_ - start));
    if (is_double) {
      return Json::Double(std::strtod(tok.c_str(), nullptr));
    }
    return Json::Int(std::strtoll(tok.c_str(), nullptr, 10));
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Status::InvalidArgument("expected string");
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        char e = s_[pos_++];
        switch (e) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              return Status::InvalidArgument("bad \\u escape");
            }
            std::string hex(s_.substr(pos_, 4));
            pos_ += 4;
            int code = static_cast<int>(std::strtol(hex.c_str(), nullptr, 16));
            // Encode as UTF-8 (basic multilingual plane only).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            out.push_back(e);
        }
      } else {
        out.push_back(c);
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Result<Json> ParseArray() {
    Consume('[');
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      SkipWs();
      KATHDB_ASSIGN_OR_RETURN(Json v, ParseValue());
      arr.Append(std::move(v));
      SkipWs();
      if (Consume(']')) return arr;
      if (!Consume(',')) {
        return Status::InvalidArgument("expected ',' or ']' in array");
      }
    }
  }

  Result<Json> ParseObject() {
    Consume('{');
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      KATHDB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) {
        return Status::InvalidArgument("expected ':' in object");
      }
      SkipWs();
      KATHDB_ASSIGN_OR_RETURN(Json v, ParseValue());
      obj.Set(key, std::move(v));
      SkipWs();
      if (Consume('}')) return obj;
      if (!Consume(',')) {
        return Status::InvalidArgument("expected ',' or '}' in object");
      }
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).Parse();
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent) * d, ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      *out += std::to_string(int_);
      break;
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.10g", double_);
        *out += buf;
        // Keep a decimal marker so round-trips stay doubles.
        if (std::string_view(buf).find_first_of(".eE") ==
            std::string_view::npos) {
          *out += ".0";
        }
      } else {
        *out += "null";
      }
      break;
    }
    case Type::kString:
      EscapeTo(str_, out);
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        EscapeTo(obj_[i].first, out);
        *out += indent > 0 ? ": " : ":";
        obj_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

}  // namespace kathdb
