/// \file movie_dataset.h
/// \brief Synthetic MMQA-like movie corpus with ground truth.
///
/// The paper evaluates over MMQA (tables, text and images crawled from
/// Wikipedia), which is not available offline. This generator produces the
/// same three modalities — a movie metadata table, one plot document and
/// one poster image per movie — plus *hidden ground-truth labels*
/// (excitement, boringness) that the pipeline never sees but benches use
/// to measure accuracy, which the paper's qualitative demo could not do.
///
/// Two anchor movies reproduce Figure 6 exactly: "Guilty by Suspicion"
/// (1991, violent/suspenseful plot, plain poster) and "Clean and Sober"
/// (1988, intense recovery plot, plain poster). The generated years cap at
/// 1991 so Guilty by Suspicion is the most recent film and its recency
/// score is 1.0, matching the paper's 0.7*0.99999988 + 0.3*1.0 trace.
///
/// \ingroup kathdb_data

#pragma once

#include <map>
#include <vector>

#include "common/status.h"
#include "engine/kathdb.h"
#include "multimodal/media.h"
#include "relational/table.h"

namespace kathdb::data {

struct DatasetOptions {
  int num_movies = 40;  ///< including the two anchors
  uint64_t seed = 1234;
  /// Fraction of non-anchor movies with a plain ("boring") poster.
  double boring_fraction = 0.45;
  /// Fraction of non-anchor movies with an exciting plot. Exciting plots
  /// are paired with vivid posters so the anchors stay the top-2 among
  /// boring-poster films (as in Figure 6).
  double exciting_fraction = 0.5;
  /// Fraction of posters stored in the HEIC format (self-repair, E12).
  double heic_fraction = 0.0;
  /// Fraction of movies sharing a poster vid with another movie
  /// (triggers the semantic-anomaly join check, E11).
  double duplicate_poster_fraction = 0.0;
  bool include_anchors = true;
};

/// Ground truth for one movie (never exposed to the query pipeline).
struct MovieTruth {
  int64_t mid = 0;
  bool exciting_plot = false;
  bool boring_poster = false;
};

/// \brief One generated corpus: table + documents + posters + truth.
struct MovieDataset {
  rel::TablePtr movie_table;  ///< movie_table(mid, title, year, did, vid)
  std::vector<mm::Document> plots;
  std::map<int64_t, mm::SyntheticImage> posters;  ///< keyed by vid
  std::vector<MovieTruth> truth;

  const MovieTruth* TruthOf(int64_t mid) const;
};

/// Deterministically generates a corpus.
Result<MovieDataset> GenerateMovieDataset(const DatasetOptions& options);

/// Registers the table and ingests every document and poster into `db`
/// (populating the text-graph and scene-graph views with lineage).
Status IngestDataset(const MovieDataset& dataset, engine::KathDB* db);

}  // namespace kathdb::data
