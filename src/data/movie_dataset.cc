#include "data/movie_dataset.h"

#include "common/rng.h"

namespace kathdb::data {

using mm::Document;
using mm::LatentObject;
using mm::SyntheticImage;
using rel::DataType;
using rel::Schema;
using rel::Table;
using rel::Value;

const MovieTruth* MovieDataset::TruthOf(int64_t mid) const {
  for (const auto& t : truth) {
    if (t.mid == mid) return &t;
  }
  return nullptr;
}

namespace {

// ---- title fragments for generated movies -----------------------------
const char* kTitleFirst[] = {"Silent", "Crimson", "Golden",  "Midnight",
                             "Broken", "Hidden",  "Distant", "Burning",
                             "Velvet", "Winter",  "Scarlet", "Forgotten"};
const char* kTitleSecond[] = {"Harbor", "Letters", "Garden", "Highway",
                              "Promise", "Orchard", "Country", "Witness",
                              "Bridge", "Station", "Summer", "Shadow"};

// Exciting plot sentences: rich in violence/action/suspense lexicon words
// so the simulated NER extracts matching concept_name entities.
const char* kExcitingSentences[] = {
    "A gun battle erupts when the detective corners the killer on the "
    "rooftop.",
    "The hero survives a motorcycle chase and a warehouse explosion.",
    "An assassin plants a bomb under the senator's car before the trial.",
    "Witnesses describe the murder and the bloody knife found at the "
    "scene.",
    "A hostage escape turns into a shootout with the sniper on the "
    "bridge.",
    "The fugitive jumps from a burning plane over enemy territory.",
    "An interrogation reveals a conspiracy reaching the highest office.",
    "The informant is attacked after testifying about the heist."};

// Calm plot sentences: calm/romance lexicon words only.
const char* kCalmSentences[] = {
    "Margaret tends her quiet garden and bakes bread for the village "
    "bakery.",
    "Two old friends share tea and gentle conversation by the lake.",
    "A peaceful stroll through the meadow ends with a picnic at sunset.",
    "The librarian spends the summer knitting by the orchard.",
    "A slow romance blossoms over long walks and handwritten letters.",
    "The family enjoys a nap under the breeze after the harvest."};

const char* kPersonNames[] = {"Margaret Hale", "Thomas Reed", "Clara Boone",
                              "Samuel Pike",  "Eleanor Finch", "Walter Cross",
                              "Harriet Vane", "Oliver Stone"};

SyntheticImage MakeBoringPoster(int64_t vid, Rng* rng) {
  SyntheticImage img;
  img.uri = "file://posters/poster_" + std::to_string(vid) + ".simg";
  // Flat, low-variance colors; one or two static objects.
  double base = 0.8 + rng->NextDouble() * 0.15;
  img.color_hist = {base, (1.0 - base) * 0.6, (1.0 - base) * 0.4,
                    0.0, 0.0, 0.0, 0.0, 0.0};
  // Below the 0.055 classification threshold, but close enough to it
  // that detector noise / cascades have real work to do (E8, E11).
  img.color_variance = 0.01 + rng->NextDouble() * 0.04;
  LatentObject person{"person", 0.3, 0.2, 0.7, 0.9, {{"color", "gray"}}};
  img.objects.push_back(person);
  if (rng->NextBool(0.5)) {
    img.objects.push_back({"chair", 0.1, 0.6, 0.3, 0.9, {}});
  }
  return img;
}

SyntheticImage MakeVividPoster(int64_t vid, Rng* rng) {
  SyntheticImage img;
  img.uri = "file://posters/poster_" + std::to_string(vid) + ".simg";
  for (auto& h : img.color_hist) h = 0.125;
  img.color_variance = 0.065 + rng->NextDouble() * 0.15;  // > 0.055
  img.objects.push_back({"person", 0.2, 0.1, 0.5, 0.9,
                         {{"color", "red"}}});
  img.objects.push_back({"gun", 0.45, 0.4, 0.55, 0.55, {}});
  img.objects.push_back({"motorcycle", 0.5, 0.5, 0.95, 0.95,
                         {{"color", "black"}}});
  img.objects.push_back({"explosion", 0.0, 0.0, 1.0, 0.4, {}});
  img.objects.push_back({"helicopter", 0.6, 0.05, 0.9, 0.25, {}});
  img.relationships.push_back({0, "holding", 1});
  img.relationships.push_back({0, "riding", 2});
  return img;
}

std::string MakePlot(bool exciting, const std::string& title, Rng* rng) {
  std::string person = kPersonNames[rng->NextInt(0, 7)];
  std::string plot = "In " + title + ", " + person + " faces a turning "
                     "point. ";
  const char** pool = exciting ? kExcitingSentences : kCalmSentences;
  int pool_size = exciting ? 8 : 6;
  int n = exciting ? 4 : 3;
  for (int i = 0; i < n; ++i) {
    plot += pool[rng->NextInt(0, pool_size - 1)];
    plot += " ";
  }
  plot += exciting ? ("Critics called it relentless. " + person +
                      " never sleeps while danger is near.")
                   : ("Critics called it tender. " + person +
                      " finds comfort in the little things.");
  return plot;
}

}  // namespace

Result<MovieDataset> GenerateMovieDataset(const DatasetOptions& options) {
  if (options.num_movies < (options.include_anchors ? 2 : 1)) {
    return Status::InvalidArgument("num_movies too small");
  }
  Rng rng(options.seed);
  MovieDataset ds;
  ds.movie_table = std::make_shared<Table>(
      "movie_table", Schema({{"mid", DataType::kInt},
                             {"title", DataType::kString},
                             {"year", DataType::kInt},
                             {"did", DataType::kInt},
                             {"vid", DataType::kInt}}));

  int64_t next_mid = 1;
  int64_t next_did = 1;
  int64_t next_vid = 1;

  auto add_movie = [&](const std::string& title, int year,
                       const std::string& plot, SyntheticImage poster,
                       bool exciting, bool boring,
                       int64_t reuse_vid) -> void {
    int64_t mid = next_mid++;
    int64_t did = next_did++;
    int64_t vid = reuse_vid != 0 ? reuse_vid : next_vid++;
    ds.movie_table->AppendRow({Value::Int(mid), Value::Str(title),
                               Value::Int(year), Value::Int(did),
                               Value::Int(vid)});
    Document doc;
    doc.did = did;
    doc.uri = "file://plots/plot_" + std::to_string(did) + ".txt";
    doc.text = plot;
    ds.plots.push_back(std::move(doc));
    if (reuse_vid == 0) {
      ds.posters[vid] = std::move(poster);
    }
    ds.truth.push_back({mid, exciting, boring});
  };

  // ---- anchors (Figure 6) --------------------------------------------
  if (options.include_anchors) {
    // Guilty by Suspicion (1991): blacklist-era suspense; plain poster.
    std::string gbs_plot =
        "In Guilty by Suspicion, David Merrill returns from abroad to find "
        "Hollywood gripped by the blacklist. An interrogation before the "
        "committee turns into a public trial, and every witness faces a "
        "threat of ruin. He is accused in a conspiracy, placed under "
        "surveillance, and told that betrayal is the only escape. A friend "
        "chooses death over testifying, and the killer fear spreads like a "
        "gun pointed at the whole town. Merrill risks an attack on his "
        "career and his life to refuse. The murder of a reputation can be "
        "as violent as a shootout.";
    SyntheticImage gbs_poster;
    gbs_poster.uri = "file://posters/guilty_by_suspicion.simg";
    gbs_poster.color_hist = {0.85, 0.1, 0.05, 0, 0, 0, 0, 0};
    gbs_poster.color_variance = 0.012;  // very plain
    gbs_poster.objects.push_back(
        {"person", 0.35, 0.15, 0.65, 0.95, {{"color", "gray"}}});
    add_movie("Guilty by Suspicion", 1991, gbs_plot, std::move(gbs_poster),
              /*exciting=*/true, /*boring=*/true, 0);

    // Clean and Sober (1988): intense recovery drama; plain poster.
    std::string cas_plot =
        "In Clean and Sober, Daryl Poynter hides in a rehab clinic after "
        "cocaine and a missing fortune put a threat on his life. The "
        "addiction is a slow attack he cannot escape, and every relapse "
        "feels like a death sentence. A counselor sees through the "
        "dependency, and the withdrawal becomes a fight he must win. An "
        "investigation into the stolen money closes in while he battles "
        "the danger inside himself.";
    SyntheticImage cas_poster;
    cas_poster.uri = "file://posters/clean_and_sober.simg";
    cas_poster.color_hist = {0.8, 0.12, 0.08, 0, 0, 0, 0, 0};
    cas_poster.color_variance = 0.018;
    cas_poster.objects.push_back(
        {"person", 0.3, 0.2, 0.7, 0.9, {{"color", "beige"}}});
    cas_poster.objects.push_back({"chair", 0.1, 0.65, 0.25, 0.9, {}});
    add_movie("Clean and Sober", 1988, cas_plot, std::move(cas_poster),
              /*exciting=*/true, /*boring=*/true, 0);
  }

  // ---- generated movies ----------------------------------------------
  int generated = options.num_movies - (options.include_anchors ? 2 : 0);
  std::vector<int64_t> prior_vids;
  for (int i = 0; i < generated; ++i) {
    std::string title = std::string(kTitleFirst[rng.NextInt(0, 11)]) + " " +
                        kTitleSecond[rng.NextInt(0, 11)] + " " +
                        std::to_string(i + 1);
    // Years cap at 1990 so the Guilty by Suspicion anchor stays the most
    // recent film (recency_score 1.0, as in the paper's trace).
    int year = static_cast<int>(rng.NextInt(1950, 1990));
    bool boring = rng.NextBool(options.boring_fraction);
    // Exciting plots go with vivid posters for non-anchor movies, so the
    // anchors remain the only exciting+boring combination.
    bool exciting = boring ? false : rng.NextBool(options.exciting_fraction);
    std::string plot = MakePlot(exciting, title, &rng);
    SyntheticImage poster =
        boring ? MakeBoringPoster(next_vid, &rng)
               : MakeVividPoster(next_vid, &rng);
    if (rng.NextBool(options.heic_fraction)) poster.format = "heic";
    int64_t reuse_vid = 0;
    if (!prior_vids.empty() &&
        rng.NextBool(options.duplicate_poster_fraction)) {
      reuse_vid = prior_vids[static_cast<size_t>(
          rng.NextInt(0, static_cast<int64_t>(prior_vids.size()) - 1))];
    }
    add_movie(title, year, plot, std::move(poster), exciting, boring,
              reuse_vid);
    if (reuse_vid == 0) prior_vids.push_back(next_vid - 1);
  }
  return ds;
}

Status IngestDataset(const MovieDataset& dataset, engine::KathDB* db) {
  KATHDB_RETURN_IF_ERROR(db->RegisterTable(dataset.movie_table));
  for (const auto& doc : dataset.plots) {
    KATHDB_RETURN_IF_ERROR(db->IngestDocument(doc));
  }
  for (const auto& [vid, poster] : dataset.posters) {
    KATHDB_RETURN_IF_ERROR(db->IngestImage(vid, poster));
  }
  return Status::OK();
}

}  // namespace kathdb::data
