#include "vector/embedding.h"

#include <cmath>

#include "common/rng.h"
#include "common/strings.h"

namespace kathdb::vec {

float CosineSimilarity(const Embedding& a, const Embedding& b) {
  if (a.size() != b.size() || a.empty()) return 0.0f;
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

void Normalize(Embedding* e) {
  double n = 0.0;
  for (float v : *e) n += static_cast<double>(v) * v;
  if (n == 0.0) return;
  float inv = static_cast<float>(1.0 / std::sqrt(n));
  for (float& v : *e) v *= inv;
}

void ConceptLexicon::Add(const std::string& concept_name,
                         const std::string& token) {
  token_to_concept_.emplace_back(ToLower(token), ToLower(concept_name));
}

std::string ConceptLexicon::ConceptOf(const std::string& token) const {
  std::string t = ToLower(token);
  for (const auto& [tok, con] : token_to_concept_) {
    if (tok == t) return con;
  }
  return "";
}

std::vector<std::string> ConceptLexicon::TokensOf(
    const std::string& concept_name) const {
  std::string c = ToLower(concept_name);
  std::vector<std::string> out;
  for (const auto& [tok, con] : token_to_concept_) {
    if (con == c) out.push_back(tok);
  }
  return out;
}

ConceptLexicon ConceptLexicon::BuiltIn() {
  ConceptLexicon lex;
  auto add_all = [&](const std::string& concept_name,
                     std::initializer_list<const char*> tokens) {
    for (const char* t : tokens) lex.Add(concept_name, t);
  };
  // Concepts driving the "exciting plot" scoring of the running example.
  add_all("violence", {"gun", "guns", "weapon", "weapons", "murder", "kill",
                       "killing", "killer", "shootout", "shooting", "knife",
                       "bomb", "assault", "attack", "war", "blood", "threat",
                       "death", "gunfight", "hostage", "sniper", "execution"});
  add_all("action", {"chase", "explosion", "explosions", "crash", "jump",
                     "jumped", "escape", "fight", "fighting", "race",
                     "motorcycle", "helicopter", "stunt", "plane", "danger",
                     "dangerous", "rooftop", "heist", "pursuit", "collision"});
  add_all("suspense", {"conspiracy", "blacklist", "suspicion", "spy",
                       "betrayal", "interrogation", "accused", "secret",
                       "surveillance", "fugitive", "trial", "witness",
                       "informant", "paranoia", "investigation"});
  add_all("calm", {"meadow", "quiet", "garden", "tea", "walk", "gentle",
                   "peaceful", "stroll", "knitting", "picnic", "sunset",
                   "orchard", "library", "lake", "breeze", "nap", "bakery"});
  add_all("romance", {"love", "kiss", "wedding", "romance", "heart",
                      "sweetheart", "courtship", "embrace", "longing"});
  add_all("recovery", {"rehab", "sober", "addiction", "cocaine", "relapse",
                       "recovery", "counselor", "dependency", "withdrawal"});
  add_all("visual_dull", {"plain", "beige", "gray", "monochrome", "empty",
                          "minimal", "bland", "boring", "dull", "static"});
  add_all("visual_vivid", {"vivid", "colorful", "neon", "bright", "dynamic",
                           "fiery", "saturated", "flashy"});
  return lex;
}

Embedding TextEmbedder::HashVector(const std::string& seed_text) const {
  Embedding e(dim_);
  uint64_t state = HashString(seed_text);
  for (size_t i = 0; i < dim_; ++i) {
    state = SplitMix64(state);
    // Map to [-1, 1).
    e[i] = static_cast<float>(
        static_cast<double>(state >> 11) / 4503599627370496.0 - 1.0);
  }
  Normalize(&e);
  return e;
}

Embedding TextEmbedder::EmbedToken(const std::string& token) const {
  std::string t = ToLower(token);
  Embedding base = HashVector("tok:" + t);
  std::string concept_name = lexicon_.ConceptOf(t);
  if (concept_name.empty()) return base;
  Embedding cvec = HashVector("concept_name:" + concept_name);
  // Blend strongly toward the concept_name so same-concept_name tokens correlate
  // (~0.8 cosine) while staying distinguishable.
  Embedding out(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    out[i] = 0.9f * cvec[i] + 0.35f * base[i];
  }
  Normalize(&out);
  return out;
}

Embedding TextEmbedder::EmbedText(const std::string& text) const {
  std::vector<std::string> toks = Tokenize(text);
  Embedding sum(dim_, 0.0f);
  if (toks.empty()) return sum;
  for (const auto& t : toks) {
    Embedding e = EmbedToken(t);
    for (size_t i = 0; i < dim_; ++i) sum[i] += e[i];
  }
  Normalize(&sum);
  return sum;
}

float TextEmbedder::KeywordSetSimilarity(
    const std::vector<std::string>& keywords,
    const std::vector<std::string>& candidates) const {
  float best = 0.0f;
  for (const auto& k : keywords) {
    Embedding ke = EmbedToken(k);
    for (const auto& c : candidates) {
      float s = CosineSimilarity(ke, EmbedToken(c));
      if (s > best) best = s;
    }
  }
  return best;
}

}  // namespace kathdb::vec
