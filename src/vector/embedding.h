/// \file embedding.h
/// \brief Deterministic text embeddings for semantic similarity.
///
/// Substitute for the hosted embedding model the paper uses in step (4) of
/// the example pipeline (vector similarity between an LLM-generated keyword
/// list and extracted entities). Token vectors are hash-derived, but tokens
/// that share a lexicon concept_name ("gun" and "weapon" both map to concept_name
/// "violence") are blended toward the concept_name vector, so related words
/// measurably correlate while the whole pipeline stays reproducible.
///
/// \ingroup kathdb_vector

#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace kathdb::vec {

using Embedding = std::vector<float>;

/// Cosine similarity in [-1, 1]; 0 when either vector is all-zero.
float CosineSimilarity(const Embedding& a, const Embedding& b);

/// L2-normalizes in place (no-op for the zero vector).
void Normalize(Embedding* e);

/// \brief Maps tokens to semantic concepts. Ships with a built-in lexicon
/// covering the movie domain of the paper's running example (violence /
/// action / calm / romance / recency ...); callers can extend it.
class ConceptLexicon {
 public:
  /// Lexicon with the built-in movie-domain concepts.
  static ConceptLexicon BuiltIn();

  /// Adds `token` to `concept_name` (both lower-cased).
  void Add(const std::string& concept_name, const std::string& token);

  /// Concept of `token`, or "" when unmapped.
  std::string ConceptOf(const std::string& token) const;

  /// All tokens registered under `concept_name`.
  std::vector<std::string> TokensOf(const std::string& concept_name) const;

  size_t size() const { return token_to_concept_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> token_to_concept_;
};

/// \brief Deterministic text embedder: hash vectors + concept_name blending.
class TextEmbedder {
 public:
  explicit TextEmbedder(size_t dim = 64,
                        ConceptLexicon lexicon = ConceptLexicon::BuiltIn())
      : dim_(dim), lexicon_(std::move(lexicon)) {}

  size_t dim() const { return dim_; }
  const ConceptLexicon& lexicon() const { return lexicon_; }

  /// Unit-norm embedding of one token.
  Embedding EmbedToken(const std::string& token) const;

  /// Unit-norm embedding of a text: mean of token embeddings.
  Embedding EmbedText(const std::string& text) const;

  /// Max cosine similarity between any keyword and any candidate token;
  /// the building block of the excitement-score FAO.
  float KeywordSetSimilarity(const std::vector<std::string>& keywords,
                             const std::vector<std::string>& candidates) const;

 private:
  Embedding HashVector(const std::string& seed_text) const;

  size_t dim_;
  ConceptLexicon lexicon_;
};

}  // namespace kathdb::vec
