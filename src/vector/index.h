/// \file index.h
/// \brief Vector similarity indexes: brute force and IVF.
///
/// The optimizer can choose between a brute-force scan (exact, O(n)) and an
/// inverted-file index (approximate, probes a few clusters) as alternative
/// *physical implementations* of the same similarity-search logical
/// operator — exactly the FAO physical-choice pattern of Section 4.
///
/// \ingroup kathdb_vector

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "vector/embedding.h"

namespace kathdb::vec {

struct SearchHit {
  int64_t id = 0;
  float score = 0.0f;  // cosine similarity
};

/// \brief Interface shared by all vector indexes.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Adds a vector under `id`. Vectors must share one dimension.
  virtual Status Add(int64_t id, const Embedding& v) = 0;

  /// Builds internal structures; must be called after the last Add and
  /// before the first Search (brute force treats it as a no-op).
  virtual Status Build() = 0;

  /// Top-k most cosine-similar vectors, best first.
  virtual Result<std::vector<SearchHit>> Search(const Embedding& query,
                                                size_t k) const = 0;

  virtual size_t size() const = 0;
  virtual std::string name() const = 0;
};

/// Exact linear scan.
class BruteForceIndex : public VectorIndex {
 public:
  explicit BruteForceIndex(size_t dim) : dim_(dim) {}

  Status Add(int64_t id, const Embedding& v) override;
  Status Build() override { return Status::OK(); }
  Result<std::vector<SearchHit>> Search(const Embedding& query,
                                        size_t k) const override;
  size_t size() const override { return ids_.size(); }
  std::string name() const override { return "brute_force"; }

 private:
  size_t dim_;
  std::vector<int64_t> ids_;
  std::vector<Embedding> vecs_;
};

/// Inverted-file index: k-means-style centroids, probes the closest
/// `nprobe` clusters. Approximate but sub-linear for large collections.
class IvfIndex : public VectorIndex {
 public:
  IvfIndex(size_t dim, size_t num_clusters, size_t nprobe, uint64_t seed = 42)
      : dim_(dim), num_clusters_(num_clusters), nprobe_(nprobe), seed_(seed) {}

  Status Add(int64_t id, const Embedding& v) override;
  Status Build() override;
  Result<std::vector<SearchHit>> Search(const Embedding& query,
                                        size_t k) const override;
  size_t size() const override { return ids_.size(); }
  std::string name() const override { return "ivf"; }

 private:
  size_t dim_;
  size_t num_clusters_;
  size_t nprobe_;
  uint64_t seed_;
  bool built_ = false;
  std::vector<int64_t> ids_;
  std::vector<Embedding> vecs_;
  std::vector<Embedding> centroids_;
  std::vector<std::vector<size_t>> clusters_;  // centroid -> vector indexes
};

}  // namespace kathdb::vec
