#include "vector/index.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace kathdb::vec {

namespace {

void TopKInsert(std::vector<SearchHit>* heap, size_t k, SearchHit hit) {
  heap->push_back(hit);
  std::push_heap(heap->begin(), heap->end(),
                 [](const SearchHit& a, const SearchHit& b) {
                   return a.score > b.score;  // min-heap on score
                 });
  if (heap->size() > k) {
    std::pop_heap(heap->begin(), heap->end(),
                  [](const SearchHit& a, const SearchHit& b) {
                    return a.score > b.score;
                  });
    heap->pop_back();
  }
}

void FinishTopK(std::vector<SearchHit>* heap) {
  std::sort(heap->begin(), heap->end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
}

}  // namespace

// ----------------------------------------------------------- BruteForce

Status BruteForceIndex::Add(int64_t id, const Embedding& v) {
  if (v.size() != dim_) {
    return Status::InvalidArgument("vector dim " + std::to_string(v.size()) +
                                   " != index dim " + std::to_string(dim_));
  }
  ids_.push_back(id);
  vecs_.push_back(v);
  return Status::OK();
}

Result<std::vector<SearchHit>> BruteForceIndex::Search(const Embedding& query,
                                                       size_t k) const {
  if (query.size() != dim_) {
    return Status::InvalidArgument("query dim mismatch");
  }
  std::vector<SearchHit> heap;
  heap.reserve(k + 1);
  for (size_t i = 0; i < vecs_.size(); ++i) {
    TopKInsert(&heap, k, {ids_[i], CosineSimilarity(query, vecs_[i])});
  }
  FinishTopK(&heap);
  return heap;
}

// ------------------------------------------------------------------ IVF

Status IvfIndex::Add(int64_t id, const Embedding& v) {
  if (v.size() != dim_) {
    return Status::InvalidArgument("vector dim mismatch");
  }
  if (built_) return Status::RuntimeError("IvfIndex already built");
  ids_.push_back(id);
  vecs_.push_back(v);
  return Status::OK();
}

Status IvfIndex::Build() {
  if (vecs_.empty()) {
    built_ = true;
    return Status::OK();
  }
  size_t k = std::min(num_clusters_, vecs_.size());
  // Seed centroids deterministically from the data.
  Rng rng(seed_);
  centroids_.clear();
  for (size_t c = 0; c < k; ++c) {
    centroids_.push_back(
        vecs_[static_cast<size_t>(rng.NextInt(0, vecs_.size() - 1))]);
  }
  clusters_.assign(k, {});
  // A few Lloyd iterations suffice for probe routing quality.
  std::vector<size_t> assign(vecs_.size(), 0);
  for (int iter = 0; iter < 5; ++iter) {
    for (size_t i = 0; i < vecs_.size(); ++i) {
      float best = -2.0f;
      size_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        float s = CosineSimilarity(vecs_[i], centroids_[c]);
        if (s > best) {
          best = s;
          best_c = c;
        }
      }
      assign[i] = best_c;
    }
    // Recompute centroids.
    std::vector<Embedding> sums(k, Embedding(dim_, 0.0f));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < vecs_.size(); ++i) {
      for (size_t d = 0; d < dim_; ++d) sums[assign[i]][d] += vecs_[i][d];
      ++counts[assign[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      Normalize(&sums[c]);
      centroids_[c] = sums[c];
    }
  }
  for (auto& cl : clusters_) cl.clear();
  for (size_t i = 0; i < vecs_.size(); ++i) {
    clusters_[assign[i]].push_back(i);
  }
  built_ = true;
  return Status::OK();
}

Result<std::vector<SearchHit>> IvfIndex::Search(const Embedding& query,
                                                size_t k) const {
  if (!built_) return Status::RuntimeError("IvfIndex::Build not called");
  if (query.size() != dim_) {
    return Status::InvalidArgument("query dim mismatch");
  }
  // Rank centroids by similarity, probe the best nprobe clusters.
  std::vector<std::pair<float, size_t>> ranked;
  ranked.reserve(centroids_.size());
  for (size_t c = 0; c < centroids_.size(); ++c) {
    ranked.emplace_back(CosineSimilarity(query, centroids_[c]), c);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<SearchHit> heap;
  size_t probes = std::min(nprobe_, ranked.size());
  for (size_t p = 0; p < probes; ++p) {
    for (size_t i : clusters_[ranked[p].second]) {
      TopKInsert(&heap, k, {ids_[i], CosineSimilarity(query, vecs_[i])});
    }
  }
  FinishTopK(&heap);
  return heap;
}

}  // namespace kathdb::vec
