/// \file result_cache.h
/// \brief Sharded cross-query cache for FAO results and LLM completions.
///
/// The single biggest cost in the paper's pipeline is re-running
/// foundation-model work (keyword embedding, pixel-level VLM analysis,
/// LLM agent calls) for inputs that were answered moments ago by another
/// query or session. The ResultCache memoizes both:
///   - physical FAO function results, keyed by a 64-bit hash of the
///     function-spec fingerprint + the content of its input tuples, and
///   - simulated-LLM completions, keyed by model + prompt.
///
/// The lookup path follows the scalable-lookup-under-load playbook of
/// SHIP (arxiv 1711.09155) and Othello hashing (arxiv 1608.05699):
/// fixed power-of-two shard array, one small mutex per shard (striping),
/// O(1) probes, and no global lock, so concurrent readers touching
/// different stripes never serialize. Capacity is bounded per shard with
/// FIFO eviction; hit/miss/insert/evict counters are lock-free atomics
/// surfaced through the service stats.
///
/// A note on provenance: cached tables carry the row lineage ids of the
/// execution that first produced them. Content-identical inputs therefore
/// share one provenance chain ("lineage dedup") — traces still resolve to
/// the same ingested sources, since cache keys are content hashes.
///
/// Besides memoized results, SimulatedLLM::Charge stores empty dedup
/// markers here (one per unique metered call) so identical agent calls
/// are billed once process-wide. Markers compete with real entries for
/// the bounded slots — a deliberate trade-off: evicting one merely
/// re-meters a repeat call later, never affects correctness.
///
/// \ingroup kathdb_service

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "relational/table.h"

namespace kathdb::service {

/// One memoized result: either a materialized table (FAO) or a completion
/// string (LLM); the unused member stays empty.
struct CacheEntry {
  std::shared_ptr<const rel::Table> table;
  std::string text;
};

struct ResultCacheOptions {
  size_t shards = 16;      ///< rounded up to a power of two
  size_t capacity = 4096;  ///< max entries across all shards
};

/// Counter snapshot (atomically sampled; totals may be mid-update).
struct ResultCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  size_t entries = 0;

  double hit_rate() const {
    int64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
  /// "hits=120 misses=30 hit_rate=0.80 entries=42 evictions=0" line.
  std::string ToText() const;
};

/// \brief Bounded, sharded, mutex-striped 64-bit-keyed cache.
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Looks `key` up; counts a hit or a miss.
  std::optional<CacheEntry> Get(uint64_t key);

  /// Inserts/overwrites `key`. Evicts the oldest entry of the target
  /// shard when that shard is at capacity.
  void Put(uint64_t key, CacheEntry entry);

  /// Lookup without touching the hit/miss counters (tests, diagnostics).
  bool Contains(uint64_t key) const;

  /// Drops all entries; counters keep accumulating.
  void Clear();

  size_t size() const;
  size_t num_shards() const { return shard_count_; }
  ResultCacheStats stats() const;

 private:
  struct Shard {
    mutable common::Mutex mu;
    std::unordered_map<uint64_t, CacheEntry> map KATHDB_GUARDED_BY(mu);
    std::deque<uint64_t> fifo KATHDB_GUARDED_BY(mu);  // FIFO eviction order
  };

  Shard& shard_for(uint64_t key);
  const Shard& shard_for(uint64_t key) const;

  size_t shard_count_;
  size_t per_shard_capacity_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> insertions_{0};
  std::atomic<int64_t> evictions_{0};
};

/// Content fingerprint of a table: schema + row values. Lineage ids and
/// the table name are deliberately excluded so logically identical inputs
/// hit the same entry across queries and sessions.
uint64_t FingerprintTable(const rel::Table& table);

/// Order-sensitive fingerprint of an input tuple (vector of tables).
uint64_t FingerprintTables(const std::vector<rel::TablePtr>& tables);

}  // namespace kathdb::service
