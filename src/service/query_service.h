/// \file query_service.h
/// \brief QueryService — the concurrent multi-session front door of KathDB.
///
/// Turns the single-user KathDB facade into a server: N worker threads
/// (common/ThreadPool) drain a bounded admission queue of NL queries,
/// each belonging to a Session that carries the user's scripted reply
/// channel and last-outcome state. All sessions share one KathDB — one
/// corpus, one function registry, one lineage store, one usage meter —
/// and one cross-query ResultCache, so work any session has already paid
/// for (LLM agent calls, FAO function results) is free for everyone else.
///
/// Concurrency model:
///  - every query runs KathDB::QueryDetached on a worker thread, against
///    a per-query ScopedCatalog overlay (intermediates never collide);
///  - shared components (registry, lineage, meter, catalog, cache) are
///    internally synchronized; per-session state hides behind a session
///    mutex;
///  - admission is bounded: Submit sheds load with kUnavailable once
///    `max_queue` queries are waiting — backpressure instead of
///    unbounded memory growth.
///
/// \ingroup kathdb_service

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/sync.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/kathdb.h"
#include "llm/batch_scheduler.h"
#include "service/result_cache.h"

namespace kathdb::service {

using SessionId = int64_t;

struct ServiceOptions {
  int workers = 4;        ///< worker threads executing queries
  size_t max_queue = 64;  ///< pending-query bound (admission control)
  bool enable_result_cache = true;
  ResultCacheOptions cache;
  /// Simulated think time per interaction-channel question (remote users
  /// do not answer instantly); benches use it to reproduce the blocking
  /// the worker pool overlaps. 0 = instant replies.
  double reply_latency_ms = 0.0;
  /// Per-query intra-query parallelism budget: the maximum DAG nodes of
  /// one query in flight at once (and the lane count for morsel
  /// evaluation), served by a dedicated exec pool of the same size that
  /// all in-flight queries share. 1 keeps queries sequential inside —
  /// the right default when the session count already saturates cores.
  int intra_query_parallelism = 1;
  /// Morsel size handed to the executor (0 = whole-table evaluation).
  size_t intra_query_morsel_size = 0;
  /// When true, a query admitted while others are still waiting in the
  /// admission queue runs with a budget of 1: under heavy multi-session
  /// load, cores go to throughput, not to intra-query latency.
  bool adaptive_intra_query = true;
  /// Cross-query batched LLM execution: the service owns a
  /// llm::BatchScheduler, attaches it to the engine, and pure FAO
  /// evaluations (plus agent completions) go through the async
  /// submit -> flush -> resume path. Identical-fingerprint work from any
  /// morsel, query, or session coalesces onto one generation; a flush
  /// pays one simulated round trip for the whole batch. Results, lineage
  /// and usage accounting stay byte-identical to the synchronous path.
  bool enable_llm_batching = true;
  /// Flush a batch as soon as this many unique prompts are pending.
  int llm_batch_size = 8;
  /// ... or at latest this long after its oldest prompt was submitted.
  double llm_flush_deadline_ms = 1.0;
  /// Fixed per-flush transport overhead added to the batch round trip.
  double llm_batch_latency_ms = 0.0;
  /// Time source for reply latency, simulated model round trips, and the
  /// batch flush deadline. Null = wall clock; tests inject a ManualClock
  /// for deterministic timing.
  common::Clock* clock = nullptr;
};

/// Aggregated service counters (cheap to sample at any time).
struct ServiceStats {
  int64_t submitted = 0;   ///< queries admitted into the queue
  int64_t rejected = 0;    ///< queries shed by backpressure
  int64_t completed = 0;   ///< queries that produced an outcome
  int64_t failed = 0;      ///< queries that returned an error status
  int64_t sessions_opened = 0;
  int64_t sessions_active = 0;
  // Load gauges, sampled at stats() time: admitted queries still waiting
  // for a worker, and queries currently executing on one. The network
  // front-end reports both in its stats frame so clients can see server
  // load before being shed.
  int64_t queue_depth = 0;
  int64_t in_flight = 0;
  /// Responses by status-code name ("OK", "Unavailable", ...): one count
  /// per finished query plus one kUnavailable count per shed submission.
  /// Zero-count codes are omitted.
  std::map<std::string, int64_t> responses;
  ResultCacheStats cache;  ///< zeros when the cache is disabled
  llm::BatchStats batching;  ///< zeros when batching is disabled
  // Usage aggregated across every session (the shared meter).
  int64_t llm_calls = 0;
  int64_t llm_tokens = 0;
  double llm_cost_usd = 0.0;

  std::string ToText() const;
};

/// The future half of an async submission.
using OutcomeFuture = std::shared_future<Result<engine::QueryOutcome>>;

/// Per-query extensions for Submit, used by the network front-end
/// (src/net) to attach wire-backed channels and streaming hooks.
struct SubmitOptions {
  /// Scripted replies overriding the session's defaults for this query.
  /// Ignored when `user` is set — an external channel answers its own
  /// questions.
  std::vector<std::string> replies;
  /// External user channel (e.g. net's remote channel relaying ASK
  /// frames to the client). Not owned; must stay valid until the query
  /// completes. Null = a per-query ScriptedUser replaying `replies`.
  llm::UserChannel* user = nullptr;
  /// Streamed partial results: the executor reports node completions and
  /// final-output row chunks through this sink as they happen. Not
  /// owned; must be thread-safe and outlive the query.
  engine::ProgressSink* progress = nullptr;
  /// Rows per streamed chunk (0 = whole table in one chunk).
  size_t stream_chunk_rows = 0;
  /// Invoked on the worker thread right after the outcome is recorded
  /// and *before* the future resolves — the net layer sends its FINAL
  /// frame here so it is ordered after every streamed chunk. Captured
  /// state stays alive until the callback has run.
  std::function<void(const Result<engine::QueryOutcome>&)> on_complete;
};

/// \brief One connected user: scripted reply channel + outcome state.
class Session {
 public:
  Session(SessionId id, std::vector<std::string> default_replies)
      : id_(id), default_replies_(std::move(default_replies)) {}

  SessionId id() const { return id_; }
  /// Replies replayed to interaction questions when a query does not
  /// bring its own script.
  const std::vector<std::string>& default_replies() const {
    return default_replies_;
  }

  /// Outcome of the session's most recently *completed* query.
  std::optional<engine::QueryOutcome> last_outcome() const
      KATHDB_EXCLUDES(mu_);

  int64_t queries_ok() const { return queries_ok_.load(); }
  int64_t queries_failed() const { return queries_failed_.load(); }
  /// Interaction-channel questions answered across all queries
  /// (user-effort accounting, E9).
  int64_t questions_answered() const { return questions_answered_.load(); }

 private:
  friend class QueryService;
  void RecordOutcome(const Result<engine::QueryOutcome>& outcome,
                     size_t questions) KATHDB_EXCLUDES(mu_);

  const SessionId id_;
  const std::vector<std::string> default_replies_;
  mutable common::Mutex mu_;
  std::optional<engine::QueryOutcome> last_ KATHDB_GUARDED_BY(mu_);
  std::atomic<int64_t> queries_ok_{0};
  std::atomic<int64_t> queries_failed_{0};
  std::atomic<int64_t> questions_answered_{0};
};

using SessionPtr = std::shared_ptr<Session>;

/// \brief Concurrent query server over one shared KathDB instance.
class QueryService {
 public:
  /// `db` must outlive the service and have its corpus ingested before
  /// traffic starts. The service attaches its result cache to `db`
  /// (detached again on destruction). At most one QueryService may be
  /// attached to a KathDB at a time; constructing a second one while the
  /// first still serves traffic re-points the engine's cache hook and is
  /// unsupported.
  explicit QueryService(engine::KathDB* db, ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // ---- session lifecycle ----
  SessionId OpenSession(std::vector<std::string> default_replies = {})
      KATHDB_EXCLUDES(sessions_mu_);
  Status CloseSession(SessionId id) KATHDB_EXCLUDES(sessions_mu_);
  Result<SessionPtr> GetSession(SessionId id) const
      KATHDB_EXCLUDES(sessions_mu_);
  size_t num_sessions() const KATHDB_EXCLUDES(sessions_mu_);

  // ---- query execution ----
  /// Asynchronous entry point: enqueues the query and returns a future.
  /// `replies` overrides the session's default scripted answers for this
  /// query only. Fails with kUnavailable when the admission queue is
  /// full (backpressure) and kNotFound for unknown sessions.
  Result<OutcomeFuture> Submit(SessionId id, std::string nl_query,
                               std::vector<std::string> replies = {});

  /// Full-control variant: external user channel, progress sink and
  /// completion callback (see SubmitOptions). Same admission rules.
  Result<OutcomeFuture> Submit(SessionId id, std::string nl_query,
                               SubmitOptions opts);

  /// Convenience: Submit + wait.
  Result<engine::QueryOutcome> Query(SessionId id,
                                     const std::string& nl_query,
                                     std::vector<std::string> replies = {});

  /// Blocks until every admitted query has finished.
  void Drain();

  ServiceStats stats() const;
  ResultCache* cache() { return cache_.get(); }
  /// The service-owned batch scheduler; null when batching is disabled.
  /// Exposed for fault-injection tests and diagnostics.
  llm::BatchScheduler* batcher() { return batcher_.get(); }
  engine::KathDB* db() { return db_; }

 private:
  /// Executor options for one query, honoring the intra-query budget
  /// and the adaptive load rule.
  engine::ExecutorOptions MakeExecOptions() const;

  engine::KathDB* db_;
  ServiceOptions options_;
  std::unique_ptr<ResultCache> cache_;  ///< null when disabled
  /// Cross-query LLM batch scheduler; null when batching is disabled.
  /// Declared before the worker pool and shut down after it: parked
  /// queries must see their batches flushed before the workers join.
  std::unique_ptr<llm::BatchScheduler> batcher_;
  common::ThreadPool pool_;
  /// Shared intra-query pool (DAG nodes + morsels); null when the
  /// configured budget is 1.
  std::unique_ptr<common::ThreadPool> exec_pool_;

  mutable common::Mutex sessions_mu_;
  std::map<SessionId, SessionPtr> sessions_ KATHDB_GUARDED_BY(sessions_mu_);
  SessionId next_session_id_ KATHDB_GUARDED_BY(sessions_mu_) = 1;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> sessions_opened_{0};
  /// Responses by StatusCode: one slot per finished query plus one
  /// kUnavailable slot per shed submission.
  std::array<std::atomic<int64_t>, kNumStatusCodes> responses_{};
};

}  // namespace kathdb::service
