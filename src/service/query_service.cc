#include "service/query_service.h"

#include <cstdio>
#include <utility>

namespace kathdb::service {

std::string ServiceStats::ToText() const {
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "queries: submitted=%lld completed=%lld failed=%lld rejected=%lld "
      "queue=%lld inflight=%lld | sessions: active=%lld opened=%lld | "
      "cache: %s | llm: calls=%lld tokens=%lld cost=$%.4f",
      static_cast<long long>(submitted), static_cast<long long>(completed),
      static_cast<long long>(failed), static_cast<long long>(rejected),
      static_cast<long long>(queue_depth), static_cast<long long>(in_flight),
      static_cast<long long>(sessions_active),
      static_cast<long long>(sessions_opened), cache.ToText().c_str(),
      static_cast<long long>(llm_calls), static_cast<long long>(llm_tokens),
      llm_cost_usd);
  std::string text = buf;
  if (!responses.empty()) {
    text += " | responses:";
    for (const auto& [code, count] : responses) {
      text += " " + code + "=" + std::to_string(count);
    }
  }
  if (batching.submitted > 0) text += " | " + batching.ToText();
  return text;
}

std::optional<engine::QueryOutcome> Session::last_outcome() const {
  common::MutexLock lock(mu_);
  return last_;
}

void Session::RecordOutcome(const Result<engine::QueryOutcome>& outcome,
                            size_t questions) {
  questions_answered_.fetch_add(static_cast<int64_t>(questions));
  if (outcome.ok()) {
    queries_ok_.fetch_add(1);
    common::MutexLock lock(mu_);
    last_ = outcome.value();
  } else {
    queries_failed_.fetch_add(1);
  }
}

QueryService::QueryService(engine::KathDB* db, ServiceOptions options)
    : db_(db),
      options_(options),
      cache_(options.enable_result_cache
                 ? std::make_unique<ResultCache>(options.cache)
                 : nullptr),
      pool_(options.workers, options.max_queue) {
  db_->set_result_cache(cache_.get());
  if (options_.enable_llm_batching) {
    llm::BatchOptions bopts;
    bopts.max_batch_size = static_cast<size_t>(options_.llm_batch_size);
    bopts.flush_deadline_ms = options_.llm_flush_deadline_ms;
    bopts.batch_latency_ms = options_.llm_batch_latency_ms;
    bopts.clock = options_.clock;
    batcher_ = std::make_unique<llm::BatchScheduler>(bopts);
    db_->set_batch_scheduler(batcher_.get());
  }
  if (options_.clock != nullptr) db_->set_clock(options_.clock);
  if (options_.intra_query_parallelism > 1) {
    exec_pool_ =
        std::make_unique<common::ThreadPool>(options_.intra_query_parallelism);
  }
}

QueryService::~QueryService() {
  pool_.Shutdown();  // drains admitted queries, then joins the workers
  if (exec_pool_ != nullptr) exec_pool_->Shutdown();
  // The batcher outlives the worker pools: a parked query must see its
  // batch flushed before its worker can finish. Only after the pools
  // drain is it safe to stop the flusher.
  if (batcher_ != nullptr) batcher_->Shutdown();
  // Detach only if still attached: if a later service already re-pointed
  // the engine's hooks, leave its attachments alone.
  if (db_->batch_scheduler() == batcher_.get() && batcher_ != nullptr) {
    db_->set_batch_scheduler(nullptr);
  }
  if (options_.clock != nullptr && db_->clock() == options_.clock) {
    db_->set_clock(nullptr);
  }
  if (db_->result_cache() == cache_.get()) {
    db_->set_result_cache(nullptr);
  }
}

SessionId QueryService::OpenSession(std::vector<std::string> default_replies) {
  common::MutexLock lock(sessions_mu_);
  SessionId id = next_session_id_++;
  sessions_.emplace(
      id, std::make_shared<Session>(id, std::move(default_replies)));
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Status QueryService::CloseSession(SessionId id) {
  common::MutexLock lock(sessions_mu_);
  // In-flight queries hold their own shared_ptr; erasing here only stops
  // new submissions.
  if (sessions_.erase(id) == 0) {
    return Status::NotFound("no session " + std::to_string(id));
  }
  return Status::OK();
}

Result<SessionPtr> QueryService::GetSession(SessionId id) const {
  common::MutexLock lock(sessions_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session " + std::to_string(id));
  }
  return it->second;
}

size_t QueryService::num_sessions() const {
  common::MutexLock lock(sessions_mu_);
  return sessions_.size();
}

Result<OutcomeFuture> QueryService::Submit(SessionId id, std::string nl_query,
                                           std::vector<std::string> replies) {
  SubmitOptions opts;
  opts.replies = std::move(replies);
  return Submit(id, std::move(nl_query), std::move(opts));
}

Result<OutcomeFuture> QueryService::Submit(SessionId id, std::string nl_query,
                                           SubmitOptions opts) {
  KATHDB_ASSIGN_OR_RETURN(SessionPtr session, GetSession(id));
  if (opts.user == nullptr && opts.replies.empty()) {
    opts.replies = session->default_replies();
  }

  auto promise =
      std::make_shared<std::promise<Result<engine::QueryOutcome>>>();
  OutcomeFuture future = promise->get_future().share();

  // Counted before enqueueing: a worker may finish the task (bumping
  // completed_) before this thread returns, and stats() must never show
  // completed > submitted.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  bool admitted = pool_.TrySubmit([this, session,
                                   nl_query = std::move(nl_query),
                                   opts = std::move(opts), promise] {
    // Without an external channel, each query gets a private channel
    // replaying the session's script, so concurrent queries of one
    // session never race on replies.
    llm::ScriptedUser scripted(opts.replies);
    llm::UserChannel* user = opts.user;
    if (user == nullptr) {
      scripted.set_reply_latency_ms(options_.reply_latency_ms);
      scripted.set_clock(options_.clock);
      user = &scripted;
    }
    engine::ExecutorOptions exec_opts = MakeExecOptions();
    exec_opts.progress = opts.progress;
    exec_opts.stream_chunk_rows = opts.stream_chunk_rows;
    Result<engine::QueryOutcome> outcome = db_->QueryDetached(
        nl_query, user, exec_opts,
        exec_opts.max_parallel_nodes > 1 ? exec_pool_.get() : nullptr);
    session->RecordOutcome(outcome, user->questions_asked());
    responses_[static_cast<int>(outcome.status().code())].fetch_add(
        1, std::memory_order_relaxed);
    if (outcome.ok()) {
      completed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (opts.on_complete) opts.on_complete(outcome);
    promise->set_value(std::move(outcome));
  });
  if (!admitted) {
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    responses_[static_cast<int>(StatusCode::kUnavailable)].fetch_add(
        1, std::memory_order_relaxed);
    return Status::Unavailable(
        "admission queue full (" + std::to_string(options_.max_queue) +
        " pending); retry later");
  }
  return future;
}

Result<engine::QueryOutcome> QueryService::Query(
    SessionId id, const std::string& nl_query,
    std::vector<std::string> replies) {
  KATHDB_ASSIGN_OR_RETURN(OutcomeFuture future,
                          Submit(id, nl_query, std::move(replies)));
  return future.get();
}

engine::ExecutorOptions QueryService::MakeExecOptions() const {
  engine::ExecutorOptions opts =
      static_cast<const engine::KathDB*>(db_)->options().executor;
  opts.max_parallel_nodes = options_.intra_query_parallelism;
  opts.morsel_size = options_.intra_query_morsel_size;
  opts.enable_llm_batching = batcher_ != nullptr;
  // Trade intra-query speedup for multi-session throughput: with queries
  // already waiting for a worker, an idle-core budget does not exist.
  if (options_.adaptive_intra_query && pool_.queue_depth() > 0) {
    opts.max_parallel_nodes = 1;
  }
  return opts;
}

void QueryService::Drain() { pool_.Wait(); }

ServiceStats QueryService::stats() const {
  ServiceStats st;
  st.submitted = submitted_.load(std::memory_order_relaxed);
  st.rejected = rejected_.load(std::memory_order_relaxed);
  st.completed = completed_.load(std::memory_order_relaxed);
  st.failed = failed_.load(std::memory_order_relaxed);
  st.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  st.sessions_active = static_cast<int64_t>(num_sessions());
  st.queue_depth = static_cast<int64_t>(pool_.queue_depth());
  st.in_flight = static_cast<int64_t>(pool_.active());
  for (int c = 0; c < kNumStatusCodes; ++c) {
    int64_t count = responses_[c].load(std::memory_order_relaxed);
    if (count > 0) st.responses[StatusCodeName(static_cast<StatusCode>(c))] = count;
  }
  if (cache_ != nullptr) st.cache = cache_->stats();
  if (batcher_ != nullptr) st.batching = batcher_->stats();
  const llm::UsageMeter* meter = static_cast<const engine::KathDB*>(db_)->meter();
  st.llm_calls = meter->total_calls();
  st.llm_tokens = meter->total_tokens();
  st.llm_cost_usd = meter->total_cost_usd();
  return st;
}

}  // namespace kathdb::service
