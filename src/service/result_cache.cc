#include "service/result_cache.h"

#include <cstdio>

#include "common/hash.h"

namespace kathdb::service {

std::string ResultCacheStats::ToText() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "hits=%lld misses=%lld hit_rate=%.2f entries=%zu "
                "evictions=%lld",
                static_cast<long long>(hits), static_cast<long long>(misses),
                hit_rate(), entries, static_cast<long long>(evictions));
  return buf;
}

ResultCache::ResultCache(ResultCacheOptions options)
    : shard_count_(common::CeilPow2(options.shards == 0 ? 1 : options.shards)) {
  size_t cap = options.capacity == 0 ? 1 : options.capacity;
  per_shard_capacity_ = (cap + shard_count_ - 1) / shard_count_;
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  shards_ = std::make_unique<Shard[]>(shard_count_);
}

ResultCache::Shard& ResultCache::shard_for(uint64_t key) {
  return shards_[common::ShardOf(key, shard_count_)];
}

const ResultCache::Shard& ResultCache::shard_for(uint64_t key) const {
  return shards_[common::ShardOf(key, shard_count_)];
}

std::optional<CacheEntry> ResultCache::Get(uint64_t key) {
  Shard& s = shard_for(key);
  common::MutexLock lock(s.mu);
  auto it = s.map.find(key);
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void ResultCache::Put(uint64_t key, CacheEntry entry) {
  Shard& s = shard_for(key);
  common::MutexLock lock(s.mu);
  auto it = s.map.find(key);
  if (it != s.map.end()) {
    it->second = std::move(entry);  // refresh in place, FIFO slot kept
    return;
  }
  while (s.map.size() >= per_shard_capacity_ && !s.fifo.empty()) {
    s.map.erase(s.fifo.front());
    s.fifo.pop_front();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  s.map.emplace(key, std::move(entry));
  s.fifo.push_back(key);
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

bool ResultCache::Contains(uint64_t key) const {
  const Shard& s = shard_for(key);
  common::MutexLock lock(s.mu);
  return s.map.count(key) > 0;
}

void ResultCache::Clear() {
  for (size_t i = 0; i < shard_count_; ++i) {
    common::MutexLock lock(shards_[i].mu);
    shards_[i].map.clear();
    shards_[i].fifo.clear();
  }
}

size_t ResultCache::size() const {
  size_t n = 0;
  for (size_t i = 0; i < shard_count_; ++i) {
    common::MutexLock lock(shards_[i].mu);
    n += shards_[i].map.size();
  }
  return n;
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.insertions = insertions_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.entries = size();
  return st;
}

uint64_t FingerprintTable(const rel::Table& table) {
  // Column-wise over the typed buffers: no Value (and no string render)
  // materialized per cell. Encoding-independent, so a table and any view
  // or re-encoded copy with the same logical contents key identically.
  return table.Fingerprint();
}

uint64_t FingerprintTables(const std::vector<rel::TablePtr>& tables) {
  uint64_t h = common::Fnv1a64("inputs");
  for (const auto& t : tables) {
    h = common::HashCombine(h, t == nullptr ? 0 : FingerprintTable(*t));
  }
  return h;
}

}  // namespace kathdb::service
