#include "multimodal/text_graph.h"

#include <cctype>
#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "vector/embedding.h"

namespace kathdb::mm {

using rel::DataType;
using rel::Schema;
using rel::Table;
using rel::TablePtr;
using rel::Value;

Status EnsureTextGraphViews(rel::Catalog* catalog,
                            const TextGraphViews& views) {
  if (!catalog->Has(views.entities)) {
    auto t = std::make_shared<Table>(
        views.entities, Schema({{"did", DataType::kInt},
                                {"eid", DataType::kInt},
                                {"lid", DataType::kInt},
                                {"cid", DataType::kString}}));
    KATHDB_RETURN_IF_ERROR(catalog->Register(t, rel::RelationKind::kView));
  }
  if (!catalog->Has(views.mentions)) {
    auto t = std::make_shared<Table>(
        views.mentions, Schema({{"did", DataType::kInt},
                                {"sid", DataType::kInt},
                                {"mid", DataType::kInt},
                                {"lid", DataType::kInt},
                                {"eid", DataType::kInt},
                                {"span1", DataType::kInt},
                                {"span2", DataType::kInt}}));
    KATHDB_RETURN_IF_ERROR(catalog->Register(t, rel::RelationKind::kView));
  }
  if (!catalog->Has(views.relationships)) {
    auto t = std::make_shared<Table>(
        views.relationships, Schema({{"did", DataType::kInt},
                                     {"sid", DataType::kInt},
                                     {"rid", DataType::kInt},
                                     {"lid", DataType::kInt},
                                     {"eid_i", DataType::kInt},
                                     {"pid", DataType::kString},
                                     {"eid_j", DataType::kInt}}));
    KATHDB_RETURN_IF_ERROR(catalog->Register(t, rel::RelationKind::kView));
  }
  if (!catalog->Has(views.attributes)) {
    auto t = std::make_shared<Table>(
        views.attributes, Schema({{"did", DataType::kInt},
                                  {"sid", DataType::kInt},
                                  {"eid", DataType::kInt},
                                  {"lid", DataType::kInt},
                                  {"k", DataType::kString},
                                  {"v", DataType::kString}}));
    KATHDB_RETURN_IF_ERROR(catalog->Register(t, rel::RelationKind::kView));
  }
  if (!catalog->Has(views.texts)) {
    auto t = std::make_shared<Table>(
        views.texts, Schema({{"did", DataType::kInt},
                             {"lid", DataType::kInt},
                             {"chars", DataType::kString}}));
    KATHDB_RETURN_IF_ERROR(catalog->Register(t, rel::RelationKind::kView));
  }
  return Status::OK();
}

namespace {

struct WordSpan {
  std::string word;  // original case
  size_t begin = 0;
  size_t end = 0;  // exclusive
  int sid = 0;
};

const std::set<std::string>& Abbreviations() {
  static const std::set<std::string> kAbbrev = {"mr", "mrs", "ms", "dr",
                                                "st", "jr",  "sr"};
  return kAbbrev;
}

/// Words with char spans and sentence ids. Sentences end at . ! ? except
/// after abbreviations ("Mrs." does not end a sentence).
std::vector<WordSpan> ScanWords(const std::string& text) {
  std::vector<WordSpan> out;
  size_t i = 0;
  int sid = 0;
  std::string last_word;
  while (i < text.size()) {
    char c = text[i];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '\'') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '\'')) {
        ++i;
      }
      last_word = ToLower(text.substr(start, i - start));
      out.push_back({text.substr(start, i - start), start, i, sid});
    } else {
      if (c == '!' || c == '?' ||
          (c == '.' && Abbreviations().count(last_word) == 0)) {
        ++sid;
      }
      ++i;
    }
  }
  return out;
}

bool IsCapitalized(const std::string& w) {
  return !w.empty() && std::isupper(static_cast<unsigned char>(w[0]));
}

const std::set<std::string>& Stopwords() {
  static const std::set<std::string> kStop = {
      "the", "a",  "an",  "in", "on", "at",  "of", "and", "but", "after",
      "when", "his", "her", "its", "it", "as", "by", "with", "from", "to"};
  return kStop;
}

const std::set<std::string>& Pronouns() {
  static const std::set<std::string> kPron = {"he",  "she", "they", "him",
                                              "her", "them"};
  return kPron;
}

const std::set<std::string>& Honorifics() {
  static const std::set<std::string> kHon = {"mr", "mrs", "ms", "dr",
                                             "detective", "agent", "officer"};
  return kHon;
}

}  // namespace

Status SimulatedNer::PopulateFromDocument(const Document& doc,
                                          rel::Catalog* catalog,
                                          lineage::LineageStore* lineage,
                                          const TextGraphViews& views) {
  if (!seeded_) {
    noise_state_ = SplitMix64(config_.seed);
    seeded_ = true;
  }
  KATHDB_RETURN_IF_ERROR(EnsureTextGraphViews(catalog, views));
  tokens_used_ += config_.tokens_per_doc;

  KATHDB_ASSIGN_OR_RETURN(TablePtr entities, catalog->Get(views.entities));
  KATHDB_ASSIGN_OR_RETURN(TablePtr mentions, catalog->Get(views.mentions));
  KATHDB_ASSIGN_OR_RETURN(TablePtr rels, catalog->Get(views.relationships));
  KATHDB_ASSIGN_OR_RETURN(TablePtr attrs, catalog->Get(views.attributes));
  KATHDB_ASSIGN_OR_RETURN(TablePtr texts, catalog->Get(views.texts));

  int64_t doc_src_lid = lineage->RecordIngest(
      doc.uri.empty() ? ("doc://" + std::to_string(doc.did)) : doc.uri,
      "populate_text_graph", 1, lineage::LineageDataType::kTable);

  int64_t text_lid =
      lineage->RecordRowDerivation(doc_src_lid, "populate_text_graph", 1);
  texts->AppendRow(
      {Value::Int(doc.did), Value::Int(text_lid), Value::Str(doc.text)},
      text_lid);

  static const vec::ConceptLexicon lexicon = vec::ConceptLexicon::BuiltIn();
  std::vector<WordSpan> words = ScanWords(doc.text);

  // canonical lower-cased name -> eid; also reverse info for relationships.
  std::map<std::string, int64_t> eid_of;
  std::map<int64_t, std::string> cid_of;
  // (sid -> eids mentioned in that sentence, in order)
  std::map<int, std::vector<int64_t>> sentence_entities;
  int64_t last_person_eid = 0;

  auto intern_entity = [&](const std::string& canonical,
                           const std::string& cid) -> int64_t {
    auto it = eid_of.find(canonical);
    if (it != eid_of.end()) return it->second;
    int64_t eid = next_eid_++;
    eid_of[canonical] = eid;
    cid_of[eid] = cid;
    int64_t lid =
        lineage->RecordRowDerivation(doc_src_lid, "populate_text_graph", 1);
    entities->AppendRow({Value::Int(doc.did), Value::Int(eid),
                         Value::Int(lid), Value::Str(cid)},
                        lid);
    return eid;
  };

  auto record_mention = [&](int sid, int64_t eid, size_t span1,
                            size_t span2) {
    int64_t mid = next_mid_++;
    int64_t lid =
        lineage->RecordRowDerivation(doc_src_lid, "populate_text_graph", 1);
    mentions->AppendRow({Value::Int(doc.did), Value::Int(sid),
                         Value::Int(mid), Value::Int(lid), Value::Int(eid),
                         Value::Int(static_cast<int64_t>(span1)),
                         Value::Int(static_cast<int64_t>(span2))},
                        lid);
    sentence_entities[sid].push_back(eid);
  };

  auto drop = [&]() {
    noise_state_ = SplitMix64(noise_state_ + 0x5);
    double d = static_cast<double>(noise_state_ >> 11) / 9007199254740992.0;
    return d < config_.mention_drop_prob;
  };

  size_t i = 0;
  while (i < words.size()) {
    const WordSpan& w = words[i];
    std::string lower = ToLower(w.word);

    // ---- named-entity mention: maximal capitalized run --------------
    bool sentence_start = (i == 0 || words[i - 1].sid != w.sid);
    if (IsCapitalized(w.word) &&
        !(sentence_start && Stopwords().count(lower) > 0) &&
        Pronouns().count(lower) == 0 && lexicon.ConceptOf(lower).empty()) {
      size_t j = i;
      while (j + 1 < words.size() && words[j + 1].sid == w.sid &&
             IsCapitalized(words[j + 1].word)) {
        ++j;
      }
      // Skip runs that are only stopwords ("The End").
      bool has_content = false;
      std::vector<std::string> parts;
      for (size_t k = i; k <= j; ++k) {
        std::string lk = ToLower(words[k].word);
        parts.push_back(lk);
        if (Stopwords().count(lk) == 0) has_content = true;
      }
      if (has_content) {
        std::string canonical = Join(parts, " ");
        // Honorific-led aliases normalize via the alias map or by
        // dropping the honorific ("mrs. swift" -> "swift" suffix match).
        auto alias = config_.aliases.find(canonical);
        if (alias != config_.aliases.end()) canonical = alias->second;
        if (parts.size() >= 2 && Honorifics().count(parts[0]) > 0) {
          std::string stripped =
              Join({parts.begin() + 1, parts.end()}, " ");
          // If some known entity ends with the stripped form, merge.
          for (const auto& [name, eid] : eid_of) {
            if (name.size() >= stripped.size() &&
                name.compare(name.size() - stripped.size(), stripped.size(),
                             stripped) == 0) {
              canonical = name;
              break;
            }
          }
        } else if (parts.size() == 1) {
          // Single surname mention of a known multi-part entity.
          for (const auto& [name, eid] : eid_of) {
            if (name != canonical &&
                name.size() > canonical.size() &&
                name.compare(name.size() - canonical.size(),
                             canonical.size(), canonical) == 0 &&
                name[name.size() - canonical.size() - 1] == ' ') {
              canonical = name;
              break;
            }
          }
        }
        if (!drop()) {
          int64_t eid = intern_entity(canonical, "named_entity");
          last_person_eid = eid;
          record_mention(w.sid, eid, words[i].begin, words[j].end);
        }
        i = j + 1;
        continue;
      }
    }

    // ---- pronoun coreference ----------------------------------------
    if (Pronouns().count(lower) > 0 && last_person_eid != 0 && !drop()) {
      record_mention(w.sid, last_person_eid, w.begin, w.end);
      ++i;
      continue;
    }

    // ---- concept_name entity (lexicon noun: gun, chase, meadow, ...) -----
    std::string concept_name = lexicon.ConceptOf(lower);
    if (!concept_name.empty() && !drop()) {
      int64_t eid = intern_entity(lower, concept_name);
      record_mention(w.sid, eid, w.begin, w.end);
    }

    // ---- numeric attribute pattern: "budget ... <number>" -----------
    if (lower == "budget" && i + 1 < words.size()) {
      for (size_t k = i + 1; k < std::min(words.size(), i + 4); ++k) {
        if (std::isdigit(static_cast<unsigned char>(words[k].word[0]))) {
          if (!sentence_entities[w.sid].empty()) {
            int64_t eid = sentence_entities[w.sid].front();
            int64_t lid = lineage->RecordRowDerivation(
                doc_src_lid, "populate_text_graph", 1);
            attrs->AppendRow({Value::Int(doc.did), Value::Int(w.sid),
                              Value::Int(eid), Value::Int(lid),
                              Value::Str("budget"),
                              Value::Str(words[k].word)},
                             lid);
          }
          break;
        }
      }
    }
    ++i;
  }

  // ---- relationships: co-occurrence of named entities per sentence ----
  for (const auto& [sid, eids] : sentence_entities) {
    std::vector<int64_t> named;
    std::set<int64_t> seen;
    for (int64_t e : eids) {
      if (cid_of[e] == "named_entity" && seen.insert(e).second) {
        named.push_back(e);
      }
    }
    for (size_t a = 0; a + 1 < named.size(); ++a) {
      int64_t rid = next_rid_++;
      int64_t lid =
          lineage->RecordRowDerivation(doc_src_lid, "populate_text_graph", 1);
      rels->AppendRow({Value::Int(doc.did), Value::Int(sid), Value::Int(rid),
                       Value::Int(lid), Value::Int(named[a]),
                       Value::Str("co_occurs_with"), Value::Int(named[a + 1])},
                      lid);
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> EntityTokensOf(int64_t did,
                                                const rel::Catalog& catalog,
                                                const TextGraphViews& views) {
  KATHDB_ASSIGN_OR_RETURN(TablePtr mentions, catalog.Get(views.mentions));
  KATHDB_ASSIGN_OR_RETURN(TablePtr texts, catalog.Get(views.texts));
  std::string chars;
  for (size_t r = 0; r < texts->num_rows(); ++r) {
    if (texts->at(r, 0).AsInt() == did) {
      chars = texts->at(r, 2).AsString();
      break;
    }
  }
  if (chars.empty()) {
    return Status::NotFound("no text for did " + std::to_string(did));
  }
  // First mention surface form per eid (spans slice the Texts view).
  std::set<int64_t> seen;
  std::vector<std::string> out;
  for (size_t r = 0; r < mentions->num_rows(); ++r) {
    if (mentions->at(r, 0).AsInt() != did) continue;
    int64_t eid = mentions->at(r, 4).AsInt();
    if (!seen.insert(eid).second) continue;
    size_t s1 = static_cast<size_t>(mentions->at(r, 5).AsInt());
    size_t s2 = static_cast<size_t>(mentions->at(r, 6).AsInt());
    if (s1 < s2 && s2 <= chars.size()) {
      for (auto& tok : Tokenize(chars.substr(s1, s2 - s1))) {
        out.push_back(std::move(tok));
      }
    }
  }
  return out;
}

}  // namespace kathdb::mm
