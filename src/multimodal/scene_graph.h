/// \file scene_graph.h
/// \brief Scene-graph relational views over visual content (Table 1).
///
/// Images are treated as single-frame videos. The SimulatedVlm populates
/// the four relations below from each image's latent annotations, with
/// configurable detection noise so benches can sweep accuracy/cost:
///   Objects(vid, fid, oid, lid, cid, x_1, y_1, x_2, y_2)
///   Relationships(vid, fid, rid, lid, oid_i, pid, oid_j)
///   Attributes(vid, fid, oid, lid, k, v)
///   Frames(vid, fid, lid, pixels)
///
/// \ingroup kathdb_multimodal

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "lineage/lineage.h"
#include "multimodal/media.h"
#include "relational/catalog.h"

namespace kathdb::mm {

/// Noise / cost model for the simulated vision-language model.
struct VlmConfig {
  std::string model_name = "kath-vision";
  /// Probability of missing a latent object entirely.
  double detection_drop_prob = 0.0;
  /// Probability of mislabeling a detected object's class.
  double class_confusion_prob = 0.0;
  /// Probability of dropping an attribute of a detected object.
  double attr_drop_prob = 0.0;
  /// Relative noise on the reported pixel statistics (color variance):
  /// the perceived variance is var * max(0, 1 + N(0, variance_noise)).
  /// Models a weaker vision model mis-judging how "plain" a poster is.
  double variance_noise = 0.0;
  /// Simulated prompt+completion tokens charged per analyzed frame.
  int tokens_per_frame = 350;
  uint64_t seed = 7;
};

/// Names of the scene-graph view relations in the catalog.
struct SceneGraphViews {
  std::string objects = "scene_objects";
  std::string relationships = "scene_relationships";
  std::string attributes = "scene_attributes";
  std::string frames = "scene_frames";
};

/// \brief Populates the Table-1 views from images/videos.
class SimulatedVlm {
 public:
  explicit SimulatedVlm(VlmConfig config = {}) : config_(config) {}

  const VlmConfig& config() const { return config_; }

  /// Total simulated tokens spent so far.
  int64_t tokens_used() const { return tokens_used_; }

  /// Analyzes `frame` (already decoded) as (vid, fid) and appends rows to
  /// the four views (created in `catalog` on first use). Records lineage:
  /// the frame is ingested (src_uri = image uri), each derived row is a
  /// one_to_many child of the frame's lid.
  Status PopulateFromFrame(int64_t vid, int64_t fid,
                           const SyntheticImage& frame,
                           rel::Catalog* catalog,
                           lineage::LineageStore* lineage,
                           const SceneGraphViews& views = {});

  /// Convenience: an image is a single-frame video.
  Status PopulateFromImage(int64_t vid, const SyntheticImage& image,
                           rel::Catalog* catalog,
                           lineage::LineageStore* lineage,
                           const SceneGraphViews& views = {}) {
    return PopulateFromFrame(vid, 0, image, catalog, lineage, views);
  }

  Status PopulateFromVideo(int64_t vid, const SyntheticVideo& video,
                           rel::Catalog* catalog,
                           lineage::LineageStore* lineage,
                           const SceneGraphViews& views = {});

 private:
  VlmConfig config_;
  uint64_t noise_state_ = 0;
  int64_t tokens_used_ = 0;
  int64_t next_oid_ = 1;
  int64_t next_rid_ = 1;
  bool seeded_ = false;
};

/// Ensures the four scene-graph view tables exist in `catalog`.
Status EnsureSceneGraphViews(rel::Catalog* catalog,
                             const SceneGraphViews& views = {});

/// Summary statistics of one frame's scene graph, consumed by the
/// classify_boring FAO implementations.
struct FrameSceneStats {
  int num_objects = 0;
  int num_relationships = 0;
  int num_action_objects = 0;  // objects whose class maps to action/violence
  double color_variance = 0.0;
};

/// Computes stats for (vid, fid) from the populated views + Frames pixels.
Result<FrameSceneStats> ComputeFrameStats(int64_t vid, int64_t fid,
                                          const rel::Catalog& catalog,
                                          const SceneGraphViews& views = {});

}  // namespace kathdb::mm
