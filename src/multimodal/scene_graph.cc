#include "multimodal/scene_graph.h"

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"
#include "vector/embedding.h"

namespace kathdb::mm {

using rel::DataType;
using rel::Schema;
using rel::Table;
using rel::TablePtr;
using rel::Value;

Status EnsureSceneGraphViews(rel::Catalog* catalog,
                             const SceneGraphViews& views) {
  if (!catalog->Has(views.objects)) {
    auto t = std::make_shared<Table>(
        views.objects, Schema({{"vid", DataType::kInt},
                               {"fid", DataType::kInt},
                               {"oid", DataType::kInt},
                               {"lid", DataType::kInt},
                               {"cid", DataType::kString},
                               {"x_1", DataType::kDouble},
                               {"y_1", DataType::kDouble},
                               {"x_2", DataType::kDouble},
                               {"y_2", DataType::kDouble}}));
    KATHDB_RETURN_IF_ERROR(catalog->Register(t, rel::RelationKind::kView));
  }
  if (!catalog->Has(views.relationships)) {
    auto t = std::make_shared<Table>(
        views.relationships, Schema({{"vid", DataType::kInt},
                                     {"fid", DataType::kInt},
                                     {"rid", DataType::kInt},
                                     {"lid", DataType::kInt},
                                     {"oid_i", DataType::kInt},
                                     {"pid", DataType::kString},
                                     {"oid_j", DataType::kInt}}));
    KATHDB_RETURN_IF_ERROR(catalog->Register(t, rel::RelationKind::kView));
  }
  if (!catalog->Has(views.attributes)) {
    auto t = std::make_shared<Table>(
        views.attributes, Schema({{"vid", DataType::kInt},
                                  {"fid", DataType::kInt},
                                  {"oid", DataType::kInt},
                                  {"lid", DataType::kInt},
                                  {"k", DataType::kString},
                                  {"v", DataType::kString}}));
    KATHDB_RETURN_IF_ERROR(catalog->Register(t, rel::RelationKind::kView));
  }
  if (!catalog->Has(views.frames)) {
    auto t = std::make_shared<Table>(
        views.frames, Schema({{"vid", DataType::kInt},
                              {"fid", DataType::kInt},
                              {"lid", DataType::kInt},
                              {"pixels", DataType::kString}}));
    KATHDB_RETURN_IF_ERROR(catalog->Register(t, rel::RelationKind::kView));
  }
  return Status::OK();
}

namespace {

/// Deterministic per-call pseudo-random stream for detector noise.
class NoiseStream {
 public:
  explicit NoiseStream(uint64_t* state) : state_(state) {}
  bool Draw(double p) {
    *state_ = SplitMix64(*state_ + 0x1234);
    double d = static_cast<double>(*state_ >> 11) / 9007199254740992.0;
    return d < p;
  }
  uint64_t Next() {
    *state_ = SplitMix64(*state_ + 0x77);
    return *state_;
  }

  /// Approximate N(0,1) via Irwin–Hall (12 uniform draws).
  double Gaussian() {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) {
      *state_ = SplitMix64(*state_ + 0x9);
      sum += static_cast<double>(*state_ >> 11) / 9007199254740992.0;
    }
    return sum - 6.0;
  }

 private:
  uint64_t* state_;
};

const char* kConfusableClasses[] = {"person", "car", "dog", "tree",
                                    "chair", "lamp", "bag"};

std::string PixelSummary(const SyntheticImage& img) {
  std::string s = "hist[";
  for (size_t i = 0; i < img.color_hist.size(); ++i) {
    if (i > 0) s += ",";
    s += FormatDouble(img.color_hist[i], 3);
  }
  s += "] var=" + FormatDouble(img.color_variance, 4);
  s += " " + std::to_string(img.width) + "x" + std::to_string(img.height);
  return s;
}

}  // namespace

Status SimulatedVlm::PopulateFromFrame(int64_t vid, int64_t fid,
                                       const SyntheticImage& frame,
                                       rel::Catalog* catalog,
                                       lineage::LineageStore* lineage,
                                       const SceneGraphViews& views) {
  if (!seeded_) {
    noise_state_ = SplitMix64(config_.seed);
    seeded_ = true;
  }
  KATHDB_RETURN_IF_ERROR(EnsureSceneGraphViews(catalog, views));
  NoiseStream noise(&noise_state_);
  tokens_used_ += config_.tokens_per_frame;

  // Provenance: the raw frame is external input; derived rows are its
  // one_to_many children produced by the view-population function.
  int64_t frame_src_lid =
      lineage->RecordIngest(frame.uri.empty() ? "mem://frame" : frame.uri,
                            "populate_scene_graph", 1,
                            lineage::LineageDataType::kTable);

  KATHDB_ASSIGN_OR_RETURN(TablePtr objects, catalog->Get(views.objects));
  KATHDB_ASSIGN_OR_RETURN(TablePtr rels, catalog->Get(views.relationships));
  KATHDB_ASSIGN_OR_RETURN(TablePtr attrs, catalog->Get(views.attributes));
  KATHDB_ASSIGN_OR_RETURN(TablePtr frames, catalog->Get(views.frames));

  // Frames row (pixel access view). A weak vision model may mis-report
  // the pixel statistics; the scene-graph-based classifier then inherits
  // that error while the ground-truth pixel path does not (E8).
  SyntheticImage perceived = frame;
  if (config_.variance_noise > 0.0) {
    double factor = 1.0 + config_.variance_noise * noise.Gaussian();
    perceived.color_variance = std::max(0.0,
                                        perceived.color_variance * factor);
  }
  int64_t frame_lid = lineage->RecordRowDerivation(
      frame_src_lid, "populate_scene_graph", 1);
  frames->AppendRow({Value::Int(vid), Value::Int(fid), Value::Int(frame_lid),
                     Value::Str(PixelSummary(perceived))},
                    frame_lid);

  // Detected objects: latent objects filtered/perturbed by noise.
  std::vector<int64_t> detected_oids(frame.objects.size(), -1);
  for (size_t i = 0; i < frame.objects.size(); ++i) {
    const LatentObject& o = frame.objects[i];
    if (noise.Draw(config_.detection_drop_prob)) continue;  // missed
    std::string cls = o.cls;
    if (noise.Draw(config_.class_confusion_prob)) {
      cls = kConfusableClasses[noise.Next() % 7];
    }
    int64_t oid = next_oid_++;
    detected_oids[i] = oid;
    int64_t lid = lineage->RecordRowDerivation(frame_src_lid,
                                               "populate_scene_graph", 1);
    objects->AppendRow({Value::Int(vid), Value::Int(fid), Value::Int(oid),
                        Value::Int(lid), Value::Str(cls), Value::Double(o.x1),
                        Value::Double(o.y1), Value::Double(o.x2),
                        Value::Double(o.y2)},
                       lid);
    for (const auto& [k, v] : o.attrs) {
      if (noise.Draw(config_.attr_drop_prob)) continue;
      int64_t alid = lineage->RecordRowDerivation(frame_src_lid,
                                                  "populate_scene_graph", 1);
      attrs->AppendRow({Value::Int(vid), Value::Int(fid), Value::Int(oid),
                        Value::Int(alid), Value::Str(k), Value::Str(v)},
                       alid);
    }
  }

  // Relationships survive only if both endpoints were detected.
  for (const auto& r : frame.relationships) {
    if (r.subject < 0 || r.object < 0 ||
        static_cast<size_t>(r.subject) >= detected_oids.size() ||
        static_cast<size_t>(r.object) >= detected_oids.size()) {
      continue;
    }
    if (detected_oids[r.subject] < 0 || detected_oids[r.object] < 0) continue;
    int64_t rid = next_rid_++;
    int64_t lid = lineage->RecordRowDerivation(frame_src_lid,
                                               "populate_scene_graph", 1);
    rels->AppendRow({Value::Int(vid), Value::Int(fid), Value::Int(rid),
                     Value::Int(lid), Value::Int(detected_oids[r.subject]),
                     Value::Str(r.predicate),
                     Value::Int(detected_oids[r.object])},
                    lid);
  }
  return Status::OK();
}

Status SimulatedVlm::PopulateFromVideo(int64_t vid,
                                       const SyntheticVideo& video,
                                       rel::Catalog* catalog,
                                       lineage::LineageStore* lineage,
                                       const SceneGraphViews& views) {
  for (size_t f = 0; f < video.frames.size(); ++f) {
    KATHDB_RETURN_IF_ERROR(PopulateFromFrame(
        vid, static_cast<int64_t>(f), video.frames[f], catalog, lineage,
        views));
  }
  return Status::OK();
}

Result<FrameSceneStats> ComputeFrameStats(int64_t vid, int64_t fid,
                                          const rel::Catalog& catalog,
                                          const SceneGraphViews& views) {
  FrameSceneStats stats;
  static const vec::ConceptLexicon lexicon = vec::ConceptLexicon::BuiltIn();
  KATHDB_ASSIGN_OR_RETURN(TablePtr objects, catalog.Get(views.objects));
  for (size_t r = 0; r < objects->num_rows(); ++r) {
    if (objects->at(r, 0).AsInt() != vid || objects->at(r, 1).AsInt() != fid) {
      continue;
    }
    ++stats.num_objects;
    std::string concept_name = lexicon.ConceptOf(objects->at(r, 4).AsString());
    if (concept_name == "action" || concept_name == "violence") {
      ++stats.num_action_objects;
    }
  }
  KATHDB_ASSIGN_OR_RETURN(TablePtr rels, catalog.Get(views.relationships));
  for (size_t r = 0; r < rels->num_rows(); ++r) {
    if (rels->at(r, 0).AsInt() == vid && rels->at(r, 1).AsInt() == fid) {
      ++stats.num_relationships;
    }
  }
  KATHDB_ASSIGN_OR_RETURN(TablePtr frames, catalog.Get(views.frames));
  for (size_t r = 0; r < frames->num_rows(); ++r) {
    if (frames->at(r, 0).AsInt() == vid && frames->at(r, 1).AsInt() == fid) {
      // Parse " var=<x> " back out of the pixel summary. at() returns the
      // cell by value, so AsString()'s reference points into a temporary —
      // copy it out before the full-expression ends.
      const std::string pix = frames->at(r, 3).AsString();
      auto pos = pix.find("var=");
      if (pos != std::string::npos) {
        stats.color_variance = std::strtod(pix.c_str() + pos + 4, nullptr);
      }
      break;
    }
  }
  return stats;
}

}  // namespace kathdb::mm
