/// \file media.h
/// \brief Synthetic multimodal media: images, videos and documents.
///
/// The paper evaluates on MMQA (Wikipedia tables + text + images). Offline,
/// we substitute a synthetic media model: a SyntheticImage carries *latent*
/// scene annotations (objects, relationships, attributes) plus pixel-level
/// statistics (color histogram / variance). The simulated VLM "perceives"
/// the latent annotations with configurable noise, so the view-population
/// code path is identical to running a real detector. Images serialize to
/// `.simg` JSON files on disk so ingestion has real I/O and src_uri
/// provenance; a `heic` format gate reproduces the paper's cv2/HEIC
/// self-repair scenario.
///
/// \ingroup kathdb_multimodal

#pragma once

#include <array>
#include <atomic>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace kathdb::mm {

/// A ground-truth object annotation inside an image.
struct LatentObject {
  std::string cls;  // e.g. "person", "gun", "motorcycle"
  double x1 = 0.0, y1 = 0.0, x2 = 0.0, y2 = 0.0;
  /// key/value attributes, e.g. {"color","black"}.
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// A ground-truth relationship between two objects (by index).
struct LatentRelationship {
  int subject = 0;
  std::string predicate;  // e.g. "holding", "riding"
  int object = 0;
};

/// \brief A synthetic image: pixels are summarized by color statistics,
/// content by latent annotations.
struct SyntheticImage {
  std::string uri;          // file path or logical uri
  std::string format = "simg";  // "simg" or "heic" (gate for self-repair)
  int width = 512;
  int height = 768;
  /// 8-bin hue histogram, sums to ~1.
  std::array<double, 8> color_hist{};
  /// Pixel variance proxy; low variance reads as a "plain" poster.
  double color_variance = 0.0;
  std::vector<LatentObject> objects;
  std::vector<LatentRelationship> relationships;

  Json ToJson() const;
  static Result<SyntheticImage> FromJson(const Json& j);
};

/// A video is an ordered list of frames, each a SyntheticImage payload.
struct SyntheticVideo {
  std::string uri;
  std::vector<SyntheticImage> frames;
};

/// A text document (movie plot, article, ...).
struct Document {
  int64_t did = 0;
  std::string uri;
  std::string text;
};

/// Writes `img` to `path` as `.simg` JSON.
Status SaveImage(const SyntheticImage& img, const std::string& path);

/// \brief Loads `.simg` files; refuses `heic` unless conversion is enabled.
///
/// The refusal is the syntactic fault the execution monitor repairs in
/// Section 5: the rewriter's patch is `EnableHeicConversion()`.
class ImageLoader {
 public:
  Result<SyntheticImage> Load(const std::string& path) const;

  /// Decodes an in-memory image, applying the same format gate.
  Result<SyntheticImage> Decode(const SyntheticImage& raw) const;

  /// Atomic: the agentic monitor flips this mid-query while other
  /// sessions' decodes read it concurrently.
  void EnableHeicConversion() {
    heic_supported_.store(true, std::memory_order_relaxed);
  }
  bool heic_supported() const {
    return heic_supported_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> heic_supported_{false};
};

}  // namespace kathdb::mm
