#include "multimodal/media.h"

#include <fstream>
#include <sstream>

namespace kathdb::mm {

Json SyntheticImage::ToJson() const {
  Json j = Json::Object();
  j.Set("uri", Json::Str(uri));
  j.Set("format", Json::Str(format));
  j.Set("width", Json::Int(width));
  j.Set("height", Json::Int(height));
  Json hist = Json::Array();
  for (double h : color_hist) hist.Append(Json::Double(h));
  j.Set("color_hist", hist);
  j.Set("color_variance", Json::Double(color_variance));
  Json objs = Json::Array();
  for (const auto& o : objects) {
    Json jo = Json::Object();
    jo.Set("cls", Json::Str(o.cls));
    jo.Set("x1", Json::Double(o.x1));
    jo.Set("y1", Json::Double(o.y1));
    jo.Set("x2", Json::Double(o.x2));
    jo.Set("y2", Json::Double(o.y2));
    Json attrs = Json::Array();
    for (const auto& [k, v] : o.attrs) {
      Json a = Json::Object();
      a.Set("k", Json::Str(k));
      a.Set("v", Json::Str(v));
      attrs.Append(a);
    }
    jo.Set("attrs", attrs);
    objs.Append(jo);
  }
  j.Set("objects", objs);
  Json rels = Json::Array();
  for (const auto& r : relationships) {
    Json jr = Json::Object();
    jr.Set("subject", Json::Int(r.subject));
    jr.Set("predicate", Json::Str(r.predicate));
    jr.Set("object", Json::Int(r.object));
    rels.Append(jr);
  }
  j.Set("relationships", rels);
  return j;
}

Result<SyntheticImage> SyntheticImage::FromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("image JSON must be an object");
  }
  SyntheticImage img;
  img.uri = j.GetString("uri");
  img.format = j.GetString("format", "simg");
  img.width = static_cast<int>(j.GetInt("width", 512));
  img.height = static_cast<int>(j.GetInt("height", 768));
  if (j.Has("color_hist")) {
    const Json& hist = j.Get("color_hist");
    for (size_t i = 0; i < hist.size() && i < img.color_hist.size(); ++i) {
      img.color_hist[i] = hist.at(i).AsDouble();
    }
  }
  img.color_variance = j.GetDouble("color_variance");
  if (j.Has("objects")) {
    for (const Json& jo : j.Get("objects").items()) {
      LatentObject o;
      o.cls = jo.GetString("cls");
      o.x1 = jo.GetDouble("x1");
      o.y1 = jo.GetDouble("y1");
      o.x2 = jo.GetDouble("x2");
      o.y2 = jo.GetDouble("y2");
      if (jo.Has("attrs")) {
        for (const Json& ja : jo.Get("attrs").items()) {
          o.attrs.emplace_back(ja.GetString("k"), ja.GetString("v"));
        }
      }
      img.objects.push_back(std::move(o));
    }
  }
  if (j.Has("relationships")) {
    for (const Json& jr : j.Get("relationships").items()) {
      LatentRelationship r;
      r.subject = static_cast<int>(jr.GetInt("subject"));
      r.predicate = jr.GetString("predicate");
      r.object = static_cast<int>(jr.GetInt("object"));
      img.relationships.push_back(std::move(r));
    }
  }
  return img;
}

Status SaveImage(const SyntheticImage& img, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << img.ToJson().Dump(2);
  return out.good() ? Status::OK()
                    : Status::IOError("write failed for '" + path + "'");
}

Result<SyntheticImage> ImageLoader::Load(const std::string& path) const {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::IOError("cannot open image '" + path + "'");
  }
  std::stringstream buf;
  buf << in.rdbuf();
  KATHDB_ASSIGN_OR_RETURN(Json j, Json::Parse(buf.str()));
  KATHDB_ASSIGN_OR_RETURN(SyntheticImage img, SyntheticImage::FromJson(j));
  if (img.uri.empty()) img.uri = path;
  return Decode(img);
}

Result<SyntheticImage> ImageLoader::Decode(const SyntheticImage& raw) const {
  if (raw.format == "simg") return raw;
  if (raw.format == "heic") {
    if (!heic_supported()) {
      return Status::SyntacticError(
          "unsupported file format 'heic' for image '" + raw.uri +
          "': decoder cannot read HEIC input");
    }
    SyntheticImage converted = raw;
    converted.format = "simg";  // conversion step normalizes the format
    return converted;
  }
  return Status::SyntacticError("unknown image format '" + raw.format + "'");
}

}  // namespace kathdb::mm
