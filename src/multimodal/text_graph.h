/// \file text_graph.h
/// \brief Text semantic graph relational views (Table 2 of the paper).
///
/// A document is decomposed into entities, mentions (which resolve to
/// entities — "Taylor" and "Mrs. Swift" share one eid), relationships and
/// attributes:
///   Entities(did, eid, lid, cid)
///   Mentions(did, sid, mid, lid, eid, span1, span2)
///   Relationships(did, sid, rid, lid, eid_i, pid, eid_j)
///   Attributes(did, sid, eid, lid, k, v)
///   Texts(did, lid, chars)
/// The SimulatedNer extractor substitutes for the hosted NER/coref model:
/// capitalized spans become named entities (with alias-based coreference),
/// and lexicon nouns ("gun", "chase", "meadow") become concept_name entities so
/// the embedding-based excitement scorer has realistic input.
///
/// \ingroup kathdb_multimodal

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "lineage/lineage.h"
#include "multimodal/media.h"
#include "relational/catalog.h"

namespace kathdb::mm {

/// Catalog names for the text-graph views.
struct TextGraphViews {
  std::string entities = "text_entities";
  std::string mentions = "text_mentions";
  std::string relationships = "text_relationships";
  std::string attributes = "text_attributes";
  std::string texts = "texts";
};

/// Configuration for the simulated NER/coref extractor.
struct NerConfig {
  std::string model_name = "kath-ner";
  /// Probability of missing a mention.
  double mention_drop_prob = 0.0;
  /// Simulated tokens charged per processed document.
  int tokens_per_doc = 250;
  uint64_t seed = 11;
  /// Alias -> canonical name map used for coreference resolution
  /// (e.g. "mrs. swift" -> "taylor swift").
  std::map<std::string, std::string> aliases;
};

/// Ensures the five text-graph view tables exist in `catalog`.
Status EnsureTextGraphViews(rel::Catalog* catalog,
                            const TextGraphViews& views = {});

/// \brief Populates Table-2 views from documents.
class SimulatedNer {
 public:
  explicit SimulatedNer(NerConfig config = {}) : config_(std::move(config)) {}

  const NerConfig& config() const { return config_; }
  int64_t tokens_used() const { return tokens_used_; }

  /// Extracts the semantic graph of `doc` into the views, recording
  /// lineage (document ingest -> derived rows).
  Status PopulateFromDocument(const Document& doc, rel::Catalog* catalog,
                              lineage::LineageStore* lineage,
                              const TextGraphViews& views = {});

 private:
  NerConfig config_;
  uint64_t noise_state_ = 0;
  bool seeded_ = false;
  int64_t next_eid_ = 1;
  int64_t next_mid_ = 1;
  int64_t next_rid_ = 1;
  int64_t tokens_used_ = 0;
};

/// All entity surface forms (class + canonical text) extracted for `did`,
/// the input to keyword-similarity scoring.
Result<std::vector<std::string>> EntityTokensOf(
    int64_t did, const rel::Catalog& catalog, const TextGraphViews& views = {});

}  // namespace kathdb::mm
