/// \file optimizer.h
/// \brief Cost-based query optimizer over FAO plans (Section 4).
///
/// The optimizer turns a logical plan (signatures only) into a physical
/// plan (versioned function bodies). Three agents collaborate per node:
///  - the *coder* synthesizes one or more candidate FunctionSpecs;
///  - the *profiler* executes candidates on sampled rows and records
///    runtime and estimated token cost;
///  - the *critic* checks the sampled output semantically (e.g. a recency
///    score must rank newer films higher) and sends corrective hints back
///    to the coder.
/// On top of physical selection, two logical rewrites are available:
/// predicate pushdown (evaluate the cheap poster filter before expensive
/// scoring) and operator fusion (merge the scoring chain into one function
/// — faster, but coarser explanations; experiment E7).
///
/// \ingroup kathdb_optimizer

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "fao/function.h"
#include "fao/registry.h"
#include "fao/signature.h"
#include "llm/model.h"
#include "parser/nl_parser.h"

namespace kathdb::opt {

/// One executable node of a physical plan.
struct PhysicalNode {
  fao::FunctionSignature sig;
  fao::FunctionSpec spec;
};

/// Executable plan: `nodes` stays a valid topological order (sequential
/// executors walk it unchanged), while `deps` makes the dependency DAG
/// explicit so the scheduler can run independent branches concurrently.
struct PhysicalPlan {
  std::vector<PhysicalNode> nodes;
  std::string final_output;
  /// deps[i] lists the indices of the nodes whose outputs node i
  /// consumes (derived from sig.inputs/sig.output; inputs that name a
  /// base relation or view contribute no edge). Kept in sync by
  /// BuildEdges; empty for hand-built plans until it is called.
  std::vector<std::vector<size_t>> deps;

  /// Dependency edges derived from the nodes' signatures. Only backward
  /// references (producer before consumer) become edges, so the result
  /// is acyclic whenever `nodes` is a valid topological order.
  std::vector<std::vector<size_t>> ComputeDeps() const;
  /// Stores ComputeDeps() into `deps`.
  void BuildEdges() { deps = ComputeDeps(); }

  std::string ToText() const;
};

struct OptimizerOptions {
  /// Move the poster filter ahead of the scoring chain.
  bool enable_pushdown = false;
  /// Fuse gen_*_score + gen_recency_score + combine_scores into one node.
  bool enable_fusion = false;
  /// Physical choice for classify_* nodes: "stats", "pixels", "cascade"
  /// or "auto" (cost-based selection against the pixel reference).
  std::string boring_impl = "auto";
  /// Physical choice for gen_*_score similarity nodes: "score" (per-row
  /// embedding), "cached" (distinct-token cache) or "auto" (profiled by
  /// measured runtime — the two produce identical scores, so "auto" is
  /// timing-dependent; differential tests pin one).
  std::string similarity_impl = "auto";
  /// Minimum sample agreement with the reference implementation that a
  /// cheaper candidate must reach to be chosen under "auto".
  double accuracy_floor = 0.75;
  /// Rows used when profiling candidates.
  size_t profile_sample_rows = 6;
  /// Emit a reversed recency score first so the critic's semantic check
  /// has a real bug to catch (reproduces the Section-4 example).
  bool inject_recency_bug = false;
  /// Simulated vision-model round trip stamped into pixel-touching
  /// classify_* specs as `latency_ms_per_image`. Benches raise it to
  /// model a remote VLM; the batch scheduler pays it once per flush
  /// instead of once per morsel. 0 keeps evaluation instant.
  double vision_latency_ms_per_image = 0.0;
};

/// Profiling record for one candidate implementation (bench E8 output).
struct CandidateProfile {
  std::string node;
  std::string template_id;
  double runtime_ms = 0.0;
  double est_cost_usd = 0.0;  ///< projected model cost for the full input
  double agreement = 1.0;     ///< sample agreement with the reference
  bool chosen = false;
  int critic_rounds = 0;      ///< semantic fixes before acceptance
};

/// \brief The optimizer: rewrites + coder/profiler/critic per node.
class QueryOptimizer {
 public:
  QueryOptimizer(llm::SimulatedLLM* llm, fao::FunctionRegistry* registry,
                 OptimizerOptions options = {})
      : llm_(llm), registry_(registry), options_(options) {}

  /// Produces the physical plan, registering every generated (and every
  /// critic-patched) spec in the function registry with a fresh ver_id.
  Result<PhysicalPlan> Optimize(const fao::LogicalPlan& plan,
                                const parser::QueryIntent& intent,
                                fao::ExecContext* ctx);

  const std::vector<CandidateProfile>& profiles() const { return profiles_; }
  const OptimizerOptions& options() const { return options_; }

  /// --- logical rewrites (exposed for tests/benches) ---
  static fao::LogicalPlan PushdownFilter(const fao::LogicalPlan& plan);
  static fao::LogicalPlan FuseScoring(const fao::LogicalPlan& plan);

 private:
  Result<std::vector<fao::FunctionSpec>> SynthesizeCandidates(
      const fao::FunctionSignature& sig, const parser::QueryIntent& intent,
      fao::ExecContext* ctx);
  /// Runs the critic's semantic check; on failure patches the spec and
  /// counts a round. Returns the accepted spec.
  Result<fao::FunctionSpec> CriticLoop(const fao::FunctionSignature& sig,
                                       fao::FunctionSpec spec,
                                       const parser::QueryIntent& intent,
                                       fao::ExecContext* ctx,
                                       int* critic_rounds);

  llm::SimulatedLLM* llm_;
  fao::FunctionRegistry* registry_;
  OptimizerOptions options_;
  std::vector<CandidateProfile> profiles_;
};

}  // namespace kathdb::opt
