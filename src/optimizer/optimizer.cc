#include "optimizer/optimizer.h"

#include <chrono>
#include <cmath>
#include <map>

#include "common/strings.h"
#include "sql/engine.h"

namespace kathdb::opt {

using fao::FunctionSignature;
using fao::FunctionSpec;
using fao::LogicalPlan;
using rel::Table;
using rel::TablePtr;

std::vector<std::vector<size_t>> PhysicalPlan::ComputeDeps() const {
  // Map each output name to its producer; outputs are unique (verifier)
  // and producers precede consumers, so keeping the last index seen
  // before the consumer is unambiguous.
  std::map<std::string, size_t> producer_of;
  std::vector<std::vector<size_t>> out(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (const auto& in : nodes[i].sig.inputs) {
      auto it = producer_of.find(in);
      if (it != producer_of.end()) out[i].push_back(it->second);
    }
    producer_of[nodes[i].sig.output] = i;
  }
  return out;
}

std::string PhysicalPlan::ToText() const {
  std::string out = "Physical plan (" + std::to_string(nodes.size()) +
                    " nodes, final output: " + final_output + ")\n";
  std::vector<std::vector<size_t>> edges =
      deps.size() == nodes.size() ? deps : ComputeDeps();
  for (size_t i = 0; i < nodes.size(); ++i) {
    const PhysicalNode& n = nodes[i];
    out += "  " + std::to_string(i + 1) + ". " + n.sig.name + " [" +
           n.spec.template_id + " v" + std::to_string(n.spec.ver_id) + ", " +
           n.spec.dependency_pattern + "] -> " + n.sig.output;
    if (!edges[i].empty()) {
      std::vector<std::string> parents;
      for (size_t d : edges[i]) parents.push_back(std::to_string(d + 1));
      out += " (after " + Join(parents, ",") + ")";
    }
    out += "\n";
  }
  return out;
}

// ------------------------------------------------------ logical rewrites

LogicalPlan QueryOptimizer::PushdownFilter(const LogicalPlan& plan) {
  // Locate the classify_*/filter_* pair and the node feeding the scoring
  // chain (the scene-graph join); move the pair directly after it.
  int classify_idx = -1;
  int filter_idx = -1;
  int anchor_idx = -1;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const std::string& name = plan.nodes[i].name;
    if (StartsWith(name, "classify_")) classify_idx = static_cast<int>(i);
    if (StartsWith(name, "filter_")) filter_idx = static_cast<int>(i);
    if (StartsWith(name, "join_scene")) anchor_idx = static_cast<int>(i);
  }
  if (classify_idx < 0 || filter_idx != classify_idx + 1 || anchor_idx < 0 ||
      classify_idx <= anchor_idx + 1) {
    return plan;  // nothing to push down
  }
  LogicalPlan out;
  for (int i = 0; i <= anchor_idx; ++i) out.nodes.push_back(plan.nodes[i]);
  out.nodes.push_back(plan.nodes[classify_idx]);
  out.nodes.push_back(plan.nodes[filter_idx]);
  for (int i = anchor_idx + 1; i < static_cast<int>(plan.nodes.size()); ++i) {
    if (i == classify_idx || i == filter_idx) continue;
    out.nodes.push_back(plan.nodes[i]);
  }
  // Rewire the primary (first) input of every node to the previous node's
  // output; auxiliary view inputs are preserved.
  for (size_t i = 1; i < out.nodes.size(); ++i) {
    if (!out.nodes[i].inputs.empty()) {
      out.nodes[i].inputs[0] = out.nodes[i - 1].output;
    }
  }
  return out;
}

LogicalPlan QueryOptimizer::FuseScoring(const LogicalPlan& plan) {
  // Find gen_<x>_score, gen_recency_score, combine_scores consecutive.
  for (size_t i = 0; i + 2 < plan.nodes.size(); ++i) {
    const auto& a = plan.nodes[i];
    const auto& b = plan.nodes[i + 1];
    const auto& c = plan.nodes[i + 2];
    if (StartsWith(a.name, "gen_") && a.name != "gen_recency_score" &&
        b.name == "gen_recency_score" && c.name == "combine_scores") {
      LogicalPlan out;
      for (size_t j = 0; j < i; ++j) out.nodes.push_back(plan.nodes[j]);
      FunctionSignature fused;
      fused.name = "gen_scores_fused";
      fused.description =
          "Compute the content score, the recency score and their weighted "
          "final score in a single fused operator over each film (fusion "
          "of " + a.name + " + " + b.name + " + " + c.name + ").";
      fused.inputs = a.inputs;
      fused.output = c.output;
      out.nodes.push_back(std::move(fused));
      for (size_t j = i + 3; j < plan.nodes.size(); ++j) {
        out.nodes.push_back(plan.nodes[j]);
      }
      return out;
    }
  }
  return plan;
}

// ----------------------------------------------------------------- coder

namespace {

/// Columns of interest present in a relation, else "*".
std::string RelevantColumnList(const rel::Catalog& catalog,
                               const std::string& table) {
  auto t = catalog.Get(table);
  if (!t.ok()) return "*";
  static const char* kWanted[] = {"mid", "title", "year", "did", "vid"};
  std::vector<std::string> cols;
  for (const char* w : kWanted) {
    if (t.value()->schema().HasColumn(w)) cols.emplace_back(w);
  }
  return cols.empty() ? "*" : Join(cols, ", ");
}

Json SqlSteps(std::initializer_list<std::pair<std::string, std::string>>
                  query_as_pairs) {
  Json steps = Json::Array();
  for (const auto& [query, as] : query_as_pairs) {
    Json s = Json::Object();
    s.Set("query", Json::Str(query));
    if (!as.empty()) s.Set("as", Json::Str(as));
    steps.Append(s);
  }
  return steps;
}

FunctionSpec MakeSqlSpec(const FunctionSignature& sig, Json steps_or_query,
                         const std::string& pattern,
                         const std::string& source_text) {
  FunctionSpec spec;
  spec.name = sig.name;
  spec.template_id = "sql";
  if (steps_or_query.is_array()) {
    spec.params.Set("steps", std::move(steps_or_query));
  } else {
    spec.params.Set("query", std::move(steps_or_query));
  }
  spec.dependency_pattern = pattern;
  spec.source_text = source_text;
  return spec;
}

std::string FilterTermOf(const std::string& node_name) {
  // classify_boring -> boring; filter_boring -> boring.
  auto pos = node_name.find('_');
  return pos == std::string::npos ? node_name : node_name.substr(pos + 1);
}

}  // namespace

Result<std::vector<FunctionSpec>> QueryOptimizer::SynthesizeCandidates(
    const FunctionSignature& sig, const parser::QueryIntent& intent,
    fao::ExecContext* ctx) {
  std::vector<FunctionSpec> out;
  const std::string& name = sig.name;
  const std::string in0 = sig.inputs.empty() ? intent.table : sig.inputs[0];
  const parser::Criterion* rank = intent.TextRank();
  const parser::Criterion* filter_c = intent.FindByRole("filter");
  bool wants_recency = intent.FindByTerm("recent") != nullptr;
  std::string rank_term = rank != nullptr ? rank->term : "excitement";

  auto charge = [&](const FunctionSpec& spec) {
    llm_->Charge("Coder: implement node '" + sig.name +
                     "' described as: " + sig.description,
                 spec.ToJson().Dump());
  };

  if (name == "select_columns") {
    std::string cols = RelevantColumnList(*ctx->catalog, in0);
    std::string q = "SELECT " + cols + " FROM " + in0;
    FunctionSpec spec = MakeSqlSpec(sig, Json::Str(q), "one_to_one", q);
    charge(spec);
    out.push_back(std::move(spec));
    return out;
  }
  if (StartsWith(name, "join_text")) {
    std::string ents = sig.inputs.size() > 1 ? sig.inputs[1] : "text_entities";
    Json steps = SqlSteps(
        {{"SELECT did AS ent_did, COUNT(*) AS n_entities FROM " + ents +
              " GROUP BY did",
          "tmp_entity_counts"},
         {"SELECT f.mid, f.title, f.year, f.did, f.vid, e.n_entities FROM " +
              in0 + " f JOIN tmp_entity_counts e ON f.did = e.ent_did",
          ""}});
    FunctionSpec spec = MakeSqlSpec(
        sig, std::move(steps), "many_to_many",
        "aggregate entities per document, then hash-join with the films");
    charge(spec);
    out.push_back(std::move(spec));
    return out;
  }
  if (StartsWith(name, "join_scene")) {
    std::string objs = sig.inputs.size() > 1 ? sig.inputs[1] : "scene_objects";
    Json steps = SqlSteps(
        {{"SELECT vid AS obj_vid, COUNT(*) AS n_objects FROM " + objs +
              " GROUP BY vid",
          "tmp_object_counts"},
         // `SELECT *` keeps whatever columns the upstream chain carries
         // (the text join may or may not have run before this node).
         {"SELECT * FROM " + in0 +
              " f JOIN tmp_object_counts o ON f.vid = o.obj_vid",
          ""}});
    FunctionSpec spec = MakeSqlSpec(
        sig, std::move(steps), "many_to_many",
        "aggregate detected objects per poster, then hash-join with films");
    charge(spec);
    out.push_back(std::move(spec));
    return out;
  }
  if (name == "gen_recency_score") {
    sql::SqlEngine engine(ctx->catalog);
    double mn = 1950;
    double mx = 2026;
    auto mm = engine.Execute("SELECT MIN(year) AS mn, MAX(year) AS mx FROM " +
                             intent.table);
    if (mm.ok() && mm.value().num_rows() == 1) {
      mn = mm.value().at(0, 0).AsDouble();
      mx = mm.value().at(0, 1).AsDouble();
    }
    FunctionSpec spec;
    spec.name = name;
    spec.template_id = "recency_score";
    spec.params.Set("year_column", Json::Str("year"));
    spec.params.Set("output_column", Json::Str("recency_score"));
    spec.params.Set("min_year", Json::Double(mn));
    spec.params.Set("max_year", Json::Double(mx));
    spec.params.Set("direction",
                    Json::Double(options_.inject_recency_bug ? -1.0 : 1.0));
    spec.dependency_pattern = "one_to_one";
    spec.source_text =
        "recency_score = clamp((year - " + FormatDouble(mn, 0) + ") / (" +
        FormatDouble(mx, 0) + " - " + FormatDouble(mn, 0) + "), 0, 1)";
    charge(spec);
    out.push_back(std::move(spec));
    return out;
  }
  if (StartsWith(name, "gen_") && name.find("_score") != std::string::npos &&
      name != "gen_recency_score" && name != "gen_scores_fused") {
    std::string context =
        rank != nullptr ? rank->clarified_meaning : std::string();
    std::vector<std::string> keywords =
        llm_->GenerateKeywords(rank_term, context);
    // Two physical implementations of the same signature: per-row
    // embedding vs a distinct-token similarity cache (same scores,
    // different runtime) — the profiler picks by measured cost unless
    // options pin one.
    std::vector<const char*> tmpls;
    if (options_.similarity_impl == "score") {
      tmpls = {"keyword_similarity_score"};
    } else if (options_.similarity_impl == "cached") {
      tmpls = {"keyword_similarity_cached"};
    } else {
      tmpls = {"keyword_similarity_cached", "keyword_similarity_score"};
    }
    for (const char* tmpl : tmpls) {
      FunctionSpec spec;
      spec.name = name;
      spec.template_id = tmpl;
      Json kw = Json::Array();
      for (const auto& k : keywords) kw.Append(Json::Str(k));
      spec.params.Set("keywords", std::move(kw));
      spec.params.Set("did_column", Json::Str("did"));
      spec.params.Set("output_column", Json::Str(rank_term + "_score"));
      spec.params.Set("threshold", Json::Double(0.60));
      spec.params.Set("sharpness", Json::Double(2.0));
      spec.dependency_pattern = "one_to_one";
      spec.source_text =
          "embed LLM keyword list [" + Join(keywords, ", ") +
          "]; embed entities extracted from each plot; per entity take max "
          "cosine similarity; score = 1 - exp(-2.0 * sum(matches^2))" +
          (std::string(tmpl) == "keyword_similarity_cached"
               ? " [cached per distinct token]"
               : "");
      charge(spec);
      out.push_back(std::move(spec));
    }
    return out;
  }
  if (name == "combine_scores") {
    double w_rank = rank != nullptr ? rank->weight : 0.7;
    const parser::Criterion* rec = intent.FindByTerm("recent");
    double w_rec = rec != nullptr ? rec->weight : 0.3;
    FunctionSpec spec;
    spec.name = name;
    spec.template_id = "combine_scores";
    Json terms = Json::Array();
    Json t1 = Json::Object();
    t1.Set("column", Json::Str(rank_term + "_score"));
    t1.Set("weight", Json::Double(w_rank));
    terms.Append(t1);
    Json t2 = Json::Object();
    t2.Set("column", Json::Str("recency_score"));
    t2.Set("weight", Json::Double(w_rec));
    terms.Append(t2);
    spec.params.Set("terms", std::move(terms));
    spec.params.Set("output_column", Json::Str("final_score"));
    spec.dependency_pattern = "one_to_one";
    spec.source_text = "final_score = " + FormatDouble(w_rank, 2) + " * " +
                       rank_term + "_score + " + FormatDouble(w_rec, 2) +
                       " * recency_score";
    charge(spec);
    out.push_back(std::move(spec));
    return out;
  }
  if (name == "gen_scores_fused") {
    std::string context =
        rank != nullptr ? rank->clarified_meaning : std::string();
    std::vector<std::string> keywords =
        llm_->GenerateKeywords(rank_term, context);
    sql::SqlEngine engine(ctx->catalog);
    double mn = 1950;
    double mx = 2026;
    auto mm = engine.Execute("SELECT MIN(year) AS mn, MAX(year) AS mx FROM " +
                             intent.table);
    if (mm.ok() && mm.value().num_rows() == 1) {
      mn = mm.value().at(0, 0).AsDouble();
      mx = mm.value().at(0, 1).AsDouble();
    }
    FunctionSpec spec;
    spec.name = name;
    spec.template_id = "fused_scores";
    Json ex = Json::Object();
    Json kw = Json::Array();
    for (const auto& k : keywords) kw.Append(Json::Str(k));
    ex.Set("keywords", std::move(kw));
    ex.Set("did_column", Json::Str("did"));
    ex.Set("threshold", Json::Double(0.60));
    ex.Set("sharpness", Json::Double(2.0));
    Json re = Json::Object();
    re.Set("year_column", Json::Str("year"));
    re.Set("min_year", Json::Double(mn));
    re.Set("max_year", Json::Double(mx));
    Json co = Json::Object();
    co.Set("excitement_weight",
           Json::Double(rank != nullptr ? rank->weight : 0.7));
    const parser::Criterion* rec = intent.FindByTerm("recent");
    co.Set("recency_weight", Json::Double(rec != nullptr ? rec->weight
                                                         : 0.3));
    spec.params.Set("excitement", std::move(ex));
    spec.params.Set("recency", std::move(re));
    spec.params.Set("combine", std::move(co));
    spec.dependency_pattern = "one_to_one";
    spec.source_text =
        "fused: excitement (keyword similarity) + recency (year scaling) + "
        "weighted final score computed in one pass";
    charge(spec);
    out.push_back(std::move(spec));
    return out;
  }
  if (StartsWith(name, "classify_")) {
    std::string term = FilterTermOf(name);
    auto make = [&](const std::string& tmpl) {
      FunctionSpec spec;
      spec.name = name;
      spec.template_id = tmpl;
      spec.params.Set("vid_column", Json::Str("vid"));
      spec.params.Set("output_column", Json::Str(term + "_poster"));
      spec.params.Set("variance_threshold", Json::Double(0.055));
      spec.params.Set("max_objects", Json::Int(4));
      if (options_.vision_latency_ms_per_image > 0.0 &&
          tmpl != "classify_boring_stats") {
        spec.params.Set("latency_ms_per_image",
                        Json::Double(options_.vision_latency_ms_per_image));
      }
      spec.dependency_pattern = "one_to_one";
      if (tmpl == "classify_boring_stats") {
        spec.source_text =
            "flag poster '" + term + "' if scene-graph stats show low color "
            "variance, few detected objects and no action objects";
      } else if (tmpl == "classify_boring_pixels") {
        spec.source_text =
            "invoke the vision model on the raw poster pixels; flag '" +
            term + "' if colors are flat and no action content is visible";
      } else {
        spec.params.Set("margin", Json::Double(0.015));
        spec.source_text =
            "cascade: cheap scene-graph heuristic first; escalate "
            "uncertain posters to the vision model";
      }
      charge(spec);
      return spec;
    };
    if (options_.boring_impl == "stats") {
      out.push_back(make("classify_boring_stats"));
    } else if (options_.boring_impl == "pixels") {
      out.push_back(make("classify_boring_pixels"));
    } else if (options_.boring_impl == "cascade") {
      out.push_back(make("classify_boring_cascade"));
    } else {
      out.push_back(make("classify_boring_stats"));
      out.push_back(make("classify_boring_cascade"));
      out.push_back(make("classify_boring_pixels"));
    }
    return out;
  }
  if (StartsWith(name, "filter_")) {
    std::string term = FilterTermOf(name);
    std::string q =
        "SELECT * FROM " + in0 + " WHERE " + term + "_poster = TRUE";
    FunctionSpec spec = MakeSqlSpec(sig, Json::Str(q), "one_to_one", q);
    (void)filter_c;
    charge(spec);
    out.push_back(std::move(spec));
    return out;
  }
  if (name == "rank_films") {
    std::string rank_col = "year";  // metadata fallback
    if (rank != nullptr) {
      rank_col = wants_recency ? "final_score" : rank_term + "_score";
    } else if (wants_recency) {
      rank_col = "recency_score";
    }
    std::string q = "SELECT * FROM " + in0 + " ORDER BY " + rank_col +
                    " DESC";
    FunctionSpec spec = MakeSqlSpec(sig, Json::Str(q), "many_to_one", q);
    charge(spec);
    out.push_back(std::move(spec));
    return out;
  }
  // join_results and any unrecognized node: pass-through SQL.
  std::string q = "SELECT * FROM " + in0;
  FunctionSpec spec = MakeSqlSpec(sig, Json::Str(q), "many_to_many", q);
  charge(spec);
  out.push_back(std::move(spec));
  return out;
}

// ---------------------------------------------------------------- critic

Result<FunctionSpec> QueryOptimizer::CriticLoop(
    const FunctionSignature& sig, FunctionSpec spec,
    const parser::QueryIntent& intent, fao::ExecContext* ctx,
    int* critic_rounds) {
  *critic_rounds = 0;
  bool newer_is_better =
      intent.FindByTerm("recent") != nullptr ||
      ContainsIgnoreCase(sig.description, "newer");
  for (int round = 0; round < 3; ++round) {
    // --- semantic probe: recency direction ---------------------------
    if ((spec.template_id == "recency_score") && newer_is_better) {
      auto probe = std::make_shared<Table>(
          "probe", rel::Schema({{"year", rel::DataType::kInt}}));
      probe->AppendRow({rel::Value::Int(1960)});
      probe->AppendRow({rel::Value::Int(2010)});
      KATHDB_ASSIGN_OR_RETURN(auto fn, fao::InstantiateFunction(spec));
      KATHDB_ASSIGN_OR_RETURN(Table out, fn->Evaluate({probe}, ctx));
      auto cidx = out.schema().IndexOf(
          spec.params.GetString("output_column", "recency_score"));
      if (!cidx.has_value() || out.num_rows() != 2) {
        return Status::SemanticError("recency probe produced no score");
      }
      double old_score = out.at(0, *cidx).AsDouble();
      double new_score = out.at(1, *cidx).AsDouble();
      if (new_score <= old_score) {
        // Critic hint: the scoring direction is reversed. Patch and retry.
        llm_->Charge(
            "Critic: the sampled output gives higher recency scores to "
            "older films, contradicting the user's request. Hint the coder "
            "to reverse the direction.",
            "direction := +1");
        spec.params.Set("direction", Json::Double(1.0));
        spec.source_text += " [critic fix: direction reversed to favor "
                            "newer films]";
        ++*critic_rounds;
        continue;
      }
    }
    // --- semantic probe: scores stay in [0,1] ------------------------
    if (spec.template_id == "keyword_similarity_score") {
      auto probe = std::make_shared<Table>(
          "probe", rel::Schema({{"did", rel::DataType::kInt}}));
      probe->AppendRow({rel::Value::Int(-1)});
      KATHDB_ASSIGN_OR_RETURN(auto fn, fao::InstantiateFunction(spec));
      KATHDB_ASSIGN_OR_RETURN(Table out, fn->Evaluate({probe}, ctx));
      auto cidx = out.schema().IndexOf(
          spec.params.GetString("output_column", "score"));
      if (cidx.has_value() && out.num_rows() == 1) {
        double v = out.at(0, *cidx).AsDouble();
        if (v < 0.0 || v > 1.0) {
          return Status::SemanticError("similarity score out of [0,1]");
        }
      }
    }
    // --- static check: combine weights -------------------------------
    if (spec.template_id == "combine_scores") {
      double total = 0.0;
      for (const Json& t : spec.params.Get("terms").items()) {
        total += t.GetDouble("weight", 0.0);
      }
      if (total <= 0.0) {
        return Status::SemanticError("combine_scores weights sum to zero");
      }
    }
    llm_->Charge("Critic: inspect function source, sampled input and "
                 "output records for node '" + sig.name + "'.",
                 "acceptable");
    return spec;
  }
  return Status::SemanticError("critic could not repair '" + sig.name + "'");
}

// -------------------------------------------------------------- optimize

Result<PhysicalPlan> QueryOptimizer::Optimize(const LogicalPlan& plan,
                                              const parser::QueryIntent& intent,
                                              fao::ExecContext* ctx) {
  LogicalPlan working = plan;
  if (options_.enable_fusion) working = FuseScoring(working);
  if (options_.enable_pushdown) working = PushdownFilter(working);
  profiles_.clear();

  PhysicalPlan pplan;
  pplan.final_output = working.FinalOutput();

  // Sample rows for profiling classify candidates (needs vid and year).
  TablePtr profile_sample;
  {
    sql::SqlEngine engine(ctx->catalog);
    auto sample = engine.Execute(
        "SELECT * FROM " + intent.table + " LIMIT " +
        std::to_string(options_.profile_sample_rows));
    if (sample.ok()) {
      profile_sample = std::make_shared<Table>(std::move(sample).value());
    }
  }
  double full_rows = 1.0;
  if (auto base = ctx->catalog->Get(intent.table); base.ok()) {
    full_rows = static_cast<double>(base.value()->num_rows());
  }

  for (const auto& sig : working.nodes) {
    KATHDB_ASSIGN_OR_RETURN(std::vector<FunctionSpec> candidates,
                            SynthesizeCandidates(sig, intent, ctx));
    FunctionSpec chosen = candidates.front();
    if (candidates.size() > 1 && profile_sample != nullptr) {
      // ---- profiler: run each candidate on the sample -----------------
      struct Run {
        size_t idx;
        double runtime_ms = 0.0;
        double est_cost = 0.0;
        std::vector<bool> flags;
        bool ok = false;
      };
      std::vector<Run> runs;
      llm::ModelSpec vision = llm::KathVisionSpec();
      for (size_t i = 0; i < candidates.size(); ++i) {
        Run run;
        run.idx = i;
        auto fn = fao::InstantiateFunction(candidates[i]);
        if (fn.ok()) {
          // Plain Execute, never the cache-aware Evaluate: timing a
          // memoized lookup would corrupt the runtime comparison.
          auto t0 = std::chrono::steady_clock::now();
          auto out = fn.value()->Execute({profile_sample}, ctx);
          auto t1 = std::chrono::steady_clock::now();
          run.runtime_ms =
              std::chrono::duration<double, std::milli>(t1 - t0).count();
          if (out.ok()) {
            run.ok = true;
            std::string col = candidates[i].params.GetString(
                "output_column", "flag");
            auto cidx = out.value().schema().IndexOf(col);
            if (cidx.has_value()) {
              for (size_t r = 0; r < out.value().num_rows(); ++r) {
                run.flags.push_back(out.value().at(r, *cidx).AsBool());
              }
            }
          }
        }
        // Projected model cost for the full input.
        double per_row_tokens = 0.0;
        if (candidates[i].template_id == "classify_boring_pixels") {
          per_row_tokens = 420.0;
        } else if (candidates[i].template_id == "classify_boring_cascade") {
          per_row_tokens = 420.0 * 0.25;  // expected escalation share
        }
        run.est_cost = full_rows * per_row_tokens / 1000.0 *
                       (vision.usd_per_1k_prompt + vision.usd_per_1k_completion / 6);
        runs.push_back(std::move(run));
      }
      // Reference: the pixel implementation (strongest model).
      const Run* reference = nullptr;
      for (const auto& r : runs) {
        if (candidates[r.idx].template_id == "classify_boring_pixels" &&
            r.ok) {
          reference = &r;
        }
      }
      size_t best = 0;
      double best_cost = 1e18;
      double best_runtime = 1e18;
      for (const auto& r : runs) {
        double agreement = 1.0;
        if (reference != nullptr && r.ok &&
            r.flags.size() == reference->flags.size() &&
            !r.flags.empty()) {
          size_t same = 0;
          for (size_t k = 0; k < r.flags.size(); ++k) {
            if (r.flags[k] == reference->flags[k]) ++same;
          }
          agreement = static_cast<double>(same) / r.flags.size();
        } else if (!r.ok) {
          agreement = 0.0;
        }
        CandidateProfile prof;
        prof.node = sig.name;
        prof.template_id = candidates[r.idx].template_id;
        prof.runtime_ms = r.runtime_ms;
        prof.est_cost_usd = r.est_cost;
        prof.agreement = agreement;
        profiles_.push_back(prof);
        bool eligible = r.ok && agreement >= options_.accuracy_floor;
        // Primary criterion: projected model cost; measured sample
        // runtime breaks ties between equally-priced implementations.
        bool cheaper = r.est_cost < best_cost - 1e-12;
        bool tie_faster = std::abs(r.est_cost - best_cost) <= 1e-12 &&
                          r.runtime_ms < best_runtime;
        if (eligible && (cheaper || tie_faster)) {
          best_cost = r.est_cost;
          best_runtime = r.runtime_ms;
          best = r.idx;
        }
      }
      chosen = candidates[best];
      for (auto& p : profiles_) {
        if (p.node == sig.name) {
          p.chosen = (p.template_id == chosen.template_id);
        }
      }
      llm_->Charge("Profiler: compared " +
                       std::to_string(candidates.size()) +
                       " implementations of '" + sig.name + "'.",
                   "chose " + chosen.template_id);
    } else {
      CandidateProfile prof;
      prof.node = sig.name;
      prof.template_id = chosen.template_id;
      prof.chosen = true;
      profiles_.push_back(prof);
    }

    int critic_rounds = 0;
    KATHDB_ASSIGN_OR_RETURN(
        chosen, CriticLoop(sig, std::move(chosen), intent, ctx,
                           &critic_rounds));
    for (auto& p : profiles_) {
      if (p.node == sig.name && p.chosen) p.critic_rounds = critic_rounds;
    }
    chosen.ver_id = registry_->RegisterNewVersion(chosen);
    pplan.nodes.push_back({sig, chosen});
  }
  pplan.BuildEdges();
  return pplan;
}

}  // namespace kathdb::opt
