/// \file baselines.h
/// \brief The two comparison systems framed by the paper's introduction.
///
/// (1) Black-box LLM: the entire database is serialized into one huge
///     prompt and the model answers end-to-end. No relational layer, no
///     lineage, no explanation — and per-record generation quality decays
///     with the model tier. Token cost scales with |DB|.
/// (2) SQL + manual ML UDFs: an expert hand-writes the pipeline against
///     the substrate directly. Accurate but measured in *user effort*
///     (statements the human must author) instead of NL convenience.
///
/// \ingroup kathdb_baselines

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "data/movie_dataset.h"
#include "engine/kathdb.h"

namespace kathdb::baseline {

/// Outcome of one baseline run, aligned with KathDB's QueryOutcome enough
/// for side-by-side comparison.
struct BaselineOutcome {
  rel::Table result;
  /// Ranked movie ids (mids), best first.
  std::vector<int64_t> ranking;
  /// Movie ids the system kept after the poster filter.
  std::vector<int64_t> kept;
  int64_t tokens_used = 0;
  double cost_usd = 0.0;
  /// Statements / code blocks a human had to author.
  int user_authored_statements = 0;
  bool explainable = false;
};

/// \brief End-to-end opaque LLM execution of the example query.
class BlackboxLlmBaseline {
 public:
  /// `quality` in [0,1]: probability each movie is judged correctly
  /// (per-record prompting error, Section 1's critique).
  BlackboxLlmBaseline(double quality = 0.85, uint64_t seed = 99)
      : quality_(quality), seed_(seed) {}

  Result<BaselineOutcome> Run(const data::MovieDataset& dataset);

 private:
  double quality_;
  uint64_t seed_;
};

/// \brief Hand-written SQL + ML-UDF pipeline over the same substrate.
class SqlUdfBaseline {
 public:
  /// `db` must already hold the ingested dataset (views populated).
  Result<BaselineOutcome> Run(engine::KathDB* db,
                              const data::MovieDataset& dataset);
};

}  // namespace kathdb::baseline
