#include "baselines/baselines.h"

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"
#include "fao/function.h"
#include "sql/engine.h"

namespace kathdb::baseline {

using rel::DataType;
using rel::Schema;
using rel::Table;
using rel::Value;

Result<BaselineOutcome> BlackboxLlmBaseline::Run(
    const data::MovieDataset& dataset) {
  BaselineOutcome out;
  out.explainable = false;
  out.user_authored_statements = 0;  // pure NL, zero authored code

  // Serialize the whole database into the prompt: metadata, every plot,
  // and a textual rendering of every poster. This is what "offload
  // execution entirely to black-box LLMs" costs.
  std::string prompt =
      "Sort the given films by how exciting they are, but the poster "
      "should be 'boring'. Database follows.\n";
  const Table& movies = *dataset.movie_table;
  for (size_t r = 0; r < movies.num_rows(); ++r) {
    prompt += "movie " + movies.at(r, 1).ToString() + " (" +
              movies.at(r, 2).ToString() + ")\n";
  }
  for (const auto& doc : dataset.plots) prompt += doc.text + "\n";
  for (const auto& [vid, poster] : dataset.posters) {
    prompt += "poster " + std::to_string(vid) + ": " +
              std::to_string(poster.objects.size()) + " objects, variance " +
              FormatDouble(poster.color_variance, 3) + "\n";
  }

  llm::UsageMeter meter;
  llm::SimulatedLLM model(llm::KathLargeSpec(), &meter);

  // Per-record judgment with error rate (1 - quality): the model guesses
  // both the excitement score and the boringness flag.
  Rng rng(seed_);
  struct Judged {
    int64_t mid;
    std::string title;
    int64_t year;
    double score;
    bool boring;
  };
  std::vector<Judged> judged;
  std::string completion;
  for (size_t r = 0; r < movies.num_rows(); ++r) {
    int64_t mid = movies.at(r, 0).AsInt();
    const data::MovieTruth* truth = dataset.TruthOf(mid);
    bool correct_score = rng.NextBool(quality_);
    bool correct_flag = rng.NextBool(quality_);
    bool truly_exciting = truth != nullptr && truth->exciting_plot;
    bool truly_boring = truth != nullptr && truth->boring_poster;
    double score = correct_score
                       ? (truly_exciting ? 0.85 + rng.NextDouble() * 0.15
                                         : rng.NextDouble() * 0.4)
                       : rng.NextDouble();
    bool boring = correct_flag ? truly_boring : rng.NextBool(0.5);
    judged.push_back({mid, movies.at(r, 1).ToString(),
                      movies.at(r, 2).AsInt(), score, boring});
    completion += movies.at(r, 1).ToString() + ": " +
                  FormatDouble(score, 3) + (boring ? " boring" : " vivid") +
                  "\n";
  }
  model.Charge(prompt, completion);

  std::vector<Judged> kept;
  for (const auto& j : judged) {
    if (j.boring) kept.push_back(j);
  }
  std::sort(kept.begin(), kept.end(), [](const Judged& a, const Judged& b) {
    return a.score > b.score;
  });

  Table result("blackbox_result", Schema({{"mid", DataType::kInt},
                                          {"title", DataType::kString},
                                          {"year", DataType::kInt},
                                          {"final_score", DataType::kDouble},
                                          {"boring_poster",
                                           DataType::kBool}}));
  for (const auto& j : kept) {
    result.AppendRow({Value::Int(j.mid), Value::Str(j.title),
                      Value::Int(j.year), Value::Double(j.score),
                      Value::Bool(true)});
    out.ranking.push_back(j.mid);
    out.kept.push_back(j.mid);
  }
  out.result = std::move(result);
  out.tokens_used = meter.total_tokens();
  out.cost_usd = meter.total_cost_usd();
  return out;
}

Result<BaselineOutcome> SqlUdfBaseline::Run(engine::KathDB* db,
                                            const data::MovieDataset& dataset) {
  (void)dataset;
  BaselineOutcome out;
  out.explainable = true;  // the expert knows the pipeline they wrote
  fao::ExecContext ctx = db->MakeContext();
  sql::SqlEngine engine(db->catalog());
  int64_t tokens_before = db->meter()->total_tokens();
  double cost_before = db->meter()->total_cost_usd();
  int statements = 0;

  // An expert hand-writes each step; every statement/UDF call counts as
  // authored effort.
  auto run_sql = [&](const std::string& q) -> Result<Table> {
    ++statements;
    return engine.Execute(q);
  };
  auto upsert = [&](Table t, const std::string& name) {
    auto p = std::make_shared<Table>(std::move(t));
    p->set_name(name);
    db->catalog()->Upsert(p, rel::RelationKind::kIntermediate);
  };

  KATHDB_ASSIGN_OR_RETURN(
      Table base,
      run_sql("SELECT mid, title, year, did, vid FROM movie_table"));
  upsert(base, "udf_base");

  // UDF 1: excitement via keyword embedding similarity (hand-picked
  // keywords — the manual analogue of the LLM-generated list).
  fao::FunctionSpec ex_spec;
  ex_spec.name = "udf_excitement";
  ex_spec.template_id = "keyword_similarity_score";
  Json kw = Json::Array();
  for (const char* k : {"gun", "murder", "chase", "explosion", "attack",
                        "death", "hostage", "conspiracy"}) {
    kw.Append(Json::Str(k));
  }
  ex_spec.params.Set("keywords", std::move(kw));
  ex_spec.params.Set("did_column", Json::Str("did"));
  ex_spec.params.Set("output_column", Json::Str("excitement_score"));
  ++statements;
  KATHDB_ASSIGN_OR_RETURN(auto ex_fn, fao::InstantiateFunction(ex_spec));
  KATHDB_ASSIGN_OR_RETURN(
      Table with_ex,
      ex_fn->Execute({db->catalog()->Get("udf_base").value()}, &ctx));
  upsert(with_ex, "udf_with_ex");

  // UDF 2: recency score.
  fao::FunctionSpec rec_spec;
  rec_spec.name = "udf_recency";
  rec_spec.template_id = "recency_score";
  rec_spec.params.Set("min_year", Json::Double(1950));
  rec_spec.params.Set("max_year", Json::Double(1991));
  ++statements;
  KATHDB_ASSIGN_OR_RETURN(auto rec_fn, fao::InstantiateFunction(rec_spec));
  KATHDB_ASSIGN_OR_RETURN(
      Table with_rec,
      rec_fn->Execute({db->catalog()->Get("udf_with_ex").value()}, &ctx));
  upsert(with_rec, "udf_with_rec");

  // UDF 3: combine.
  fao::FunctionSpec comb_spec;
  comb_spec.name = "udf_combine";
  comb_spec.template_id = "combine_scores";
  Json terms = Json::Array();
  Json t1 = Json::Object();
  t1.Set("column", Json::Str("excitement_score"));
  t1.Set("weight", Json::Double(0.7));
  terms.Append(t1);
  Json t2 = Json::Object();
  t2.Set("column", Json::Str("recency_score"));
  t2.Set("weight", Json::Double(0.3));
  terms.Append(t2);
  comb_spec.params.Set("terms", std::move(terms));
  ++statements;
  KATHDB_ASSIGN_OR_RETURN(auto comb_fn, fao::InstantiateFunction(comb_spec));
  KATHDB_ASSIGN_OR_RETURN(
      Table with_final,
      comb_fn->Execute({db->catalog()->Get("udf_with_rec").value()}, &ctx));
  upsert(with_final, "udf_with_final");

  // UDF 4: boring-poster classifier over scene-graph stats.
  fao::FunctionSpec cls_spec;
  cls_spec.name = "udf_classify";
  cls_spec.template_id = "classify_boring_stats";
  cls_spec.params.Set("output_column", Json::Str("boring_poster"));
  ++statements;
  KATHDB_ASSIGN_OR_RETURN(auto cls_fn, fao::InstantiateFunction(cls_spec));
  KATHDB_ASSIGN_OR_RETURN(
      Table with_flag,
      cls_fn->Execute({db->catalog()->Get("udf_with_final").value()}, &ctx));
  upsert(with_flag, "udf_with_flag");

  KATHDB_ASSIGN_OR_RETURN(
      Table ranked,
      run_sql("SELECT * FROM udf_with_flag WHERE boring_poster = TRUE "
              "ORDER BY final_score DESC"));

  auto midx = ranked.schema().IndexOf("mid");
  for (size_t r = 0; r < ranked.num_rows(); ++r) {
    out.ranking.push_back(ranked.at(r, *midx).AsInt());
    out.kept.push_back(ranked.at(r, *midx).AsInt());
  }
  out.result = std::move(ranked);
  out.user_authored_statements = statements;
  out.tokens_used = db->meter()->total_tokens() - tokens_before;
  out.cost_usd = db->meter()->total_cost_usd() - cost_before;
  return out;
}

}  // namespace kathdb::baseline
