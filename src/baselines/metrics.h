/// \file metrics.h
/// \brief Quality metrics for comparing KathDB against the baselines (E9).
///
/// \ingroup kathdb_baselines

#pragma once

#include <cstdint>
#include <vector>

namespace kathdb::baseline {

/// Kendall rank correlation between two orderings given as id lists
/// (highest-ranked first). Ids missing from either list are ignored.
/// Returns a value in [-1, 1]; 1 when both agree on every pair.
double KendallTau(const std::vector<int64_t>& ranking_a,
                  const std::vector<int64_t>& ranking_b);

/// Precision/recall/F1 of a predicted id set against a truth id set.
struct SetQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
SetQuality CompareSets(const std::vector<int64_t>& predicted,
                       const std::vector<int64_t>& truth);

}  // namespace kathdb::baseline
