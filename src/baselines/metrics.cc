#include "baselines/metrics.h"

#include <algorithm>
#include <map>
#include <set>

namespace kathdb::baseline {

double KendallTau(const std::vector<int64_t>& ranking_a,
                  const std::vector<int64_t>& ranking_b) {
  std::map<int64_t, size_t> pos_a;
  std::map<int64_t, size_t> pos_b;
  for (size_t i = 0; i < ranking_a.size(); ++i) pos_a[ranking_a[i]] = i;
  for (size_t i = 0; i < ranking_b.size(); ++i) pos_b[ranking_b[i]] = i;
  std::vector<int64_t> common;
  for (const auto& [id, _] : pos_a) {
    if (pos_b.count(id) > 0) common.push_back(id);
  }
  size_t n = common.size();
  if (n < 2) return 1.0;
  long long concordant = 0;
  long long discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      auto da = static_cast<long long>(pos_a[common[i]]) -
                static_cast<long long>(pos_a[common[j]]);
      auto db = static_cast<long long>(pos_b[common[i]]) -
                static_cast<long long>(pos_b[common[j]]);
      if (da * db > 0) {
        ++concordant;
      } else if (da * db < 0) {
        ++discordant;
      }
    }
  }
  double total = static_cast<double>(n) * (n - 1) / 2.0;
  return (concordant - discordant) / total;
}

SetQuality CompareSets(const std::vector<int64_t>& predicted,
                       const std::vector<int64_t>& truth) {
  std::set<int64_t> p(predicted.begin(), predicted.end());
  std::set<int64_t> t(truth.begin(), truth.end());
  size_t hit = 0;
  for (int64_t id : p) {
    if (t.count(id) > 0) ++hit;
  }
  SetQuality q;
  q.precision = p.empty() ? 0.0 : static_cast<double>(hit) / p.size();
  q.recall = t.empty() ? 1.0 : static_cast<double>(hit) / t.size();
  q.f1 = (q.precision + q.recall) == 0.0
             ? 0.0
             : 2 * q.precision * q.recall / (q.precision + q.recall);
  return q;
}

}  // namespace kathdb::baseline
