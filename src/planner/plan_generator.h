/// \file plan_generator.h
/// \brief Logical plan generator: plan writer + tool user + plan verifier.
///
/// Following the three-stage agentic workflow of Section 4, the *plan
/// writer* combines catalog metadata with the query sketch to draft a tree
/// of logical-plan nodes (function signatures only); the *plan verifier*
/// judges the draft against sample data, invoking the *tool user*'s
/// database utilities (row sampler, joinability tester) when the snapshot
/// is not enough; rejected drafts go back to the writer with hints.
///
/// \ingroup kathdb_planner

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "fao/signature.h"
#include "llm/model.h"
#include "parser/nl_parser.h"
#include "relational/catalog.h"

namespace kathdb::planner {

/// \brief The verifier's small set of database utilities.
class ToolUser {
 public:
  explicit ToolUser(const rel::Catalog* catalog) : catalog_(catalog) {}

  /// Up-to-n sample rows of a relation.
  Result<rel::Table> SampleRows(const std::string& relation, size_t n) const {
    return catalog_->SampleRows(relation, n);
  }

  /// Whether two relations look joinable; outputs the join column.
  bool TestJoinability(const std::string& left, const std::string& right,
                       std::string* on_column) const {
    return catalog_->Joinable(left, right, on_column);
  }

  int invocations() const { return invocations_; }
  void CountInvocation() const { ++invocations_; }

 private:
  const rel::Catalog* catalog_;
  mutable int invocations_ = 0;
};

/// Verifier verdict for one review round.
struct VerifierReport {
  bool approved = false;
  std::vector<std::string> hints;  ///< writer guidance when rejected
};

/// \brief Checks a draft logical plan against catalog snapshots.
class PlanVerifier {
 public:
  PlanVerifier(llm::SimulatedLLM* llm, const rel::Catalog* catalog)
      : llm_(llm), tools_(catalog), catalog_(catalog) {}

  /// Structural + data checks: every input resolvable (catalog relation or
  /// a prior node's output), unique outputs, no forward references, a
  /// final output exists, and join-ish nodes pass the joinability tool.
  VerifierReport Verify(const fao::LogicalPlan& plan) const;

  const ToolUser& tools() const { return tools_; }

 private:
  llm::SimulatedLLM* llm_;
  ToolUser tools_;
  const rel::Catalog* catalog_;
};

/// \brief Drafts logical plans from an accepted query sketch.
class LogicalPlanGenerator {
 public:
  LogicalPlanGenerator(llm::SimulatedLLM* llm, const rel::Catalog* catalog)
      : llm_(llm), catalog_(catalog), verifier_(llm, catalog) {}

  /// Writer/verifier loop (max 3 rounds); PlanRejected if no draft passes.
  Result<fao::LogicalPlan> Generate(const parser::QuerySketch& sketch,
                                    const parser::QueryIntent& intent);

  /// Last verifier report (valid after Generate).
  const VerifierReport& last_report() const { return last_report_; }

  /// --- exposed for tests ---
  fao::LogicalPlan DraftPlan(const parser::QueryIntent& intent,
                             const std::vector<std::string>& hints) const;

 private:
  llm::SimulatedLLM* llm_;
  const rel::Catalog* catalog_;
  PlanVerifier verifier_;
  VerifierReport last_report_;
};

}  // namespace kathdb::planner
