#include "planner/plan_generator.h"

#include <set>

#include "common/strings.h"

namespace kathdb::planner {

using fao::FunctionSignature;
using fao::LogicalPlan;

VerifierReport PlanVerifier::Verify(const LogicalPlan& plan) const {
  VerifierReport report;
  if (plan.nodes.empty()) {
    report.hints.push_back("plan is empty");
    return report;
  }
  std::set<std::string> available;
  for (const auto& name : catalog_->ListNames()) available.insert(name);

  std::set<std::string> outputs;
  for (const auto& node : plan.nodes) {
    if (node.name.empty()) {
      report.hints.push_back("a node is missing its function name");
    }
    if (node.output.empty()) {
      report.hints.push_back("node '" + node.name + "' declares no output");
    }
    if (outputs.count(node.output) > 0) {
      report.hints.push_back("output '" + node.output +
                             "' is produced twice");
    }
    for (const auto& in : node.inputs) {
      if (available.count(in) == 0) {
        report.hints.push_back(
            "node '" + node.name + "' consumes '" + in +
            "' which is neither a catalog relation nor a prior output");
      }
    }
    // Join nodes: confirm their two relational inputs actually join.
    if (ContainsIgnoreCase(node.name, "join") && node.inputs.size() == 2 &&
        catalog_->Has(node.inputs[0]) && catalog_->Has(node.inputs[1])) {
      tools_.CountInvocation();
      std::string on;
      if (!tools_.TestJoinability(node.inputs[0], node.inputs[1], &on)) {
        report.hints.push_back("node '" + node.name + "': inputs '" +
                               node.inputs[0] + "' and '" + node.inputs[1] +
                               "' share no joinable column");
      }
    }
    // Inspect a sample of each resolvable catalog input (the "snapshot").
    for (const auto& in : node.inputs) {
      if (catalog_->Has(in)) {
        tools_.CountInvocation();
        auto sample = tools_.SampleRows(in, 3);
        if (!sample.ok()) {
          report.hints.push_back("cannot sample input '" + in + "': " +
                                 sample.status().ToString());
        }
      }
    }
    outputs.insert(node.output);
    available.insert(node.output);
  }
  if (plan.FinalOutput().empty()) {
    report.hints.push_back("plan has no final output");
  }
  report.approved = report.hints.empty();
  llm_->Charge("Plan verifier: review draft logical plan with sample data.",
               report.approved ? "approved" : Join(report.hints, "; "));
  return report;
}

LogicalPlan LogicalPlanGenerator::DraftPlan(
    const parser::QueryIntent& intent,
    const std::vector<std::string>& hints) const {
  LogicalPlan plan;
  const parser::Criterion* rank = intent.TextRank();
  const parser::Criterion* filter = intent.FindByRole("filter");
  bool wants_recency = intent.FindByTerm("recent") != nullptr;
  const std::string& base = intent.table;

  auto add = [&](const std::string& name, const std::string& description,
                 std::vector<std::string> inputs, const std::string& output) {
    FunctionSignature sig;
    sig.name = name;
    sig.description = description;
    sig.inputs = std::move(inputs);
    sig.output = output;
    plan.nodes.push_back(std::move(sig));
  };

  // Hints from a rejected round can rename a bad input reference; the
  // only recoverable drafting mistake we model is using the bare table
  // name "films" when the catalog calls it differently.
  (void)hints;

  add("select_columns",
      "Select the relevant columns from " + base +
          " (movie id, title, release year, plot document id, poster image "
          "id).",
      {base}, "films_selected");
  std::string score_input = "films_selected";
  // Views are only joined in when a criterion needs that modality.
  if (rank != nullptr) {
    add("join_text_graph",
        "Join the relational view over plot text with the selected films, "
        "associating each film with the entities extracted from its plot "
        "description.",
        {score_input, "text_entities"}, "films_with_text");
    score_input = "films_with_text";
  }
  if (filter != nullptr && filter->modality == "image") {
    add("join_scene_graph",
        "Join the relational view over poster images with the films, "
        "associating each film with the objects extracted from its poster.",
        {score_input, "scene_objects"}, "films_with_image_scene");
    score_input = "films_with_image_scene";
  }
  // Ranking column: text+recency -> combined; text only -> term score;
  // recency only -> recency score; neither -> release year.
  std::string rank_column = "year";
  if (rank != nullptr) rank_column = rank->term + "_score";
  if (rank == nullptr && wants_recency) rank_column = "recency_score";
  if (rank != nullptr) {
    add("gen_" + rank->term + "_score",
        "Assign an " + rank->term + " score to each film by embedding an "
        "LLM-generated keyword list (user meaning: " +
            (rank->clarified_meaning.empty() ? "default"
                                             : rank->clarified_meaning) +
            ") and the entities extracted from the plot, computing their "
            "vector similarity, and aggregating per movie.",
        {score_input}, "films_with_" + rank->term);
    score_input = "films_with_" + rank->term;
  }
  if (wants_recency) {
    add("gen_recency_score",
        "Assign a recency score to each film based on its release year, "
        "scaled so newer films score higher.",
        {score_input}, "films_with_recency");
    score_input = "films_with_recency";
    if (rank != nullptr) {
      add("combine_scores",
          "Combine the content score and the recency score into a final "
          "score with a weighted sum per the user's preference.",
          {score_input}, "films_with_final_score");
      score_input = "films_with_final_score";
      rank_column = "final_score";
    }
  }
  if (filter != nullptr && filter->modality == "image") {
    add("classify_" + filter->term,
        "Analyze visual features of each film's poster (scene-graph "
        "objects, color statistics, raw pixels) and flag whether the "
        "poster is '" + filter->term + "'.",
        {score_input}, "films_with_" + filter->term + "_flag");
    add("filter_" + filter->term,
        "Keep only the films whose poster was classified '" + filter->term +
            "'.",
        {"films_with_" + filter->term + "_flag"}, "films_filtered");
    score_input = "films_filtered";
  }
  add("join_results",
      "Join the intermediate results so every remaining film carries its "
      "scores and classification flags.",
      {score_input}, "films_joined");
  add("rank_films",
      "Rank these films by their " + rank_column +
          " in descending order, highlighting the most notable among "
          "those that passed the poster filter.",
      {"films_joined"}, "films_ranked");
  return plan;
}

Result<LogicalPlan> LogicalPlanGenerator::Generate(
    const parser::QuerySketch& sketch, const parser::QueryIntent& intent) {
  std::vector<std::string> hints;
  constexpr int kMaxRounds = 3;
  for (int round = 0; round < kMaxRounds; ++round) {
    LogicalPlan draft = DraftPlan(intent, hints);
    llm_->Charge("Plan writer: draft logical plan for sketch:\n" +
                     sketch.ToText() + "\nCatalog:\n" +
                     catalog_->DescribeAll() +
                     (hints.empty() ? "" : "\nHints: " + Join(hints, "; ")),
                 draft.ToJson().Dump());
    last_report_ = verifier_.Verify(draft);
    if (last_report_.approved) return draft;
    hints = last_report_.hints;
  }
  return Status::PlanRejected(
      "plan verifier rejected all drafts: " + Join(last_report_.hints, "; "));
}

}  // namespace kathdb::planner
