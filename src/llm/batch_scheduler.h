/// \file batch_scheduler.h
/// \brief Cross-query batching of simulated LLM/vision round trips.
///
/// Every FAO morsel and agent prompt used to pay its own blocking model
/// round trip, so throughput was bounded by thread count. The
/// BatchScheduler turns those calls into asynchronous submissions: work
/// items land in a pending map keyed by a compact 64-bit prompt
/// fingerprint (common/hash.h FNV-1a/splitmix64 — the memory-lean lookup
/// idiom of SHIP/Othello, not a heap-heavy string map), identical
/// fingerprints coalesce onto one generation regardless of which morsel,
/// query, or session submitted them, and a single flusher thread fires the
/// batch when either the size cap or the flush deadline (injectable Clock)
/// is reached. One batch pays one simulated round trip — max of its items'
/// latencies, not the sum — and each unique fingerprint is generated and
/// charged exactly once.
///
/// \ingroup kathdb_llm

#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/sync.h"

namespace kathdb::rel {
class Table;
}  // namespace kathdb::rel

namespace kathdb::llm {

/// Value produced by one batched generation: either a relational table
/// (FAO partition evaluation) or a text completion (agent prompt). The
/// scheduler is agnostic — it just transports the result to every waiter
/// coalesced onto the fingerprint.
struct BatchResult {
  std::shared_ptr<const rel::Table> table;
  std::string text;
};

/// Runs the actual model work for one unique fingerprint. Executed on the
/// flusher thread, exactly once per fingerprint per flight, with the
/// batch's round-trip latency already paid — generators must not sleep.
using BatchGenerator = std::function<Result<BatchResult>()>;

/// Completion callback; invoked exactly once per Submit, on the flusher
/// thread (or inline when the scheduler is shut down).
using BatchCallback = std::function<void(const Result<BatchResult>&)>;

struct BatchOptions {
  /// Flush as soon as this many *unique* fingerprints are pending.
  int max_batch_size = 8;
  /// Flush a pending item at latest this long after it was submitted.
  double flush_deadline_ms = 1.0;
  /// Fixed per-flush overhead added to the batch round trip, modelling
  /// the transport cost of a batched API call.
  double batch_latency_ms = 0.0;
  /// Time source; defaults to the wall clock. Tests inject a ManualClock
  /// for deterministic deadline control.
  common::Clock* clock = nullptr;
};

struct BatchStats {
  int64_t submitted = 0;    ///< Submit calls accepted
  int64_t coalesced = 0;    ///< submissions that joined an in-flight twin
  int64_t generated = 0;    ///< unique generations executed
  int64_t flushes = 0;      ///< batches fired
  int64_t size_flushes = 0; ///< ... because the size cap filled
  int64_t deadline_flushes = 0;  ///< ... because the deadline expired
  int64_t failed = 0;       ///< generations that returned an error

  std::string ToText() const;
};

/// \brief Deadline/size-cap batching scheduler with in-flight dedup.
///
/// Thread-safe. Submissions from any thread; one internal flusher thread
/// owns batch execution, so generators for a given fingerprint never race.
/// Shutdown drains: pending work is flushed (and waiters completed)
/// before the flusher joins; Submit after shutdown completes the waiter
/// inline with kUnavailable.
class BatchScheduler {
 public:
  explicit BatchScheduler(BatchOptions options = {});
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueues work for `fingerprint`. If an identical fingerprint is
  /// already pending, the submission coalesces onto it — `generate` is
  /// dropped and the waiter shares the twin's single generation.
  /// `latency_ms` is the round trip this item would have paid alone; the
  /// flush pays max over the batch. `on_done` is always invoked exactly
  /// once — with the generation result, the generation error, or
  /// kUnavailable after shutdown.
  void Submit(uint64_t fingerprint, BatchGenerator generate,
              double latency_ms, BatchCallback on_done) KATHDB_EXCLUDES(mu_);

  /// Future-returning convenience over the callback form.
  std::future<Result<BatchResult>> SubmitFuture(uint64_t fingerprint,
                                                BatchGenerator generate,
                                                double latency_ms);

  /// Flushes everything pending, synchronously waits for completion, then
  /// stops the flusher. Idempotent.
  void Shutdown() KATHDB_EXCLUDES(mu_);

  BatchStats stats() const KATHDB_EXCLUDES(mu_);
  const BatchOptions& options() const { return options_; }
  common::Clock* clock() const { return clock_; }

  /// Unique fingerprints currently pending (test/diagnostic hook).
  size_t pending() const KATHDB_EXCLUDES(mu_);

 private:
  struct PendingItem {
    uint64_t fingerprint = 0;
    BatchGenerator generate;
    double latency_ms = 0.0;
    int64_t submitted_micros = 0;
    std::vector<BatchCallback> waiters;
  };

  void FlusherLoop() KATHDB_EXCLUDES(mu_);
  /// Moves up to max_batch_size oldest pending items out of the pending
  /// map into `*batch`. Called on the flusher thread with mu_ held.
  void CollectBatchLocked(std::vector<PendingItem>* batch)
      KATHDB_REQUIRES(mu_);

  BatchOptions options_;
  common::Clock* clock_;
  int64_t waker_id_ = 0;  ///< ManualClock waker registration, 0 if none

  mutable common::Mutex mu_;
  common::CondVar cv_;
  // Insertion-ordered pending map: seq -> item, with a fingerprint index
  // for O(log n) coalescing. Oldest item defines the flush deadline.
  std::map<int64_t, PendingItem> pending_ KATHDB_GUARDED_BY(mu_);
  std::map<uint64_t, int64_t> fp_to_seq_ KATHDB_GUARDED_BY(mu_);
  int64_t next_seq_ KATHDB_GUARDED_BY(mu_) = 1;
  bool shutdown_ KATHDB_GUARDED_BY(mu_) = false;
  BatchStats stats_ KATHDB_GUARDED_BY(mu_);
  std::thread flusher_;
};

}  // namespace kathdb::llm
