/// \file channel.h
/// \brief Human-AI interaction channels (Section 5 of the paper).
///
/// KathDB keeps the user in the loop during parsing (clarification and
/// correction), execution (semantic anomaly confirmation) and explanation.
/// The UserChannel interface abstracts the human; ScriptedUser replays a
/// queue of replies so experiments are reproducible (the paper itself
/// simulates user replies in §6); every exchange is logged for the
/// user-effort metrics of E9.
///
/// \ingroup kathdb_llm

#pragma once

#include <atomic>
#include <deque>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/sync.h"

namespace kathdb::llm {

/// One logged exchange on a channel.
struct Exchange {
  std::string stage;     // "parse", "execute", "explain"
  std::string question;  // system -> user
  std::string answer;    // user -> system ("" for notifications)
};

/// \brief Abstract user on the other end of the interaction channels.
class UserChannel {
 public:
  virtual ~UserChannel() = default;

  /// Asks the user a question during `stage`; returns their reply.
  virtual Result<std::string> Ask(const std::string& stage,
                                  const std::string& question) = 0;

  /// One-way notification (progress, repair reports).
  virtual void Notify(const std::string& stage,
                      const std::string& message) = 0;

  /// Full interaction log (user-effort accounting).
  virtual const std::vector<Exchange>& history() const = 0;

  /// Number of questions the user had to answer.
  virtual size_t questions_asked() const = 0;
};

/// \brief Replays a scripted queue of replies; answers "OK" when empty.
///
/// Internally synchronized: DAG-parallel execution can escalate repairs
/// or anomalies from several node tasks of one query concurrently (the
/// executor serializes the escalations themselves, but notifications may
/// interleave with questions). `history()` returns a reference and is
/// only safe once the query has finished.
class ScriptedUser : public UserChannel {
 public:
  ScriptedUser() = default;
  explicit ScriptedUser(std::vector<std::string> replies)
      : replies_(replies.begin(), replies.end()) {}

  /// Appends a reply to the script.
  void Push(const std::string& reply) KATHDB_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    replies_.push_back(reply);
  }

  /// Simulated think time: each Ask blocks this many milliseconds before
  /// answering, reproducing a remote user on the other end of the
  /// channel. The service layer overlaps this latency across sessions —
  /// it is what the worker pool exists to hide. Default 0 (instant).
  /// Atomic: the knob may be flipped while queries are in flight.
  void set_reply_latency_ms(double ms) {
    reply_latency_ms_.store(ms, std::memory_order_relaxed);
  }
  double reply_latency_ms() const {
    return reply_latency_ms_.load(std::memory_order_relaxed);
  }

  /// Time source for the reply latency; null (default) means the wall
  /// clock. Tests inject a ManualClock so think time is a deterministic
  /// virtual-time jump instead of a real sleep.
  void set_clock(common::Clock* clock) {
    clock_.store(clock, std::memory_order_release);
  }
  common::Clock* clock() const {
    return clock_.load(std::memory_order_acquire);
  }

  Result<std::string> Ask(const std::string& stage,
                          const std::string& question)
      KATHDB_EXCLUDES(mu_) override;
  void Notify(const std::string& stage, const std::string& message)
      KATHDB_EXCLUDES(mu_) override;
  /// Deliberately unchecked: returns a reference into guarded state. Only
  /// safe once the query has finished (documented contract above).
  const std::vector<Exchange>& history() const
      KATHDB_NO_THREAD_SAFETY_ANALYSIS override {
    return history_;
  }
  size_t questions_asked() const KATHDB_EXCLUDES(mu_) override {
    common::MutexLock lock(mu_);
    return questions_;
  }

 private:
  mutable common::Mutex mu_;
  std::deque<std::string> replies_ KATHDB_GUARDED_BY(mu_);
  std::vector<Exchange> history_ KATHDB_GUARDED_BY(mu_);
  size_t questions_ KATHDB_GUARDED_BY(mu_) = 0;
  std::atomic<double> reply_latency_ms_{0.0};
  std::atomic<common::Clock*> clock_{nullptr};
};

}  // namespace kathdb::llm
