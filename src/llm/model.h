/// \file model.h
/// \brief Simulated foundation models with token accounting.
///
/// Substitute for the hosted LLMs (GPT-4o in the paper's prototype). Every
/// agentic component (sketch writer, plan writer/verifier, coder, profiler,
/// critic, monitor, explainer) routes its "calls" through a SimulatedLLM so
/// prompt/completion tokens and dollar cost are metered exactly as they
/// would be against a hosted API, while content generation is deterministic
/// and knowledge-base driven. The model tiers differ in cost and quality,
/// which the cost-based optimizer exploits (cascades, E8).
///
/// \ingroup kathdb_llm

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include "common/sync.h"
#include <string>
#include <vector>

#include "common/status.h"

namespace kathdb::service {
class ResultCache;
}  // namespace kathdb::service

namespace kathdb::llm {

class BatchScheduler;

/// Pricing & quality profile of one simulated model tier.
struct ModelSpec {
  std::string name;
  double usd_per_1k_prompt = 0.0;
  double usd_per_1k_completion = 0.0;
  /// Task quality in [0,1]; drives simulated error rates in baselines and
  /// cascade escalation decisions.
  double quality = 1.0;
};

/// Built-in model tiers.
ModelSpec KathLargeSpec();   ///< flagship: best quality, most expensive
ModelSpec KathMiniSpec();    ///< cheap cascade tier
ModelSpec KathVisionSpec();  ///< vision-language tier

/// \brief Accumulates tokens and cost across all simulated calls.
///
/// Thread-safe: the scalar totals are lock-free atomics and the per-model
/// breakdown hides behind a small mutex, so one meter can aggregate usage
/// across every concurrent session of the service layer.
class UsageMeter {
 public:
  void Record(const ModelSpec& model, int prompt_tokens,
              int completion_tokens);

  int64_t total_calls() const {
    return total_calls_.load(std::memory_order_relaxed);
  }
  int64_t total_prompt_tokens() const {
    return prompt_tokens_.load(std::memory_order_relaxed);
  }
  int64_t total_completion_tokens() const {
    return completion_tokens_.load(std::memory_order_relaxed);
  }
  int64_t total_tokens() const {
    return total_prompt_tokens() + total_completion_tokens();
  }
  double total_cost_usd() const {
    return cost_usd_.load(std::memory_order_relaxed);
  }

  /// Tokens attributed to one model tier.
  int64_t tokens_for(const std::string& model_name) const
      KATHDB_EXCLUDES(map_mu_);

  void Reset() KATHDB_EXCLUDES(map_mu_);

  /// "calls=12 tokens=8.4k cost=$0.031" summary line.
  std::string Summary() const;

 private:
  std::atomic<int64_t> total_calls_{0};
  std::atomic<int64_t> prompt_tokens_{0};
  std::atomic<int64_t> completion_tokens_{0};
  std::atomic<double> cost_usd_{0.0};
  mutable common::Mutex map_mu_;
  std::map<std::string, int64_t> per_model_tokens_ KATHDB_GUARDED_BY(map_mu_);
};

/// \brief A deterministic simulated LLM endpoint.
///
/// `Charge` meters a prompt/completion pair; the knowledge-based helper
/// methods implement the specific capabilities KathDB's agents need.
class SimulatedLLM {
 public:
  SimulatedLLM(ModelSpec spec, UsageMeter* meter)
      : spec_(std::move(spec)), meter_(meter) {}

  const ModelSpec& spec() const { return spec_; }

  /// Meters one simulated call (token counts approximated from text).
  void Charge(const std::string& prompt, const std::string& completion);

  /// Attaches a cross-query completion cache (may be null to detach).
  /// Must be called before concurrent use begins; the pointer itself is
  /// not synchronized.
  void set_result_cache(service::ResultCache* cache) { cache_ = cache; }
  service::ResultCache* result_cache() const { return cache_; }

  /// Attaches a cross-query batch scheduler (may be null to detach).
  /// Like the cache pointer, set before concurrent use begins.
  void set_batch_scheduler(BatchScheduler* batcher) { batcher_ = batcher; }
  BatchScheduler* batch_scheduler() const { return batcher_; }

  /// Asynchronous submit/complete interface. Cache hits resolve to a
  /// ready future without metering; otherwise the prompt is submitted to
  /// the batch scheduler under the fingerprint
  /// hash(model, prompt) — identical prompts from any morsel, query, or
  /// session coalesce onto one generation, metered and cached exactly
  /// once per unique prompt. Without a scheduler the future is completed
  /// inline (synchronous degradation). The only error the future can
  /// carry is kUnavailable from a shut-down scheduler.
  std::future<Result<std::string>> Submit(
      const std::string& prompt,
      const std::function<std::string()>& generate);

  /// Memoized completion for `prompt`: a cache hit returns the stored
  /// completion without metering a call (the whole point — a repeated
  /// identical call costs no tokens); a miss runs `generate`, meters the
  /// prompt/completion pair, and stores it. Without an attached cache
  /// this is exactly generate-then-Charge. With a batch scheduler
  /// attached this blocks on Submit (falling back to the synchronous
  /// path if the scheduler is already shut down).
  std::string Complete(const std::string& prompt,
                       const std::function<std::string()>& generate);

  /// Subjective/ambiguous terms found in `query` ("exciting", "boring",
  /// "good", ...) that warrant a proactive clarification question.
  std::vector<std::string> DetectAmbiguousTerms(const std::string& query);

  /// Expands a subjective term (+ clarification context) into a keyword
  /// list, e.g. "exciting" -> {gun, murder, chase, ...}. Reproduces the
  /// LLM-generated keyword list of §6 step (4).
  std::vector<std::string> GenerateKeywords(const std::string& term,
                                            const std::string& context);

  /// Classifies a function's dependency pattern from its description, as
  /// the paper has the function-generating LLM do (Section 3).
  /// Returns one of "one_to_one", "one_to_many", "many_to_one",
  /// "many_to_many".
  std::string ClassifyDependencyPattern(const std::string& description);

  /// One-sentence NL gloss of a pipeline step, used by explainers.
  std::string Summarize(const std::string& text);

 private:
  /// Synchronous generate + meter + cache-store body shared by the
  /// scheduler-less path and the shutdown fallback.
  std::string CompleteSync(uint64_t key, const std::string& prompt,
                           const std::function<std::string()>& generate);

  ModelSpec spec_;
  UsageMeter* meter_;
  service::ResultCache* cache_ = nullptr;
  BatchScheduler* batcher_ = nullptr;
};

}  // namespace kathdb::llm
