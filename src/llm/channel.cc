#include "llm/channel.h"

namespace kathdb::llm {

Result<std::string> ScriptedUser::Ask(const std::string& stage,
                                      const std::string& question) {
  double latency_ms = reply_latency_ms();
  if (latency_ms > 0.0) {
    // Think time goes through the injectable clock: real sleep on the
    // wall clock, a deterministic virtual-time jump on a ManualClock (no
    // sleep_for timing for TSan to trip over).
    common::Clock* c = clock();
    if (c == nullptr) c = common::Clock::System();
    c->SleepFor(latency_ms);
  }
  common::MutexLock lock(mu_);
  ++questions_;
  std::string answer = "OK";
  if (!replies_.empty()) {
    answer = replies_.front();
    replies_.pop_front();
  }
  history_.push_back({stage, question, answer});
  return answer;
}

void ScriptedUser::Notify(const std::string& stage,
                          const std::string& message) {
  common::MutexLock lock(mu_);
  history_.push_back({stage, message, ""});
}

}  // namespace kathdb::llm
