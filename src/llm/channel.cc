#include "llm/channel.h"

#include <chrono>
#include <thread>

namespace kathdb::llm {

Result<std::string> ScriptedUser::Ask(const std::string& stage,
                                      const std::string& question) {
  if (reply_latency_ms_ > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(reply_latency_ms_));
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++questions_;
  std::string answer = "OK";
  if (!replies_.empty()) {
    answer = replies_.front();
    replies_.pop_front();
  }
  history_.push_back({stage, question, answer});
  return answer;
}

void ScriptedUser::Notify(const std::string& stage,
                          const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  history_.push_back({stage, message, ""});
}

}  // namespace kathdb::llm
