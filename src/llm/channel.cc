#include "llm/channel.h"

namespace kathdb::llm {

Result<std::string> ScriptedUser::Ask(const std::string& stage,
                                      const std::string& question) {
  if (reply_latency_ms_ > 0.0) {
    // Think time goes through the injectable clock: real sleep on the
    // wall clock, a deterministic virtual-time jump on a ManualClock (no
    // sleep_for timing for TSan to trip over).
    common::Clock* clock =
        clock_ != nullptr ? clock_ : common::Clock::System();
    clock->SleepFor(reply_latency_ms_);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++questions_;
  std::string answer = "OK";
  if (!replies_.empty()) {
    answer = replies_.front();
    replies_.pop_front();
  }
  history_.push_back({stage, question, answer});
  return answer;
}

void ScriptedUser::Notify(const std::string& stage,
                          const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  history_.push_back({stage, message, ""});
}

}  // namespace kathdb::llm
