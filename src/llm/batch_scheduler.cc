#include "llm/batch_scheduler.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace kathdb::llm {

std::string BatchStats::ToText() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "batch: submitted=%lld coalesced=%lld generated=%lld "
                "flushes=%lld (size=%lld deadline=%lld) failed=%lld",
                static_cast<long long>(submitted),
                static_cast<long long>(coalesced),
                static_cast<long long>(generated),
                static_cast<long long>(flushes),
                static_cast<long long>(size_flushes),
                static_cast<long long>(deadline_flushes),
                static_cast<long long>(failed));
  return buf;
}

BatchScheduler::BatchScheduler(BatchOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : common::Clock::System()) {
  if (options_.max_batch_size < 1) options_.max_batch_size = 1;
  if (options_.flush_deadline_ms < 0.0) options_.flush_deadline_ms = 0.0;
  if (auto* manual = dynamic_cast<common::ManualClock*>(clock_)) {
    // Advancing virtual time must re-evaluate the flush deadline: lock
    // then notify so the wake cannot slip between the flusher's deadline
    // check and its wait.
    waker_id_ = manual->RegisterWaker([this] {
      { common::MutexLock lock(mu_); }
      cv_.NotifyAll();
    });
  }
  flusher_ = std::thread([this] { FlusherLoop(); });
}

BatchScheduler::~BatchScheduler() {
  Shutdown();
  if (waker_id_ != 0) {
    if (auto* manual = dynamic_cast<common::ManualClock*>(clock_)) {
      manual->UnregisterWaker(waker_id_);
    }
  }
}

void BatchScheduler::Submit(uint64_t fingerprint, BatchGenerator generate,
                            double latency_ms, BatchCallback on_done) {
  {
    common::MutexLock lock(mu_);
    if (!shutdown_) {
      stats_.submitted++;
      auto idx = fp_to_seq_.find(fingerprint);
      if (idx != fp_to_seq_.end()) {
        // In-flight dedup: join the pending twin; its single generation
        // serves every coalesced waiter.
        PendingItem& item = pending_[idx->second];
        item.waiters.push_back(std::move(on_done));
        item.latency_ms = std::max(item.latency_ms, latency_ms);
        stats_.coalesced++;
      } else {
        int64_t seq = next_seq_++;
        PendingItem item;
        item.fingerprint = fingerprint;
        item.generate = std::move(generate);
        item.latency_ms = latency_ms;
        item.submitted_micros = clock_->NowMicros();
        item.waiters.push_back(std::move(on_done));
        pending_.emplace(seq, std::move(item));
        fp_to_seq_[fingerprint] = seq;
      }
      cv_.NotifyAll();
      return;
    }
  }
  // Shut down: complete the waiter inline so no caller ever hangs.
  on_done(Status::Unavailable("batch scheduler is shut down"));
}

std::future<Result<BatchResult>> BatchScheduler::SubmitFuture(
    uint64_t fingerprint, BatchGenerator generate, double latency_ms) {
  auto promise = std::make_shared<std::promise<Result<BatchResult>>>();
  auto future = promise->get_future();
  Submit(fingerprint, std::move(generate), latency_ms,
         [promise](const Result<BatchResult>& result) {
           promise->set_value(result);
         });
  return future;
}

void BatchScheduler::Shutdown() {
  {
    common::MutexLock lock(mu_);
    shutdown_ = true;
    cv_.NotifyAll();
  }
  if (flusher_.joinable()) flusher_.join();
}

BatchStats BatchScheduler::stats() const {
  common::MutexLock lock(mu_);
  return stats_;
}

size_t BatchScheduler::pending() const {
  common::MutexLock lock(mu_);
  return pending_.size();
}

void BatchScheduler::FlusherLoop() {
  const int64_t deadline_us =
      static_cast<int64_t>(options_.flush_deadline_ms * 1000.0);
  for (;;) {
    std::vector<PendingItem> batch;
    {
      common::MutexLock lock(mu_);
      for (;;) {
        if (pending_.empty()) {
          if (shutdown_) return;
          cv_.Wait(mu_);
          continue;
        }
        bool size_hit =
            pending_.size() >= static_cast<size_t>(options_.max_batch_size);
        int64_t oldest_deadline =
            pending_.begin()->second.submitted_micros + deadline_us;
        bool deadline_hit =
            shutdown_ || clock_->NowMicros() >= oldest_deadline;
        if (size_hit || deadline_hit) {
          CollectBatchLocked(&batch);
          stats_.flushes++;
          if (deadline_hit && !size_hit) {
            stats_.deadline_flushes++;
          } else {
            stats_.size_flushes++;
          }
          break;
        }
        clock_->WaitUntil(mu_, cv_, oldest_deadline);
      }
    }

    // One simulated round trip for the whole batch: the max of its items'
    // solo latencies plus the fixed transport overhead — this is the
    // latency collapse that batching buys. Paid outside the lock so
    // submissions keep landing while the batch is in flight.
    double rtt_ms = options_.batch_latency_ms;
    for (const auto& item : batch) rtt_ms = std::max(rtt_ms, item.latency_ms);
    if (rtt_ms > 0.0) clock_->SleepFor(rtt_ms);

    std::vector<Result<BatchResult>> results;
    results.reserve(batch.size());
    int64_t failed = 0;
    for (auto& item : batch) {
      results.push_back(item.generate());
      if (!results.back().ok()) failed++;
    }

    // Publish the generation counters *before* waking any waiter: a
    // caller that observes its future completed must also observe the
    // stats that paid for it.
    {
      common::MutexLock lock(mu_);
      stats_.generated += static_cast<int64_t>(batch.size());
      stats_.failed += failed;
    }

    for (size_t i = 0; i < batch.size(); ++i) {
      for (auto& waiter : batch[i].waiters) waiter(results[i]);
    }
  }
}

void BatchScheduler::CollectBatchLocked(std::vector<PendingItem>* batch) {
  batch->reserve(std::min<size_t>(
      pending_.size(), static_cast<size_t>(options_.max_batch_size)));
  while (!pending_.empty() &&
         batch->size() < static_cast<size_t>(options_.max_batch_size)) {
    auto oldest = pending_.begin();
    fp_to_seq_.erase(oldest->second.fingerprint);
    batch->push_back(std::move(oldest->second));
    pending_.erase(oldest);
  }
}

}  // namespace kathdb::llm
