#include "llm/model.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "vector/embedding.h"

namespace kathdb::llm {

ModelSpec KathLargeSpec() { return {"kath-large", 0.0025, 0.0100, 0.97}; }
ModelSpec KathMiniSpec() { return {"kath-mini", 0.00015, 0.0006, 0.80}; }
ModelSpec KathVisionSpec() { return {"kath-vision", 0.0030, 0.0120, 0.93}; }

void UsageMeter::Record(const ModelSpec& model, int prompt_tokens,
                        int completion_tokens) {
  ++total_calls_;
  prompt_tokens_ += prompt_tokens;
  completion_tokens_ += completion_tokens;
  cost_usd_ += prompt_tokens / 1000.0 * model.usd_per_1k_prompt +
               completion_tokens / 1000.0 * model.usd_per_1k_completion;
  per_model_tokens_[model.name] += prompt_tokens + completion_tokens;
}

int64_t UsageMeter::tokens_for(const std::string& model_name) const {
  auto it = per_model_tokens_.find(model_name);
  return it == per_model_tokens_.end() ? 0 : it->second;
}

void UsageMeter::Reset() {
  total_calls_ = 0;
  prompt_tokens_ = 0;
  completion_tokens_ = 0;
  cost_usd_ = 0.0;
  per_model_tokens_.clear();
}

std::string UsageMeter::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "calls=%lld tokens=%.1fk cost=$%.4f",
                static_cast<long long>(total_calls_),
                total_tokens() / 1000.0, cost_usd_);
  return buf;
}

void SimulatedLLM::Charge(const std::string& prompt,
                          const std::string& completion) {
  if (meter_ != nullptr) {
    meter_->Record(spec_, ApproxTokenCount(prompt),
                   ApproxTokenCount(completion));
  }
}

std::vector<std::string> SimulatedLLM::DetectAmbiguousTerms(
    const std::string& query) {
  // "Look for ambiguous terms or subjective words..." (paper, Section 5).
  static const std::set<std::string> kSubjective = {
      "exciting", "boring",  "good",       "best", "interesting", "nice",
      "fun",      "scary",   "beautiful",  "bad",  "great",       "cool",
      "dull",     "notable", "memorable"};
  std::vector<std::string> found;
  for (const auto& tok : Tokenize(query)) {
    if (kSubjective.count(tok) > 0 &&
        std::find(found.begin(), found.end(), tok) == found.end()) {
      found.push_back(tok);
    }
  }
  Charge("Look for ambiguous terms or subjective words in the query: " +
             query,
         Join(found, ", "));
  return found;
}

std::vector<std::string> SimulatedLLM::GenerateKeywords(
    const std::string& term, const std::string& context) {
  static const vec::ConceptLexicon lexicon = vec::ConceptLexicon::BuiltIn();
  std::string t = ToLower(term);
  std::vector<std::string> concepts;
  // Map the subjective term (refined by user context) onto lexicon
  // concepts, as the paper's LLM maps "exciting" to weapons/motorcycles.
  if (t == "exciting" || t == "scary" || t == "intense") {
    concepts = {"violence", "action"};
    if (ContainsIgnoreCase(context, "uncommon") ||
        ContainsIgnoreCase(context, "real life")) {
      concepts.push_back("suspense");
    }
  } else if (t == "boring" || t == "dull" || t == "plain") {
    concepts = {"visual_dull"};
  } else if (t == "romantic") {
    concepts = {"romance"};
  } else if (t == "calm" || t == "peaceful") {
    concepts = {"calm"};
  } else {
    concepts = {"action"};
  }
  std::vector<std::string> keywords;
  for (const auto& c : concepts) {
    for (const auto& tok : lexicon.TokensOf(c)) {
      keywords.push_back(tok);
    }
  }
  // Keep the list prompt-sized: representative subset, stable order.
  if (keywords.size() > 16) keywords.resize(16);
  Charge("Generate a keyword list capturing '" + term +
             "' given the user context: " + context,
         Join(keywords, ", "));
  return keywords;
}

std::string SimulatedLLM::ClassifyDependencyPattern(
    const std::string& description) {
  std::string d = ToLower(description);
  std::string pattern;
  if (ContainsIgnoreCase(d, "join") || ContainsIgnoreCase(d, "combine all") ||
      ContainsIgnoreCase(d, "merge")) {
    pattern = "many_to_many";
  } else if (ContainsIgnoreCase(d, "rank") || ContainsIgnoreCase(d, "sort") ||
             ContainsIgnoreCase(d, "aggregate") ||
             ContainsIgnoreCase(d, "count") ||
             ContainsIgnoreCase(d, "top")) {
    pattern = "many_to_one";
  } else if (ContainsIgnoreCase(d, "expand") ||
             ContainsIgnoreCase(d, "extract each") ||
             ContainsIgnoreCase(d, "split")) {
    pattern = "one_to_many";
  } else {
    // score / classify / filter / select: one output row per input row.
    pattern = "one_to_one";
  }
  Charge("Classify the dependency pattern (one_to_one, one_to_many, "
         "many_to_one, many_to_many) of: " +
             description,
         pattern);
  return pattern;
}

std::string SimulatedLLM::Summarize(const std::string& text) {
  // Deterministic "summary": first clause, trimmed.
  std::string out = text;
  auto cut = out.find_first_of(".;\n");
  if (cut != std::string::npos) out = out.substr(0, cut);
  if (out.size() > 140) out = out.substr(0, 137) + "...";
  Charge("Summarize: " + text, out);
  return out;
}

}  // namespace kathdb::llm
