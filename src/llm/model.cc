#include "llm/model.h"

#include <algorithm>
#include <set>

#include "common/hash.h"
#include "common/strings.h"
#include "llm/batch_scheduler.h"
#include "service/result_cache.h"
#include "vector/embedding.h"

namespace kathdb::llm {

ModelSpec KathLargeSpec() { return {"kath-large", 0.0025, 0.0100, 0.97}; }
ModelSpec KathMiniSpec() { return {"kath-mini", 0.00015, 0.0006, 0.80}; }
ModelSpec KathVisionSpec() { return {"kath-vision", 0.0030, 0.0120, 0.93}; }

void UsageMeter::Record(const ModelSpec& model, int prompt_tokens,
                        int completion_tokens) {
  total_calls_.fetch_add(1, std::memory_order_relaxed);
  prompt_tokens_.fetch_add(prompt_tokens, std::memory_order_relaxed);
  completion_tokens_.fetch_add(completion_tokens, std::memory_order_relaxed);
  double delta = prompt_tokens / 1000.0 * model.usd_per_1k_prompt +
                 completion_tokens / 1000.0 * model.usd_per_1k_completion;
  // C++17 has no atomic<double>::fetch_add; a CAS loop keeps the total
  // exact under contention.
  double cur = cost_usd_.load(std::memory_order_relaxed);
  while (!cost_usd_.compare_exchange_weak(cur, cur + delta,
                                          std::memory_order_relaxed)) {
  }
  common::MutexLock lock(map_mu_);
  per_model_tokens_[model.name] += prompt_tokens + completion_tokens;
}

int64_t UsageMeter::tokens_for(const std::string& model_name) const {
  common::MutexLock lock(map_mu_);
  auto it = per_model_tokens_.find(model_name);
  return it == per_model_tokens_.end() ? 0 : it->second;
}

void UsageMeter::Reset() {
  total_calls_.store(0, std::memory_order_relaxed);
  prompt_tokens_.store(0, std::memory_order_relaxed);
  completion_tokens_.store(0, std::memory_order_relaxed);
  cost_usd_.store(0.0, std::memory_order_relaxed);
  common::MutexLock lock(map_mu_);
  per_model_tokens_.clear();
}

std::string UsageMeter::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "calls=%lld tokens=%.1fk cost=$%.4f",
                static_cast<long long>(total_calls()),
                total_tokens() / 1000.0, total_cost_usd());
  return buf;
}

void SimulatedLLM::Charge(const std::string& prompt,
                          const std::string& completion) {
  if (cache_ != nullptr) {
    // With a result cache attached (service mode), an identical call that
    // some query already paid for is answered "from cache" and not
    // metered again — the simulated analogue of provider prompt caching.
    // Probed via Contains so these dedup markers do not count into the
    // hit/miss stats, which track reuse of actual results.
    uint64_t key = common::Fnv1a64("charge:" + spec_.name);
    key = common::HashCombine(key, common::Fnv1a64(prompt));
    key = common::HashCombine(key, common::Fnv1a64(completion));
    if (cache_->Contains(key)) return;
    cache_->Put(key, service::CacheEntry{nullptr, std::string()});
  }
  if (meter_ != nullptr) {
    meter_->Record(spec_, ApproxTokenCount(prompt),
                   ApproxTokenCount(completion));
  }
}

std::string SimulatedLLM::CompleteSync(
    uint64_t key, const std::string& prompt,
    const std::function<std::string()>& generate) {
  std::string completion = generate();
  // Metered directly: the completion entry below already dedups repeat
  // calls, so Charge's marker entry would only waste cache slots.
  if (meter_ != nullptr) {
    meter_->Record(spec_, ApproxTokenCount(prompt),
                   ApproxTokenCount(completion));
  }
  if (cache_ != nullptr) {
    cache_->Put(key, service::CacheEntry{nullptr, completion});
  }
  return completion;
}

std::future<Result<std::string>> SimulatedLLM::Submit(
    const std::string& prompt, const std::function<std::string()>& generate) {
  // The batch fingerprint doubles as the completion cache key, so a
  // coalesced twin and a cache hit produce byte-identical outcomes.
  uint64_t key = common::HashCombine(common::Fnv1a64(spec_.name),
                                     common::Fnv1a64(prompt));
  auto promise = std::make_shared<std::promise<Result<std::string>>>();
  auto future = promise->get_future();
  if (cache_ != nullptr) {
    if (auto hit = cache_->Get(key)) {
      promise->set_value(hit->text);
      return future;
    }
  }
  if (batcher_ == nullptr) {
    promise->set_value(CompleteSync(key, prompt, generate));
    return future;
  }
  batcher_->Submit(
      key,
      [this, key, prompt, generate]() -> Result<BatchResult> {
        // Runs on the flusher thread, exactly once per unique in-flight
        // prompt: every coalesced waiter shares this one charge.
        return BatchResult{nullptr, CompleteSync(key, prompt, generate)};
      },
      /*latency_ms=*/0.0,
      [promise](const Result<BatchResult>& result) {
        if (result.ok()) {
          promise->set_value(result.value().text);
        } else {
          promise->set_value(result.status());
        }
      });
  return future;
}

std::string SimulatedLLM::Complete(
    const std::string& prompt, const std::function<std::string()>& generate) {
  auto result = Submit(prompt, generate).get();
  if (result.ok()) return std::move(result).value();
  // kUnavailable (scheduler shut down mid-query): degrade to the
  // synchronous path rather than dropping the completion.
  uint64_t key = common::HashCombine(common::Fnv1a64(spec_.name),
                                     common::Fnv1a64(prompt));
  return CompleteSync(key, prompt, generate);
}

std::vector<std::string> SimulatedLLM::DetectAmbiguousTerms(
    const std::string& query) {
  // "Look for ambiguous terms or subjective words..." (paper, Section 5).
  static const std::set<std::string> kSubjective = {
      "exciting", "boring",  "good",       "best", "interesting", "nice",
      "fun",      "scary",   "beautiful",  "bad",  "great",       "cool",
      "dull",     "notable", "memorable"};
  std::string completion = Complete(
      "Look for ambiguous terms or subjective words in the query: " + query,
      [&] {
        std::vector<std::string> found;
        for (const auto& tok : Tokenize(query)) {
          if (kSubjective.count(tok) > 0 &&
              std::find(found.begin(), found.end(), tok) == found.end()) {
            found.push_back(tok);
          }
        }
        return Join(found, ", ");
      });
  std::vector<std::string> found;
  for (const auto& piece : SplitAny(completion, ", ")) found.push_back(piece);
  return found;
}

std::vector<std::string> SimulatedLLM::GenerateKeywords(
    const std::string& term, const std::string& context) {
  std::string completion = Complete(
      "Generate a keyword list capturing '" + term +
          "' given the user context: " + context,
      [&] {
        static const vec::ConceptLexicon lexicon =
            vec::ConceptLexicon::BuiltIn();
        std::string t = ToLower(term);
        std::vector<std::string> concepts;
        // Map the subjective term (refined by user context) onto lexicon
        // concepts, as the paper's LLM maps "exciting" to
        // weapons/motorcycles.
        if (t == "exciting" || t == "scary" || t == "intense") {
          concepts = {"violence", "action"};
          if (ContainsIgnoreCase(context, "uncommon") ||
              ContainsIgnoreCase(context, "real life")) {
            concepts.push_back("suspense");
          }
        } else if (t == "boring" || t == "dull" || t == "plain") {
          concepts = {"visual_dull"};
        } else if (t == "romantic") {
          concepts = {"romance"};
        } else if (t == "calm" || t == "peaceful") {
          concepts = {"calm"};
        } else {
          concepts = {"action"};
        }
        std::vector<std::string> keywords;
        for (const auto& c : concepts) {
          for (const auto& tok : lexicon.TokensOf(c)) {
            keywords.push_back(tok);
          }
        }
        // Keep the list prompt-sized: representative subset, stable order.
        if (keywords.size() > 16) keywords.resize(16);
        return Join(keywords, ", ");
      });
  return SplitAny(completion, ", ");
}

std::string SimulatedLLM::ClassifyDependencyPattern(
    const std::string& description) {
  return Complete(
      "Classify the dependency pattern (one_to_one, one_to_many, "
      "many_to_one, many_to_many) of: " +
          description,
      [&] {
        std::string d = ToLower(description);
        if (ContainsIgnoreCase(d, "join") ||
            ContainsIgnoreCase(d, "combine all") ||
            ContainsIgnoreCase(d, "merge")) {
          return std::string("many_to_many");
        }
        if (ContainsIgnoreCase(d, "rank") || ContainsIgnoreCase(d, "sort") ||
            ContainsIgnoreCase(d, "aggregate") ||
            ContainsIgnoreCase(d, "count") || ContainsIgnoreCase(d, "top")) {
          return std::string("many_to_one");
        }
        if (ContainsIgnoreCase(d, "expand") ||
            ContainsIgnoreCase(d, "extract each") ||
            ContainsIgnoreCase(d, "split")) {
          return std::string("one_to_many");
        }
        // score / classify / filter / select: one output row per input row.
        return std::string("one_to_one");
      });
}

std::string SimulatedLLM::Summarize(const std::string& text) {
  return Complete("Summarize: " + text, [&] {
    // Deterministic "summary": first clause, trimmed.
    std::string out = text;
    auto cut = out.find_first_of(".;\n");
    if (cut != std::string::npos) out = out.substr(0, cut);
    if (out.size() > 140) out = out.substr(0, 137) + "...";
    return out;
  });
}

}  // namespace kathdb::llm
