/// \file function.h
/// \brief Physical FAO functions: the interpreter over FunctionSpecs.
///
/// A PhysicalFunction is one concrete, versioned implementation of a
/// logical signature — "a SQL query over a table, a view population using
/// machine learning models, a vector-based similarity search for semantic
/// keyword matching, and more" (paper, Section 2.2). The interpreter
/// instantiates a function object from a FunctionSpec; alternative
/// templates for the same signature are the optimizer's physical choices.
///
/// \ingroup kathdb_fao

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fao/spec.h"
#include "service/result_cache.h"
#include "lineage/lineage.h"
#include "llm/model.h"
#include "multimodal/media.h"
#include "multimodal/scene_graph.h"
#include "multimodal/text_graph.h"
#include "relational/catalog.h"
#include "vector/embedding.h"

namespace kathdb::fao {

/// \brief Raw-image registry keyed by video/image id; the pixel-level
/// classifier implementations fetch from here (the analogue of reading
/// image files referenced by a path column).
class ImageStore {
 public:
  void Put(int64_t vid, mm::SyntheticImage image) {
    images_[vid] = std::move(image);
  }
  Result<mm::SyntheticImage> Get(int64_t vid) const {
    auto it = images_.find(vid);
    if (it == images_.end()) {
      return Status::NotFound("no raw image for vid " + std::to_string(vid));
    }
    return it->second;
  }
  size_t size() const { return images_.size(); }

 private:
  std::map<int64_t, mm::SyntheticImage> images_;
};

/// \brief Everything a function body may touch at execution time.
struct ExecContext {
  rel::Catalog* catalog = nullptr;
  lineage::LineageStore* lineage = nullptr;
  llm::UsageMeter* meter = nullptr;
  mm::ImageLoader* image_loader = nullptr;
  ImageStore* images = nullptr;
  mm::SceneGraphViews scene_views;
  mm::TextGraphViews text_views;
  const vec::TextEmbedder* embedder = nullptr;  ///< defaults provided
  /// Optional cross-query memo for pure function templates (service
  /// layer); consulted by PhysicalFunction::Evaluate.
  service::ResultCache* result_cache = nullptr;
};

/// \brief One executable, versioned implementation of a logical function.
class PhysicalFunction {
 public:
  explicit PhysicalFunction(FunctionSpec spec) : spec_(std::move(spec)) {}
  virtual ~PhysicalFunction() = default;

  const FunctionSpec& spec() const { return spec_; }

  /// Runs the body over `inputs` (resolved by the executor in signature
  /// order). Returns the output table; errors with kSyntacticError are
  /// candidates for the agentic monitor's automatic repair.
  virtual Result<rel::Table> Execute(const std::vector<rel::TablePtr>& inputs,
                                     ExecContext* ctx) = 0;

  /// Cache-aware entry point used by the executor and the optimizer's
  /// profiler: when `ctx->result_cache` is set and the template is pure
  /// (output determined by spec parameters + input contents + immutable
  /// ingest state), looks up the 64-bit key spec-fingerprint x
  /// input-fingerprint; a hit returns the memoized table without running
  /// the body (skipping its model charges — the cross-query saving); a
  /// miss executes and stores. Falls back to plain Execute otherwise.
  Result<rel::Table> Evaluate(const std::vector<rel::TablePtr>& inputs,
                              ExecContext* ctx);

  /// True for templates whose output is a pure function of the spec and
  /// input contents. "sql" is excluded: its body reads arbitrary catalog
  /// state and multi-step bodies register intermediates as a side effect.
  static bool IsCacheableTemplate(const std::string& template_id);

  /// 64-bit fingerprint of the behavioural part of the spec (template,
  /// parameters, dependency pattern — not name or version).
  uint64_t SpecFingerprint() const;

 protected:
  FunctionSpec spec_;
};

/// Instantiates the implementation template named by `spec.template_id`.
/// InvalidArgument for unknown templates or missing parameters.
Result<std::unique_ptr<PhysicalFunction>> InstantiateFunction(
    const FunctionSpec& spec);

/// True if the interpreter knows this template id.
bool IsKnownTemplate(const std::string& template_id);

}  // namespace kathdb::fao
