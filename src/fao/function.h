/// \file function.h
/// \brief Physical FAO functions: the interpreter over FunctionSpecs.
///
/// A PhysicalFunction is one concrete, versioned implementation of a
/// logical signature — "a SQL query over a table, a view population using
/// machine learning models, a vector-based similarity search for semantic
/// keyword matching, and more" (paper, Section 2.2). The interpreter
/// instantiates a function object from a FunctionSpec; alternative
/// templates for the same signature are the optimizer's physical choices.
///
/// \ingroup kathdb_fao

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/sync.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "fao/spec.h"
#include "service/result_cache.h"
#include "lineage/lineage.h"
#include "llm/model.h"
#include "multimodal/media.h"
#include "multimodal/scene_graph.h"
#include "multimodal/text_graph.h"
#include "relational/catalog.h"
#include "vector/embedding.h"

namespace kathdb::llm {
class BatchScheduler;
}  // namespace kathdb::llm

namespace kathdb::fao {

/// \brief Raw-image registry keyed by video/image id; the pixel-level
/// classifier implementations fetch from here (the analogue of reading
/// image files referenced by a path column).
///
/// Internally synchronized (SharedMutex, reads in parallel): concurrent
/// morsel partitions and DAG-parallel node tasks all fetch posters from
/// the one store in their ExecContext while ingestion of a live corpus
/// may still be appending.
class ImageStore {
 public:
  void Put(int64_t vid, mm::SyntheticImage image) KATHDB_EXCLUDES(mu_) {
    common::WriterLock lock(mu_);
    images_[vid] = std::move(image);
  }
  Result<mm::SyntheticImage> Get(int64_t vid) const KATHDB_EXCLUDES(mu_) {
    common::ReaderLock lock(mu_);
    auto it = images_.find(vid);
    if (it == images_.end()) {
      return Status::NotFound("no raw image for vid " + std::to_string(vid));
    }
    return it->second;
  }
  size_t size() const KATHDB_EXCLUDES(mu_) {
    common::ReaderLock lock(mu_);
    return images_.size();
  }

 private:
  mutable common::SharedMutex mu_;
  std::map<int64_t, mm::SyntheticImage> images_ KATHDB_GUARDED_BY(mu_);
};

/// \brief Everything a function body may touch at execution time.
struct ExecContext {
  rel::Catalog* catalog = nullptr;
  lineage::LineageStore* lineage = nullptr;
  llm::UsageMeter* meter = nullptr;
  mm::ImageLoader* image_loader = nullptr;
  ImageStore* images = nullptr;
  mm::SceneGraphViews scene_views;
  mm::TextGraphViews text_views;
  const vec::TextEmbedder* embedder = nullptr;  ///< defaults provided
  /// Optional cross-query memo for pure function templates (service
  /// layer); consulted by PhysicalFunction::Evaluate.
  service::ResultCache* result_cache = nullptr;
  /// Optional intra-query worker pool: the DAG scheduler runs ready plan
  /// nodes on it and EvaluateWithMorsels borrows lanes for partition
  /// evaluation. Null means fully sequential execution.
  common::ThreadPool* exec_pool = nullptr;
  /// Time source for simulated model round trips and user think time.
  /// Null means the wall clock (common::Clock::System()).
  common::Clock* clock = nullptr;
  /// Optional cross-query LLM batch scheduler: when set (service layer)
  /// and the executor enables batching, pure FAO evaluations go through
  /// EvaluateBatched instead of blocking a worker per round trip.
  llm::BatchScheduler* batcher = nullptr;
  /// Set inside batch generators: the flush already paid the batch's one
  /// simulated round trip, so per-row SimulateModelLatency calls are
  /// no-ops (the latency collapse that batching buys).
  bool model_latency_prepaid = false;
};

/// \brief One executable, versioned implementation of a logical function.
class PhysicalFunction {
 public:
  explicit PhysicalFunction(FunctionSpec spec) : spec_(std::move(spec)) {}
  virtual ~PhysicalFunction() = default;

  const FunctionSpec& spec() const { return spec_; }

  /// Runs the body over `inputs` (resolved by the executor in signature
  /// order). Returns the output table; errors with kSyntacticError are
  /// candidates for the agentic monitor's automatic repair.
  virtual Result<rel::Table> Execute(const std::vector<rel::TablePtr>& inputs,
                                     ExecContext* ctx) = 0;

  /// Cache-aware entry point used by the executor and the optimizer's
  /// profiler: when `ctx->result_cache` is set and the template is pure
  /// (output determined by spec parameters + input contents + immutable
  /// ingest state), looks up the 64-bit key spec-fingerprint x
  /// input-fingerprint; a hit returns the memoized table without running
  /// the body (skipping its model charges — the cross-query saving); a
  /// miss executes and stores. Falls back to plain Execute otherwise.
  Result<rel::Table> Evaluate(const std::vector<rel::TablePtr>& inputs,
                              ExecContext* ctx);

  /// True for templates whose output is a pure function of the spec and
  /// input contents. "sql" is excluded: its body reads arbitrary catalog
  /// state and multi-step bodies register intermediates as a side effect.
  static bool IsCacheableTemplate(const std::string& template_id);

  /// 64-bit fingerprint of the behavioural part of the spec (template,
  /// parameters, dependency pattern — not name or version).
  uint64_t SpecFingerprint() const;

 protected:
  FunctionSpec spec_;
};

/// Instantiates the implementation template named by `spec.template_id`.
/// InvalidArgument for unknown templates or missing parameters.
Result<std::unique_ptr<PhysicalFunction>> InstantiateFunction(
    const FunctionSpec& spec);

/// True if the interpreter knows this template id.
bool IsKnownTemplate(const std::string& template_id);

/// True for templates that map input rows independently (each output
/// chunk is a function of the corresponding input chunk, in order):
/// these are safe to evaluate per row morsel and concatenate. "sql" is
/// excluded — its body resolves inputs by catalog name, not row range.
bool IsRowWiseTemplate(const std::string& template_id);

/// Knobs for morsel-partitioned evaluation (set by the executor from
/// ExecutorOptions; the partitioning is a function of morsel_size only,
/// never of the worker count, so results, per-partition cache keys and
/// lineage are identical however many lanes evaluate them).
struct MorselOptions {
  /// Rows per partition; 0 disables splitting.
  size_t morsel_size = 0;
  /// Worker pool for partition evaluation; the calling thread always
  /// participates, so a null (or saturated) pool degrades to sequential
  /// partition evaluation rather than blocking.
  common::ThreadPool* pool = nullptr;
};

/// Evaluates `spec` over `inputs`. When the function is row-wise
/// (IsRowWiseTemplate + a one_to_one/one_to_many dependency pattern),
/// has exactly one input table and `morsels.morsel_size` is non-zero,
/// the input is split into row morsels, each partition is evaluated
/// through the cache-aware PhysicalFunction::Evaluate (so cross-query
/// memoization keys are per-partition content hashes) and the outputs
/// are concatenated order-stably — row lineage ids carry through
/// unchanged. Falls back to a whole-input Evaluate otherwise. Errors
/// surface deterministically: the lowest failing partition wins.
Result<rel::Table> EvaluateWithMorsels(const FunctionSpec& spec,
                                       const std::vector<rel::TablePtr>& inputs,
                                       ExecContext* ctx,
                                       const MorselOptions& morsels);

/// Completion of one asynchronous FAO evaluation. May be invoked inline
/// (cache hits, non-batchable templates) or later on the batch
/// scheduler's flusher thread.
using EvalCallback = std::function<void(Result<rel::Table>)>;

/// True for templates eligible for cross-query batched evaluation: pure
/// templates whose output is determined by spec + input contents (the
/// cacheable set), so coalescing two identical submissions onto one
/// generation is indistinguishable from a cache hit.
bool IsBatchableTemplate(const std::string& template_id);

/// Asynchronous counterpart of EvaluateWithMorsels, used when
/// `ctx->batcher` is set and the executor enabled batching. The input is
/// partitioned exactly as EvaluateWithMorsels would (same morsel_size
/// predicate — whole input when unsplittable), and every partition is
/// resolved through the same cache key EvaluateWithMorsels uses
/// (spec-fingerprint x partition-content-fingerprint): cache hit first,
/// else submitted to the batch scheduler under that key, so identical
/// work from other morsels/queries/sessions coalesces onto one
/// generation and the result is byte-identical to the sequential path.
/// `done` fires exactly once with the order-stable merge (lowest failing
/// partition wins), inline when every partition was a cache hit or the
/// template is not batchable (plain EvaluateWithMorsels), otherwise on
/// the flusher thread after the last batch completes.
void EvaluateBatched(const FunctionSpec& spec,
                     const std::vector<rel::TablePtr>& inputs,
                     ExecContext* ctx, const MorselOptions& morsels,
                     EvalCallback done);

}  // namespace kathdb::fao
