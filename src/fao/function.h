/// \file function.h
/// \brief Physical FAO functions: the interpreter over FunctionSpecs.
///
/// A PhysicalFunction is one concrete, versioned implementation of a
/// logical signature — "a SQL query over a table, a view population using
/// machine learning models, a vector-based similarity search for semantic
/// keyword matching, and more" (paper, Section 2.2). The interpreter
/// instantiates a function object from a FunctionSpec; alternative
/// templates for the same signature are the optimizer's physical choices.
///
/// \ingroup kathdb_fao

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fao/spec.h"
#include "lineage/lineage.h"
#include "llm/model.h"
#include "multimodal/media.h"
#include "multimodal/scene_graph.h"
#include "multimodal/text_graph.h"
#include "relational/catalog.h"
#include "vector/embedding.h"

namespace kathdb::fao {

/// \brief Raw-image registry keyed by video/image id; the pixel-level
/// classifier implementations fetch from here (the analogue of reading
/// image files referenced by a path column).
class ImageStore {
 public:
  void Put(int64_t vid, mm::SyntheticImage image) {
    images_[vid] = std::move(image);
  }
  Result<mm::SyntheticImage> Get(int64_t vid) const {
    auto it = images_.find(vid);
    if (it == images_.end()) {
      return Status::NotFound("no raw image for vid " + std::to_string(vid));
    }
    return it->second;
  }
  size_t size() const { return images_.size(); }

 private:
  std::map<int64_t, mm::SyntheticImage> images_;
};

/// \brief Everything a function body may touch at execution time.
struct ExecContext {
  rel::Catalog* catalog = nullptr;
  lineage::LineageStore* lineage = nullptr;
  llm::UsageMeter* meter = nullptr;
  mm::ImageLoader* image_loader = nullptr;
  ImageStore* images = nullptr;
  mm::SceneGraphViews scene_views;
  mm::TextGraphViews text_views;
  const vec::TextEmbedder* embedder = nullptr;  ///< defaults provided
};

/// \brief One executable, versioned implementation of a logical function.
class PhysicalFunction {
 public:
  explicit PhysicalFunction(FunctionSpec spec) : spec_(std::move(spec)) {}
  virtual ~PhysicalFunction() = default;

  const FunctionSpec& spec() const { return spec_; }

  /// Runs the body over `inputs` (resolved by the executor in signature
  /// order). Returns the output table; errors with kSyntacticError are
  /// candidates for the agentic monitor's automatic repair.
  virtual Result<rel::Table> Execute(const std::vector<rel::TablePtr>& inputs,
                                     ExecContext* ctx) = 0;

 protected:
  FunctionSpec spec_;
};

/// Instantiates the implementation template named by `spec.template_id`.
/// InvalidArgument for unknown templates or missing parameters.
Result<std::unique_ptr<PhysicalFunction>> InstantiateFunction(
    const FunctionSpec& spec);

/// True if the interpreter knows this template id.
bool IsKnownTemplate(const std::string& template_id);

}  // namespace kathdb::fao
