/// \file registry.h
/// \brief Versioned function store with disk persistence.
///
/// "Each function is assigned an identifier and a version tag ... these
/// functions are persisted locally on disk" (paper, contribution 2).
/// Whenever the optimizer or the execution-time rewriter produces a new
/// implementation, the registry stamps the next ver_id, leaving earlier
/// versions intact for lineage queries and safe roll-backs.
///
/// \ingroup kathdb_fao

#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "fao/spec.h"

namespace kathdb::fao {

/// \brief name -> ordered version list of FunctionSpecs.
///
/// Internally synchronized: version stamping, lookups and persistence may
/// be called from concurrent queries (the service layer shares one
/// registry across sessions so repairs and optimizer choices are visible
/// everywhere).
class FunctionRegistry {
 public:
  /// Stamps the next ver_id for `spec.name` and stores it. Returns the
  /// assigned version id (starting at 1 per function).
  int64_t RegisterNewVersion(FunctionSpec spec);

  /// Latest version of `name`; NotFound when absent.
  Result<FunctionSpec> Latest(const std::string& name) const;

  /// Specific version; NotFound when absent.
  Result<FunctionSpec> Version(const std::string& name, int64_t ver_id) const;

  /// All versions of `name`, oldest first (empty when unknown).
  std::vector<FunctionSpec> VersionsOf(const std::string& name) const;

  /// Safe roll-back (Section 4): re-registers the body of `ver_id` as the
  /// *new latest* version, leaving history append-only. Returns the new
  /// version id; NotFound if the function/version is unknown.
  Result<int64_t> RollbackTo(const std::string& name, int64_t ver_id);

  std::vector<std::string> FunctionNames() const;
  size_t num_functions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return specs_.size();
  }

  /// Persists every function as `<dir>/<name>.json` (an array of version
  /// objects). Creates `dir` if needed.
  Status SaveToDir(const std::string& dir) const;

  /// Loads previously saved functions, replacing in-memory state.
  Status LoadFromDir(const std::string& dir);

 private:
  Result<FunctionSpec> VersionLocked(const std::string& name,
                                     int64_t ver_id) const;
  int64_t RegisterNewVersionLocked(FunctionSpec spec);

  mutable std::mutex mu_;
  std::map<std::string, std::vector<FunctionSpec>> specs_;
};

}  // namespace kathdb::fao
