/// \file registry.h
/// \brief Versioned function store with disk persistence.
///
/// "Each function is assigned an identifier and a version tag ... these
/// functions are persisted locally on disk" (paper, contribution 2).
/// Whenever the optimizer or the execution-time rewriter produces a new
/// implementation, the registry stamps the next ver_id, leaving earlier
/// versions intact for lineage queries and safe roll-backs.
///
/// \ingroup kathdb_fao

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "fao/spec.h"

namespace kathdb::fao {

/// \brief name -> ordered version list of FunctionSpecs.
///
/// Internally synchronized: version stamping, lookups and persistence may
/// be called from concurrent queries (the service layer shares one
/// registry across sessions so repairs and optimizer choices are visible
/// everywhere).
class FunctionRegistry {
 public:
  /// Stamps the next ver_id for `spec.name` and stores it. Returns the
  /// assigned version id (starting at 1 per function).
  int64_t RegisterNewVersion(FunctionSpec spec) KATHDB_EXCLUDES(mu_);

  /// Latest version of `name`; NotFound when absent.
  Result<FunctionSpec> Latest(const std::string& name) const
      KATHDB_EXCLUDES(mu_);

  /// Specific version; NotFound when absent.
  Result<FunctionSpec> Version(const std::string& name, int64_t ver_id) const
      KATHDB_EXCLUDES(mu_);

  /// All versions of `name`, oldest first (empty when unknown).
  std::vector<FunctionSpec> VersionsOf(const std::string& name) const
      KATHDB_EXCLUDES(mu_);

  /// Safe roll-back (Section 4): re-registers the body of `ver_id` as the
  /// *new latest* version, leaving history append-only. Returns the new
  /// version id; NotFound if the function/version is unknown.
  Result<int64_t> RollbackTo(const std::string& name, int64_t ver_id)
      KATHDB_EXCLUDES(mu_);

  std::vector<std::string> FunctionNames() const KATHDB_EXCLUDES(mu_);
  size_t num_functions() const KATHDB_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return specs_.size();
  }

  /// Persists every function as `<dir>/<name>.json` (an array of version
  /// objects). Creates `dir` if needed.
  Status SaveToDir(const std::string& dir) const KATHDB_EXCLUDES(mu_);

  /// Loads previously saved functions, replacing in-memory state.
  Status LoadFromDir(const std::string& dir) KATHDB_EXCLUDES(mu_);

 private:
  Result<FunctionSpec> VersionLocked(const std::string& name,
                                     int64_t ver_id) const
      KATHDB_REQUIRES(mu_);
  int64_t RegisterNewVersionLocked(FunctionSpec spec) KATHDB_REQUIRES(mu_);

  mutable common::Mutex mu_;
  std::map<std::string, std::vector<FunctionSpec>> specs_
      KATHDB_GUARDED_BY(mu_);
};

}  // namespace kathdb::fao
