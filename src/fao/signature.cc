#include "fao/signature.h"

#include <set>

namespace kathdb::fao {

Json FunctionSignature::ToJson() const {
  // Exact layout of Figure 3: the name/description pair is nested, with
  // inputs and output as sibling keys.
  Json j = Json::Object();
  Json head = Json::Object();
  head.Set("name", Json::Str(name));
  head.Set("description", Json::Str(description));
  j.Set("signature", head);
  Json in = Json::Array();
  for (const auto& i : inputs) in.Append(Json::Str(i));
  j.Set("inputs", in);
  j.Set("output", Json::Str(output));
  return j;
}

Result<FunctionSignature> FunctionSignature::FromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("signature JSON must be an object");
  }
  FunctionSignature sig;
  if (j.Has("signature")) {
    const Json& head = j.Get("signature");
    sig.name = head.GetString("name");
    sig.description = head.GetString("description");
  } else {
    // Tolerate the flat layout too.
    sig.name = j.GetString("name");
    sig.description = j.GetString("description");
  }
  if (sig.name.empty()) {
    return Status::InvalidArgument("signature missing 'name'");
  }
  if (j.Has("inputs")) {
    for (const Json& i : j.Get("inputs").items()) {
      if (!i.is_string()) {
        return Status::InvalidArgument("signature inputs must be strings");
      }
      sig.inputs.push_back(i.AsString());
    }
  }
  sig.output = j.GetString("output");
  return sig;
}

Json LogicalPlan::ToJson() const {
  Json arr = Json::Array();
  for (const auto& n : nodes) arr.Append(n.ToJson());
  return arr;
}

Result<LogicalPlan> LogicalPlan::FromJson(const Json& j) {
  if (!j.is_array()) {
    return Status::InvalidArgument("logical plan JSON must be an array");
  }
  LogicalPlan plan;
  for (const Json& n : j.items()) {
    KATHDB_ASSIGN_OR_RETURN(FunctionSignature sig,
                            FunctionSignature::FromJson(n));
    plan.nodes.push_back(std::move(sig));
  }
  return plan;
}

const FunctionSignature* LogicalPlan::ProducerOf(
    const std::string& output_name) const {
  for (const auto& n : nodes) {
    if (n.output == output_name) return &n;
  }
  return nullptr;
}

std::string LogicalPlan::FinalOutput() const {
  std::set<std::string> consumed;
  for (const auto& n : nodes) {
    for (const auto& i : n.inputs) consumed.insert(i);
  }
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    if (consumed.count(it->output) == 0) return it->output;
  }
  return nodes.empty() ? "" : nodes.back().output;
}

}  // namespace kathdb::fao
