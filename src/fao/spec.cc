#include "fao/spec.h"

namespace kathdb::fao {

Json FunctionSpec::ToJson() const {
  Json j = Json::Object();
  j.Set("name", Json::Str(name));
  j.Set("ver_id", Json::Int(ver_id));
  j.Set("template", Json::Str(template_id));
  j.Set("params", params);
  j.Set("dependency_pattern", Json::Str(dependency_pattern));
  j.Set("source_text", Json::Str(source_text));
  return j;
}

Result<FunctionSpec> FunctionSpec::FromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("function spec JSON must be an object");
  }
  FunctionSpec spec;
  spec.name = j.GetString("name");
  if (spec.name.empty()) {
    return Status::InvalidArgument("function spec missing 'name'");
  }
  spec.ver_id = j.GetInt("ver_id", 1);
  spec.template_id = j.GetString("template");
  if (spec.template_id.empty()) {
    return Status::InvalidArgument("function spec missing 'template'");
  }
  if (j.Has("params")) spec.params = j.Get("params");
  spec.dependency_pattern = j.GetString("dependency_pattern", "one_to_one");
  spec.source_text = j.GetString("source_text");
  return spec;
}

}  // namespace kathdb::fao
