#include "fao/function.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <thread>

#include "common/hash.h"
#include "common/strings.h"
#include "llm/batch_scheduler.h"
#include "sql/engine.h"

namespace kathdb::fao {

using rel::DataType;
using rel::Row;
using rel::Schema;
using rel::Table;
using rel::TablePtr;
using rel::Value;

namespace {

const vec::TextEmbedder& DefaultEmbedder() {
  static const vec::TextEmbedder kEmbedder(64);
  return kEmbedder;
}

Result<size_t> RequireColumn(const Table& t, const std::string& col,
                             const std::string& fn) {
  auto idx = t.schema().IndexOf(col);
  if (!idx.has_value()) {
    return Status::SyntacticError("function " + fn + ": input table '" +
                                  t.name() + "' has no column '" + col +
                                  "'");
  }
  return *idx;
}

/// Simulated model round-trip: a remote vision/LLM call has per-request
/// wall latency on top of token cost. 0 (the default everywhere outside
/// latency benches) keeps calls instant. Goes through the context clock
/// so tests drive it deterministically; inside a batch generator the
/// flush already paid the batch's single round trip, so per-row latency
/// is prepaid and skipped.
void SimulateModelLatency(const ExecContext* ctx, double ms) {
  if (ms <= 0.0) return;
  if (ctx != nullptr && ctx->model_latency_prepaid) return;
  common::Clock* clock = (ctx != nullptr && ctx->clock != nullptr)
                             ? ctx->clock
                             : common::Clock::System();
  clock->SleepFor(ms);
}

Status RequireInputs(const std::vector<TablePtr>& inputs, size_t n,
                     const std::string& fn) {
  if (inputs.size() != n) {
    return Status::SyntacticError(
        "function " + fn + " expects " + std::to_string(n) +
        " input table(s), got " + std::to_string(inputs.size()));
  }
  for (const auto& t : inputs) {
    if (t == nullptr) return Status::SyntacticError(fn + ": null input");
  }
  return Status::OK();
}

// ------------------------------------------------------------------- sql
class SqlFunction : public PhysicalFunction {
 public:
  using PhysicalFunction::PhysicalFunction;

  Result<Table> Execute(const std::vector<TablePtr>& inputs,
                        ExecContext* ctx) override {
    (void)inputs;  // the executor registers inputs in the catalog
    sql::SqlEngine engine(ctx->catalog);
    // Multi-step body: each step runs a statement; "as" registers the
    // intermediate result under a temporary name for later steps.
    if (spec_.params.Has("steps")) {
      Table last("empty", Schema{});
      for (const Json& step : spec_.params.Get("steps").items()) {
        std::string q = step.GetString("query");
        if (q.empty()) {
          return Status::SyntacticError("function " + spec_.name +
                                        ": sql step missing 'query'");
        }
        KATHDB_ASSIGN_OR_RETURN(last, engine.Execute(q));
        std::string as = step.GetString("as");
        if (!as.empty()) {
          auto tmp = std::make_shared<Table>(last);
          tmp->set_name(as);
          ctx->catalog->Upsert(tmp, rel::RelationKind::kIntermediate);
        }
      }
      return last;
    }
    std::string query = spec_.params.GetString("query");
    if (query.empty()) {
      return Status::SyntacticError("function " + spec_.name +
                                    ": sql template missing 'query' param");
    }
    KATHDB_ASSIGN_OR_RETURN(Table out, engine.Execute(query));
    return out;
  }
};

// --------------------------------------------------- keyword similarity
class KeywordSimilarityFunction : public PhysicalFunction {
 public:
  using PhysicalFunction::PhysicalFunction;

  Result<Table> Execute(const std::vector<TablePtr>& inputs,
                        ExecContext* ctx) override {
    KATHDB_RETURN_IF_ERROR(RequireInputs(inputs, 1, spec_.name));
    const Table& in = *inputs[0];
    std::string did_col = spec_.params.GetString("did_column", "did");
    std::string out_col =
        spec_.params.GetString("output_column", "excitement_score");
    double threshold = spec_.params.GetDouble("threshold", 0.60);
    double sharpness = spec_.params.GetDouble("sharpness", 2.0);
    std::vector<std::string> keywords;
    if (spec_.params.Has("keywords")) {
      for (const Json& k : spec_.params.Get("keywords").items()) {
        keywords.push_back(k.AsString());
      }
    }
    if (keywords.empty()) {
      return Status::SyntacticError("function " + spec_.name +
                                    ": empty keyword list");
    }
    KATHDB_ASSIGN_OR_RETURN(size_t didx, RequireColumn(in, did_col,
                                                       spec_.name));
    const vec::TextEmbedder& embedder =
        ctx->embedder != nullptr ? *ctx->embedder : DefaultEmbedder();

    std::vector<vec::Embedding> kvecs;
    kvecs.reserve(keywords.size());
    for (const auto& k : keywords) kvecs.push_back(embedder.EmbedToken(k));

    Schema schema = in.schema();
    schema.AddColumn(out_col, DataType::kDouble);
    Table out(spec_.params.GetString("output_name", in.name()), schema);
    for (size_t r = 0; r < in.num_rows(); ++r) {
      int64_t did = in.at(r, didx).AsInt();
      auto tokens = mm::EntityTokensOf(did, *ctx->catalog, ctx->text_views);
      double hits = 0.0;
      if (tokens.ok()) {
        for (const auto& tok : tokens.value()) {
          vec::Embedding te = embedder.EmbedToken(tok);
          float best = 0.0f;
          for (const auto& kv : kvecs) {
            float s = vec::CosineSimilarity(te, kv);
            if (s > best) best = s;
          }
          if (best > threshold) {
            double rel = (best - threshold) / (1.0 - threshold);
            hits += rel * rel;
          }
        }
      }
      double score = 1.0 - std::exp(-sharpness * hits);
      Row row = in.row(r);
      row.push_back(Value::Double(score));
      out.AppendRow(std::move(row), in.row_lid(r));
    }
    return out;
  }
};

// ----------------------------------------- keyword similarity (cached)
/// Alternative physical implementation of the same logical operator: a
/// per-distinct-token similarity cache is built across rows, so each
/// token is embedded and compared against the keyword set exactly once.
/// Produces identical scores to KeywordSimilarityFunction at a fraction
/// of the embedding work — the optimizer's runtime-based physical choice.
class KeywordSimilarityCachedFunction : public PhysicalFunction {
 public:
  using PhysicalFunction::PhysicalFunction;

  Result<Table> Execute(const std::vector<TablePtr>& inputs,
                        ExecContext* ctx) override {
    KATHDB_RETURN_IF_ERROR(RequireInputs(inputs, 1, spec_.name));
    const Table& in = *inputs[0];
    std::string did_col = spec_.params.GetString("did_column", "did");
    std::string out_col =
        spec_.params.GetString("output_column", "excitement_score");
    double threshold = spec_.params.GetDouble("threshold", 0.60);
    double sharpness = spec_.params.GetDouble("sharpness", 2.0);
    std::vector<std::string> keywords;
    if (spec_.params.Has("keywords")) {
      for (const Json& k : spec_.params.Get("keywords").items()) {
        keywords.push_back(k.AsString());
      }
    }
    if (keywords.empty()) {
      return Status::SyntacticError("function " + spec_.name +
                                    ": empty keyword list");
    }
    KATHDB_ASSIGN_OR_RETURN(size_t didx,
                            RequireColumn(in, did_col, spec_.name));
    const vec::TextEmbedder& embedder =
        ctx->embedder != nullptr ? *ctx->embedder : DefaultEmbedder();
    std::vector<vec::Embedding> kvecs;
    kvecs.reserve(keywords.size());
    for (const auto& k : keywords) kvecs.push_back(embedder.EmbedToken(k));

    std::map<std::string, double> best_sim;  // token -> max keyword cosine
    auto token_score = [&](const std::string& tok) {
      auto it = best_sim.find(tok);
      if (it != best_sim.end()) return it->second;
      vec::Embedding te = embedder.EmbedToken(tok);
      float best = 0.0f;
      for (const auto& kv : kvecs) {
        float s = vec::CosineSimilarity(te, kv);
        if (s > best) best = s;
      }
      best_sim[tok] = best;
      return static_cast<double>(best);
    };

    Schema schema = in.schema();
    schema.AddColumn(out_col, DataType::kDouble);
    Table out(in.name(), schema);
    for (size_t r = 0; r < in.num_rows(); ++r) {
      int64_t did = in.at(r, didx).AsInt();
      double hits = 0.0;
      auto tokens = mm::EntityTokensOf(did, *ctx->catalog, ctx->text_views);
      if (tokens.ok()) {
        for (const auto& tok : tokens.value()) {
          double best = token_score(tok);
          if (best > threshold) {
            double rel = (best - threshold) / (1.0 - threshold);
            hits += rel * rel;
          }
        }
      }
      Row row = in.row(r);
      row.push_back(Value::Double(1.0 - std::exp(-sharpness * hits)));
      out.AppendRow(std::move(row), in.row_lid(r));
    }
    return out;
  }
};

// --------------------------------------------------------- recency score
class RecencyScoreFunction : public PhysicalFunction {
 public:
  using PhysicalFunction::PhysicalFunction;

  Result<Table> Execute(const std::vector<TablePtr>& inputs,
                        ExecContext* ctx) override {
    (void)ctx;
    KATHDB_RETURN_IF_ERROR(RequireInputs(inputs, 1, spec_.name));
    const Table& in = *inputs[0];
    std::string year_col = spec_.params.GetString("year_column", "year");
    std::string out_col =
        spec_.params.GetString("output_column", "recency_score");
    double min_year = spec_.params.GetDouble("min_year", 1950);
    double max_year = spec_.params.GetDouble("max_year", 2026);
    // direction -1 is the reversed (buggy) implementation the critic must
    // catch during semantic verification (paper, Section 4).
    double direction = spec_.params.GetDouble("direction", 1.0);
    KATHDB_ASSIGN_OR_RETURN(size_t yidx,
                            RequireColumn(in, year_col, spec_.name));
    Schema schema = in.schema();
    schema.AddColumn(out_col, DataType::kDouble);
    Table out(in.name(), schema);
    for (size_t r = 0; r < in.num_rows(); ++r) {
      double y = in.at(r, yidx).AsDouble();
      double s = (y - min_year) / std::max(1.0, max_year - min_year);
      s = std::min(1.0, std::max(0.0, s));
      if (direction < 0) s = 1.0 - s;
      Row row = in.row(r);
      row.push_back(Value::Double(s));
      out.AppendRow(std::move(row), in.row_lid(r));
    }
    return out;
  }
};

// -------------------------------------------------------- combine scores
class CombineScoresFunction : public PhysicalFunction {
 public:
  using PhysicalFunction::PhysicalFunction;

  Result<Table> Execute(const std::vector<TablePtr>& inputs,
                        ExecContext* ctx) override {
    (void)ctx;
    KATHDB_RETURN_IF_ERROR(RequireInputs(inputs, 1, spec_.name));
    const Table& in = *inputs[0];
    std::string out_col =
        spec_.params.GetString("output_column", "final_score");
    if (!spec_.params.Has("terms") ||
        spec_.params.Get("terms").size() == 0) {
      return Status::SyntacticError("function " + spec_.name +
                                    ": combine_scores needs 'terms'");
    }
    std::vector<std::pair<size_t, double>> terms;
    for (const Json& t : spec_.params.Get("terms").items()) {
      std::string col = t.GetString("column");
      KATHDB_ASSIGN_OR_RETURN(size_t idx, RequireColumn(in, col, spec_.name));
      terms.emplace_back(idx, t.GetDouble("weight", 1.0));
    }
    Schema schema = in.schema();
    schema.AddColumn(out_col, DataType::kDouble);
    Table out(in.name(), schema);
    for (size_t r = 0; r < in.num_rows(); ++r) {
      double sum = 0.0;
      for (const auto& [idx, w] : terms) {
        sum += w * in.at(r, idx).AsDouble();
      }
      Row row = in.row(r);
      row.push_back(Value::Double(sum));
      out.AppendRow(std::move(row), in.row_lid(r));
    }
    return out;
  }
};

// ----------------------------------------------- classify_boring (stats)
class ClassifyBoringStatsFunction : public PhysicalFunction {
 public:
  using PhysicalFunction::PhysicalFunction;

  Result<Table> Execute(const std::vector<TablePtr>& inputs,
                        ExecContext* ctx) override {
    KATHDB_RETURN_IF_ERROR(RequireInputs(inputs, 1, spec_.name));
    const Table& in = *inputs[0];
    std::string vid_col = spec_.params.GetString("vid_column", "vid");
    std::string out_col =
        spec_.params.GetString("output_column", "boring_poster");
    double var_threshold =
        spec_.params.GetDouble("variance_threshold", 0.055);
    int64_t max_objects = spec_.params.GetInt("max_objects", 4);
    KATHDB_ASSIGN_OR_RETURN(size_t vidx,
                            RequireColumn(in, vid_col, spec_.name));
    Schema schema = in.schema();
    schema.AddColumn(out_col, DataType::kBool);
    Table out(in.name(), schema);
    for (size_t r = 0; r < in.num_rows(); ++r) {
      int64_t vid = in.at(r, vidx).AsInt();
      KATHDB_ASSIGN_OR_RETURN(
          mm::FrameSceneStats stats,
          mm::ComputeFrameStats(vid, 0, *ctx->catalog, ctx->scene_views));
      bool boring = stats.color_variance < var_threshold &&
                    stats.num_objects <= max_objects &&
                    stats.num_action_objects == 0;
      Row row = in.row(r);
      row.push_back(Value::Bool(boring));
      out.AppendRow(std::move(row), in.row_lid(r));
    }
    return out;
  }
};

// ---------------------------------------------- classify_boring (pixels)
class ClassifyBoringPixelsFunction : public PhysicalFunction {
 public:
  using PhysicalFunction::PhysicalFunction;

  Result<Table> Execute(const std::vector<TablePtr>& inputs,
                        ExecContext* ctx) override {
    KATHDB_RETURN_IF_ERROR(RequireInputs(inputs, 1, spec_.name));
    if (ctx->images == nullptr || ctx->image_loader == nullptr) {
      return Status::SyntacticError(
          "function " + spec_.name +
          ": pixel analysis requires an image store and loader");
    }
    const Table& in = *inputs[0];
    std::string vid_col = spec_.params.GetString("vid_column", "vid");
    std::string out_col =
        spec_.params.GetString("output_column", "boring_poster");
    double var_threshold =
        spec_.params.GetDouble("variance_threshold", 0.055);
    int vision_tokens = static_cast<int>(
        spec_.params.GetInt("vision_tokens_per_image", 420));
    double latency_ms = spec_.params.GetDouble("latency_ms_per_image", 0.0);
    KATHDB_ASSIGN_OR_RETURN(size_t vidx,
                            RequireColumn(in, vid_col, spec_.name));
    static const vec::ConceptLexicon lexicon = vec::ConceptLexicon::BuiltIn();
    llm::ModelSpec vision = llm::KathVisionSpec();

    Schema schema = in.schema();
    schema.AddColumn(out_col, DataType::kBool);
    Table out(in.name(), schema);
    for (size_t r = 0; r < in.num_rows(); ++r) {
      int64_t vid = in.at(r, vidx).AsInt();
      KATHDB_ASSIGN_OR_RETURN(mm::SyntheticImage raw, ctx->images->Get(vid));
      // The decode is where unsupported formats (HEIC) surface as
      // syntactic faults for the monitor to repair.
      KATHDB_ASSIGN_OR_RETURN(mm::SyntheticImage img,
                              ctx->image_loader->Decode(raw));
      SimulateModelLatency(ctx, latency_ms);
      if (ctx->meter != nullptr) {
        ctx->meter->Record(vision, vision_tokens, vision_tokens / 6);
      }
      // Pixel-level analysis reads the ground-truth latent content: this
      // is the high-accuracy, high-cost implementation.
      int action_objects = 0;
      for (const auto& o : img.objects) {
        std::string concept_name = lexicon.ConceptOf(o.cls);
        if (concept_name == "action" || concept_name == "violence") ++action_objects;
      }
      bool boring = img.color_variance < var_threshold &&
                    action_objects == 0 &&
                    img.objects.size() <= 4;
      Row row = in.row(r);
      row.push_back(Value::Bool(boring));
      out.AppendRow(std::move(row), in.row_lid(r));
    }
    return out;
  }
};

// --------------------------------------------- classify_boring (cascade)
class ClassifyBoringCascadeFunction : public PhysicalFunction {
 public:
  using PhysicalFunction::PhysicalFunction;

  Result<Table> Execute(const std::vector<TablePtr>& inputs,
                        ExecContext* ctx) override {
    KATHDB_RETURN_IF_ERROR(RequireInputs(inputs, 1, spec_.name));
    const Table& in = *inputs[0];
    std::string vid_col = spec_.params.GetString("vid_column", "vid");
    std::string out_col =
        spec_.params.GetString("output_column", "boring_poster");
    double var_threshold =
        spec_.params.GetDouble("variance_threshold", 0.055);
    double margin = spec_.params.GetDouble("margin", 0.015);
    int64_t max_objects = spec_.params.GetInt("max_objects", 4);
    int vision_tokens = static_cast<int>(
        spec_.params.GetInt("vision_tokens_per_image", 420));
    KATHDB_ASSIGN_OR_RETURN(size_t vidx,
                            RequireColumn(in, vid_col, spec_.name));
    static const vec::ConceptLexicon lexicon = vec::ConceptLexicon::BuiltIn();
    llm::ModelSpec vision = llm::KathVisionSpec();

    Schema schema = in.schema();
    schema.AddColumn(out_col, DataType::kBool);
    Table out(in.name(), schema);
    escalations_ = 0;
    for (size_t r = 0; r < in.num_rows(); ++r) {
      int64_t vid = in.at(r, vidx).AsInt();
      KATHDB_ASSIGN_OR_RETURN(
          mm::FrameSceneStats stats,
          mm::ComputeFrameStats(vid, 0, *ctx->catalog, ctx->scene_views));
      bool boring;
      bool confident =
          std::abs(stats.color_variance - var_threshold) >= margin;
      if (confident) {
        boring = stats.color_variance < var_threshold &&
                 stats.num_objects <= max_objects &&
                 stats.num_action_objects == 0;
      } else {
        // Uncertain: escalate this row to the expensive pixel model.
        ++escalations_;
        if (ctx->images == nullptr || ctx->image_loader == nullptr) {
          return Status::SyntacticError(spec_.name +
                                        ": cascade escalation needs images");
        }
        KATHDB_ASSIGN_OR_RETURN(mm::SyntheticImage raw,
                                ctx->images->Get(vid));
        KATHDB_ASSIGN_OR_RETURN(mm::SyntheticImage img,
                                ctx->image_loader->Decode(raw));
        SimulateModelLatency(
            ctx, spec_.params.GetDouble("latency_ms_per_image", 0.0));
        if (ctx->meter != nullptr) {
          ctx->meter->Record(vision, vision_tokens, vision_tokens / 6);
        }
        int action_objects = 0;
        for (const auto& o : img.objects) {
          std::string concept_name = lexicon.ConceptOf(o.cls);
          if (concept_name == "action" || concept_name == "violence") ++action_objects;
        }
        boring = img.color_variance < var_threshold && action_objects == 0 &&
                 img.objects.size() <= 4;
      }
      Row row = in.row(r);
      row.push_back(Value::Bool(boring));
      out.AppendRow(std::move(row), in.row_lid(r));
    }
    return out;
  }

  int64_t escalations() const { return escalations_; }

 private:
  int64_t escalations_ = 0;
};

// ----------------------------------------------------------- fused_scores
/// Fusion of keyword-similarity + recency + combine into one operator:
/// the optimizer's "merge two function signatures into one to avoid
/// unnecessary intermediate result materialization" rewrite (E7). Faster,
/// but a single func_id produces all three columns, so explanations get
/// coarser.
class FusedScoresFunction : public PhysicalFunction {
 public:
  using PhysicalFunction::PhysicalFunction;

  Result<Table> Execute(const std::vector<TablePtr>& inputs,
                        ExecContext* ctx) override {
    KATHDB_RETURN_IF_ERROR(RequireInputs(inputs, 1, spec_.name));
    const Table& in = *inputs[0];
    const Json& ex = spec_.params.Get("excitement");
    const Json& re = spec_.params.Get("recency");
    const Json& co = spec_.params.Get("combine");
    if (!ex.is_object() || !re.is_object() || !co.is_object()) {
      return Status::SyntacticError(
          spec_.name + ": fused_scores needs excitement/recency/combine");
    }
    std::string did_col = ex.GetString("did_column", "did");
    std::string year_col = re.GetString("year_column", "year");
    double threshold = ex.GetDouble("threshold", 0.60);
    double sharpness = ex.GetDouble("sharpness", 2.0);
    double min_year = re.GetDouble("min_year", 1950);
    double max_year = re.GetDouble("max_year", 2026);
    double w_ex = co.GetDouble("excitement_weight", 0.7);
    double w_re = co.GetDouble("recency_weight", 0.3);
    std::vector<std::string> keywords;
    for (const Json& k : ex.Get("keywords").items()) {
      keywords.push_back(k.AsString());
    }
    if (keywords.empty()) {
      return Status::SyntacticError(spec_.name + ": empty keyword list");
    }
    KATHDB_ASSIGN_OR_RETURN(size_t didx,
                            RequireColumn(in, did_col, spec_.name));
    KATHDB_ASSIGN_OR_RETURN(size_t yidx,
                            RequireColumn(in, year_col, spec_.name));
    const vec::TextEmbedder& embedder =
        ctx->embedder != nullptr ? *ctx->embedder : DefaultEmbedder();
    std::vector<vec::Embedding> kvecs;
    for (const auto& k : keywords) kvecs.push_back(embedder.EmbedToken(k));

    Schema schema = in.schema();
    schema.AddColumn("excitement_score", DataType::kDouble);
    schema.AddColumn("recency_score", DataType::kDouble);
    schema.AddColumn("final_score", DataType::kDouble);
    Table out(in.name(), schema);
    for (size_t r = 0; r < in.num_rows(); ++r) {
      int64_t did = in.at(r, didx).AsInt();
      double hits = 0.0;
      auto tokens = mm::EntityTokensOf(did, *ctx->catalog, ctx->text_views);
      if (tokens.ok()) {
        for (const auto& tok : tokens.value()) {
          vec::Embedding te = embedder.EmbedToken(tok);
          float best = 0.0f;
          for (const auto& kv : kvecs) {
            float s = vec::CosineSimilarity(te, kv);
            if (s > best) best = s;
          }
          if (best > threshold) {
            double rel = (best - threshold) / (1.0 - threshold);
            hits += rel * rel;
          }
        }
      }
      double excitement = 1.0 - std::exp(-sharpness * hits);
      double y = in.at(r, yidx).AsDouble();
      double recency = std::min(
          1.0, std::max(0.0, (y - min_year) / std::max(1.0,
                                                       max_year - min_year)));
      double final_score = w_ex * excitement + w_re * recency;
      Row row = in.row(r);
      row.push_back(Value::Double(excitement));
      row.push_back(Value::Double(recency));
      row.push_back(Value::Double(final_score));
      out.AppendRow(std::move(row), in.row_lid(r));
    }
    return out;
  }
};

}  // namespace

bool PhysicalFunction::IsCacheableTemplate(const std::string& template_id) {
  static const std::set<std::string> kPure = {
      "keyword_similarity_score", "keyword_similarity_cached",
      "recency_score",            "combine_scores",
      "classify_boring_stats",    "classify_boring_pixels",
      "classify_boring_cascade",  "fused_scores"};
  return kPure.count(template_id) > 0;
}

uint64_t PhysicalFunction::SpecFingerprint() const {
  uint64_t h = common::Fnv1a64(spec_.template_id);
  h = common::HashCombine(h, common::Fnv1a64(spec_.params.Dump()));
  h = common::HashCombine(h, common::Fnv1a64(spec_.dependency_pattern));
  return h;
}

Result<rel::Table> PhysicalFunction::Evaluate(
    const std::vector<rel::TablePtr>& inputs, ExecContext* ctx) {
  service::ResultCache* cache = ctx != nullptr ? ctx->result_cache : nullptr;
  if (cache == nullptr || !IsCacheableTemplate(spec_.template_id)) {
    return Execute(inputs, ctx);
  }
  uint64_t key = common::HashCombine(SpecFingerprint(),
                                     service::FingerprintTables(inputs));
  if (auto hit = cache->Get(key); hit.has_value() && hit->table != nullptr) {
    // Copy out: callers rename the result and rewrite its lineage ids;
    // the shared cached table stays immutable.
    return *hit->table;
  }
  KATHDB_ASSIGN_OR_RETURN(rel::Table out, Execute(inputs, ctx));
  cache->Put(key, service::CacheEntry{std::make_shared<rel::Table>(out),
                                      std::string()});
  return out;
}

bool IsKnownTemplate(const std::string& template_id) {
  static const std::set<std::string> kKnown = {
      "sql",
      "keyword_similarity_score",
      "keyword_similarity_cached",
      "recency_score",
      "combine_scores",
      "classify_boring_stats",
      "classify_boring_pixels",
      "classify_boring_cascade",
      "fused_scores"};
  return kKnown.count(template_id) > 0;
}

bool IsRowWiseTemplate(const std::string& template_id) {
  // Today the row-wise set coincides with the pure (cacheable) templates:
  // both exclude "sql", whose body reads whole catalog relations by name.
  return PhysicalFunction::IsCacheableTemplate(template_id);
}

namespace {

/// Shared state of one morsel evaluation. Helper tasks capture it by
/// shared_ptr: a helper that only gets scheduled *after* the owning call
/// already drained every partition finds `next >= parts`, touches
/// nothing else and exits — so the owner never has to wait for queued
/// helpers to run (the deadlock when DAG node tasks and morsel helpers
/// share one saturated pool) and a late helper never dereferences the
/// owner's dead stack frame. `ctx`/`spec` are only touched by lanes that
/// claimed a partition, and the owner blocks until every claimed
/// partition finished, keeping them alive for exactly that window.
struct MorselState {
  FunctionSpec spec;
  ExecContext* ctx = nullptr;
  size_t parts = 0;
  std::vector<rel::TablePtr> slices;
  std::vector<std::optional<Result<Table>>> results;
  std::atomic<size_t> next{0};
  common::Mutex mu;
  common::CondVar cv;
  size_t done KATHDB_GUARDED_BY(mu) = 0;  // finished partitions

  /// Claims and evaluates partitions until none are left. One fresh
  /// function instance per partition: implementations may keep per-call
  /// scratch state (token caches, escalation counters) that must not be
  /// shared across lanes.
  void Work() {
    for (size_t i = next.fetch_add(1); i < parts;
         i = next.fetch_add(1)) {
      auto fn = InstantiateFunction(spec);
      if (fn.ok()) {
        results[i].emplace(fn.value()->Evaluate({slices[i]}, ctx));
      } else {
        results[i].emplace(fn.status());
      }
      common::MutexLock lock(mu);
      if (++done == parts) cv.NotifyAll();
    }
  }

  void WaitAllDone() KATHDB_EXCLUDES(mu) {
    common::MutexLock lock(mu);
    while (done != parts) cv.Wait(mu);
  }
};

}  // namespace

Result<rel::Table> EvaluateWithMorsels(const FunctionSpec& spec,
                                       const std::vector<rel::TablePtr>& inputs,
                                       ExecContext* ctx,
                                       const MorselOptions& morsels) {
  bool narrow = spec.dependency_pattern == "one_to_one" ||
                spec.dependency_pattern == "one_to_many";
  bool splittable = morsels.morsel_size > 0 && narrow &&
                    inputs.size() == 1 && inputs[0] != nullptr &&
                    IsRowWiseTemplate(spec.template_id) &&
                    inputs[0]->num_rows() > morsels.morsel_size;
  if (!splittable) {
    KATHDB_ASSIGN_OR_RETURN(auto fn, InstantiateFunction(spec));
    return fn->Evaluate(inputs, ctx);
  }

  const Table& in = *inputs[0];
  auto state = std::make_shared<MorselState>();
  state->spec = spec;
  state->ctx = ctx;
  state->parts =
      (in.num_rows() + morsels.morsel_size - 1) / morsels.morsel_size;
  state->slices.reserve(state->parts);
  for (size_t p = 0; p < state->parts; ++p) {
    size_t begin = p * morsels.morsel_size;
    state->slices.push_back(std::make_shared<Table>(
        in.Slice(begin, begin + morsels.morsel_size)));
  }
  state->results.resize(state->parts);

  // Borrow helper lanes from the pool; the calling thread always works
  // too, so a saturated pool (refused submissions, or helpers stuck in
  // the queue behind busy node tasks) costs parallelism, not progress.
  if (morsels.pool != nullptr) {
    size_t want =
        std::min<size_t>(morsels.pool->workers(), state->parts - 1);
    for (size_t h = 0; h < want; ++h) {
      if (!morsels.pool->TrySubmit([state] { state->Work(); })) break;
    }
  }
  state->Work();
  state->WaitAllDone();

  // Deterministic error surfacing and order-stable merge.
  for (size_t p = 0; p < state->parts; ++p) {
    if (!state->results[p]->ok()) return state->results[p]->status();
  }
  Table merged(state->results[0]->value().name(),
               state->results[0]->value().schema());
  merged.set_table_lid(in.table_lid());
  for (size_t p = 0; p < state->parts; ++p) {
    const Table& part = state->results[p]->value();
    merged.AppendSlice(part, 0, part.num_rows());
  }
  return merged;
}

bool IsBatchableTemplate(const std::string& template_id) {
  // Exactly the pure set: coalescing two identical submissions onto one
  // generation is only sound when the output is a function of spec +
  // input contents, which is the cacheability condition.
  return PhysicalFunction::IsCacheableTemplate(template_id);
}

namespace {

/// Per-round-trip latency this spec would pay for one model call; the
/// batch pays max over its items instead of the per-row sum.
double BatchRttMs(const FunctionSpec& spec) {
  return spec.params.GetDouble("latency_ms_per_image", 0.0);
}

/// Join state of one asynchronous evaluation: every partition writes its
/// own slot; the last completion (atomic countdown) merges and fires the
/// callback, on whichever thread finished last.
struct BatchJoinState {
  size_t parts = 0;
  bool split = false;
  int64_t table_lid = 0;
  std::vector<std::optional<Result<Table>>> results;
  std::atomic<size_t> remaining{0};
  EvalCallback done;

  void CompleteOne() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    // Deterministic error surfacing: the lowest failing partition wins,
    // exactly as EvaluateWithMorsels surfaces it.
    for (size_t p = 0; p < parts; ++p) {
      if (!results[p]->ok()) {
        done(results[p]->status());
        return;
      }
    }
    if (!split) {
      done(std::move(*results[0]));
      return;
    }
    Table merged(results[0]->value().name(), results[0]->value().schema());
    merged.set_table_lid(table_lid);
    for (size_t p = 0; p < parts; ++p) {
      const Table& part = results[p]->value();
      merged.AppendSlice(part, 0, part.num_rows());
    }
    done(std::move(merged));
  }
};

}  // namespace

void EvaluateBatched(const FunctionSpec& spec,
                     const std::vector<rel::TablePtr>& inputs,
                     ExecContext* ctx, const MorselOptions& morsels,
                     EvalCallback done) {
  if (ctx == nullptr || ctx->batcher == nullptr ||
      !IsBatchableTemplate(spec.template_id)) {
    done(EvaluateWithMorsels(spec, inputs, ctx, morsels));
    return;
  }
  // Same partitioning predicate and geometry as EvaluateWithMorsels: the
  // split is a function of morsel_size only, so per-partition cache keys
  // and batch fingerprints line up with the sequential path.
  bool narrow = spec.dependency_pattern == "one_to_one" ||
                spec.dependency_pattern == "one_to_many";
  bool splittable = morsels.morsel_size > 0 && narrow &&
                    inputs.size() == 1 && inputs[0] != nullptr &&
                    IsRowWiseTemplate(spec.template_id) &&
                    inputs[0]->num_rows() > morsels.morsel_size;

  std::vector<std::vector<TablePtr>> item_inputs;
  if (splittable) {
    const Table& in = *inputs[0];
    size_t parts =
        (in.num_rows() + morsels.morsel_size - 1) / morsels.morsel_size;
    item_inputs.reserve(parts);
    for (size_t p = 0; p < parts; ++p) {
      size_t begin = p * morsels.morsel_size;
      item_inputs.push_back({std::make_shared<Table>(
          in.Slice(begin, begin + morsels.morsel_size))});
    }
  } else {
    item_inputs.push_back(inputs);
  }

  auto state = std::make_shared<BatchJoinState>();
  state->parts = item_inputs.size();
  state->split = splittable;
  state->table_lid = splittable ? inputs[0]->table_lid() : 0;
  state->results.resize(state->parts);
  state->remaining.store(state->parts, std::memory_order_relaxed);
  state->done = std::move(done);

  // Instantiated once up front for the spec fingerprint; generators build
  // their own instances (implementations keep per-call scratch state).
  auto proto = InstantiateFunction(spec);
  if (!proto.ok()) {
    state->parts = 1;
    state->results.resize(1);
    state->results[0].emplace(proto.status());
    state->remaining.store(1, std::memory_order_relaxed);
    state->CompleteOne();
    return;
  }
  uint64_t spec_fp = proto.value()->SpecFingerprint();
  service::ResultCache* cache = ctx->result_cache;

  for (size_t i = 0; i < item_inputs.size(); ++i) {
    uint64_t key = common::HashCombine(
        spec_fp, service::FingerprintTables(item_inputs[i]));
    // Cache lookup before submit: a memoized partition resolves inline
    // (and counts the same hit the sequential path would count).
    if (cache != nullptr) {
      if (auto hit = cache->Get(key);
          hit.has_value() && hit->table != nullptr) {
        state->results[i].emplace(*hit->table);
        state->CompleteOne();
        continue;
      }
    }
    std::vector<TablePtr> slice = item_inputs[i];
    ctx->batcher->Submit(
        key,
        [spec, slice, ctx, cache, key]() -> Result<llm::BatchResult> {
          auto fn = InstantiateFunction(spec);
          if (!fn.ok()) return fn.status();
          // The flush already slept the batch's one round trip; per-row
          // model latency inside the body is prepaid.
          ExecContext bctx = *ctx;
          bctx.model_latency_prepaid = true;
          auto out = fn.value()->Execute(slice, &bctx);
          if (!out.ok()) return out.status();
          auto table = std::make_shared<Table>(std::move(out).value());
          // Insert on completion: later queries (and later flights of the
          // same fingerprint) resolve from the cache.
          if (cache != nullptr) {
            cache->Put(key, service::CacheEntry{table, std::string()});
          }
          return llm::BatchResult{table, std::string()};
        },
        BatchRttMs(spec),
        [state, i](const Result<llm::BatchResult>& r) {
          if (r.ok() && r.value().table != nullptr) {
            state->results[i].emplace(*r.value().table);
          } else if (r.ok()) {
            state->results[i].emplace(Status::RuntimeError(
                "batched evaluation produced no table"));
          } else {
            state->results[i].emplace(r.status());
          }
          state->CompleteOne();
        });
  }
}

Result<std::unique_ptr<PhysicalFunction>> InstantiateFunction(
    const FunctionSpec& spec) {
  const std::string& t = spec.template_id;
  if (t == "sql") return std::unique_ptr<PhysicalFunction>(
      new SqlFunction(spec));
  if (t == "keyword_similarity_score") {
    return std::unique_ptr<PhysicalFunction>(
        new KeywordSimilarityFunction(spec));
  }
  if (t == "keyword_similarity_cached") {
    return std::unique_ptr<PhysicalFunction>(
        new KeywordSimilarityCachedFunction(spec));
  }
  if (t == "recency_score") {
    return std::unique_ptr<PhysicalFunction>(new RecencyScoreFunction(spec));
  }
  if (t == "combine_scores") {
    return std::unique_ptr<PhysicalFunction>(new CombineScoresFunction(spec));
  }
  if (t == "classify_boring_stats") {
    return std::unique_ptr<PhysicalFunction>(
        new ClassifyBoringStatsFunction(spec));
  }
  if (t == "classify_boring_pixels") {
    return std::unique_ptr<PhysicalFunction>(
        new ClassifyBoringPixelsFunction(spec));
  }
  if (t == "classify_boring_cascade") {
    return std::unique_ptr<PhysicalFunction>(
        new ClassifyBoringCascadeFunction(spec));
  }
  if (t == "fused_scores") {
    return std::unique_ptr<PhysicalFunction>(new FusedScoresFunction(spec));
  }
  return Status::InvalidArgument("unknown function template '" + t + "'");
}

}  // namespace kathdb::fao
