/// \file spec.h
/// \brief FunctionSpec — the "generated code" of a physical FAO.
///
/// In the paper the optimizer's coder agent writes a Python function body.
/// Our coder synthesizes a FunctionSpec instead: the chosen implementation
/// template plus its parameters, rendered as JSON and persisted to disk.
/// The spec is what gets versioned (ver_id), patched by the critic /
/// rewriter agents, profiled by the cost model, and interpreted at
/// execution time. `source_text` is a readable pseudo-code rendering used
/// by the result explainer.
///
/// \ingroup kathdb_fao

#pragma once

#include <string>

#include "common/json.h"
#include "common/status.h"

namespace kathdb::fao {

/// Implementation-template identifiers understood by the interpreter.
/// Each is a distinct *physical operator* for some logical signature:
///  - "sql":                      body is a SQL sub-query over the inputs
///  - "keyword_similarity_score": embed keywords vs extracted entities
///  - "recency_score":            scale release year into [0,1]
///  - "combine_scores":           weighted sum of score columns
///  - "classify_boring_stats":    scene-graph statistics heuristic
///  - "classify_boring_pixels":   simulated-VLM pixel analysis
///  - "classify_boring_cascade":  stats first, escalate uncertain to VLM
///  - "fused_scores":             fusion of the three scoring steps (E7)
struct FunctionSpec {
  std::string name;         ///< logical function this implements
  int64_t ver_id = 1;       ///< monotone version stamp (Section 4)
  std::string template_id;  ///< implementation template
  Json params = Json::Object();  ///< template-specific parameters
  std::string dependency_pattern = "one_to_one";  ///< lineage classification
  std::string source_text;  ///< pseudo-code body for explanations

  Json ToJson() const;
  static Result<FunctionSpec> FromJson(const Json& j);
};

}  // namespace kathdb::fao
