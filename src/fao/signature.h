/// \file signature.h
/// \brief FAO function signatures and logical plans.
///
/// The logical plan generator expands each query-sketch step into a node
/// holding only a *function signature* — name, description, inputs, output
/// — emitted in the exact JSON layout of Figure 3 so the downstream
/// compiler ingests it without post-processing. The optimizer later binds
/// each signature to one or more versioned implementations (FunctionSpec).
///
/// \ingroup kathdb_fao

#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace kathdb::fao {

/// \brief A logical-plan node: what the function must do, not how.
struct FunctionSignature {
  std::string name;         ///< e.g. "classify_boring"
  std::string description;  ///< semantic hint for code synthesis
  std::vector<std::string> inputs;  ///< datasource names consumed
  std::string output;               ///< table produced

  /// Figure-3 layout: {"name":..,"description":..},"inputs":[..],"output":..
  /// rendered as one object per node.
  Json ToJson() const;
  static Result<FunctionSignature> FromJson(const Json& j);
};

/// \brief An ordered tree of signatures (edges implied by input/output
/// names). Order is a valid execution order once Validate passes.
struct LogicalPlan {
  std::vector<FunctionSignature> nodes;

  /// JSON array of node objects (the layout of Figure 3).
  Json ToJson() const;
  static Result<LogicalPlan> FromJson(const Json& j);

  /// Node producing `output_name`, or nullptr.
  const FunctionSignature* ProducerOf(const std::string& output_name) const;

  /// Final output name (the output no other node consumes); "" if none.
  std::string FinalOutput() const;
};

}  // namespace kathdb::fao
