#include "fao/registry.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace kathdb::fao {

int64_t FunctionRegistry::RegisterNewVersionLocked(FunctionSpec spec) {
  auto& versions = specs_[spec.name];
  spec.ver_id = versions.empty() ? 1 : versions.back().ver_id + 1;
  versions.push_back(spec);
  return spec.ver_id;
}

int64_t FunctionRegistry::RegisterNewVersion(FunctionSpec spec) {
  common::MutexLock lock(mu_);
  return RegisterNewVersionLocked(std::move(spec));
}

Result<FunctionSpec> FunctionRegistry::Latest(const std::string& name) const {
  common::MutexLock lock(mu_);
  auto it = specs_.find(name);
  if (it == specs_.end() || it->second.empty()) {
    return Status::NotFound("no implementation registered for '" + name +
                            "'");
  }
  return it->second.back();
}

Result<FunctionSpec> FunctionRegistry::Version(const std::string& name,
                                               int64_t ver_id) const {
  common::MutexLock lock(mu_);
  return VersionLocked(name, ver_id);
}

Result<FunctionSpec> FunctionRegistry::VersionLocked(const std::string& name,
                                                     int64_t ver_id) const {
  auto it = specs_.find(name);
  if (it == specs_.end()) {
    return Status::NotFound("unknown function '" + name + "'");
  }
  for (const auto& s : it->second) {
    if (s.ver_id == ver_id) return s;
  }
  return Status::NotFound("function '" + name + "' has no version " +
                          std::to_string(ver_id));
}

std::vector<FunctionSpec> FunctionRegistry::VersionsOf(
    const std::string& name) const {
  common::MutexLock lock(mu_);
  auto it = specs_.find(name);
  return it == specs_.end() ? std::vector<FunctionSpec>{} : it->second;
}

Result<int64_t> FunctionRegistry::RollbackTo(const std::string& name,
                                             int64_t ver_id) {
  common::MutexLock lock(mu_);
  KATHDB_ASSIGN_OR_RETURN(FunctionSpec old, VersionLocked(name, ver_id));
  old.source_text += " [rolled back from v" + std::to_string(ver_id) + "]";
  return RegisterNewVersionLocked(std::move(old));
}

std::vector<std::string> FunctionRegistry::FunctionNames() const {
  common::MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : specs_) out.push_back(name);
  return out;
}

Status FunctionRegistry::SaveToDir(const std::string& dir) const {
  common::MutexLock lock(mu_);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  for (const auto& [name, versions] : specs_) {
    Json arr = Json::Array();
    for (const auto& v : versions) arr.Append(v.ToJson());
    std::ofstream out(dir + "/" + name + ".json");
    if (!out.good()) {
      return Status::IOError("cannot write function file for '" + name +
                             "'");
    }
    out << arr.Dump(2);
  }
  return Status::OK();
}

Status FunctionRegistry::LoadFromDir(const std::string& dir) {
  common::MutexLock lock(mu_);
  specs_.clear();
  std::error_code ec;
  auto iter = std::filesystem::directory_iterator(dir, ec);
  if (ec) {
    return Status::IOError("cannot read directory '" + dir +
                           "': " + ec.message());
  }
  for (const auto& entry : iter) {
    if (entry.path().extension() != ".json") continue;
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    KATHDB_ASSIGN_OR_RETURN(Json arr, Json::Parse(buf.str()));
    if (!arr.is_array()) {
      return Status::InvalidArgument("function file " +
                                     entry.path().string() +
                                     " must hold a JSON array");
    }
    std::vector<FunctionSpec> versions;
    for (const Json& v : arr.items()) {
      KATHDB_ASSIGN_OR_RETURN(FunctionSpec spec, FunctionSpec::FromJson(v));
      versions.push_back(std::move(spec));
    }
    if (!versions.empty()) {
      specs_[versions.front().name] = std::move(versions);
    }
  }
  return Status::OK();
}

}  // namespace kathdb::fao
