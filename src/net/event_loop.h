/// \file event_loop.h
/// \brief Portable readiness event loop: epoll on Linux, poll fallback.
///
/// One thread runs the loop; every registered fd has an interest mask
/// and a callback invoked with the ready events. Cross-thread
/// interaction goes through RunInLoop — a task queue drained on the
/// loop thread after a self-pipe wakeup — so fd registration and
/// connection state never need locks (the libsxe idiom: a small
/// portable poller driving per-connection state machines, with all
/// descriptor mutation confined to the loop thread).
///
/// \ingroup kathdb_net

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace kathdb::net {

/// Interest / readiness bits.
enum : uint32_t {
  kEventRead = 1u << 0,
  kEventWrite = 1u << 1,
};

/// Backend selection; kAuto picks epoll on Linux, poll elsewhere. Tests
/// force kPoll to cover the fallback path on any platform.
enum class PollBackend { kAuto, kEpoll, kPoll };

/// \brief N fds, one loop thread, a cross-thread task queue.
class EventLoop {
 public:
  using EventFn = std::function<void(uint32_t events)>;

  explicit EventLoop(PollBackend backend = PollBackend::kAuto);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with the given interest mask. Loop-thread only
  /// (or before Run starts).
  Status Add(int fd, uint32_t interest, EventFn fn);

  /// Updates the interest mask of a registered fd. Loop-thread only.
  Status SetInterest(int fd, uint32_t interest);

  /// Deregisters `fd` (the caller closes it). Loop-thread only.
  void Remove(int fd);

  /// Runs until Stop(); dispatches fd events and RunInLoop tasks.
  void Run();

  /// Thread-safe: makes Run return after the current iteration.
  void Stop();

  /// Thread-safe: queues `task` for execution on the loop thread and
  /// wakes the loop. Tasks queued after Stop are never executed.
  void RunInLoop(std::function<void()> task) KATHDB_EXCLUDES(tasks_mu_);

  bool using_epoll() const { return epoll_fd_ >= 0; }

 private:
  void Wakeup();
  void DispatchTasks() KATHDB_EXCLUDES(tasks_mu_);
  void RunEpoll();
  void RunPoll();
  void Dispatch(int fd, uint32_t events);

  struct Entry {
    uint32_t interest;
    EventFn fn;
  };

  int epoll_fd_ = -1;  ///< -1 = poll backend
  int wake_pipe_[2] = {-1, -1};
  std::map<int, Entry> entries_;  ///< loop thread only
  std::atomic<bool> stop_{false};
  common::Mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_ KATHDB_GUARDED_BY(tasks_mu_);
};

}  // namespace kathdb::net
