/// \file wire.h
/// \brief The `kathdb-wire/1` framed binary protocol.
///
/// Every message on the wire is one frame:
///
///     +------------+--------+-----------------------+
///     | u32 length | u8 op  | payload (length-1 B)  |
///     +------------+--------+-----------------------+
///
/// `length` is big-endian and counts the opcode byte plus the payload,
/// so a connection can be deframed without understanding any opcode.
/// Payload fields are big-endian fixed-width integers and u32
/// length-prefixed strings (PayloadWriter / PayloadReader). A frame
/// whose length is 0 or exceeds the configured maximum, or whose
/// payload does not parse, is a protocol violation — the peer closes
/// the connection.
///
/// The protocol carries session open/close, NL query submission,
/// clarification round-trips (server ASKs, client REPLYs), streamed
/// partial results (one PARTIAL_RESULT frame per row chunk, flushed as
/// the executor's final node completes), cancellation, and a stats
/// probe. Overload is shed as an ERROR frame carrying kUnavailable —
/// protocol-level backpressure instead of a dropped connection.
///
/// \ingroup kathdb_net

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace kathdb::net {

/// Protocol identity exchanged in the HELLO handshake.
inline constexpr const char kWireMagic[] = "kathdb-wire/1";

/// Bytes of the frame header (the big-endian u32 length).
inline constexpr size_t kFrameHeaderBytes = 4;

/// Frame opcodes. Client-initiated ops live below 0x80, server-initiated
/// ops at 0x80 and above.
enum class Op : uint8_t {
  // client -> server
  kHello = 0x01,         ///< string magic ("kathdb-wire/1")
  kOpenSession = 0x02,   ///< u32 n, n x string default replies
  kCloseSession = 0x03,  ///< u64 session_id
  kQuery = 0x04,  ///< u64 session_id, u64 query_id, string nl, u32 n, n x
                  ///< string scripted replies
  kReply = 0x05,  ///< u64 query_id, string answer (to an ASK)
  kCancel = 0x06,  ///< u64 query_id
  kStats = 0x07,   ///< empty
  kPing = 0x08,    ///< arbitrary payload, echoed in PONG

  // server -> client
  kHelloOk = 0x81,        ///< string magic
  kSessionOpened = 0x82,  ///< u64 session_id
  kSessionClosed = 0x83,  ///< u64 session_id
  kQueryAccepted = 0x84,  ///< u64 query_id
  kAsk = 0x85,     ///< u64 query_id, string stage, string question
  kNotify = 0x86,  ///< u64 query_id, string stage, string message
  kPartialResult = 0x87,  ///< u64 query_id, u32 seq, u64 row_offset,
                          ///< string chunk CSV (typed header + rows)
  kFinal = 0x88,  ///< u64 query_id, u32 chunks, u64 total_rows,
                  ///< string lineage_summary, string stats
  kError = 0x89,  ///< u64 query_id (0 = no query), u32 status code,
                  ///< string message; kUnavailable = overload shed
  kStatsOk = 0x8A,  ///< string stats text
  kPong = 0x8B,     ///< echoed PING payload
  kPartialResultCol = 0x8C,  ///< u64 query_id, u32 seq, u64 row_offset,
                             ///< columnar table (EncodeTableColumnar)
};

/// How PARTIAL_RESULT chunks are encoded on a connection, negotiated at
/// HELLO: clients that append the columnar flag to their HELLO get
/// PARTIAL_RESULT_COL frames (typed column buffers, no text round trip);
/// everything else gets the original CSV PARTIAL_RESULT frames.
enum class ResultEncoding : uint8_t { kCsv = 0, kColumnar = 1 };

/// Human-readable opcode name ("QUERY", "PARTIAL_RESULT", ...).
const char* OpName(Op op);

/// One deframed message.
struct Frame {
  Op op;
  std::string payload;
};

/// Encodes header + opcode + payload, ready for the socket.
std::string EncodeFrame(Op op, const std::string& payload);

/// \brief Incremental deframer over a raw byte stream.
///
/// Feed() whatever read() returned — frames may arrive split across
/// arbitrary read boundaries or many at once; Next() extracts them one
/// by one.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }

  /// Extracts the next complete frame into `*out`. Returns true when a
  /// frame was produced, false when more bytes are needed, and an error
  /// Status on a protocol violation (zero-length or oversized frame) —
  /// the connection must then be closed.
  Result<bool> Next(Frame* out);

  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_
};

/// \brief Builds a payload: big-endian integers + length-prefixed strings.
class PayloadWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutString(const std::string& s);  ///< u32 length + bytes
  /// Raw bytes, no length prefix (bulk column payloads).
  void PutBytes(const char* data, size_t n) { out_.append(data, n); }
  /// LEB128: 7 value bits per byte, high bit = continuation. Small
  /// values (row counts, dictionary codes, zigzagged ints) cost one
  /// byte instead of a fixed-width word.
  void PutVarint(uint64_t v);

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// \brief Bounds-checked payload parser; any overrun is an error Status.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload) : p_(payload) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<std::string> String();
  /// Exactly n raw bytes, no length prefix.
  Result<std::string> Bytes(size_t n);
  /// LEB128 counterpart of PayloadWriter::PutVarint; rejects encodings
  /// longer than ten bytes and truncated continuations.
  Result<uint64_t> Varint();

  bool AtEnd() const { return pos_ == p_.size(); }

 private:
  const std::string& p_;
  size_t pos_ = 0;
};

/// \brief Columnar table encoding for PARTIAL_RESULT_COL payloads.
///
/// Serializes the ColumnVector buffers of a result chunk directly instead
/// of rendering CSV text:
///
///     u32 ncols
///     ncols x { string name, u8 dtype }          -- schema
///     u64 nrows
///     ncols x column block:
///       u8 tag   -- low 7 bits: 0 EMPTY, 1 BOOL, 2 INT, 3 DOUBLE,
///                   4 DICT, 5 MIXED; bit 0x80: block carries NULLs
///       EMPTY: nothing further (every cell NULL; 0x80 is invalid here)
///       else:  ceil(nrows/64) x u64 validity words (bit set = non-NULL)
///              ONLY when the 0x80 bit is set — an all-valid block
///              skips them — then the payload:
///         BOOL:   nrows x u8 (0/1; NULL rows hold 0)
///         INT:    per NON-NULL row: zigzag varint
///         DOUBLE: per NON-NULL row: u64 (IEEE-754 bit pattern)
///         DICT:   varint dict count, count x (varint length + bytes),
///                 then per NON-NULL row: varint code (remapped
///                 chunk-local dense)
///         MIXED:  per NON-NULL row: u8 type tag (1 BOOL, 2 INT,
///                 3 DOUBLE, 4 STRING) + u8 / zigzag varint / u64 bits /
///                 varint length + bytes
///
/// Varints are LEB128 (little-endian 7-bit groups); zigzag maps int64
/// n to (n << 1) ^ (n >> 63) so small magnitudes of either sign stay
/// short. Schema columns beyond num_physical_columns() encode as EMPTY
/// blocks. Lineage ids do not travel (matching the CSV result path).
void EncodeTableColumnar(const rel::Table& table, PayloadWriter* w);

/// Decodes an EncodeTableColumnar payload into a table named `name`.
/// Every read is bounds-checked; malformed type tags, out-of-range
/// dictionary codes and truncated buffers fail with InvalidArgument.
Result<rel::Table> DecodeTableColumnar(PayloadReader* r,
                                       const std::string& name);

}  // namespace kathdb::net
