#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <deque>
#include <set>
#include <utility>

#include "common/sync.h"
#include "relational/io.h"

namespace kathdb::net {

namespace {

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

std::string NetStats::ToText() const {
  char buf[512];
  snprintf(buf, sizeof(buf),
           "net: conns=%lld (active %lld) | frames rx=%lld tx=%lld "
           "(partial %lld, %lld B) | queries=%lld | proto_errors=%lld "
           "unavailable=%lld reads_paused=%lld",
           static_cast<long long>(connections_accepted),
           static_cast<long long>(connections_active),
           static_cast<long long>(frames_received),
           static_cast<long long>(frames_sent),
           static_cast<long long>(partial_frames),
           static_cast<long long>(partial_bytes),
           static_cast<long long>(queries_received),
           static_cast<long long>(protocol_errors),
           static_cast<long long>(unavailable_sent),
           static_cast<long long>(reads_paused));
  return buf;
}

std::string LineageSummary(const engine::ExecutionReport& report) {
  std::string out = "plan of " + std::to_string(report.node_runs.size()) +
                    " node(s), final output '" + report.final_output_name +
                    "'\n";
  for (const auto& run : report.node_runs) {
    out += "  " + run.name + " [" + run.template_id + " v" +
           std::to_string(run.ver_id) + " " + run.dependency_pattern +
           "] -> " + std::to_string(run.output_rows) + " row(s)";
    if (run.repair_attempts > 0) {
      out += " repairs=" + std::to_string(run.repair_attempts);
    }
    if (run.semantic_flagged) out += " anomaly";
    out += "\n";
  }
  out += "total repairs=" + std::to_string(report.total_repairs) +
         " anomalies=" + std::to_string(report.total_anomalies);
  return out;
}

// ---------------------------------------------------------------------------
// Per-connection / per-query state

/// One accepted socket. Input-side fields (reader, state, sessions,
/// queries) belong to the loop thread; the outbox is shared with worker
/// threads under out_mu. `closed` (under out_mu) is how workers learn
/// the connection is gone.
struct Server::Connection {
  Connection(int fd_in, size_t max_frame_bytes)
      : fd(fd_in), reader(max_frame_bytes) {}

  const int fd;

  // ---- loop thread only ----
  enum class State { kAwaitHello, kReady, kClosed };
  State state = State::kAwaitHello;
  FrameReader reader;
  std::string rdbuf;  ///< scratch for read()
  bool paused_reading = false;
  /// PARTIAL_RESULT encoding negotiated at HELLO. Old clients (bare
  /// magic) keep the CSV frames they understand.
  ResultEncoding result_encoding = ResultEncoding::kCsv;
  std::set<service::SessionId> sessions;  ///< sessions this conn opened
  std::map<uint64_t, std::shared_ptr<QueryCtx>> queries;  ///< in flight

  // ---- shared with workers ----
  common::Mutex out_mu;
  std::string outbuf KATHDB_GUARDED_BY(out_mu);
  size_t out_pos KATHDB_GUARDED_BY(out_mu) = 0;  ///< consumed prefix
  bool closed KATHDB_GUARDED_BY(out_mu) = false;
};

/// In-flight query state bridging the loop thread (REPLY/CANCEL frames,
/// connection teardown) and the worker executing the query (Ask blocks
/// here; the stream sink and completion callback consult the flags).
struct Server::QueryCtx {
  explicit QueryCtx(uint64_t qid_in) : qid(qid_in) {}

  const uint64_t qid;
  common::Mutex mu;
  common::CondVar cv;
  std::deque<std::string> scripted
      KATHDB_GUARDED_BY(mu);  ///< replies shipped with the QUERY
  std::deque<std::string> replies
      KATHDB_GUARDED_BY(mu);               ///< live REPLY frames
  bool cancelled KATHDB_GUARDED_BY(mu) = false;  ///< client sent CANCEL
  bool detached KATHDB_GUARDED_BY(mu) = false;   ///< conn closed mid-query
  std::atomic<uint32_t> chunks{0};  ///< PARTIAL_RESULT frames emitted
  std::atomic<uint64_t> rows{0};    ///< rows across those frames
};

/// UserChannel whose Ask relays the question to the client as an ASK
/// frame and blocks until a REPLY arrives (scripted replies shipped with
/// the query are consumed first, keeping reproducible experiments
/// wire-compatible). Cancellation or connection teardown unblocks any
/// waiter with kUserAborted, so a dead client never wedges a worker.
class Server::RemoteUser : public llm::UserChannel {
 public:
  RemoteUser(Server* server, std::shared_ptr<Connection> conn,
             std::shared_ptr<QueryCtx> ctx)
      : server_(server), conn_(std::move(conn)), ctx_(std::move(ctx)) {}

  Result<std::string> Ask(const std::string& stage,
                          const std::string& question) override {
    std::string answer;
    bool need_wire = false;
    {
      common::MutexLock lock(ctx_->mu);
      if (ctx_->cancelled || ctx_->detached) {
        return Status::UserAborted(ctx_->cancelled ? "query cancelled"
                                                   : "client disconnected");
      }
      if (!ctx_->scripted.empty()) {
        answer = ctx_->scripted.front();
        ctx_->scripted.pop_front();
      } else {
        need_wire = true;
      }
    }
    if (need_wire) {
      PayloadWriter w;
      w.PutU64(ctx_->qid);
      w.PutString(stage);
      w.PutString(question);
      server_->SendFrame(conn_, Op::kAsk, w.Take());
      common::MutexLock lock(ctx_->mu);
      while (ctx_->replies.empty() && !ctx_->cancelled && !ctx_->detached) {
        ctx_->cv.Wait(ctx_->mu);
      }
      if (ctx_->replies.empty()) {
        return Status::UserAborted(ctx_->cancelled ? "query cancelled"
                                                   : "client disconnected");
      }
      answer = ctx_->replies.front();
      ctx_->replies.pop_front();
    }
    {
      common::MutexLock lock(hist_mu_);
      history_.push_back({stage, question, answer});
      ++questions_;
    }
    return answer;
  }

  void Notify(const std::string& stage, const std::string& message) override {
    {
      common::MutexLock lock(hist_mu_);
      history_.push_back({stage, message, ""});
    }
    {
      common::MutexLock lock(ctx_->mu);
      if (ctx_->cancelled || ctx_->detached) return;
    }
    PayloadWriter w;
    w.PutU64(ctx_->qid);
    w.PutString(stage);
    w.PutString(message);
    server_->SendFrame(conn_, Op::kNotify, w.Take());
  }

  // Only read once the query has finished (same contract as
  // ScriptedUser::history), hence the analysis escape hatch.
  const std::vector<llm::Exchange>& history() const
      KATHDB_NO_THREAD_SAFETY_ANALYSIS override {
    return history_;
  }

  size_t questions_asked() const KATHDB_EXCLUDES(hist_mu_) override {
    common::MutexLock lock(hist_mu_);
    return questions_;
  }

 private:
  Server* server_;
  std::shared_ptr<Connection> conn_;
  std::shared_ptr<QueryCtx> ctx_;
  mutable common::Mutex hist_mu_;
  std::vector<llm::Exchange> history_ KATHDB_GUARDED_BY(hist_mu_);
  size_t questions_ KATHDB_GUARDED_BY(hist_mu_) = 0;
};

/// ProgressSink flushing final-output row chunks to the client as
/// PARTIAL_RESULT frames the moment the executor completes the final
/// node — before sibling branches finish and before the service layer
/// wraps the outcome.
class Server::StreamSink : public engine::ProgressSink {
 public:
  StreamSink(Server* server, std::shared_ptr<Connection> conn,
             std::shared_ptr<QueryCtx> ctx)
      : server_(server), conn_(std::move(conn)), ctx_(std::move(ctx)) {}

  void OnNodeComplete(const engine::NodeRun& run, bool is_final) override {
    (void)run;
    (void)is_final;
  }

  void OnResultChunk(const rel::Table& chunk, size_t row_offset,
                     bool last) override {
    (void)last;
    {
      common::MutexLock lock(ctx_->mu);
      if (ctx_->cancelled || ctx_->detached) return;
    }
    uint32_t seq = ctx_->chunks.fetch_add(1, std::memory_order_relaxed);
    ctx_->rows.fetch_add(chunk.num_rows(), std::memory_order_relaxed);
    PayloadWriter w;
    w.PutU64(ctx_->qid);
    w.PutU32(seq);
    w.PutU64(row_offset);
    Op op;
    if (encoding_ == ResultEncoding::kColumnar) {
      EncodeTableColumnar(chunk, &w);
      op = Op::kPartialResultCol;
    } else {
      w.PutString(rel::TableToCsv(chunk));
      op = Op::kPartialResult;
    }
    std::string payload = w.Take();
    server_->partial_frames_.fetch_add(1, std::memory_order_relaxed);
    server_->partial_bytes_.fetch_add(
        static_cast<int64_t>(kFrameHeaderBytes + 1 + payload.size()),
        std::memory_order_relaxed);
    server_->SendFrame(conn_, op, payload);
  }

  /// Set on the loop thread (HandleQuery) before the worker can run.
  void set_encoding(ResultEncoding e) { encoding_ = e; }

 private:
  Server* server_;
  std::shared_ptr<Connection> conn_;
  std::shared_ptr<QueryCtx> ctx_;
  ResultEncoding encoding_ = ResultEncoding::kCsv;
};

// ---------------------------------------------------------------------------
// Server

Server::Server(service::QueryService* service, ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      loop_(options_.backend) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    Status st = Status::IOError(std::string("bind/listen ") + options_.host +
                                ": " + strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  // Registered before the loop thread starts, so no RunInLoop needed.
  Status st = loop_.Add(listen_fd_, kEventRead,
                        [this](uint32_t) { OnAcceptable(); });
  if (!st.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  loop_thread_ = std::thread([this] {
    loop_thread_id_ = std::this_thread::get_id();
    loop_thread_id_set_.store(true, std::memory_order_release);
    loop_.Run();
  });
  started_ = true;
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  if (stopping_.exchange(true)) return;
  loop_.RunInLoop([this] {
    if (listen_fd_ >= 0) {
      loop_.Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    auto conns = connections_;  // CloseConnection mutates connections_
    for (auto& [fd, conn] : conns) CloseConnection(conn);
  });
  // In-flight queries were detached above (their Asks unblock with
  // kUserAborted); wait for them to finish while the loop thread is
  // still alive to run their completion erase tasks.
  service_->Drain();
  loop_.Stop();
  loop_thread_.join();
  started_ = false;
}

NetStats Server::stats() const {
  NetStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_active = connections_active_.load();
  s.frames_received = frames_received_.load();
  s.frames_sent = frames_sent_.load();
  s.protocol_errors = protocol_errors_.load();
  s.queries_received = queries_received_.load();
  s.partial_frames = partial_frames_.load();
  s.partial_bytes = partial_bytes_.load();
  s.unavailable_sent = unavailable_sent_.load();
  s.reads_paused = reads_paused_.load();
  return s;
}

// ---------------------------------------------------------------------------
// Loop-thread handlers

void Server::OnAcceptable() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / listener closed
    SetNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
    }
    auto conn = std::make_shared<Connection>(fd, options_.max_frame_bytes);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    connections_[fd] = conn;
    loop_.Add(fd, kEventRead,
              [this, conn](uint32_t events) { OnConnEvent(conn, events); });
  }
}

void Server::OnConnEvent(const std::shared_ptr<Connection>& conn,
                         uint32_t events) {
  if (events & kEventWrite) FlushWrites(conn);
  if (conn->state == Connection::State::kClosed) return;
  if ((events & kEventRead) && !conn->paused_reading) ReadInput(conn);
}

void Server::ReadInput(const std::shared_ptr<Connection>& conn) {
  conn->rdbuf.resize(options_.read_chunk_bytes);
  ssize_t n = ::read(conn->fd, &conn->rdbuf[0], conn->rdbuf.size());
  if (n == 0) {  // orderly EOF
    CloseConnection(conn);
    return;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    CloseConnection(conn);
    return;
  }
  conn->reader.Feed(conn->rdbuf.data(), static_cast<size_t>(n));
  Frame frame;
  while (true) {
    Result<bool> got = conn->reader.Next(&frame);
    if (!got.ok()) {
      ProtocolError(conn, got.status().message());
      return;
    }
    if (!*got) break;  // need more bytes
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    HandleFrame(conn, frame);
    if (conn->state == Connection::State::kClosed) return;
  }
}

void Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         const Frame& frame) {
  if (conn->state == Connection::State::kAwaitHello) {
    if (frame.op != Op::kHello) {
      ProtocolError(conn, std::string("expected HELLO, got ") +
                              OpName(frame.op));
      return;
    }
    PayloadReader r(frame.payload);
    auto magic = r.String();
    if (!magic.ok() || *magic != kWireMagic) {
      ProtocolError(conn, "bad protocol magic in HELLO");
      return;
    }
    // Optional result-encoding request: one u8 after the magic. Old
    // clients send the bare magic and keep CSV results.
    if (!r.AtEnd()) {
      auto enc = r.U8();
      if (!enc.ok() || !r.AtEnd() ||
          *enc > static_cast<uint8_t>(ResultEncoding::kColumnar)) {
        ProtocolError(conn, "bad result encoding in HELLO");
        return;
      }
      conn->result_encoding = static_cast<ResultEncoding>(*enc);
    }
    conn->state = Connection::State::kReady;
    PayloadWriter w;
    w.PutString(kWireMagic);
    // Accepted encoding echoed for new clients; old clients never look
    // past the magic.
    w.PutU8(static_cast<uint8_t>(conn->result_encoding));
    SendFrame(conn, Op::kHelloOk, w.Take());
    return;
  }

  switch (frame.op) {
    case Op::kOpenSession: {
      PayloadReader r(frame.payload);
      auto n = r.U32();
      if (!n.ok()) {
        ProtocolError(conn, "malformed OPEN_SESSION");
        return;
      }
      std::vector<std::string> replies;
      replies.reserve(*n);
      for (uint32_t i = 0; i < *n; ++i) {
        auto s = r.String();
        if (!s.ok()) {
          ProtocolError(conn, "malformed OPEN_SESSION");
          return;
        }
        replies.push_back(std::move(*s));
      }
      service::SessionId sid = service_->OpenSession(std::move(replies));
      conn->sessions.insert(sid);
      PayloadWriter w;
      w.PutU64(static_cast<uint64_t>(sid));
      SendFrame(conn, Op::kSessionOpened, w.Take());
      return;
    }
    case Op::kCloseSession: {
      PayloadReader r(frame.payload);
      auto sid = r.U64();
      if (!sid.ok()) {
        ProtocolError(conn, "malformed CLOSE_SESSION");
        return;
      }
      auto id = static_cast<service::SessionId>(*sid);
      if (conn->sessions.erase(id) == 0) {
        PayloadWriter w;
        w.PutU64(0);
        w.PutU32(static_cast<uint32_t>(StatusCode::kNotFound));
        w.PutString("session " + std::to_string(id) +
                    " not owned by this connection");
        SendFrame(conn, Op::kError, w.Take());
        return;
      }
      service_->CloseSession(id);
      PayloadWriter w;
      w.PutU64(*sid);
      SendFrame(conn, Op::kSessionClosed, w.Take());
      return;
    }
    case Op::kQuery:
      HandleQuery(conn, frame);
      return;
    case Op::kReply: {
      PayloadReader r(frame.payload);
      auto qid = r.U64();
      auto answer = r.String();
      if (!qid.ok() || !answer.ok()) {
        ProtocolError(conn, "malformed REPLY");
        return;
      }
      auto it = conn->queries.find(*qid);
      if (it == conn->queries.end()) return;  // raced with completion
      {
        common::MutexLock lock(it->second->mu);
        it->second->replies.push_back(std::move(*answer));
      }
      it->second->cv.NotifyAll();
      return;
    }
    case Op::kCancel: {
      PayloadReader r(frame.payload);
      auto qid = r.U64();
      if (!qid.ok()) {
        ProtocolError(conn, "malformed CANCEL");
        return;
      }
      auto it = conn->queries.find(*qid);
      if (it == conn->queries.end()) return;  // raced with completion
      {
        common::MutexLock lock(it->second->mu);
        it->second->cancelled = true;
      }
      it->second->cv.NotifyAll();
      return;
    }
    case Op::kStats: {
      PayloadWriter w;
      w.PutString(service_->stats().ToText() + "\n" + stats().ToText());
      SendFrame(conn, Op::kStatsOk, w.Take());
      return;
    }
    case Op::kPing:
      SendFrame(conn, Op::kPong, frame.payload);
      return;
    default:
      ProtocolError(conn, std::string("unexpected opcode ") +
                              OpName(frame.op));
      return;
  }
}

void Server::HandleQuery(const std::shared_ptr<Connection>& conn,
                         const Frame& frame) {
  PayloadReader r(frame.payload);
  auto sid = r.U64();
  auto qid = r.U64();
  auto nl = r.String();
  auto n = r.U32();
  if (!sid.ok() || !qid.ok() || !nl.ok() || !n.ok()) {
    ProtocolError(conn, "malformed QUERY");
    return;
  }
  std::vector<std::string> scripted;
  scripted.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    auto s = r.String();
    if (!s.ok()) {
      ProtocolError(conn, "malformed QUERY");
      return;
    }
    scripted.push_back(std::move(*s));
  }
  if (conn->queries.count(*qid) > 0) {
    ProtocolError(conn, "duplicate query id " + std::to_string(*qid));
    return;
  }

  auto ctx = std::make_shared<QueryCtx>(*qid);
  ctx->scripted.assign(scripted.begin(), scripted.end());
  auto user = std::make_shared<RemoteUser>(this, conn, ctx);
  auto sink = std::make_shared<StreamSink>(this, conn, ctx);
  sink->set_encoding(conn->result_encoding);  // loop thread, pre-Submit
  queries_received_.fetch_add(1, std::memory_order_relaxed);

  // Register + acknowledge BEFORE Submit: a worker may pick the query up
  // and ASK immediately, and the client must already know the query id
  // is live (and REPLY frames must find the ctx).
  conn->queries[*qid] = ctx;
  {
    PayloadWriter w;
    w.PutU64(*qid);
    SendFrame(conn, Op::kQueryAccepted, w.Take());
  }

  service::SubmitOptions opts;
  opts.user = user.get();
  opts.progress = sink.get();
  opts.stream_chunk_rows = options_.stream_chunk_rows;
  // The callback owns user/sink/ctx until the query completes.
  opts.on_complete = [this, conn, ctx, user, sink](
                         const Result<engine::QueryOutcome>& outcome) {
    OnQueryComplete(conn, ctx, outcome);
  };
  auto submitted = service_->Submit(static_cast<service::SessionId>(*sid),
                                    *nl, std::move(opts));
  if (!submitted.ok()) {
    conn->queries.erase(*qid);
    const Status& st = submitted.status();
    if (st.IsUnavailable()) {
      unavailable_sent_.fetch_add(1, std::memory_order_relaxed);
    }
    PayloadWriter w;
    w.PutU64(*qid);
    w.PutU32(static_cast<uint32_t>(st.code()));
    w.PutString(st.message());
    SendFrame(conn, Op::kError, w.Take());
  }
}

void Server::ProtocolError(const std::shared_ptr<Connection>& conn,
                           const std::string& reason) {
  (void)reason;
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  CloseConnection(conn);
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->state == Connection::State::kClosed) return;
  conn->state = Connection::State::kClosed;
  {
    common::MutexLock lock(conn->out_mu);
    conn->closed = true;
  }
  loop_.Remove(conn->fd);
  ::close(conn->fd);
  connections_active_.fetch_add(-1, std::memory_order_relaxed);
  // Sessions die with their connection.
  for (service::SessionId sid : conn->sessions) service_->CloseSession(sid);
  conn->sessions.clear();
  // Detach in-flight queries: blocked Asks unblock with kUserAborted,
  // streamed chunks stop; the queries run to completion on their workers
  // (usage stays metered exactly once) and their completion callbacks
  // find the connection closed.
  for (auto& [qid, ctx] : conn->queries) {
    {
      common::MutexLock lock(ctx->mu);
      ctx->detached = true;
    }
    ctx->cv.NotifyAll();
  }
  conn->queries.clear();
  connections_.erase(conn->fd);
}

// ---------------------------------------------------------------------------
// Outbound path (worker- and loop-thread callable)

void Server::SendFrame(const std::shared_ptr<Connection>& conn, Op op,
                       const std::string& payload) {
  {
    common::MutexLock lock(conn->out_mu);
    if (conn->closed) return;
    conn->outbuf += EncodeFrame(op, payload);
  }
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  if (loop_thread_id_set_.load(std::memory_order_acquire) &&
      std::this_thread::get_id() == loop_thread_id_) {
    FlushWrites(conn);
  } else {
    loop_.RunInLoop([this, conn] {
      if (conn->state != Connection::State::kClosed) FlushWrites(conn);
    });
  }
}

void Server::FlushWrites(const std::shared_ptr<Connection>& conn) {
  bool fatal = false;
  {
    common::MutexLock lock(conn->out_mu);
    if (conn->closed) return;
    while (conn->out_pos < conn->outbuf.size()) {
      ssize_t n = ::write(conn->fd, conn->outbuf.data() + conn->out_pos,
                          conn->outbuf.size() - conn->out_pos);
      if (n > 0) {
        conn->out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)) {
        break;
      }
      fatal = true;
      break;
    }
    if (conn->out_pos > 0 && conn->out_pos >= conn->outbuf.size() / 2) {
      conn->outbuf.erase(0, conn->out_pos);
      conn->out_pos = 0;
    }
  }
  if (fatal) {
    CloseConnection(conn);
    return;
  }
  UpdateInterest(conn);
}

void Server::UpdateInterest(const std::shared_ptr<Connection>& conn) {
  size_t pending;
  {
    common::MutexLock lock(conn->out_mu);
    pending = conn->outbuf.size() - conn->out_pos;
  }
  // Write-buffer high-water mark: stop reading from a client that is not
  // draining its responses; resume with hysteresis at half the mark.
  if (!conn->paused_reading && pending > options_.write_high_water) {
    conn->paused_reading = true;
    reads_paused_.fetch_add(1, std::memory_order_relaxed);
  } else if (conn->paused_reading &&
             pending <= options_.write_high_water / 2) {
    conn->paused_reading = false;
  }
  uint32_t interest = 0;
  if (!conn->paused_reading) interest |= kEventRead;
  if (pending > 0) interest |= kEventWrite;
  loop_.SetInterest(conn->fd, interest);
}

void Server::OnQueryComplete(const std::shared_ptr<Connection>& conn,
                             const std::shared_ptr<QueryCtx>& ctx,
                             const Result<engine::QueryOutcome>& outcome) {
  bool cancelled, detached;
  {
    common::MutexLock lock(ctx->mu);
    cancelled = ctx->cancelled;
    detached = ctx->detached;
  }
  if (!detached) {
    if (cancelled) {
      PayloadWriter w;
      w.PutU64(ctx->qid);
      w.PutU32(static_cast<uint32_t>(StatusCode::kUserAborted));
      w.PutString("query cancelled by client");
      SendFrame(conn, Op::kError, w.Take());
    } else if (outcome.ok()) {
      const engine::QueryOutcome& out = outcome.value();
      PayloadWriter w;
      w.PutU64(ctx->qid);
      w.PutU32(ctx->chunks.load(std::memory_order_relaxed));
      w.PutU64(ctx->rows.load(std::memory_order_relaxed));
      w.PutString(LineageSummary(out.report));
      w.PutString("nodes=" + std::to_string(out.report.node_runs.size()) +
                  " repairs=" + std::to_string(out.report.total_repairs) +
                  " anomalies=" +
                  std::to_string(out.report.total_anomalies));
      SendFrame(conn, Op::kFinal, w.Take());
    } else {
      const Status& st = outcome.status();
      if (st.IsUnavailable()) {
        unavailable_sent_.fetch_add(1, std::memory_order_relaxed);
      }
      PayloadWriter w;
      w.PutU64(ctx->qid);
      w.PutU32(static_cast<uint32_t>(st.code()));
      w.PutString(st.message());
      SendFrame(conn, Op::kError, w.Take());
    }
  }
  // Deregister on the loop thread (conn->queries is loop-thread state).
  loop_.RunInLoop([conn, ctx] { conn->queries.erase(ctx->qid); });
}

}  // namespace kathdb::net
