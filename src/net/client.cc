#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "relational/io.h"

namespace kathdb::net {

namespace {

// Maps a wire status code to a (guaranteed non-OK) Status: an ERROR
// frame carrying a nonsense code must not crash the client.
Status WireError(uint32_t code, std::string msg) {
  auto c = static_cast<StatusCode>(code);
  if (code == 0 || code >= static_cast<uint32_t>(kNumStatusCodes)) {
    c = StatusCode::kRuntimeError;
  }
  return Status(c, std::move(msg));
}

}  // namespace

Status Client::ConnectRaw() {
  if (fd_ >= 0) return Status::AlreadyExists("already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.recv_timeout_ms > 0) {
    struct timeval tv;
    tv.tv_sec = options_.recv_timeout_ms / 1000;
    tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (options_.rcvbuf_bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &options_.rcvbuf_bytes,
                 sizeof(options_.rcvbuf_bytes));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address " + options_.host);
  }
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status st = Status::IOError("connect " + options_.host + ":" +
                                std::to_string(options_.port) + ": " +
                                strerror(errno));
    Close();
    return st;
  }
  return Status::OK();
}

Status Client::Connect() {
  KATHDB_RETURN_IF_ERROR(ConnectRaw());
  PayloadWriter w;
  w.PutString(kWireMagic);
  // Requesting CSV sends the bare legacy HELLO, so this client stays
  // indistinguishable from a pre-columnar one.
  if (options_.result_encoding != ResultEncoding::kCsv) {
    w.PutU8(static_cast<uint8_t>(options_.result_encoding));
  }
  KATHDB_RETURN_IF_ERROR(SendFrame(Op::kHello, w.Take()));
  KATHDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.op != Op::kHelloOk) {
    Close();
    return Status::IOError(std::string("handshake: expected HELLO_OK, got ") +
                           OpName(frame.op));
  }
  PayloadReader r(frame.payload);
  auto magic = r.String();
  if (!magic.ok() || *magic != kWireMagic) {
    Close();
    return Status::IOError("handshake: server speaks a different protocol");
  }
  // Servers predating the columnar encoding end the payload here; they
  // only ever send CSV.
  negotiated_ = ResultEncoding::kCsv;
  if (!r.AtEnd()) {
    auto enc = r.U8();
    if (!enc.ok() ||
        *enc > static_cast<uint8_t>(ResultEncoding::kColumnar)) {
      Close();
      return Status::IOError("handshake: bad result encoding in HELLO_OK");
    }
    negotiated_ = static_cast<ResultEncoding>(*enc);
  }
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::SendBytes(const std::string& bytes) {
  common::MutexLock lock(send_mu_);
  if (fd_ < 0) return Status::IOError("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::SendFrame(Op op, const std::string& payload) {
  return SendBytes(EncodeFrame(op, payload));
}

Result<Frame> Client::ReadFrame() {
  Frame frame;
  char buf[64 << 10];
  while (true) {
    KATHDB_ASSIGN_OR_RETURN(bool got, reader_.Next(&frame));
    if (got) return frame;
    if (fd_ < 0) return Status::IOError("not connected");
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) return Status::IOError("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("read timeout");
      }
      return Status::IOError(std::string("read: ") + strerror(errno));
    }
    reader_.Feed(buf, static_cast<size_t>(n));
  }
}

Result<uint64_t> Client::OpenSession(
    const std::vector<std::string>& default_replies) {
  PayloadWriter w;
  w.PutU32(static_cast<uint32_t>(default_replies.size()));
  for (const auto& s : default_replies) w.PutString(s);
  KATHDB_RETURN_IF_ERROR(SendFrame(Op::kOpenSession, w.Take()));
  KATHDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.op != Op::kSessionOpened) {
    return Status::IOError(std::string("expected SESSION_OPENED, got ") +
                           OpName(frame.op));
  }
  PayloadReader r(frame.payload);
  return r.U64();
}

Status Client::CloseSession(uint64_t session_id) {
  PayloadWriter w;
  w.PutU64(session_id);
  KATHDB_RETURN_IF_ERROR(SendFrame(Op::kCloseSession, w.Take()));
  KATHDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.op == Op::kSessionClosed) return Status::OK();
  if (frame.op == Op::kError) {
    PayloadReader r(frame.payload);
    r.U64();  // query id (0)
    auto code = r.U32();
    auto msg = r.String();
    if (code.ok() && msg.ok()) {
      return WireError(*code, std::move(*msg));
    }
  }
  return Status::IOError(std::string("expected SESSION_CLOSED, got ") +
                         OpName(frame.op));
}

Result<StreamedResult> Client::Query(uint64_t session_id,
                                     const std::string& nl,
                                     const std::vector<std::string>& scripted,
                                     AskHandler on_ask) {
  uint64_t qid = next_qid_++;
  PayloadWriter w;
  w.PutU64(session_id);
  w.PutU64(qid);
  w.PutString(nl);
  w.PutU32(static_cast<uint32_t>(scripted.size()));
  for (const auto& s : scripted) w.PutString(s);
  KATHDB_RETURN_IF_ERROR(SendFrame(Op::kQuery, w.Take()));

  StreamedResult result;
  bool have_schema = false;
  while (true) {
    KATHDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    PayloadReader r(frame.payload);
    switch (frame.op) {
      case Op::kQueryAccepted:
        break;
      case Op::kAsk: {
        KATHDB_ASSIGN_OR_RETURN(uint64_t q, r.U64());
        KATHDB_ASSIGN_OR_RETURN(std::string stage, r.String());
        KATHDB_ASSIGN_OR_RETURN(std::string question, r.String());
        if (q != qid) break;  // stale query
        if (on_ask) {
          std::optional<std::string> answer = on_ask(stage, question);
          if (answer.has_value()) {
            PayloadWriter reply;
            reply.PutU64(qid);
            reply.PutString(*answer);
            KATHDB_RETURN_IF_ERROR(SendFrame(Op::kReply, reply.Take()));
            ++result.questions_answered;
          }
        }
        break;
      }
      case Op::kNotify: {
        KATHDB_ASSIGN_OR_RETURN(uint64_t q, r.U64());
        KATHDB_ASSIGN_OR_RETURN(std::string stage, r.String());
        KATHDB_ASSIGN_OR_RETURN(std::string message, r.String());
        if (q == qid) result.notifications.push_back(stage + ": " + message);
        break;
      }
      case Op::kPartialResult:
      case Op::kPartialResultCol: {
        KATHDB_ASSIGN_OR_RETURN(uint64_t q, r.U64());
        KATHDB_ASSIGN_OR_RETURN(uint32_t seq, r.U32());
        KATHDB_ASSIGN_OR_RETURN(uint64_t offset, r.U64());
        if (q != qid) break;  // stale query; skip the chunk body
        rel::Table chunk;
        if (frame.op == Op::kPartialResultCol) {
          KATHDB_ASSIGN_OR_RETURN(chunk, DecodeTableColumnar(&r, "result"));
        } else {
          KATHDB_ASSIGN_OR_RETURN(std::string csv, r.String());
          KATHDB_ASSIGN_OR_RETURN(chunk, rel::TableFromCsv(csv, "result"));
        }
        if (seq != result.partial_frames) {
          return Status::IOError("partial chunk " + std::to_string(seq) +
                                 " arrived out of order (expected " +
                                 std::to_string(result.partial_frames) + ")");
        }
        if (offset != result.table.num_rows()) {
          return Status::IOError(
              "partial chunk at row offset " + std::to_string(offset) +
              " but " + std::to_string(result.table.num_rows()) +
              " row(s) reassembled so far");
        }
        if (!have_schema) {
          result.table = std::move(chunk);
          have_schema = true;
        } else if (frame.op == Op::kPartialResultCol) {
          if (!(chunk.schema() == result.table.schema())) {
            return Status::IOError("partial chunk schema changed mid-stream");
          }
          result.table.AppendSlice(chunk, 0, chunk.num_rows());
        } else {
          for (size_t i = 0; i < chunk.num_rows(); ++i) {
            result.table.AppendRow(chunk.row(i));
          }
        }
        ++result.partial_frames;
        break;
      }
      case Op::kFinal: {
        KATHDB_ASSIGN_OR_RETURN(uint64_t q, r.U64());
        KATHDB_ASSIGN_OR_RETURN(uint32_t chunks, r.U32());
        KATHDB_ASSIGN_OR_RETURN(uint64_t total_rows, r.U64());
        KATHDB_ASSIGN_OR_RETURN(std::string lineage, r.String());
        KATHDB_ASSIGN_OR_RETURN(std::string stats, r.String());
        if (q != qid) break;
        if (chunks != result.partial_frames) {
          return Status::IOError(
              "FINAL reports " + std::to_string(chunks) + " chunk(s), " +
              std::to_string(result.partial_frames) + " received");
        }
        if (total_rows != result.table.num_rows()) {
          return Status::IOError(
              "FINAL reports " + std::to_string(total_rows) + " row(s), " +
              std::to_string(result.table.num_rows()) + " reassembled");
        }
        result.total_rows = total_rows;
        result.lineage_summary = std::move(lineage);
        result.stats = std::move(stats);
        return result;
      }
      case Op::kError: {
        KATHDB_ASSIGN_OR_RETURN(uint64_t q, r.U64());
        KATHDB_ASSIGN_OR_RETURN(uint32_t code, r.U32());
        KATHDB_ASSIGN_OR_RETURN(std::string msg, r.String());
        if (q != qid && q != 0) break;
        return WireError(code, std::move(msg));
      }
      default:
        return Status::IOError(std::string("unexpected ") +
                               OpName(frame.op) + " during query");
    }
  }
}

Status Client::Cancel(uint64_t query_id) {
  PayloadWriter w;
  w.PutU64(query_id);
  return SendFrame(Op::kCancel, w.Take());
}

Result<std::string> Client::Stats() {
  KATHDB_RETURN_IF_ERROR(SendFrame(Op::kStats, ""));
  KATHDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.op != Op::kStatsOk) {
    return Status::IOError(std::string("expected STATS_OK, got ") +
                           OpName(frame.op));
  }
  PayloadReader r(frame.payload);
  return r.String();
}

Result<std::string> Client::Ping(const std::string& payload) {
  KATHDB_RETURN_IF_ERROR(SendFrame(Op::kPing, payload));
  KATHDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.op != Op::kPong) {
    return Status::IOError(std::string("expected PONG, got ") +
                           OpName(frame.op));
  }
  return frame.payload;
}

}  // namespace kathdb::net
