/// \file client.h
/// \brief Blocking kathdb-wire/1 client library.
///
/// net::Client speaks the framed protocol to a kathdbd server: HELLO
/// handshake, session open/close, NL query submission with streamed
/// partial results, clarification round-trips (the server ASKs, the
/// caller's handler answers), and cancellation. Query() reassembles the
/// streamed row chunks — columnar PARTIAL_RESULT_COL frames when the
/// HELLO negotiated them (the default), legacy CSV PARTIAL_RESULT frames
/// otherwise — into one rel::Table that is byte-identical (per
/// rel::TableToCsv) to the table an in-process QueryService::Query
/// would return.
///
/// The client is synchronous — one outstanding query per Client — but
/// sends are mutex-guarded so Cancel() may be called from another
/// thread while Query() blocks in its read loop. Raw frame primitives
/// (SendBytes / SendFrame / ReadFrame) are exposed for protocol tests.
///
/// \ingroup kathdb_net

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "net/wire.h"
#include "relational/table.h"

namespace kathdb::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< required
  size_t max_frame_bytes = 4u << 20;
  /// SO_RCVTIMEO in milliseconds (0 = block forever). Tests set it so a
  /// missing frame fails the test instead of hanging it.
  int recv_timeout_ms = 0;
  /// SO_RCVBUF (0 = kernel default). Backpressure tests shrink it so the
  /// server's write high-water mark triggers on a small byte budget.
  int rcvbuf_bytes = 0;
  /// Result encoding requested at HELLO. kColumnar (default) streams
  /// typed column buffers (PARTIAL_RESULT_COL); kCsv sends the bare
  /// legacy HELLO and keeps CSV chunks. The server's choice is readable
  /// via negotiated_encoding() after Connect().
  ResultEncoding result_encoding = ResultEncoding::kColumnar;
};

/// Everything a completed streamed query produced.
struct StreamedResult {
  rel::Table table;  ///< reassembled from the PARTIAL_RESULT chunks
  size_t partial_frames = 0;  ///< chunks received before FINAL
  uint64_t total_rows = 0;    ///< row total reported by FINAL
  std::string lineage_summary;  ///< deterministic provenance rendering
  std::string stats;            ///< brief execution stats from FINAL
  std::vector<std::string> notifications;  ///< "stage: message" lines
  size_t questions_answered = 0;  ///< wire ASKs the handler answered
};

/// \brief One TCP connection speaking kathdb-wire/1.
class Client {
 public:
  /// Answers a server ASK: return the reply, or std::nullopt to leave
  /// the question unanswered (the query then blocks until a Cancel or
  /// disconnect aborts it).
  using AskHandler = std::function<std::optional<std::string>(
      const std::string& stage, const std::string& question)>;

  explicit Client(ClientOptions options)
      : options_(std::move(options)), reader_(options_.max_frame_bytes) {}
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and runs the HELLO handshake (including result-encoding
  /// negotiation per ClientOptions::result_encoding).
  Status Connect();
  /// Result encoding the server accepted at HELLO (kCsv until Connect()
  /// succeeds, and for servers predating the columnar encoding).
  ResultEncoding negotiated_encoding() const { return negotiated_; }
  /// TCP connect WITHOUT the handshake — protocol-hardening tests drive
  /// the wire by hand from here via SendBytes/SendFrame/ReadFrame.
  Status ConnectRaw();
  void Close();
  bool connected() const { return fd_ >= 0; }

  Result<uint64_t> OpenSession(
      const std::vector<std::string>& default_replies = {});
  Status CloseSession(uint64_t session_id);

  /// Submits `nl` and blocks until FINAL or ERROR, streaming chunks into
  /// the result along the way. `scripted` replies ride along in the
  /// QUERY frame and are consumed server-side before any wire ASK;
  /// `on_ask` answers the ASKs that remain. Query ids are assigned
  /// sequentially from 1 (see next_query_id()).
  Result<StreamedResult> Query(uint64_t session_id, const std::string& nl,
                               const std::vector<std::string>& scripted = {},
                               AskHandler on_ask = nullptr);

  /// Thread-safe: requests cancellation of an in-flight query while
  /// another thread blocks in Query().
  Status Cancel(uint64_t query_id);

  /// Server-side service + net counters, rendered as text.
  Result<std::string> Stats();

  /// Round-trips `payload` through PING/PONG.
  Result<std::string> Ping(const std::string& payload);

  /// The id Query() will assign to its next submission.
  uint64_t next_query_id() const { return next_qid_; }

  // ---- raw protocol access (hardening tests) ----
  Status SendBytes(const std::string& bytes)
      KATHDB_EXCLUDES(send_mu_);  ///< thread-safe
  Status SendFrame(Op op, const std::string& payload);
  /// Blocks for the next frame; kIOError on EOF, timeout, or a
  /// protocol-violating frame.
  Result<Frame> ReadFrame();

 private:
  ClientOptions options_;
  int fd_ = -1;
  FrameReader reader_;
  common::Mutex send_mu_;
  uint64_t next_qid_ = 1;
  ResultEncoding negotiated_ = ResultEncoding::kCsv;
};

}  // namespace kathdb::net
