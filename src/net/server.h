/// \file server.h
/// \brief Event-driven TCP front-end serving the kathdb-wire/1 protocol.
///
/// One EventLoop thread owns every socket: it accepts connections,
/// deframes the byte stream into protocol frames and drives a
/// per-connection state machine (AWAIT_HELLO -> READY -> CLOSED).
/// Queries are handed to the existing service::QueryService worker
/// pool; the wire work the workers produce — ASK frames for
/// clarification round-trips, PARTIAL_RESULT frames streamed from the
/// executor's progress sink, the FINAL frame — is appended to the
/// connection's outbox under a lock and flushed by the loop thread.
///
/// Backpressure is layered:
///  - per connection, a write-buffer high-water mark: when a slow
///    client's outbox exceeds it the server stops *reading* from that
///    socket (the client's own sends eventually block), and resumes
///    below half the mark — one stalled reader never grows memory
///    without bound or starves other connections;
///  - per service, the bounded admission queue: an overloaded
///    QueryService sheds the query and the server answers with an
///    ERROR frame carrying kUnavailable instead of dropping the
///    connection.
///
/// Protocol violations (bad magic, malformed or oversized frames,
/// unknown opcodes) close the offending connection and leave the loop
/// serving everyone else. A closed connection releases its sessions
/// and detaches its in-flight queries: a blocked clarification unblocks
/// with kUserAborted, streamed chunks stop, and the query's usage stays
/// metered exactly once.
///
/// \ingroup kathdb_net

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "engine/executor.h"
#include "net/event_loop.h"
#include "net/wire.h"
#include "service/query_service.h"

namespace kathdb::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; read it back via port().
  uint16_t port = 0;
  /// Frames larger than this are protocol violations (connection closed).
  size_t max_frame_bytes = 4u << 20;
  /// Bytes read from a socket per readable event, bounding how long one
  /// chatty connection can hold the loop.
  size_t read_chunk_bytes = 64u << 10;
  /// Write-buffer high-water mark per connection: above this many
  /// buffered outbound bytes the server stops reading from the socket;
  /// reading resumes below half the mark.
  size_t write_high_water = 1u << 20;
  /// Rows per PARTIAL_RESULT frame streamed while the final plan node
  /// completes (0 = whole table in one frame).
  size_t stream_chunk_rows = 64;
  /// SO_SNDBUF for accepted sockets (0 = kernel default). Tests shrink
  /// it so the high-water mark triggers deterministically.
  int sndbuf_bytes = 0;
  PollBackend backend = PollBackend::kAuto;
};

/// Wire-level counters (all atomically maintained; cheap to sample).
struct NetStats {
  int64_t connections_accepted = 0;
  int64_t connections_active = 0;
  int64_t frames_received = 0;
  int64_t frames_sent = 0;  ///< queued to an outbox (sent or pending)
  int64_t protocol_errors = 0;  ///< violations that closed a connection
  int64_t queries_received = 0;
  int64_t partial_frames = 0;  ///< PARTIAL_RESULT[_COL] frames streamed
  int64_t partial_bytes = 0;   ///< wire bytes across those frames
                               ///< (header + opcode + payload)
  int64_t unavailable_sent = 0;  ///< overload shed as UNAVAILABLE errors
  int64_t reads_paused = 0;  ///< write high-water-mark pauses

  std::string ToText() const;
};

/// Deterministic provenance summary carried by the FINAL frame: one
/// line per plan node (name, template, dependency pattern, output rows)
/// plus repair/anomaly totals. Runtimes and raw lineage ids are
/// excluded — two runs of one query on identically seeded engines
/// render byte-identical summaries.
std::string LineageSummary(const engine::ExecutionReport& report);

/// \brief The kathdbd network front-end.
class Server {
 public:
  /// `service` must outlive the server. The server opens and closes
  /// sessions on it on behalf of connections.
  explicit Server(service::QueryService* service, ServerOptions options = {});
  ~Server();  ///< Stop()s if still running.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the loop thread. Fails with kIOError if
  /// the address cannot be bound.
  Status Start();

  /// Closes the listener and every connection, stops the loop thread
  /// and waits for in-flight queries to finish. Idempotent.
  void Stop();

  /// The bound port (after Start); useful with ServerOptions::port = 0.
  uint16_t port() const { return port_; }

  NetStats stats() const;

 private:
  struct Connection;
  struct QueryCtx;
  class RemoteUser;
  class StreamSink;
  friend class RemoteUser;
  friend class StreamSink;

  // Loop-thread handlers.
  void OnAcceptable();
  void OnConnEvent(const std::shared_ptr<Connection>& conn, uint32_t events);
  void ReadInput(const std::shared_ptr<Connection>& conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   const Frame& frame);
  void HandleQuery(const std::shared_ptr<Connection>& conn,
                   const Frame& frame);
  void ProtocolError(const std::shared_ptr<Connection>& conn,
                     const std::string& reason);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void FlushWrites(const std::shared_ptr<Connection>& conn);
  void UpdateInterest(const std::shared_ptr<Connection>& conn);

  // Worker-thread entry points (thread-safe).
  void SendFrame(const std::shared_ptr<Connection>& conn, Op op,
                 const std::string& payload);
  void OnQueryComplete(const std::shared_ptr<Connection>& conn,
                       const std::shared_ptr<QueryCtx>& ctx,
                       const Result<engine::QueryOutcome>& outcome);

  service::QueryService* service_;
  ServerOptions options_;
  EventLoop loop_;
  std::thread loop_thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> loop_thread_id_set_{false};
  std::thread::id loop_thread_id_;

  std::map<int, std::shared_ptr<Connection>> connections_;  ///< loop thread

  // NetStats counters.
  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_active_{0};
  std::atomic<int64_t> frames_received_{0};
  std::atomic<int64_t> frames_sent_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> queries_received_{0};
  std::atomic<int64_t> partial_frames_{0};
  std::atomic<int64_t> partial_bytes_{0};
  std::atomic<int64_t> unavailable_sent_{0};
  std::atomic<int64_t> reads_paused_{0};
};

}  // namespace kathdb::net
