#include "net/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#define KATHDB_NET_HAVE_EPOLL 1
#endif

namespace kathdb::net {

namespace {
void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}
}  // namespace

EventLoop::EventLoop(PollBackend backend) {
  if (::pipe(wake_pipe_) == 0) {
    SetNonBlocking(wake_pipe_[0]);
    SetNonBlocking(wake_pipe_[1]);
  }
#if KATHDB_NET_HAVE_EPOLL
  if (backend != PollBackend::kPoll) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ >= 0) {
      struct epoll_event ev;
      memset(&ev, 0, sizeof(ev));
      ev.events = EPOLLIN;
      ev.data.fd = wake_pipe_[0];
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev);
    }
  }
#else
  (void)backend;
#endif
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

Status EventLoop::Add(int fd, uint32_t interest, EventFn fn) {
  if (entries_.count(fd) > 0) {
    return Status::AlreadyExists("fd " + std::to_string(fd) +
                                 " already registered");
  }
#if KATHDB_NET_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = ((interest & kEventRead) ? EPOLLIN : 0u) |
                ((interest & kEventWrite) ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return Status::IOError(std::string("epoll_ctl(ADD): ") +
                             strerror(errno));
    }
  }
#endif
  entries_[fd] = Entry{interest, std::move(fn)};
  return Status::OK();
}

Status EventLoop::SetInterest(int fd, uint32_t interest) {
  auto it = entries_.find(fd);
  if (it == entries_.end()) {
    return Status::NotFound("fd " + std::to_string(fd) + " not registered");
  }
  if (it->second.interest == interest) return Status::OK();
  it->second.interest = interest;
#if KATHDB_NET_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = ((interest & kEventRead) ? EPOLLIN : 0u) |
                ((interest & kEventWrite) ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return Status::IOError(std::string("epoll_ctl(MOD): ") +
                             strerror(errno));
    }
  }
#endif
  return Status::OK();
}

void EventLoop::Remove(int fd) {
#if KATHDB_NET_HAVE_EPOLL
  if (epoll_fd_ >= 0 && entries_.count(fd) > 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  entries_.erase(fd);
}

void EventLoop::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (epoll_fd_ >= 0) {
      RunEpoll();
    } else {
      RunPoll();
    }
    DispatchTasks();
  }
  // A final drain so tasks queued right before Stop still run.
  DispatchTasks();
}

void EventLoop::RunEpoll() {
#if KATHDB_NET_HAVE_EPOLL
  struct epoll_event events[64];
  int n = ::epoll_wait(epoll_fd_, events, 64, -1);
  if (n < 0) return;  // EINTR
  for (int i = 0; i < n; ++i) {
    int fd = events[i].data.fd;
    if (fd == wake_pipe_[0]) {
      char buf[256];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
      continue;
    }
    uint32_t ev = 0;
    // Errors and hangups surface as readability so the handler's read()
    // observes EOF / the error and closes the connection.
    if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) ev |= kEventRead;
    if (events[i].events & EPOLLOUT) ev |= kEventWrite;
    Dispatch(fd, ev);
  }
#endif
}

void EventLoop::RunPoll() {
  std::vector<struct pollfd> fds;
  fds.reserve(entries_.size() + 1);
  fds.push_back({wake_pipe_[0], POLLIN, 0});
  for (const auto& [fd, entry] : entries_) {
    short events = 0;
    if (entry.interest & kEventRead) events |= POLLIN;
    if (entry.interest & kEventWrite) events |= POLLOUT;
    fds.push_back({fd, events, 0});
  }
  int n = ::poll(fds.data(), fds.size(), -1);
  if (n <= 0) return;  // EINTR
  if (fds[0].revents & POLLIN) {
    char buf[256];
    while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
    }
  }
  for (size_t i = 1; i < fds.size(); ++i) {
    uint32_t ev = 0;
    if (fds[i].revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) {
      ev |= kEventRead;
    }
    if (fds[i].revents & POLLOUT) ev |= kEventWrite;
    if (ev != 0) Dispatch(fds[i].fd, ev);
  }
}

void EventLoop::Dispatch(int fd, uint32_t events) {
  // A handler earlier in this batch may have removed the fd: look it up
  // fresh and copy the callback, since the handler may remove itself.
  auto it = entries_.find(fd);
  if (it == entries_.end()) return;
  EventFn fn = it->second.fn;
  fn(events);
}

void EventLoop::DispatchTasks() {
  std::vector<std::function<void()>> tasks;
  {
    common::MutexLock lock(tasks_mu_);
    tasks.swap(tasks_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wakeup();
}

void EventLoop::RunInLoop(std::function<void()> task) {
  {
    common::MutexLock lock(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  Wakeup();
}

void EventLoop::Wakeup() {
  char byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  (void)ignored;
}

}  // namespace kathdb::net
