#include "net/wire.h"

#include <cstring>
#include <unordered_map>

namespace kathdb::net {

const char* OpName(Op op) {
  switch (op) {
    case Op::kHello: return "HELLO";
    case Op::kOpenSession: return "OPEN_SESSION";
    case Op::kCloseSession: return "CLOSE_SESSION";
    case Op::kQuery: return "QUERY";
    case Op::kReply: return "REPLY";
    case Op::kCancel: return "CANCEL";
    case Op::kStats: return "STATS";
    case Op::kPing: return "PING";
    case Op::kHelloOk: return "HELLO_OK";
    case Op::kSessionOpened: return "SESSION_OPENED";
    case Op::kSessionClosed: return "SESSION_CLOSED";
    case Op::kQueryAccepted: return "QUERY_ACCEPTED";
    case Op::kAsk: return "ASK";
    case Op::kNotify: return "NOTIFY";
    case Op::kPartialResult: return "PARTIAL_RESULT";
    case Op::kFinal: return "FINAL";
    case Op::kError: return "ERROR";
    case Op::kStatsOk: return "STATS_OK";
    case Op::kPong: return "PONG";
    case Op::kPartialResultCol: return "PARTIAL_RESULT_COL";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(Op op, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + 1 + payload.size());
  uint32_t length = static_cast<uint32_t>(payload.size() + 1);  // + opcode
  out.push_back(static_cast<char>((length >> 24) & 0xff));
  out.push_back(static_cast<char>((length >> 16) & 0xff));
  out.push_back(static_cast<char>((length >> 8) & 0xff));
  out.push_back(static_cast<char>(length & 0xff));
  out.push_back(static_cast<char>(op));
  out += payload;
  return out;
}

Result<bool> FrameReader::Next(Frame* out) {
  // Compact once the consumed prefix dominates, so long-lived
  // connections never grow the buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return false;
  const unsigned char* h =
      reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  uint32_t length = (static_cast<uint32_t>(h[0]) << 24) |
                    (static_cast<uint32_t>(h[1]) << 16) |
                    (static_cast<uint32_t>(h[2]) << 8) |
                    static_cast<uint32_t>(h[3]);
  if (length == 0) {
    return Status::InvalidArgument("zero-length frame");
  }
  if (length > max_frame_bytes_ + 1) {  // +1: opcode rides in `length`
    return Status::InvalidArgument(
        "frame of " + std::to_string(length) + " bytes exceeds the " +
        std::to_string(max_frame_bytes_) + "-byte limit");
  }
  if (avail < kFrameHeaderBytes + length) return false;
  out->op = static_cast<Op>(
      static_cast<uint8_t>(buf_[pos_ + kFrameHeaderBytes]));
  out->payload.assign(buf_, pos_ + kFrameHeaderBytes + 1, length - 1);
  pos_ += kFrameHeaderBytes + length;
  return true;
}

void PayloadWriter::PutU32(uint32_t v) {
  out_.push_back(static_cast<char>((v >> 24) & 0xff));
  out_.push_back(static_cast<char>((v >> 16) & 0xff));
  out_.push_back(static_cast<char>((v >> 8) & 0xff));
  out_.push_back(static_cast<char>(v & 0xff));
}

void PayloadWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v >> 32));
  PutU32(static_cast<uint32_t>(v & 0xffffffffu));
}

void PayloadWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_ += s;
}

void PayloadWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out_.push_back(static_cast<char>(v));
}

Result<uint8_t> PayloadReader::U8() {
  if (pos_ + 1 > p_.size()) {
    return Status::InvalidArgument("truncated payload (u8)");
  }
  return static_cast<uint8_t>(p_[pos_++]);
}

Result<uint32_t> PayloadReader::U32() {
  if (pos_ + 4 > p_.size()) {
    return Status::InvalidArgument("truncated payload (u32)");
  }
  const unsigned char* b =
      reinterpret_cast<const unsigned char*>(p_.data() + pos_);
  pos_ += 4;
  return (static_cast<uint32_t>(b[0]) << 24) |
         (static_cast<uint32_t>(b[1]) << 16) |
         (static_cast<uint32_t>(b[2]) << 8) | static_cast<uint32_t>(b[3]);
}

Result<uint64_t> PayloadReader::U64() {
  KATHDB_ASSIGN_OR_RETURN(uint32_t hi, U32());
  KATHDB_ASSIGN_OR_RETURN(uint32_t lo, U32());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Result<std::string> PayloadReader::String() {
  KATHDB_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (pos_ + len > p_.size()) {
    return Status::InvalidArgument("truncated payload (string of " +
                                   std::to_string(len) + " bytes)");
  }
  std::string s = p_.substr(pos_, len);
  pos_ += len;
  return s;
}

Result<uint64_t> PayloadReader::Varint() {
  uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    KATHDB_ASSIGN_OR_RETURN(uint8_t b, U8());
    if (shift == 63 && (b & ~uint8_t{1}) != 0) {
      return Status::InvalidArgument("overlong varint");
    }
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
  }
  return Status::InvalidArgument("overlong varint");
}

Result<std::string> PayloadReader::Bytes(size_t n) {
  if (pos_ + n > p_.size()) {
    return Status::InvalidArgument("truncated payload (" + std::to_string(n) +
                                   " raw bytes)");
  }
  std::string s = p_.substr(pos_, n);
  pos_ += n;
  return s;
}

namespace {

// Decoder sanity caps. A result chunk is bounded by the executor's stream
// chunking, so anything near these limits is a corrupt or hostile frame,
// not a real result.
constexpr uint32_t kMaxWireColumns = 4096;
constexpr uint64_t kMaxWireRows = uint64_t{1} << 24;
constexpr uint64_t kMaxWireCells = uint64_t{1} << 26;

// Column-block encoding tags (independent of ColumnEncoding's in-memory
// numbering so the wire format survives refactors).
constexpr uint8_t kEncEmpty = 0;
constexpr uint8_t kEncBool = 1;
constexpr uint8_t kEncInt = 2;
constexpr uint8_t kEncDouble = 3;
constexpr uint8_t kEncDict = 4;
constexpr uint8_t kEncMixed = 5;
/// OR'd into the tag byte when the block window holds at least one NULL;
/// all-valid blocks skip the validity words entirely.
constexpr uint8_t kEncHasNulls = 0x80;

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// Validity words for the window [off, off+nrows) of `col`, bit i set =
/// row i non-NULL (window-relative, matching the decode factories).
std::vector<uint64_t> WindowValidity(const rel::ColumnVector& col, size_t off,
                                     size_t nrows) {
  std::vector<uint64_t> valid((nrows + 63) / 64, 0);
  for (size_t i = 0; i < nrows; ++i) {
    if (!col.IsNull(off + i)) valid[i >> 6] |= uint64_t{1} << (i & 63);
  }
  return valid;
}

void PutVarString(const std::string& s, PayloadWriter* w) {
  w->PutVarint(s.size());
  w->PutBytes(s.data(), s.size());
}

Result<std::string> ReadVarString(PayloadReader* r) {
  KATHDB_ASSIGN_OR_RETURN(uint64_t len, r->Varint());
  return r->Bytes(static_cast<size_t>(len));
}

void EncodeColumnBlock(const rel::ColumnVector& col, size_t off, size_t nrows,
                       PayloadWriter* w) {
  auto non_null = [&](size_t i) { return !col.IsNull(off + i); };
  if (col.encoding() == rel::ColumnEncoding::kEmpty) {
    w->PutU8(kEncEmpty);
    return;
  }
  // Tag + validity prologue, shared by every non-EMPTY encoding: the
  // validity words travel only when the window actually holds a NULL.
  std::vector<uint64_t> valid = WindowValidity(col, off, nrows);
  size_t null_count = nrows;
  for (uint64_t word : valid) {
    null_count -= static_cast<size_t>(__builtin_popcountll(word));
  }
  auto put_tag = [&](uint8_t enc) {
    w->PutU8(null_count > 0 ? static_cast<uint8_t>(enc | kEncHasNulls)
                            : enc);
    if (null_count > 0) {
      for (uint64_t word : valid) w->PutU64(word);
    }
  };
  switch (col.encoding()) {
    case rel::ColumnEncoding::kBool: {
      put_tag(kEncBool);
      for (size_t i = 0; i < nrows; ++i) {
        w->PutU8(non_null(i) && col.BoolAt(off + i) ? 1 : 0);
      }
      return;
    }
    case rel::ColumnEncoding::kInt: {
      put_tag(kEncInt);
      for (size_t i = 0; i < nrows; ++i) {
        if (non_null(i)) w->PutVarint(ZigZag(col.IntAt(off + i)));
      }
      return;
    }
    case rel::ColumnEncoding::kDouble: {
      put_tag(kEncDouble);
      for (size_t i = 0; i < nrows; ++i) {
        if (non_null(i)) w->PutU64(DoubleBits(col.DoubleAt(off + i)));
      }
      return;
    }
    case rel::ColumnEncoding::kDict: {
      // Remap codes to a chunk-local dense dictionary: a view window may
      // reference a handful of entries of a parent table's huge dict, and
      // column-local codes must not leak absolute positions.
      put_tag(kEncDict);
      std::vector<uint32_t> local_codes;
      local_codes.reserve(nrows - null_count);
      std::vector<uint32_t> local_dict;  // local code -> source code
      std::unordered_map<uint32_t, uint32_t> remap;
      for (size_t i = 0; i < nrows; ++i) {
        if (!non_null(i)) continue;
        uint32_t code = col.CodeAt(off + i);
        auto [it, inserted] =
            remap.emplace(code, static_cast<uint32_t>(local_dict.size()));
        if (inserted) local_dict.push_back(code);
        local_codes.push_back(it->second);
      }
      w->PutVarint(local_dict.size());
      for (uint32_t code : local_dict) PutVarString(col.DictEntry(code), w);
      for (uint32_t code : local_codes) w->PutVarint(code);
      return;
    }
    case rel::ColumnEncoding::kMixed: {
      put_tag(kEncMixed);
      for (size_t i = 0; i < nrows; ++i) {
        if (!non_null(i)) continue;
        const rel::Value& v = col.MixedAt(off + i);
        switch (v.type()) {
          case rel::DataType::kBool:
            w->PutU8(kEncBool);
            w->PutU8(v.AsBool() ? 1 : 0);
            break;
          case rel::DataType::kInt:
            w->PutU8(kEncInt);
            w->PutVarint(ZigZag(v.AsInt()));
            break;
          case rel::DataType::kDouble:
            w->PutU8(kEncDouble);
            w->PutU64(DoubleBits(v.AsDouble()));
            break;
          default:
            w->PutU8(kEncDict);
            PutVarString(v.AsString(), w);
            break;
        }
      }
      return;
    }
    case rel::ColumnEncoding::kEmpty:
      return;  // handled above
  }
}

Result<std::shared_ptr<rel::ColumnVector>> DecodeColumnBlock(
    PayloadReader* r, size_t nrows) {
  KATHDB_ASSIGN_OR_RETURN(uint8_t tag, r->U8());
  uint8_t enc = tag & ~kEncHasNulls;
  bool has_nulls = (tag & kEncHasNulls) != 0;
  if (enc > kEncMixed || (enc == kEncEmpty && has_nulls)) {
    return Status::InvalidArgument("bad column encoding tag " +
                                   std::to_string(tag));
  }
  if (enc == kEncEmpty) return rel::ColumnVector::AllNulls(nrows);
  size_t words = (nrows + 63) / 64;
  std::vector<uint64_t> valid(words, 0);
  if (has_nulls) {
    for (size_t i = 0; i < words; ++i) {
      KATHDB_ASSIGN_OR_RETURN(valid[i], r->U64());
    }
  } else {
    // No validity words traveled: every row is valid.
    for (size_t i = 0; i < nrows; ++i) {
      valid[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
  auto non_null = [&](size_t i) {
    return (valid[i >> 6] & (uint64_t{1} << (i & 63))) != 0;
  };
  switch (enc) {
    case kEncBool: {
      KATHDB_ASSIGN_OR_RETURN(std::string raw, r->Bytes(nrows));
      std::vector<uint8_t> vals(nrows);
      for (size_t i = 0; i < nrows; ++i) {
        vals[i] = raw[i] != 0 ? 1 : 0;
      }
      return rel::ColumnVector::FromBools(std::move(vals), std::move(valid));
    }
    case kEncInt: {
      std::vector<int64_t> vals(nrows, 0);
      for (size_t i = 0; i < nrows; ++i) {
        if (!non_null(i)) continue;
        KATHDB_ASSIGN_OR_RETURN(uint64_t zz, r->Varint());
        vals[i] = UnZigZag(zz);
      }
      return rel::ColumnVector::FromInts(std::move(vals), std::move(valid));
    }
    case kEncDouble: {
      std::vector<double> vals(nrows, 0.0);
      for (size_t i = 0; i < nrows; ++i) {
        if (!non_null(i)) continue;
        KATHDB_ASSIGN_OR_RETURN(uint64_t bits, r->U64());
        vals[i] = BitsToDouble(bits);
      }
      return rel::ColumnVector::FromDoubles(std::move(vals), std::move(valid));
    }
    case kEncDict: {
      KATHDB_ASSIGN_OR_RETURN(uint64_t dict_count, r->Varint());
      // Chunk-local dictionaries only carry referenced entries, so a
      // dictionary wider than the row count cannot be well formed.
      if (dict_count > nrows) {
        return Status::InvalidArgument(
            "dictionary of " + std::to_string(dict_count) +
            " entries exceeds the " + std::to_string(nrows) + "-row chunk");
      }
      std::vector<std::string> dict(dict_count);
      for (uint64_t i = 0; i < dict_count; ++i) {
        KATHDB_ASSIGN_OR_RETURN(dict[i], ReadVarString(r));
      }
      std::vector<uint32_t> codes(nrows, 0);  // NULL rows keep code 0
      for (size_t i = 0; i < nrows; ++i) {
        if (!non_null(i)) continue;
        KATHDB_ASSIGN_OR_RETURN(uint64_t code, r->Varint());
        if (code >= dict_count) {
          return Status::InvalidArgument("dictionary code out of range");
        }
        codes[i] = static_cast<uint32_t>(code);
      }
      return rel::ColumnVector::FromDict(std::move(dict), std::move(codes),
                                         std::move(valid));
    }
    default: {  // kEncMixed
      std::vector<rel::Value> vals(nrows);
      for (size_t i = 0; i < nrows; ++i) {
        if (!non_null(i)) continue;
        KATHDB_ASSIGN_OR_RETURN(uint8_t vtag, r->U8());
        switch (vtag) {
          case kEncBool: {
            KATHDB_ASSIGN_OR_RETURN(uint8_t b, r->U8());
            vals[i] = rel::Value::Bool(b != 0);
            break;
          }
          case kEncInt: {
            KATHDB_ASSIGN_OR_RETURN(uint64_t zz, r->Varint());
            vals[i] = rel::Value::Int(UnZigZag(zz));
            break;
          }
          case kEncDouble: {
            KATHDB_ASSIGN_OR_RETURN(uint64_t bits, r->U64());
            vals[i] = rel::Value::Double(BitsToDouble(bits));
            break;
          }
          case kEncDict: {
            KATHDB_ASSIGN_OR_RETURN(std::string s, ReadVarString(r));
            vals[i] = rel::Value::Str(std::move(s));
            break;
          }
          default:
            return Status::InvalidArgument("bad mixed value tag " +
                                           std::to_string(vtag));
        }
      }
      return rel::ColumnVector::FromValues(std::move(vals));
    }
  }
}

}  // namespace

void EncodeTableColumnar(const rel::Table& table, PayloadWriter* w) {
  const rel::Schema& schema = table.schema();
  size_t ncols = schema.num_columns();
  w->PutU32(static_cast<uint32_t>(ncols));
  for (size_t c = 0; c < ncols; ++c) {
    w->PutString(schema.column(c).name);
    w->PutU8(static_cast<uint8_t>(schema.column(c).type));
  }
  size_t nrows = table.num_rows();
  w->PutU64(nrows);
  for (size_t c = 0; c < ncols; ++c) {
    if (c >= table.num_physical_columns()) {
      w->PutU8(kEncEmpty);  // trailing schema column without storage
      continue;
    }
    EncodeColumnBlock(table.column(c), table.offset(), nrows, w);
  }
}

Result<rel::Table> DecodeTableColumnar(PayloadReader* r,
                                       const std::string& name) {
  KATHDB_ASSIGN_OR_RETURN(uint32_t ncols, r->U32());
  if (ncols > kMaxWireColumns) {
    return Status::InvalidArgument("columnar chunk declares " +
                                   std::to_string(ncols) + " columns");
  }
  rel::Schema schema;
  for (uint32_t c = 0; c < ncols; ++c) {
    KATHDB_ASSIGN_OR_RETURN(std::string cname, r->String());
    KATHDB_ASSIGN_OR_RETURN(uint8_t dtype, r->U8());
    if (dtype > static_cast<uint8_t>(rel::DataType::kString)) {
      return Status::InvalidArgument("bad column type tag " +
                                     std::to_string(dtype));
    }
    schema.AddColumn(std::move(cname), static_cast<rel::DataType>(dtype));
  }
  KATHDB_ASSIGN_OR_RETURN(uint64_t nrows64, r->U64());
  if (nrows64 > kMaxWireRows || ncols * nrows64 > kMaxWireCells) {
    return Status::InvalidArgument("columnar chunk declares " +
                                   std::to_string(nrows64) + " rows");
  }
  size_t nrows = static_cast<size_t>(nrows64);
  if (ncols == 0) {
    // Degenerate zero-column relation: only the row count travels.
    rel::Table t(name, std::move(schema));
    for (size_t i = 0; i < nrows; ++i) t.AppendRow({});
    return t;
  }
  std::vector<rel::ColumnPtr> cols;
  cols.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    KATHDB_ASSIGN_OR_RETURN(rel::ColumnPtr col, DecodeColumnBlock(r, nrows));
    cols.push_back(std::move(col));
  }
  if (nrows == 0) {
    // Leave a row-less table without physical columns (the fresh-table
    // form, fingerprint included); the blocks above were still parsed
    // so truncation is caught.
    return rel::Table(name, std::move(schema));
  }
  return rel::Table::FromColumns(name, std::move(schema), std::move(cols),
                                 {});
}

}  // namespace kathdb::net
