#include "net/wire.h"

namespace kathdb::net {

const char* OpName(Op op) {
  switch (op) {
    case Op::kHello: return "HELLO";
    case Op::kOpenSession: return "OPEN_SESSION";
    case Op::kCloseSession: return "CLOSE_SESSION";
    case Op::kQuery: return "QUERY";
    case Op::kReply: return "REPLY";
    case Op::kCancel: return "CANCEL";
    case Op::kStats: return "STATS";
    case Op::kPing: return "PING";
    case Op::kHelloOk: return "HELLO_OK";
    case Op::kSessionOpened: return "SESSION_OPENED";
    case Op::kSessionClosed: return "SESSION_CLOSED";
    case Op::kQueryAccepted: return "QUERY_ACCEPTED";
    case Op::kAsk: return "ASK";
    case Op::kNotify: return "NOTIFY";
    case Op::kPartialResult: return "PARTIAL_RESULT";
    case Op::kFinal: return "FINAL";
    case Op::kError: return "ERROR";
    case Op::kStatsOk: return "STATS_OK";
    case Op::kPong: return "PONG";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(Op op, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + 1 + payload.size());
  uint32_t length = static_cast<uint32_t>(payload.size() + 1);  // + opcode
  out.push_back(static_cast<char>((length >> 24) & 0xff));
  out.push_back(static_cast<char>((length >> 16) & 0xff));
  out.push_back(static_cast<char>((length >> 8) & 0xff));
  out.push_back(static_cast<char>(length & 0xff));
  out.push_back(static_cast<char>(op));
  out += payload;
  return out;
}

Result<bool> FrameReader::Next(Frame* out) {
  // Compact once the consumed prefix dominates, so long-lived
  // connections never grow the buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return false;
  const unsigned char* h =
      reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  uint32_t length = (static_cast<uint32_t>(h[0]) << 24) |
                    (static_cast<uint32_t>(h[1]) << 16) |
                    (static_cast<uint32_t>(h[2]) << 8) |
                    static_cast<uint32_t>(h[3]);
  if (length == 0) {
    return Status::InvalidArgument("zero-length frame");
  }
  if (length > max_frame_bytes_ + 1) {  // +1: opcode rides in `length`
    return Status::InvalidArgument(
        "frame of " + std::to_string(length) + " bytes exceeds the " +
        std::to_string(max_frame_bytes_) + "-byte limit");
  }
  if (avail < kFrameHeaderBytes + length) return false;
  out->op = static_cast<Op>(
      static_cast<uint8_t>(buf_[pos_ + kFrameHeaderBytes]));
  out->payload.assign(buf_, pos_ + kFrameHeaderBytes + 1, length - 1);
  pos_ += kFrameHeaderBytes + length;
  return true;
}

void PayloadWriter::PutU32(uint32_t v) {
  out_.push_back(static_cast<char>((v >> 24) & 0xff));
  out_.push_back(static_cast<char>((v >> 16) & 0xff));
  out_.push_back(static_cast<char>((v >> 8) & 0xff));
  out_.push_back(static_cast<char>(v & 0xff));
}

void PayloadWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v >> 32));
  PutU32(static_cast<uint32_t>(v & 0xffffffffu));
}

void PayloadWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_ += s;
}

Result<uint8_t> PayloadReader::U8() {
  if (pos_ + 1 > p_.size()) {
    return Status::InvalidArgument("truncated payload (u8)");
  }
  return static_cast<uint8_t>(p_[pos_++]);
}

Result<uint32_t> PayloadReader::U32() {
  if (pos_ + 4 > p_.size()) {
    return Status::InvalidArgument("truncated payload (u32)");
  }
  const unsigned char* b =
      reinterpret_cast<const unsigned char*>(p_.data() + pos_);
  pos_ += 4;
  return (static_cast<uint32_t>(b[0]) << 24) |
         (static_cast<uint32_t>(b[1]) << 16) |
         (static_cast<uint32_t>(b[2]) << 8) | static_cast<uint32_t>(b[3]);
}

Result<uint64_t> PayloadReader::U64() {
  KATHDB_ASSIGN_OR_RETURN(uint32_t hi, U32());
  KATHDB_ASSIGN_OR_RETURN(uint32_t lo, U32());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Result<std::string> PayloadReader::String() {
  KATHDB_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (pos_ + len > p_.size()) {
    return Status::InvalidArgument("truncated payload (string of " +
                                   std::to_string(len) + " bytes)");
  }
  std::string s = p_.substr(pos_, len);
  pos_ += len;
  return s;
}

}  // namespace kathdb::net
