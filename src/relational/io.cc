#include "relational/io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace kathdb::rel {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendCsvField(const std::string& s, std::string* out) {
  if (!NeedsQuoting(s)) {
    *out += s;
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

/// Splits one CSV record (handles quoted fields with escaped quotes).
/// Returns false on malformed quoting.
bool SplitCsvLine(const std::string& line, std::vector<std::string>* fields,
                  std::vector<bool>* quoted) {
  fields->clear();
  quoted->clear();
  std::string cur;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"' && cur.empty()) {
      in_quotes = true;
      was_quoted = true;
    } else if (c == ',') {
      fields->push_back(std::move(cur));
      quoted->push_back(was_quoted);
      cur.clear();
      was_quoted = false;
    } else {
      cur.push_back(c);
    }
  }
  if (in_quotes) return false;
  fields->push_back(std::move(cur));
  quoted->push_back(was_quoted);
  return true;
}

Result<DataType> ParseTypeName(const std::string& t) {
  std::string u = ToLower(t);
  if (u == "int") return DataType::kInt;
  if (u == "double") return DataType::kDouble;
  if (u == "string") return DataType::kString;
  if (u == "bool") return DataType::kBool;
  return Status::InvalidArgument("unknown column type '" + t + "' in CSV "
                                 "header");
}

Value ParseCell(const std::string& cell, DataType type, bool was_quoted) {
  if (cell.empty() && !was_quoted) return Value::Null();
  switch (type) {
    case DataType::kInt:
      return Value::Int(std::strtoll(cell.c_str(), nullptr, 10));
    case DataType::kDouble:
      return Value::Double(std::strtod(cell.c_str(), nullptr));
    case DataType::kBool:
      return Value::Bool(cell == "true" || cell == "1" || cell == "TRUE");
    default:
      return Value::Str(cell);
  }
}

}  // namespace

std::string TableToCsv(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ",";
    AppendCsvField(schema.column(c).name + ":" +
                       DataTypeName(schema.column(c).type),
                   &out);
  }
  out += "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out += ",";
      const Value& v = table.at(r, c);
      if (v.is_null()) continue;  // empty field = NULL
      std::string cell = v.ToString();
      // An empty non-null string must be quoted to differ from NULL.
      if (cell.empty()) {
        out += "\"\"";
      } else {
        AppendCsvField(cell, &out);
      }
    }
    out += "\n";
  }
  return out;
}

Result<Table> TableFromCsv(const std::string& csv, const std::string& name) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV input");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  if (!SplitCsvLine(line, &fields, &quoted)) {
    return Status::InvalidArgument("malformed CSV header");
  }
  Schema schema;
  for (const auto& f : fields) {
    auto colon = f.rfind(':');
    if (colon == std::string::npos) {
      schema.AddColumn(f, DataType::kString);
    } else {
      KATHDB_ASSIGN_OR_RETURN(DataType t,
                              ParseTypeName(f.substr(colon + 1)));
      schema.AddColumn(f.substr(0, colon), t);
    }
  }
  Table table(name, schema);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!SplitCsvLine(line, &fields, &quoted)) {
      return Status::InvalidArgument("malformed CSV at line " +
                                     std::to_string(line_no));
    }
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, header has " +
          std::to_string(schema.num_columns()));
    }
    Row row;
    for (size_t c = 0; c < fields.size(); ++c) {
      row.push_back(ParseCell(fields[c], schema.column(c).type, quoted[c]));
    }
    table.AppendRow(std::move(row));
  }
  return table;
}

Status SaveTableCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << TableToCsv(table);
  return out.good() ? Status::OK() : Status::IOError("write failed");
}

Result<Table> LoadTableCsv(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string table_name = name;
  if (table_name.empty()) {
    table_name = std::filesystem::path(path).stem().string();
  }
  return TableFromCsv(buf.str(), table_name);
}

Status SaveCatalogCsv(const Catalog& catalog, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create '" + dir + "': " + ec.message());
  }
  for (const auto& name : catalog.ListNames()) {
    KATHDB_ASSIGN_OR_RETURN(TablePtr t, catalog.Get(name));
    KATHDB_RETURN_IF_ERROR(SaveTableCsv(*t, dir + "/" + name + ".csv"));
  }
  return Status::OK();
}

Status LoadCatalogCsv(Catalog* catalog, const std::string& dir) {
  std::error_code ec;
  auto iter = std::filesystem::directory_iterator(dir, ec);
  if (ec) {
    return Status::IOError("cannot read '" + dir + "': " + ec.message());
  }
  for (const auto& entry : iter) {
    if (entry.path().extension() != ".csv") continue;
    KATHDB_ASSIGN_OR_RETURN(Table t, LoadTableCsv(entry.path().string()));
    catalog->Upsert(std::make_shared<Table>(std::move(t)));
  }
  return Status::OK();
}

}  // namespace kathdb::rel
