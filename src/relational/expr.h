/// \file expr.h
/// \brief Scalar expression trees evaluated over rows.
///
/// Used by the SQL engine (WHERE/SELECT/ON clauses) and by FAO scalar-map
/// function bodies. Expressions evaluate to Value and surface evaluation
/// problems (unknown column, bad arity) as Status errors, which the agentic
/// monitor classifies as syntactic faults.
///
/// \ingroup kathdb_relational

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/table.h"

namespace kathdb::rel {

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kBinary,
  kUnary,
  kFunctionCall,
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp { kNot, kNeg };

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// \brief Immutable scalar expression node.
class Expr {
 public:
  static ExprPtr Literal(Value v);
  static ExprPtr Column(std::string name);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  /// Built-in scalar functions: LOWER, UPPER, LENGTH, ABS, ROUND,
  /// CONTAINS(haystack, needle), COALESCE(...), MIN2, MAX2, IF(c,a,b).
  static ExprPtr Call(std::string fn, std::vector<ExprPtr> args);

  ExprKind kind() const { return kind_; }
  const Value& literal() const { return literal_; }
  const std::string& column_name() const { return name_; }
  BinaryOp binary_op() const { return bop_; }
  UnaryOp unary_op() const { return uop_; }
  const std::string& function_name() const { return name_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Evaluates against one row. Errors if a referenced column is missing.
  Result<Value> Eval(const Row& row, const Schema& schema) const;

  /// Column names referenced anywhere in this tree (deduplicated).
  std::vector<std::string> ReferencedColumns() const;

  /// SQL-ish rendering for explanations and logs.
  std::string ToString() const;

 private:
  Expr() = default;
  ExprKind kind_ = ExprKind::kLiteral;
  Value literal_;
  std::string name_;  // column or function name
  BinaryOp bop_ = BinaryOp::kEq;
  UnaryOp uop_ = UnaryOp::kNot;
  std::vector<ExprPtr> children_;
};

/// Scalar kernels shared by the row interpreter (Expr::Eval) and the
/// vectorized evaluator (expr_vec). Both dispatch into the same functions,
/// so value and error semantics agree by construction.
namespace detail {

/// True for +, -, *, / (arithmetic, not comparison/logic).
bool IsNumericBinary(BinaryOp op);

/// Arithmetic with SQL NULL propagation; string + anything concatenates,
/// other arithmetic on STRING is a syntactic error, as is division by zero.
Result<Value> EvalNumeric(BinaryOp op, const Value& a, const Value& b);

/// Comparison via Value::Compare; NULL operands compare as NULL.
Value EvalCompare(BinaryOp op, const Value& a, const Value& b);

/// NOT / unary minus with NULL propagation.
Value EvalUnary(UnaryOp op, const Value& v);

/// Built-in scalar function dispatch (lower/upper/length/abs/round/
/// contains/coalesce/min2/max2/if) over already-evaluated args.
Result<Value> EvalCall(const std::string& fn, const std::vector<Value>& args);

}  // namespace detail

}  // namespace kathdb::rel
