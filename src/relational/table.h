/// \file table.h
/// \brief In-memory row table with per-row lineage ids.
///
/// Every materialized table (base relation, multimodal view, or FAO
/// intermediate) is a Table. Rows optionally carry a lineage id (lid) so
/// the provenance model of Section 3 can trace any output tuple back to
/// its source records.
///
/// \ingroup kathdb_relational

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace kathdb::rel {

using Row = std::vector<Value>;

/// \brief A named relation: schema + rows + optional per-row lineage ids.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  Row* mutable_row(size_t i) { return &rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row; lid 0 means "no lineage recorded".
  void AppendRow(Row row, int64_t lid = 0);

  /// Lineage id of row `i`; 0 when untracked.
  int64_t row_lid(size_t i) const {
    return i < lids_.size() ? lids_[i] : 0;
  }
  void set_row_lid(size_t i, int64_t lid);
  /// Table-level lineage id (assigned when a wide-dependency function
  /// produced this table); 0 when untracked.
  int64_t table_lid() const { return table_lid_; }
  void set_table_lid(int64_t lid) { table_lid_ = lid; }

  /// Value at (row, column index).
  const Value& at(size_t r, size_t c) const { return rows_[r][c]; }
  /// Value by column name. Returns NULL value when column is absent.
  Value GetByName(size_t r, const std::string& col) const;

  /// Fails with InvalidArgument if any row width differs from the schema.
  Status Validate() const;

  /// First `n` rows as a new table (used by samplers / profilers).
  Table Head(size_t n) const;

  /// Rows [begin, end) as a new table carrying the same name, schema,
  /// table lid and per-row lineage ids — the cheap sub-table behind
  /// morsel-partitioned FAO evaluation. `end` is clamped to num_rows().
  Table Slice(size_t begin, size_t end) const;

  /// ASCII rendering with header, separator and up to `max_rows` rows.
  std::string ToText(size_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<int64_t> lids_;
  int64_t table_lid_ = 0;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace kathdb::rel
