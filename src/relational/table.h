/// \file table.h
/// \brief In-memory columnar table with per-row lineage ids.
///
/// Every materialized table (base relation, multimodal view, or FAO
/// intermediate) is a Table. Rows optionally carry a lineage id (lid) so
/// the provenance model of Section 3 can trace any output tuple back to
/// its source records.
///
/// Storage is columnar: one shared ColumnVector per schema column (typed
/// contiguous arrays, dictionary-encoded strings, NULL bitmaps) plus a
/// contiguous lid column. The original row-oriented accessors (at, row,
/// GetByName, AppendRow) survive as a facade that materializes Values on
/// demand, so existing call sites keep compiling; the hot scan/filter/
/// project path reads the columns directly via column()/GatherColumn.
///
/// Copies and Slice() are zero-copy: they share the column buffers.
/// Slice(begin, end) is a view — same buffers, an offset and a length —
/// so morsel partitioning and result-chunk streaming never touch row
/// data. Mutators use copy-on-write: the first write to a table whose
/// buffers are shared (or which is a view) detaches private copies, so
/// value semantics are preserved exactly.
///
/// \ingroup kathdb_relational

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relational/column.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace kathdb::rel {

using Row = std::vector<Value>;

/// \brief A named relation: schema + columns + optional per-row lineage ids.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  /// Assembles a table directly from evaluated columns (the vectorized
  /// Project output path). Columns must share one length; `lids` may be
  /// empty (= no lineage recorded).
  static Table FromColumns(std::string name, Schema schema,
                           std::vector<ColumnPtr> cols,
                           std::vector<int64_t> lids);

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  size_t num_rows() const { return rows_; }

  /// Reserves capacity for `rows` total rows in every exclusively-owned
  /// column buffer (and the lid column). No-op for views and shared
  /// buffers — reserving those would force copy-on-write detaches. A
  /// cheap hint for bulk producers: chunked Materialize, the aggregate /
  /// sort kernels and join build sides call it ahead of bulk appends to
  /// kill reallocation churn.
  void Reserve(size_t rows);

  /// Materializes row `i` as a vector of Values (facade: prefer column
  /// access in hot loops).
  Row row(size_t i) const;

  /// Appends a row; lid 0 means "no lineage recorded". Width mismatches
  /// against the schema are recorded and surfaced by Validate().
  void AppendRow(Row row, int64_t lid = 0);

  /// Bulk-appends rows [begin, end) of `src` (column-wise range copy; no
  /// per-row Value materialization). Schemas must have equal arity.
  void AppendSlice(const Table& src, size_t begin, size_t end);

  /// Bulk-appends the `src` rows named by sel[0..n) — the Filter output
  /// assembly path.
  void AppendGather(const Table& src, const uint32_t* sel, size_t n);

  /// Lineage id of row `i`; 0 when untracked.
  int64_t row_lid(size_t i) const {
    return lids_ != nullptr && offset_ + i < lids_->size()
               ? (*lids_)[offset_ + i]
               : 0;
  }
  void set_row_lid(size_t i, int64_t lid);
  /// Table-level lineage id (assigned when a wide-dependency function
  /// produced this table); 0 when untracked.
  int64_t table_lid() const { return table_lid_; }
  void set_table_lid(int64_t lid) { table_lid_ = lid; }

  /// Value at (row, column index), materialized from the column.
  Value at(size_t r, size_t c) const { return cols_[c]->Get(offset_ + r); }
  /// Value by column name. Returns NULL value when column is absent.
  Value GetByName(size_t r, const std::string& col) const;

  /// Read access to column `c`'s storage. Row `i` of this table lives at
  /// physical index `offset() + i` (views share their parent's buffers).
  const ColumnVector& column(size_t c) const { return *cols_[c]; }
  /// Physically materialized columns (≤ schema width; trailing schema
  /// columns without storage read as NULL).
  size_t num_physical_columns() const { return cols_.size(); }
  /// Physical index of this table's row 0 inside the column buffers.
  size_t offset() const { return offset_; }
  /// True when this table is a zero-copy view over another's buffers.
  bool is_view() const { return view_; }

  /// Appends the cells of column `c` at table-relative rows sel[0..n)
  /// into `*out` (selection-vector gather for expression evaluation).
  void GatherColumn(size_t c, const uint32_t* sel, size_t n,
                    ColumnVector* out) const;

  /// Fails with InvalidArgument if any appended row's width differed from
  /// the schema.
  Status Validate() const;

  /// First `n` rows as a zero-copy view named "<name>_sample" (used by
  /// samplers / profilers).
  Table Head(size_t n) const;

  /// Rows [begin, end) as a zero-copy view carrying the same name, schema,
  /// table lid and per-row lineage ids — the cheap sub-table behind
  /// morsel-partitioned FAO evaluation and result-chunk streaming. Both
  /// bounds are clamped to num_rows().
  Table Slice(size_t begin, size_t end) const;

  /// Order-sensitive fingerprint of the table contents (schema string,
  /// row count, per-column cell hashes) — feeds ResultCache keys without
  /// materializing a Value per cell.
  uint64_t Fingerprint() const;

  /// Approximate heap bytes held by the column buffers.
  size_t MemoryBytes() const;

  /// ASCII rendering with header, separator and up to `max_rows` rows.
  std::string ToText(size_t max_rows = 20) const;

 private:
  /// Ensures cols_ has one (possibly empty) column per schema column.
  void EnsureColumns();
  /// Makes the column buffers exclusively owned and offset-free; first
  /// mutation of a view/copy pays a real copy, later ones are free.
  void DetachCols();
  void DetachLids();

  std::string name_;
  Schema schema_;
  std::vector<ColumnPtr> cols_;
  std::shared_ptr<std::vector<int64_t>> lids_;  // null = no lineage stored
  size_t offset_ = 0;
  size_t rows_ = 0;
  bool view_ = false;
  int64_t table_lid_ = 0;
  /// (row index, appended width) for rows whose width != schema width.
  std::vector<std::pair<size_t, size_t>> ragged_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace kathdb::rel
