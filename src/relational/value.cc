#include "relational/value.h"

#include <cmath>

#include "common/rng.h"
#include "common/strings.h"

namespace kathdb::rel {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

DataType Value::type() const {
  switch (v_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt;
    case 3:
      return DataType::kDouble;
    default:
      return DataType::kString;
  }
}

bool Value::AsBool() const {
  switch (type()) {
    case DataType::kBool:
      return std::get<bool>(v_);
    case DataType::kInt:
      return std::get<int64_t>(v_) != 0;
    case DataType::kDouble:
      return std::get<double>(v_) != 0.0;
    default:
      return false;
  }
}

int64_t Value::AsInt() const {
  switch (type()) {
    case DataType::kBool:
      return std::get<bool>(v_) ? 1 : 0;
    case DataType::kInt:
      return std::get<int64_t>(v_);
    case DataType::kDouble:
      return static_cast<int64_t>(std::get<double>(v_));
    default:
      return 0;
  }
}

double Value::AsDouble() const {
  switch (type()) {
    case DataType::kBool:
      return std::get<bool>(v_) ? 1.0 : 0.0;
    case DataType::kInt:
      return static_cast<double>(std::get<int64_t>(v_));
    case DataType::kDouble:
      return std::get<double>(v_);
    default:
      return 0.0;
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return AsBool() ? "true" : "false";
    case DataType::kInt:
      return std::to_string(std::get<int64_t>(v_));
    case DataType::kDouble:
      return FormatDouble(std::get<double>(v_), 6);
    case DataType::kString:
      return std::get<std::string>(v_);
  }
  return "";
}

namespace {
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
    case DataType::kInt:
    case DataType::kDouble:
      return 1;  // numerics compare with each other
    case DataType::kString:
      return 2;
  }
  return 3;
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;  // both NULL
  if (ra == 1) {
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  const std::string& a = AsString();
  const std::string& b = other.AsString();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x6b617468ULL;
    case DataType::kBool:
    case DataType::kInt:
    case DataType::kDouble: {
      double d = AsDouble();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      // Hash integral doubles as their int64 value for == consistency.
      if (std::floor(d) == d && std::abs(d) < 9.2e18) {
        return SplitMix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(d));
      return SplitMix64(bits);
    }
    case DataType::kString:
      return HashString(AsString());
  }
  return 0;
}

}  // namespace kathdb::rel
