/// \file value.h
/// \brief Dynamically-typed cell value for KathDB's relational layer.
///
/// \ingroup kathdb_relational

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace kathdb::rel {

/// Column / value type tags.
enum class DataType { kNull, kBool, kInt, kDouble, kString };

/// Human-readable type name ("INT", "DOUBLE", ...).
const char* DataTypeName(DataType t);

/// \brief A single relational cell: NULL, BOOL, INT64, DOUBLE or STRING.
///
/// Values order NULL first, then numerics by numeric value (INT and DOUBLE
/// compare cross-type), then strings lexicographically.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Variant(b)); }
  static Value Int(int64_t i) { return Value(Variant(i)); }
  static Value Double(double d) { return Value(Variant(d)); }
  static Value Str(std::string s) { return Value(Variant(std::move(s))); }

  DataType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }

  bool AsBool() const;
  /// Numeric coercion: BOOL -> 0/1, DOUBLE -> truncated. Pre: not NULL/STRING.
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Renders for display; NULL renders as "NULL".
  std::string ToString() const;

  /// Three-way compare; NULL < everything, cross-numeric compares by value.
  /// Comparing STRING against numeric orders numeric first (stable order).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable hash consistent with operator== (numeric 3 hashes same as 3.0).
  uint64_t Hash() const;

 private:
  using Variant = std::variant<std::monostate, bool, int64_t, double,
                               std::string>;
  explicit Value(Variant v) : v_(std::move(v)) {}
  Variant v_;
};

}  // namespace kathdb::rel
