#include "relational/table.h"

#include <algorithm>

namespace kathdb::rel {

void Table::AppendRow(Row row, int64_t lid) {
  rows_.push_back(std::move(row));
  if (lid != 0 || !lids_.empty()) {
    lids_.resize(rows_.size(), 0);
    lids_[rows_.size() - 1] = lid;
  }
}

void Table::set_row_lid(size_t i, int64_t lid) {
  if (lids_.size() < rows_.size()) lids_.resize(rows_.size(), 0);
  lids_[i] = lid;
}

Value Table::GetByName(size_t r, const std::string& col) const {
  auto idx = schema_.IndexOf(col);
  if (!idx.has_value()) return Value::Null();
  return rows_[r][*idx];
}

Status Table::Validate() const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].size() != schema_.num_columns()) {
      return Status::InvalidArgument(
          "table '" + name_ + "' row " + std::to_string(i) + " has " +
          std::to_string(rows_[i].size()) + " values, schema has " +
          std::to_string(schema_.num_columns()));
    }
  }
  return Status::OK();
}

Table Table::Head(size_t n) const {
  Table out(name_ + "_sample", schema_);
  size_t k = std::min(n, rows_.size());
  for (size_t i = 0; i < k; ++i) {
    out.AppendRow(rows_[i], row_lid(i));
  }
  return out;
}

Table Table::Slice(size_t begin, size_t end) const {
  Table out(name_, schema_);
  out.set_table_lid(table_lid_);
  end = std::min(end, rows_.size());
  for (size_t i = begin; i < end; ++i) {
    out.AppendRow(rows_[i], row_lid(i));
  }
  return out;
}

std::string Table::ToText(size_t max_rows) const {
  std::vector<size_t> widths(schema_.num_columns());
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    widths[c] = schema_.column(c).name.size();
  }
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_cells;
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      std::string s = rows_[r][c].ToString();
      if (s.size() > 40) s = s.substr(0, 37) + "...";
      widths[c] = std::max(widths[c], s.size());
      row_cells.push_back(std::move(s));
    }
    cells.push_back(std::move(row_cells));
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out;
  out += "| ";
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    out += pad(schema_.column(c).name, widths[c]);
    out += " | ";
  }
  out += "\n|-";
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    out += std::string(widths[c], '-');
    out += c + 1 < schema_.num_columns() ? "-|-" : "-|";
  }
  out += "\n";
  for (const auto& row_cells : cells) {
    out += "| ";
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      out += pad(row_cells[c], widths[c]);
      out += " | ";
    }
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace kathdb::rel
