#include "relational/table.h"

#include <algorithm>

#include "common/hash.h"

namespace kathdb::rel {

Table Table::FromColumns(std::string name, Schema schema,
                         std::vector<ColumnPtr> cols,
                         std::vector<int64_t> lids) {
  Table t(std::move(name), std::move(schema));
  t.rows_ = cols.empty() ? lids.size() : cols[0]->size();
  t.cols_ = std::move(cols);
  // Missing trailing columns (schema wider than evaluated outputs) read
  // as NULL; EnsureColumns backfills if the table is later mutated.
  bool any_lid = false;
  for (int64_t lid : lids) any_lid |= lid != 0;
  if (any_lid) {
    t.lids_ = std::make_shared<std::vector<int64_t>>(std::move(lids));
  }
  return t;
}

void Table::EnsureColumns() {
  size_t ncols = schema_.num_columns();
  while (cols_.size() < ncols) {
    auto col = std::make_shared<ColumnVector>();
    // Backfill for rows appended before this column existed.
    for (size_t i = 0; i < offset_ + rows_; ++i) col->AppendNull();
    cols_.push_back(std::move(col));
  }
}

void Table::DetachCols() {
  EnsureColumns();
  if (view_ || offset_ != 0) {
    // Flatten the view window into exclusively-owned buffers.
    std::vector<ColumnPtr> fresh;
    fresh.reserve(cols_.size());
    for (const auto& col : cols_) {
      auto copy = std::make_shared<ColumnVector>();
      copy->AppendRange(*col, offset_, rows_);
      fresh.push_back(std::move(copy));
    }
    cols_ = std::move(fresh);
    if (lids_ != nullptr) {
      auto owned = std::make_shared<std::vector<int64_t>>();
      owned->reserve(rows_);
      for (size_t i = 0; i < rows_; ++i) owned->push_back(row_lid(i));
      lids_ = std::move(owned);
    }
    offset_ = 0;
    view_ = false;
    return;
  }
  // Copy-on-write for value-semantics copies sharing our buffers.
  for (auto& col : cols_) {
    if (col.use_count() > 1) {
      auto copy = std::make_shared<ColumnVector>();
      copy->AppendRange(*col, 0, col->size());
      col = std::move(copy);
    }
  }
}

void Table::DetachLids() {
  if (view_ || offset_ != 0) {
    DetachCols();  // flattens the lid window too
  }
  if (lids_ == nullptr) {
    lids_ = std::make_shared<std::vector<int64_t>>();
  } else if (lids_.use_count() > 1) {
    lids_ = std::make_shared<std::vector<int64_t>>(*lids_);
  }
}

void Table::Reserve(size_t rows) {
  if (view_ || offset_ != 0) return;
  EnsureColumns();
  for (auto& col : cols_) {
    if (col.use_count() == 1) col->Reserve(rows);
  }
  // Same amortization as ColumnVector::Reserve: incremental per-chunk
  // hints must not pin capacity to the exact request.
  if (lids_ != nullptr && lids_.use_count() == 1 &&
      rows > lids_->capacity()) {
    lids_->reserve(std::max(rows, lids_->capacity() * 2));
  }
}

Row Table::row(size_t i) const {
  Row out;
  size_t ncols = schema_.num_columns();
  out.reserve(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    out.push_back(c < cols_.size() ? cols_[c]->Get(offset_ + i)
                                   : Value::Null());
  }
  return out;
}

void Table::AppendRow(Row row, int64_t lid) {
  DetachCols();
  size_t ncols = schema_.num_columns();
  if (row.size() != ncols) ragged_.emplace_back(rows_, row.size());
  for (size_t c = 0; c < ncols; ++c) {
    if (c < row.size()) {
      cols_[c]->Append(row[c]);
    } else {
      cols_[c]->AppendNull();
    }
  }
  ++rows_;
  if (lid != 0 || lids_ != nullptr) {
    DetachLids();
    lids_->resize(rows_, 0);
    (*lids_)[rows_ - 1] = lid;
  }
}

void Table::AppendSlice(const Table& src, size_t begin, size_t end) {
  end = std::min(end, src.rows_);
  if (begin >= end) return;
  DetachCols();
  size_t len = end - begin;
  size_t ncols = schema_.num_columns();
  for (size_t c = 0; c < ncols; ++c) {
    if (c < src.cols_.size()) {
      cols_[c]->AppendRange(*src.cols_[c], src.offset_ + begin, len);
    } else {
      for (size_t i = 0; i < len; ++i) cols_[c]->AppendNull();
    }
  }
  size_t first = rows_;
  rows_ += len;
  if (src.lids_ != nullptr || lids_ != nullptr) {
    DetachLids();
    lids_->resize(rows_, 0);
    for (size_t i = 0; i < len; ++i) {
      (*lids_)[first + i] = src.row_lid(begin + i);
    }
  }
}

void Table::AppendGather(const Table& src, const uint32_t* sel, size_t n) {
  if (n == 0) return;
  DetachCols();
  size_t ncols = schema_.num_columns();
  // Translate table-relative selections to physical indices once.
  std::vector<uint32_t> phys;
  const uint32_t* psel = sel;
  if (src.offset_ != 0) {
    phys.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      phys.push_back(static_cast<uint32_t>(src.offset_ + sel[i]));
    }
    psel = phys.data();
  }
  for (size_t c = 0; c < ncols; ++c) {
    if (c < src.cols_.size()) {
      cols_[c]->AppendGather(*src.cols_[c], psel, n);
    } else {
      for (size_t i = 0; i < n; ++i) cols_[c]->AppendNull();
    }
  }
  size_t first = rows_;
  rows_ += n;
  if (src.lids_ != nullptr || lids_ != nullptr) {
    DetachLids();
    lids_->resize(rows_, 0);
    for (size_t i = 0; i < n; ++i) {
      (*lids_)[first + i] = src.row_lid(sel[i]);
    }
  }
}

void Table::set_row_lid(size_t i, int64_t lid) {
  DetachLids();
  if (lids_->size() < rows_) lids_->resize(rows_, 0);
  (*lids_)[i] = lid;
}

Value Table::GetByName(size_t r, const std::string& col) const {
  auto idx = schema_.IndexOf(col);
  if (!idx.has_value() || *idx >= cols_.size()) return Value::Null();
  return cols_[*idx]->Get(offset_ + r);
}

void Table::GatherColumn(size_t c, const uint32_t* sel, size_t n,
                         ColumnVector* out) const {
  if (c >= cols_.size()) {
    for (size_t i = 0; i < n; ++i) out->AppendNull();
    return;
  }
  if (offset_ == 0) {
    out->AppendGather(*cols_[c], sel, n);
    return;
  }
  std::vector<uint32_t> phys;
  phys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    phys.push_back(static_cast<uint32_t>(offset_ + sel[i]));
  }
  out->AppendGather(*cols_[c], phys.data(), n);
}

Status Table::Validate() const {
  if (!ragged_.empty()) {
    const auto& [row, width] = ragged_.front();
    return Status::InvalidArgument(
        "table '" + name_ + "' row " + std::to_string(row) + " has " +
        std::to_string(width) + " values, schema has " +
        std::to_string(schema_.num_columns()));
  }
  return Status::OK();
}

Table Table::Head(size_t n) const {
  Table out = Slice(0, n);
  out.set_name(name_ + "_sample");
  return out;
}

Table Table::Slice(size_t begin, size_t end) const {
  begin = std::min(begin, rows_);
  end = std::min(std::max(end, begin), rows_);
  Table out(name_, schema_);
  out.cols_ = cols_;  // shared buffers: zero-copy
  out.lids_ = lids_;
  out.offset_ = offset_ + begin;
  out.rows_ = end - begin;
  out.view_ = true;
  out.table_lid_ = table_lid_;
  return out;
}

uint64_t Table::Fingerprint() const {
  uint64_t h = common::Fnv1a64(schema_.ToString());
  h = common::HashCombine(h, rows_);
  size_t ncols = schema_.num_columns();
  for (size_t c = 0; c < ncols; ++c) {
    if (c < cols_.size()) {
      h = common::HashCombine(h, cols_[c]->FingerprintRange(offset_, rows_));
    } else {
      h = common::HashCombine(h, 0x6b617468ULL);
    }
  }
  return h;
}

size_t Table::MemoryBytes() const {
  size_t n = 0;
  for (const auto& col : cols_) n += col->MemoryBytes();
  if (lids_ != nullptr) n += lids_->capacity() * sizeof(int64_t);
  return n;
}

std::string Table::ToText(size_t max_rows) const {
  std::vector<size_t> widths(schema_.num_columns());
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    widths[c] = schema_.column(c).name.size();
  }
  size_t shown = std::min(max_rows, rows_);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_cells;
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      std::string s = at(r, c).ToString();
      if (s.size() > 40) s = s.substr(0, 37) + "...";
      widths[c] = std::max(widths[c], s.size());
      row_cells.push_back(std::move(s));
    }
    cells.push_back(std::move(row_cells));
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out;
  out += "| ";
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    out += pad(schema_.column(c).name, widths[c]);
    out += " | ";
  }
  out += "\n|-";
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    out += std::string(widths[c], '-');
    out += c + 1 < schema_.num_columns() ? "-|-" : "-|";
  }
  out += "\n";
  for (const auto& row_cells : cells) {
    out += "| ";
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      out += pad(row_cells[c], widths[c]);
      out += " | ";
    }
    out += "\n";
  }
  if (shown < rows_) {
    out += "... (" + std::to_string(rows_ - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace kathdb::rel
