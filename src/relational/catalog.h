/// \file catalog.h
/// \brief System catalog: registered base tables, views and intermediates.
///
/// The catalog is consulted by the logical plan generator (schema context
/// for signature generation), the optimizer (sample rows for profiling) and
/// the executor (resolving FAO `inputs` names to materialized tables).
///
/// Concurrency: the base Catalog is internally synchronized (a
/// common::SharedMutex; reads run in parallel), so one catalog can serve many
/// concurrent queries. Per-query *writes* — the intermediates an executor
/// materializes under a plan's output names — must not collide across
/// queries, so each concurrent query runs against a ScopedCatalog overlay:
/// reads fall through to the shared base, writes stay query-local.
///
/// \ingroup kathdb_relational

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "relational/table.h"

namespace kathdb::rel {

/// Classification of a catalog entry; views are the relational semantic
/// layer over multimodal content (Section 3 of the paper).
enum class RelationKind { kBaseTable, kView, kIntermediate };

/// \brief Name -> table registry with kind metadata and sampling utilities.
class Catalog {
 public:
  Catalog() = default;
  virtual ~Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table; AlreadyExists if the name is taken.
  virtual Status Register(TablePtr table,
                          RelationKind kind = RelationKind::kBaseTable);
  /// Registers or replaces (intermediates are overwritten across runs).
  virtual void Upsert(TablePtr table,
                      RelationKind kind = RelationKind::kIntermediate);

  virtual Result<TablePtr> Get(const std::string& name) const;
  virtual bool Has(const std::string& name) const;
  virtual Status Drop(const std::string& name);

  virtual RelationKind KindOf(const std::string& name) const;

  /// Names in registration order.
  virtual std::vector<std::string> ListNames() const;

  /// Sample of up to `n` rows; NotFound if the relation is absent.
  virtual Result<Table> SampleRows(const std::string& name, size_t n) const;

  /// Textual schema summary of all relations ("films(title:STRING, ...)")
  /// used as LLM prompt context by the planner agents.
  virtual std::string DescribeAll() const;

  /// Heuristic joinability check used by the plan verifier's tool user:
  /// shared column names with equal types, or key-like overlap of values.
  virtual bool Joinable(const std::string& left, const std::string& right,
                        std::string* on_column) const;

 private:
  struct Entry {
    TablePtr table;
    RelationKind kind;
  };

  // Unlocked internals (callers hold mu_, at least shared).
  Result<TablePtr> GetLocked(const std::string& name) const
      KATHDB_REQUIRES_SHARED(mu_);
  std::string DescribeEntry(const std::string& name, const Entry& e) const;

  mutable common::SharedMutex mu_;
  std::vector<std::string> order_ KATHDB_GUARDED_BY(mu_);
  std::map<std::string, Entry> entries_ KATHDB_GUARDED_BY(mu_);
};

/// \brief Per-query copy-on-write overlay over a shared base catalog.
///
/// Reads check the overlay first and fall through to the base; every write
/// (Register/Upsert/Drop) touches only the overlay. A concurrent query
/// therefore sees the shared corpus plus its *own* intermediates, and two
/// queries materializing the same output name never race — the executor
/// re-entrancy building block of the service layer. The overlay is
/// internally synchronized (its own common::SharedMutex): with DAG-parallel
/// intra-query execution the nodes of *one* query materialize their
/// outputs from several worker threads into the same overlay.
class ScopedCatalog : public Catalog {
 public:
  /// `base` must outlive the overlay; may not be null.
  explicit ScopedCatalog(const Catalog* base) : base_(base) {}

  Status Register(TablePtr table,
                  RelationKind kind = RelationKind::kBaseTable) override;
  void Upsert(TablePtr table,
              RelationKind kind = RelationKind::kIntermediate) override;
  Result<TablePtr> Get(const std::string& name) const override;
  bool Has(const std::string& name) const override;
  /// Drops from the overlay only; shadowing a base name is not supported
  /// (NL-pipeline plans never drop corpus relations).
  Status Drop(const std::string& name) override;
  RelationKind KindOf(const std::string& name) const override;
  std::vector<std::string> ListNames() const override;
  Result<Table> SampleRows(const std::string& name, size_t n) const override;
  std::string DescribeAll() const override;
  bool Joinable(const std::string& left, const std::string& right,
                std::string* on_column) const override;

  /// Number of query-local relations (diagnostics).
  size_t overlay_size() const KATHDB_EXCLUDES(overlay_mu_) {
    common::ReaderLock lock(overlay_mu_);
    return overlay_.size();
  }

 private:
  struct OverlayEntry {
    TablePtr table;
    RelationKind kind;
  };
  const Catalog* base_;
  mutable common::SharedMutex overlay_mu_;
  std::vector<std::string> order_ KATHDB_GUARDED_BY(overlay_mu_);
  std::map<std::string, OverlayEntry> overlay_ KATHDB_GUARDED_BY(overlay_mu_);
};

}  // namespace kathdb::rel
