/// \file catalog.h
/// \brief System catalog: registered base tables, views and intermediates.
///
/// The catalog is consulted by the logical plan generator (schema context
/// for signature generation), the optimizer (sample rows for profiling) and
/// the executor (resolving FAO `inputs` names to materialized tables).
///
/// \ingroup kathdb_relational

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace kathdb::rel {

/// Classification of a catalog entry; views are the relational semantic
/// layer over multimodal content (Section 3 of the paper).
enum class RelationKind { kBaseTable, kView, kIntermediate };

/// \brief Name -> table registry with kind metadata and sampling utilities.
class Catalog {
 public:
  /// Registers a table; AlreadyExists if the name is taken.
  Status Register(TablePtr table, RelationKind kind = RelationKind::kBaseTable);
  /// Registers or replaces (intermediates are overwritten across runs).
  void Upsert(TablePtr table, RelationKind kind = RelationKind::kIntermediate);

  Result<TablePtr> Get(const std::string& name) const;
  bool Has(const std::string& name) const;
  Status Drop(const std::string& name);

  RelationKind KindOf(const std::string& name) const;

  /// Names in registration order.
  std::vector<std::string> ListNames() const;

  /// Sample of up to `n` rows; NotFound if the relation is absent.
  Result<Table> SampleRows(const std::string& name, size_t n) const;

  /// Textual schema summary of all relations ("films(title:STRING, ...)")
  /// used as LLM prompt context by the planner agents.
  std::string DescribeAll() const;

  /// Heuristic joinability check used by the plan verifier's tool user:
  /// shared column names with equal types, or key-like overlap of values.
  bool Joinable(const std::string& left, const std::string& right,
                std::string* on_column) const;

 private:
  struct Entry {
    TablePtr table;
    RelationKind kind;
  };
  std::vector<std::string> order_;
  std::map<std::string, Entry> entries_;
};

}  // namespace kathdb::rel
