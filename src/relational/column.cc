#include "relational/column.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace kathdb::rel {

const char* ColumnEncodingName(ColumnEncoding e) {
  switch (e) {
    case ColumnEncoding::kEmpty:
      return "EMPTY";
    case ColumnEncoding::kBool:
      return "BOOL";
    case ColumnEncoding::kInt:
      return "INT";
    case ColumnEncoding::kDouble:
      return "DOUBLE";
    case ColumnEncoding::kDict:
      return "DICT";
    case ColumnEncoding::kMixed:
      return "MIXED";
  }
  return "?";
}

namespace {

ColumnEncoding EncodingFor(DataType t) {
  switch (t) {
    case DataType::kBool:
      return ColumnEncoding::kBool;
    case DataType::kInt:
      return ColumnEncoding::kInt;
    case DataType::kDouble:
      return ColumnEncoding::kDouble;
    case DataType::kString:
      return ColumnEncoding::kDict;
    case DataType::kNull:
      break;
  }
  return ColumnEncoding::kEmpty;
}

}  // namespace

namespace {

/// reserve() that stays amortized under incremental hints. Chunked bulk
/// loads call Reserve(size + chunk) once per chunk; forwarding that
/// straight to vector::reserve pins capacity to the exact request, so
/// every following chunk reallocates and recopies the whole column —
/// quadratic in total rows. Growing by at least 2x keeps the hint's
/// "no realloc inside the coming append" guarantee with O(n) copying.
template <typename V>
void ReserveAmortized(V& v, size_t n) {
  if (n > v.capacity()) v.reserve(std::max(n, v.capacity() * 2));
}

}  // namespace

void ColumnVector::Reserve(size_t n) {
  ReserveAmortized(valid_, (n + 63) / 64);
  switch (enc_) {
    case ColumnEncoding::kBool:
      ReserveAmortized(bools_, n);
      break;
    case ColumnEncoding::kInt:
      ReserveAmortized(ints_, n);
      break;
    case ColumnEncoding::kDouble:
      ReserveAmortized(doubles_, n);
      break;
    case ColumnEncoding::kDict:
      ReserveAmortized(codes_, n);
      break;
    case ColumnEncoding::kMixed:
      ReserveAmortized(mixed_, n);
      break;
    case ColumnEncoding::kEmpty:
      break;
  }
}

void ColumnVector::AdoptEncoding(ColumnEncoding enc) {
  enc_ = enc;
  switch (enc_) {
    case ColumnEncoding::kBool:
      bools_.assign(size_, 0);
      break;
    case ColumnEncoding::kInt:
      ints_.assign(size_, 0);
      break;
    case ColumnEncoding::kDouble:
      doubles_.assign(size_, 0.0);
      break;
    case ColumnEncoding::kDict:
      codes_.assign(size_, 0);
      break;
    case ColumnEncoding::kMixed:
      mixed_.assign(size_, Value::Null());
      break;
    case ColumnEncoding::kEmpty:
      break;
  }
}

void ColumnVector::DemoteToMixed() {
  std::vector<Value> cells;
  cells.reserve(size_);
  for (size_t i = 0; i < size_; ++i) cells.push_back(Get(i));
  mixed_ = std::move(cells);
  bools_.clear();
  ints_.clear();
  doubles_.clear();
  codes_.clear();
  dict_.clear();
  dict_index_.clear();
  enc_ = ColumnEncoding::kMixed;
}

uint32_t ColumnVector::DictCode(const std::string& s) {
  auto it = dict_index_.find(s);
  if (it != dict_index_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(dict_.size());
  dict_.push_back(s);
  dict_index_.emplace(s, code);
  return code;
}

void ColumnVector::AppendNull() {
  GrowBitmap();
  switch (enc_) {
    case ColumnEncoding::kBool:
      bools_.push_back(0);
      break;
    case ColumnEncoding::kInt:
      ints_.push_back(0);
      break;
    case ColumnEncoding::kDouble:
      doubles_.push_back(0.0);
      break;
    case ColumnEncoding::kDict:
      codes_.push_back(0);
      break;
    case ColumnEncoding::kMixed:
      mixed_.push_back(Value::Null());
      break;
    case ColumnEncoding::kEmpty:
      break;
  }
  ++size_;  // bit stays 0 = NULL
}

void ColumnVector::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  ColumnEncoding want = EncodingFor(v.type());
  if (enc_ == ColumnEncoding::kEmpty) {
    AdoptEncoding(want);
  } else if (enc_ != want && enc_ != ColumnEncoding::kMixed) {
    DemoteToMixed();
  }
  GrowBitmap();
  SetValid(size_);
  switch (enc_) {
    case ColumnEncoding::kBool:
      bools_.push_back(v.AsBool() ? 1 : 0);
      break;
    case ColumnEncoding::kInt:
      ints_.push_back(v.AsInt());
      break;
    case ColumnEncoding::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case ColumnEncoding::kDict:
      codes_.push_back(DictCode(v.AsString()));
      break;
    case ColumnEncoding::kMixed:
      mixed_.push_back(v);
      break;
    case ColumnEncoding::kEmpty:
      break;
  }
  ++size_;
}

Value ColumnVector::Get(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (enc_) {
    case ColumnEncoding::kBool:
      return Value::Bool(bools_[i] != 0);
    case ColumnEncoding::kInt:
      return Value::Int(ints_[i]);
    case ColumnEncoding::kDouble:
      return Value::Double(doubles_[i]);
    case ColumnEncoding::kDict:
      return Value::Str(dict_[codes_[i]]);
    case ColumnEncoding::kMixed:
      return mixed_[i];
    case ColumnEncoding::kEmpty:
      break;
  }
  return Value::Null();
}

void ColumnVector::AppendRange(const ColumnVector& src, size_t begin,
                               size_t len) {
  if (len == 0) return;
  if (enc_ == ColumnEncoding::kEmpty && size_ == 0) {
    // Adopt src's encoding up front so the typed bulk path below runs.
    if (src.enc_ != ColumnEncoding::kEmpty) AdoptEncoding(src.enc_);
  }
  if (src.enc_ != enc_ || enc_ == ColumnEncoding::kEmpty) {
    // Encoding mismatch (or src still undecided): per-cell append keeps
    // exact values and lets this column demote if genuinely mixed.
    for (size_t i = 0; i < len; ++i) Append(src.Get(begin + i));
    return;
  }
  switch (enc_) {
    case ColumnEncoding::kBool:
      bools_.insert(bools_.end(), src.bools_.begin() + begin,
                    src.bools_.begin() + begin + len);
      break;
    case ColumnEncoding::kInt:
      ints_.insert(ints_.end(), src.ints_.begin() + begin,
                   src.ints_.begin() + begin + len);
      break;
    case ColumnEncoding::kDouble:
      doubles_.insert(doubles_.end(), src.doubles_.begin() + begin,
                      src.doubles_.begin() + begin + len);
      break;
    case ColumnEncoding::kDict: {
      // Remap src dictionary codes into this column's dictionary via a
      // per-call translation table: one hash lookup per *distinct* string,
      // one array read per row.
      std::vector<int64_t> map(src.dict_.size(), -1);
      codes_.reserve(codes_.size() + len);
      for (size_t i = 0; i < len; ++i) {
        uint32_t sc = src.codes_[begin + i];
        if (src.IsNull(begin + i)) {
          codes_.push_back(0);
          continue;
        }
        if (map[sc] < 0) map[sc] = DictCode(src.dict_[sc]);
        codes_.push_back(static_cast<uint32_t>(map[sc]));
      }
      break;
    }
    case ColumnEncoding::kMixed:
      mixed_.insert(mixed_.end(), src.mixed_.begin() + begin,
                    src.mixed_.begin() + begin + len);
      break;
    case ColumnEncoding::kEmpty:
      break;
  }
  // Copy validity bits (bit-addressed; word-at-a-time is not worth the
  // alignment bookkeeping at morsel sizes).
  valid_.resize((size_ + len + 63) / 64, 0);
  for (size_t i = 0; i < len; ++i) {
    if (!src.IsNull(begin + i)) SetValid(size_ + i);
  }
  size_ += len;
}

void ColumnVector::AppendGather(const ColumnVector& src, const uint32_t* sel,
                                size_t n) {
  if (n == 0) return;
  if (enc_ == ColumnEncoding::kEmpty && size_ == 0 &&
      src.enc_ != ColumnEncoding::kEmpty) {
    AdoptEncoding(src.enc_);
  }
  if (src.enc_ != enc_ || enc_ == ColumnEncoding::kEmpty) {
    for (size_t i = 0; i < n; ++i) Append(src.Get(sel[i]));
    return;
  }
  valid_.resize((size_ + n + 63) / 64, 0);
  switch (enc_) {
    case ColumnEncoding::kBool:
      bools_.reserve(bools_.size() + n);
      for (size_t i = 0; i < n; ++i) bools_.push_back(src.bools_[sel[i]]);
      break;
    case ColumnEncoding::kInt:
      ints_.reserve(ints_.size() + n);
      for (size_t i = 0; i < n; ++i) ints_.push_back(src.ints_[sel[i]]);
      break;
    case ColumnEncoding::kDouble:
      doubles_.reserve(doubles_.size() + n);
      for (size_t i = 0; i < n; ++i) doubles_.push_back(src.doubles_[sel[i]]);
      break;
    case ColumnEncoding::kDict: {
      std::vector<int64_t> map(src.dict_.size(), -1);
      codes_.reserve(codes_.size() + n);
      for (size_t i = 0; i < n; ++i) {
        uint32_t sc = src.codes_[sel[i]];
        if (src.IsNull(sel[i])) {
          codes_.push_back(0);
          continue;
        }
        if (map[sc] < 0) map[sc] = DictCode(src.dict_[sc]);
        codes_.push_back(static_cast<uint32_t>(map[sc]));
      }
      break;
    }
    case ColumnEncoding::kMixed:
      mixed_.reserve(mixed_.size() + n);
      for (size_t i = 0; i < n; ++i) mixed_.push_back(src.mixed_[sel[i]]);
      break;
    case ColumnEncoding::kEmpty:
      break;
  }
  for (size_t i = 0; i < n; ++i) {
    if (!src.IsNull(sel[i])) SetValid(size_ + i);
  }
  size_ += n;
}

namespace {

/// Hash of a numeric cell, replicating Value::Hash(): integral doubles
/// hash as their int64 value so 3 and 3.0 collide (== consistency).
uint64_t HashNumeric(double d) {
  if (d == 0.0) d = 0.0;  // normalize -0.0
  if (std::floor(d) == d && std::abs(d) < 9.2e18) {
    return SplitMix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
  }
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(d));
  return SplitMix64(bits);
}

constexpr uint64_t kNullHash = 0x6b617468ULL;

}  // namespace

uint64_t ColumnVector::HashAt(size_t i) const {
  if (IsNull(i)) return kNullHash;
  switch (enc_) {
    case ColumnEncoding::kBool:
      return SplitMix64(bools_[i] != 0 ? 1 : 0);
    case ColumnEncoding::kInt:
      return HashNumeric(static_cast<double>(ints_[i]));
    case ColumnEncoding::kDouble:
      return HashNumeric(doubles_[i]);
    case ColumnEncoding::kDict:
      return HashString(dict_[codes_[i]]);
    case ColumnEncoding::kMixed:
      return mixed_[i].Hash();
    case ColumnEncoding::kEmpty:
      break;
  }
  return kNullHash;
}

void ColumnVector::FoldHashRange(size_t begin, size_t len, uint64_t mul,
                                 uint64_t* acc) const {
  switch (enc_) {
    case ColumnEncoding::kBool:
      for (size_t i = 0; i < len; ++i) {
        size_t p = begin + i;
        uint64_t h =
            IsNull(p) ? kNullHash : SplitMix64(bools_[p] != 0 ? 1 : 0);
        acc[i] = acc[i] * mul + h;
      }
      return;
    case ColumnEncoding::kInt:
      for (size_t i = 0; i < len; ++i) {
        size_t p = begin + i;
        uint64_t h = IsNull(p)
                         ? kNullHash
                         : HashNumeric(static_cast<double>(ints_[p]));
        acc[i] = acc[i] * mul + h;
      }
      return;
    case ColumnEncoding::kDouble:
      for (size_t i = 0; i < len; ++i) {
        size_t p = begin + i;
        uint64_t h = IsNull(p) ? kNullHash : HashNumeric(doubles_[p]);
        acc[i] = acc[i] * mul + h;
      }
      return;
    case ColumnEncoding::kDict: {
      if (dict_.size() <= len) {
        // Hash each distinct string once, then fold by code lookup.
        std::vector<uint64_t> dh(dict_.size());
        for (size_t d = 0; d < dict_.size(); ++d) dh[d] = HashString(dict_[d]);
        for (size_t i = 0; i < len; ++i) {
          size_t p = begin + i;
          uint64_t h = IsNull(p) ? kNullHash : dh[codes_[p]];
          acc[i] = acc[i] * mul + h;
        }
      } else {
        for (size_t i = 0; i < len; ++i) {
          size_t p = begin + i;
          uint64_t h = IsNull(p) ? kNullHash : HashString(dict_[codes_[p]]);
          acc[i] = acc[i] * mul + h;
        }
      }
      return;
    }
    case ColumnEncoding::kMixed:
      for (size_t i = 0; i < len; ++i) {
        size_t p = begin + i;
        uint64_t h = IsNull(p) ? kNullHash : mixed_[p].Hash();
        acc[i] = acc[i] * mul + h;
      }
      return;
    case ColumnEncoding::kEmpty:
      for (size_t i = 0; i < len; ++i) acc[i] = acc[i] * mul + kNullHash;
      return;
  }
}

void ColumnVector::FoldHashGather(const uint32_t* idx, size_t n, uint64_t mul,
                                  uint64_t* acc) const {
  switch (enc_) {
    case ColumnEncoding::kBool:
      for (size_t i = 0; i < n; ++i) {
        size_t p = idx[i];
        uint64_t h =
            IsNull(p) ? kNullHash : SplitMix64(bools_[p] != 0 ? 1 : 0);
        acc[i] = acc[i] * mul + h;
      }
      return;
    case ColumnEncoding::kInt:
      for (size_t i = 0; i < n; ++i) {
        size_t p = idx[i];
        uint64_t h = IsNull(p)
                         ? kNullHash
                         : HashNumeric(static_cast<double>(ints_[p]));
        acc[i] = acc[i] * mul + h;
      }
      return;
    case ColumnEncoding::kDouble:
      for (size_t i = 0; i < n; ++i) {
        size_t p = idx[i];
        uint64_t h = IsNull(p) ? kNullHash : HashNumeric(doubles_[p]);
        acc[i] = acc[i] * mul + h;
      }
      return;
    case ColumnEncoding::kDict: {
      if (dict_.size() <= n) {
        std::vector<uint64_t> dh(dict_.size());
        for (size_t d = 0; d < dict_.size(); ++d) dh[d] = HashString(dict_[d]);
        for (size_t i = 0; i < n; ++i) {
          size_t p = idx[i];
          uint64_t h = IsNull(p) ? kNullHash : dh[codes_[p]];
          acc[i] = acc[i] * mul + h;
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          size_t p = idx[i];
          uint64_t h = IsNull(p) ? kNullHash : HashString(dict_[codes_[p]]);
          acc[i] = acc[i] * mul + h;
        }
      }
      return;
    }
    case ColumnEncoding::kMixed:
      for (size_t i = 0; i < n; ++i) {
        size_t p = idx[i];
        uint64_t h = IsNull(p) ? kNullHash : mixed_[p].Hash();
        acc[i] = acc[i] * mul + h;
      }
      return;
    case ColumnEncoding::kEmpty:
      for (size_t i = 0; i < n; ++i) acc[i] = acc[i] * mul + kNullHash;
      return;
  }
}

namespace {

/// Clears validity bits at or beyond `n` and pads the word vector so the
/// factories below accept loosely-sized decoder output.
std::vector<uint64_t> NormalizeValidity(std::vector<uint64_t> valid,
                                        size_t n) {
  valid.resize((n + 63) / 64, 0);
  if (n % 64 != 0 && !valid.empty()) {
    valid.back() &= (uint64_t{1} << (n % 64)) - 1;
  }
  return valid;
}

}  // namespace

std::shared_ptr<ColumnVector> ColumnVector::AllNulls(size_t n) {
  auto col = std::make_shared<ColumnVector>();
  col->size_ = n;
  col->valid_.assign((n + 63) / 64, 0);
  return col;
}

std::shared_ptr<ColumnVector> ColumnVector::FromBools(std::vector<uint8_t> vals,
                                  std::vector<uint64_t> valid) {
  auto col = std::make_shared<ColumnVector>();
  col->enc_ = ColumnEncoding::kBool;
  col->size_ = vals.size();
  col->valid_ = NormalizeValidity(std::move(valid), vals.size());
  col->bools_ = std::move(vals);
  return col;
}

std::shared_ptr<ColumnVector> ColumnVector::FromInts(std::vector<int64_t> vals,
                                 std::vector<uint64_t> valid) {
  auto col = std::make_shared<ColumnVector>();
  col->enc_ = ColumnEncoding::kInt;
  col->size_ = vals.size();
  col->valid_ = NormalizeValidity(std::move(valid), vals.size());
  col->ints_ = std::move(vals);
  return col;
}

std::shared_ptr<ColumnVector> ColumnVector::FromDoubles(std::vector<double> vals,
                                    std::vector<uint64_t> valid) {
  auto col = std::make_shared<ColumnVector>();
  col->enc_ = ColumnEncoding::kDouble;
  col->size_ = vals.size();
  col->valid_ = NormalizeValidity(std::move(valid), vals.size());
  col->doubles_ = std::move(vals);
  return col;
}

std::shared_ptr<ColumnVector> ColumnVector::FromDict(std::vector<std::string> dict,
                                 std::vector<uint32_t> codes,
                                 std::vector<uint64_t> valid) {
  auto col = std::make_shared<ColumnVector>();
  col->enc_ = ColumnEncoding::kDict;
  col->size_ = codes.size();
  col->valid_ = NormalizeValidity(std::move(valid), codes.size());
  col->codes_ = std::move(codes);
  col->dict_ = std::move(dict);
  for (size_t d = 0; d < col->dict_.size(); ++d) {
    // First occurrence wins, mirroring DictCode interning.
    col->dict_index_.emplace(col->dict_[d], static_cast<uint32_t>(d));
  }
  return col;
}

std::shared_ptr<ColumnVector> ColumnVector::FromValues(std::vector<Value> vals) {
  auto col = std::make_shared<ColumnVector>();
  col->enc_ = ColumnEncoding::kMixed;
  col->size_ = vals.size();
  col->valid_.assign((vals.size() + 63) / 64, 0);
  for (size_t i = 0; i < vals.size(); ++i) {
    if (!vals[i].is_null()) col->SetValid(i);
  }
  col->mixed_ = std::move(vals);
  return col;
}

uint64_t ColumnVector::FingerprintRange(size_t begin, size_t len) const {
  // FNV-style fold over per-cell hashes. Cell hashes must not depend on
  // the encoding, so kMixed falls back to Value::Hash and the typed
  // paths reproduce it exactly.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto fold = [&h](uint64_t v) { h = (h ^ v) * 0x100000001b3ULL; };
  switch (enc_) {
    case ColumnEncoding::kDict: {
      // Hash each distinct dictionary string once, then fold codes.
      std::vector<uint64_t> dict_hash(dict_.size(), 0);
      for (size_t d = 0; d < dict_.size(); ++d) {
        dict_hash[d] = HashString(dict_[d]);
      }
      for (size_t i = begin; i < begin + len; ++i) {
        fold(IsNull(i) ? kNullHash : dict_hash[codes_[i]]);
      }
      break;
    }
    default:
      for (size_t i = begin; i < begin + len; ++i) fold(HashAt(i));
      break;
  }
  return h;
}

size_t ColumnVector::MemoryBytes() const {
  size_t n = valid_.capacity() * sizeof(uint64_t);
  n += bools_.capacity();
  n += ints_.capacity() * sizeof(int64_t);
  n += doubles_.capacity() * sizeof(double);
  n += codes_.capacity() * sizeof(uint32_t);
  for (const auto& s : dict_) n += s.capacity() + sizeof(std::string);
  n += mixed_.capacity() * sizeof(Value);
  return n;
}

}  // namespace kathdb::rel
