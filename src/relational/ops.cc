#include "relational/ops.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "relational/expr_vec.h"

namespace kathdb::rel {

Result<bool> Operator::NextChunk(Chunk* chunk) {
  // Adapter for row-only operators: buffer up to kChunkRows Next() pulls
  // into a private table and emit it as one dense chunk.
  auto buf = std::make_shared<Table>(std::string(), output_schema());
  Row row;
  int64_t lid = 0;
  while (buf->num_rows() < kChunkRows) {
    KATHDB_ASSIGN_OR_RETURN(bool has, Next(&row, &lid));
    if (!has) break;
    buf->AppendRow(std::move(row), lid);
  }
  if (buf->num_rows() == 0) return false;
  chunk->begin = 0;
  chunk->end = buf->num_rows();
  chunk->sel.clear();
  chunk->table = std::move(buf);
  return true;
}

Result<Table> Materialize(Operator* op, const std::string& name) {
  KATHDB_RETURN_IF_ERROR(op->Open());
  Table out(name, op->output_schema());
  Chunk chunk;
  while (true) {
    KATHDB_ASSIGN_OR_RETURN(bool has, op->NextChunk(&chunk));
    if (!has) break;
    if (chunk.sel.empty()) {
      out.AppendSlice(*chunk.table, chunk.begin, chunk.end);
    } else {
      out.AppendGather(*chunk.table, chunk.sel.data(), chunk.sel.size());
    }
  }
  op->Close();
  return out;
}

Result<Table> MaterializeRows(Operator* op, const std::string& name) {
  KATHDB_RETURN_IF_ERROR(op->Open());
  Table out(name, op->output_schema());
  Row row;
  int64_t lid = 0;
  while (true) {
    KATHDB_ASSIGN_OR_RETURN(bool has, op->Next(&row, &lid));
    if (!has) break;
    out.AppendRow(row, lid);
  }
  op->Close();
  return out;
}

namespace {

// ---------------------------------------------------------------- SeqScan
class SeqScanOp : public Operator {
 public:
  explicit SeqScanOp(TablePtr table) : table_(std::move(table)) {}

  Status Open() override {
    pos_ = 0;
    return table_ == nullptr ? Status::InvalidArgument("null table scan")
                             : Status::OK();
  }
  Result<bool> Next(Row* row, int64_t* lid) override {
    if (pos_ >= table_->num_rows()) return false;
    *row = table_->row(pos_);
    *lid = table_->row_lid(pos_);
    ++pos_;
    return true;
  }
  Result<bool> NextChunk(Chunk* chunk) override {
    // Zero-copy: a chunk is a window over the scanned table itself.
    if (pos_ >= table_->num_rows()) return false;
    chunk->table = table_;
    chunk->begin = pos_;
    chunk->end = std::min(pos_ + kChunkRows, table_->num_rows());
    chunk->sel.clear();
    pos_ = chunk->end;
    return true;
  }
  void Close() override {}
  const Schema& output_schema() const override { return table_->schema(); }
  std::string Describe() const override {
    return "SeqScan(" + table_->name() + ")";
  }

 private:
  TablePtr table_;
  size_t pos_ = 0;
};

// ----------------------------------------------------------------- Filter
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* row, int64_t* lid) override {
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, child_->Next(row, lid));
      if (!has) return false;
      KATHDB_ASSIGN_OR_RETURN(Value v,
                              pred_->Eval(*row, child_->output_schema()));
      if (!v.is_null() && v.AsBool()) return true;
    }
  }
  Result<bool> NextChunk(Chunk* chunk) override {
    // Vectorized: evaluate the predicate over the child's chunk into a
    // selection vector; the chunk's table passes through untouched.
    while (true) {
      Chunk in;
      KATHDB_ASSIGN_OR_RETURN(bool has, child_->NextChunk(&in));
      if (!has) return false;
      std::vector<uint32_t> keep;
      keep.reserve(in.size());
      if (in.sel.empty()) {
        KATHDB_RETURN_IF_ERROR(EvalPredicateSelect(*pred_, *in.table,
                                                   in.begin, in.end, &keep));
      } else {
        KATHDB_RETURN_IF_ERROR(
            EvalPredicateSelectOn(*pred_, *in.table, in.sel, &keep));
      }
      if (keep.empty()) continue;
      chunk->table = std::move(in.table);
      chunk->begin = in.begin;
      chunk->end = in.end;
      chunk->sel = std::move(keep);
      return true;
    }
  }
  void Close() override { child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string Describe() const override {
    return "Filter(" + pred_->ToString() + ")";
  }

 private:
  OperatorPtr child_;
  ExprPtr pred_;
};

// ---------------------------------------------------------------- Project
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
            std::vector<std::string> names)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        names_(std::move(names)) {
    // Best-effort schema: column refs keep their input type; everything
    // else starts as STRING and is refined from the first row at Open().
    for (size_t i = 0; i < exprs_.size(); ++i) {
      DataType t = DataType::kString;
      if (exprs_[i]->kind() == ExprKind::kColumnRef) {
        auto idx = child_->output_schema().IndexOf(exprs_[i]->column_name());
        if (idx.has_value()) {
          t = child_->output_schema().column(*idx).type;
        }
      }
      schema_.AddColumn(names_[i], t);
    }
  }

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Row* row, int64_t* lid) override {
    Row in;
    KATHDB_ASSIGN_OR_RETURN(bool has, child_->Next(&in, lid));
    if (!has) return false;
    row->clear();
    row->reserve(exprs_.size());
    for (const auto& e : exprs_) {
      KATHDB_ASSIGN_OR_RETURN(Value v, e->Eval(in, child_->output_schema()));
      row->push_back(std::move(v));
    }
    if (!typed_) {
      // Refine declared types from the first real row.
      Schema refined;
      for (size_t i = 0; i < row->size(); ++i) {
        DataType t = (*row)[i].type();
        refined.AddColumn(names_[i],
                          t == DataType::kNull ? schema_.column(i).type : t);
      }
      schema_ = refined;
      typed_ = true;
    }
    return true;
  }

  Result<bool> NextChunk(Chunk* chunk) override {
    // Vectorized: evaluate every output expression column-at-a-time over
    // the child's chunk and assemble the output table from the columns.
    Chunk in;
    KATHDB_ASSIGN_OR_RETURN(bool has, child_->NextChunk(&in));
    if (!has) return false;
    std::vector<uint32_t> dense;
    const uint32_t* sel = in.sel.data();
    size_t n = in.sel.size();
    if (in.sel.empty()) {
      dense.resize(in.end - in.begin);
      std::iota(dense.begin(), dense.end(), static_cast<uint32_t>(in.begin));
      sel = dense.data();
      n = dense.size();
    }
    std::vector<ColumnPtr> cols;
    cols.reserve(exprs_.size());
    for (const auto& e : exprs_) {
      auto col = std::make_shared<ColumnVector>();
      col->Reserve(n);
      KATHDB_RETURN_IF_ERROR(EvalExprVector(*e, *in.table, sel, n,
                                            col.get()));
      cols.push_back(std::move(col));
    }
    std::vector<int64_t> lids(n);
    for (size_t i = 0; i < n; ++i) lids[i] = in.table->row_lid(sel[i]);
    if (!typed_ && n > 0) {
      // Same refinement rule as the row path, read from the columns.
      Schema refined;
      for (size_t i = 0; i < cols.size(); ++i) {
        DataType t = cols[i]->Get(0).type();
        refined.AddColumn(names_[i],
                          t == DataType::kNull ? schema_.column(i).type : t);
      }
      schema_ = refined;
      typed_ = true;
    }
    chunk->table = std::make_shared<Table>(Table::FromColumns(
        std::string(), schema_, std::move(cols), std::move(lids)));
    chunk->begin = 0;
    chunk->end = n;
    chunk->sel.clear();
    return true;
  }

  void Close() override { child_->Close(); }
  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override {
    std::string out = "Project(";
    for (size_t i = 0; i < exprs_.size(); ++i) {
      if (i > 0) out += ", ";
      out += exprs_[i]->ToString() + " AS " + names_[i];
    }
    return out + ")";
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  std::vector<std::string> names_;
  Schema schema_;
  bool typed_ = false;
};

// --------------------------------------------------------------- HashJoin
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, std::string lcol,
             std::string rcol, std::string right_prefix)
      : left_(std::move(left)),
        right_(std::move(right)),
        lcol_(std::move(lcol)),
        rcol_(std::move(rcol)) {
    schema_ = Schema::Concat(left_->output_schema(), right_->output_schema(),
                             right_prefix);
  }

  Status Open() override {
    KATHDB_RETURN_IF_ERROR(left_->Open());
    KATHDB_RETURN_IF_ERROR(right_->Open());
    ridx_ = right_->output_schema().IndexOf(rcol_);
    if (!ridx_.has_value()) {
      return Status::SyntacticError("hash join: right column '" + rcol_ +
                                    "' not found");
    }
    lidx_ = left_->output_schema().IndexOf(lcol_);
    if (!lidx_.has_value()) {
      return Status::SyntacticError("hash join: left column '" + lcol_ +
                                    "' not found");
    }
    // Build side: materialize the right input columnar (chunked bulk
    // appends) and index build rows by the hash of their key cell — the
    // hash table holds row indices, not copies of the rows.
    build_table_ = Table(std::string(), right_->output_schema());
    Chunk chunk;
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, right_->NextChunk(&chunk));
      if (!has) break;
      if (chunk.sel.empty()) {
        build_table_.AppendSlice(*chunk.table, chunk.begin, chunk.end);
      } else {
        build_table_.AppendGather(*chunk.table, chunk.sel.data(),
                                  chunk.sel.size());
      }
    }
    right_->Close();
    build_.clear();
    if (build_table_.num_rows() > 0 &&
        *ridx_ < build_table_.num_physical_columns()) {
      const ColumnVector& key = build_table_.column(*ridx_);
      for (size_t r = 0; r < build_table_.num_rows(); ++r) {
        build_[key.HashAt(r)].push_back(static_cast<uint32_t>(r));
      }
    }
    match_pos_ = 0;
    matches_ = nullptr;
    return Status::OK();
  }

  Result<bool> Next(Row* row, int64_t* lid) override {
    while (true) {
      if (matches_ != nullptr && match_pos_ < matches_->size()) {
        uint32_t r = (*matches_)[match_pos_++];
        // Only emit genuine equals (hash collisions filtered here).
        if (probe_row_[*lidx_] == build_table_.at(r, *ridx_)) {
          *row = probe_row_;
          Row rr = build_table_.row(r);
          row->insert(row->end(), rr.begin(), rr.end());
          *lid = probe_lid_;
          return true;
        }
        continue;
      }
      KATHDB_ASSIGN_OR_RETURN(bool has, left_->Next(&probe_row_, &probe_lid_));
      if (!has) return false;
      auto it = build_.find(probe_row_[*lidx_].Hash());
      matches_ = it == build_.end() ? nullptr : &it->second;
      match_pos_ = 0;
    }
  }

  void Close() override {
    left_->Close();
    build_.clear();
    build_table_ = Table();
  }
  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override {
    return "HashJoin(" + lcol_ + " = " + rcol_ + ")";
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::string lcol_;
  std::string rcol_;
  Schema schema_;
  std::optional<size_t> lidx_;
  std::optional<size_t> ridx_;
  Table build_table_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> build_;
  Row probe_row_;
  int64_t probe_lid_ = 0;
  const std::vector<uint32_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

// --------------------------------------------------------- NestedLoopJoin
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr pred,
                   std::string right_prefix)
      : left_(std::move(left)), right_(std::move(right)),
        pred_(std::move(pred)) {
    schema_ = Schema::Concat(left_->output_schema(), right_->output_schema(),
                             right_prefix);
  }

  Status Open() override {
    KATHDB_RETURN_IF_ERROR(left_->Open());
    KATHDB_RETURN_IF_ERROR(right_->Open());
    Row row;
    int64_t lid = 0;
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, right_->Next(&row, &lid));
      if (!has) break;
      right_rows_.push_back(row);
    }
    right_->Close();
    rpos_ = right_rows_.size();  // force first left fetch
    return Status::OK();
  }

  Result<bool> Next(Row* row, int64_t* lid) override {
    while (true) {
      if (rpos_ >= right_rows_.size()) {
        KATHDB_ASSIGN_OR_RETURN(bool has,
                                left_->Next(&probe_row_, &probe_lid_));
        if (!has) return false;
        rpos_ = 0;
      }
      while (rpos_ < right_rows_.size()) {
        Row joined = probe_row_;
        const Row& r = right_rows_[rpos_++];
        joined.insert(joined.end(), r.begin(), r.end());
        KATHDB_ASSIGN_OR_RETURN(Value v, pred_->Eval(joined, schema_));
        if (!v.is_null() && v.AsBool()) {
          *row = std::move(joined);
          *lid = probe_lid_;
          return true;
        }
      }
    }
  }

  void Close() override {
    left_->Close();
    right_rows_.clear();
  }
  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override {
    return "NestedLoopJoin(" + pred_->ToString() + ")";
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  ExprPtr pred_;
  Schema schema_;
  std::vector<Row> right_rows_;
  Row probe_row_;
  int64_t probe_lid_ = 0;
  size_t rpos_ = 0;
};

// -------------------------------------------------------------- Aggregate
class AggregateOp : public Operator {
 public:
  AggregateOp(OperatorPtr child, std::vector<std::string> group_cols,
              std::vector<AggSpec> aggs)
      : child_(std::move(child)),
        group_cols_(std::move(group_cols)),
        aggs_(std::move(aggs)) {
    const Schema& in = child_->output_schema();
    for (const auto& g : group_cols_) {
      auto idx = in.IndexOf(g);
      schema_.AddColumn(g, idx.has_value() ? in.column(*idx).type
                                           : DataType::kString);
    }
    for (const auto& a : aggs_) {
      DataType t = DataType::kDouble;
      if (a.fn == AggFn::kCount) t = DataType::kInt;
      if ((a.fn == AggFn::kMin || a.fn == AggFn::kMax) && !a.column.empty()) {
        auto idx = in.IndexOf(a.column);
        if (idx.has_value()) t = in.column(*idx).type;
      }
      schema_.AddColumn(a.output_name, t);
    }
  }

  Status Open() override {
    KATHDB_RETURN_IF_ERROR(child_->Open());
    const Schema& in = child_->output_schema();
    std::vector<size_t> gidx;
    for (const auto& g : group_cols_) {
      auto idx = in.IndexOf(g);
      if (!idx.has_value()) {
        return Status::SyntacticError("group by unknown column '" + g + "'");
      }
      gidx.push_back(*idx);
    }
    std::vector<std::optional<size_t>> aidx;
    for (const auto& a : aggs_) {
      if (a.column.empty()) {
        aidx.push_back(std::nullopt);
      } else {
        auto idx = in.IndexOf(a.column);
        if (!idx.has_value()) {
          return Status::SyntacticError("aggregate over unknown column '" +
                                        a.column + "'");
        }
        aidx.push_back(*idx);
      }
    }

    struct AggState {
      int64_t count = 0;
      double sum = 0.0;
      Value min, max;
      bool seen = false;
    };
    struct GroupState {
      Row key;
      std::vector<AggState> states;
    };
    std::unordered_map<uint64_t, GroupState> groups;
    std::vector<uint64_t> order;

    Row row;
    int64_t lid = 0;
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, child_->Next(&row, &lid));
      if (!has) break;
      uint64_t h = 0x9E3779B97F4A7C15ULL;
      Row key;
      for (size_t gi : gidx) {
        key.push_back(row[gi]);
        h = h * 1315423911ULL + row[gi].Hash();
      }
      auto it = groups.find(h);
      if (it == groups.end()) {
        GroupState gs;
        gs.key = key;
        gs.states.resize(aggs_.size());
        it = groups.emplace(h, std::move(gs)).first;
        order.push_back(h);
      }
      for (size_t i = 0; i < aggs_.size(); ++i) {
        AggState& st = it->second.states[i];
        ++st.count;
        if (aidx[i].has_value()) {
          const Value& v = row[*aidx[i]];
          if (!v.is_null()) {
            st.sum += v.AsDouble();
            if (!st.seen || v.Compare(st.min) < 0) st.min = v;
            if (!st.seen || v.Compare(st.max) > 0) st.max = v;
            st.seen = true;
          }
        }
      }
    }
    child_->Close();

    // Global aggregate over empty input still yields one row.
    if (groups.empty() && group_cols_.empty()) {
      GroupState gs;
      gs.states.resize(aggs_.size());
      groups.emplace(0, std::move(gs));
      order.push_back(0);
    }

    for (uint64_t h : order) {
      GroupState& gs = groups[h];
      Row out = gs.key;
      for (size_t i = 0; i < aggs_.size(); ++i) {
        const AggState& st = gs.states[i];
        switch (aggs_[i].fn) {
          case AggFn::kCount:
            out.push_back(Value::Int(st.count));
            break;
          case AggFn::kSum:
            out.push_back(Value::Double(st.sum));
            break;
          case AggFn::kAvg:
            out.push_back(st.count == 0
                              ? Value::Null()
                              : Value::Double(st.sum /
                                              static_cast<double>(st.count)));
            break;
          case AggFn::kMin:
            out.push_back(st.seen ? st.min : Value::Null());
            break;
          case AggFn::kMax:
            out.push_back(st.seen ? st.max : Value::Null());
            break;
        }
      }
      results_.push_back(std::move(out));
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* row, int64_t* lid) override {
    if (pos_ >= results_.size()) return false;
    *row = results_[pos_++];
    *lid = 0;  // wide dependency: table-level lineage only (Section 3)
    return true;
  }

  void Close() override { results_.clear(); }
  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override {
    return "Aggregate(groups=" + std::to_string(group_cols_.size()) +
           ", aggs=" + std::to_string(aggs_.size()) + ")";
  }

 private:
  OperatorPtr child_;
  std::vector<std::string> group_cols_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

// ------------------------------------------------------------------- Sort
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  Status Open() override {
    KATHDB_RETURN_IF_ERROR(child_->Open());
    const Schema& in = child_->output_schema();
    std::vector<std::pair<size_t, bool>> kidx;
    for (const auto& k : keys_) {
      auto idx = in.IndexOf(k.column);
      if (!idx.has_value()) {
        return Status::SyntacticError("sort by unknown column '" + k.column +
                                      "'");
      }
      kidx.emplace_back(*idx, k.descending);
    }
    Row row;
    int64_t lid = 0;
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, child_->Next(&row, &lid));
      if (!has) break;
      rows_.emplace_back(std::move(row), lid);
    }
    child_->Close();
    std::stable_sort(rows_.begin(), rows_.end(),
                     [&](const auto& a, const auto& b) {
                       for (const auto& [idx, desc] : kidx) {
                         int c = a.first[idx].Compare(b.first[idx]);
                         if (c != 0) return desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* row, int64_t* lid) override {
    if (pos_ >= rows_.size()) return false;
    *row = rows_[pos_].first;
    *lid = rows_[pos_].second;
    ++pos_;
    return true;
  }

  void Close() override { rows_.clear(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string Describe() const override {
    std::string out = "Sort(";
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i > 0) out += ", ";
      out += keys_[i].column + (keys_[i].descending ? " DESC" : " ASC");
    }
    return out + ")";
  }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<std::pair<Row, int64_t>> rows_;
  size_t pos_ = 0;
};

// ------------------------------------------------------------------ Limit
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }
  Result<bool> Next(Row* row, int64_t* lid) override {
    if (emitted_ >= limit_) return false;
    KATHDB_ASSIGN_OR_RETURN(bool has, child_->Next(row, lid));
    if (!has) return false;
    ++emitted_;
    return true;
  }
  void Close() override { child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string Describe() const override {
    return "Limit(" + std::to_string(limit_) + ")";
  }

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t emitted_ = 0;
};

// --------------------------------------------------------------- Distinct
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child) : child_(std::move(child)) {}

  Status Open() override {
    seen_.clear();
    return child_->Open();
  }
  Result<bool> Next(Row* row, int64_t* lid) override {
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, child_->Next(row, lid));
      if (!has) return false;
      std::string key;
      for (const auto& v : *row) {
        key += v.ToString();
        key += '\x01';
      }
      if (seen_.insert(key).second) return true;
    }
  }
  void Close() override { child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string Describe() const override { return "Distinct"; }

 private:
  OperatorPtr child_;
  std::unordered_set<std::string> seen_;
};

// --------------------------------------------------------------- UnionAll
class UnionAllOp : public Operator {
 public:
  UnionAllOp(OperatorPtr left, OperatorPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Status Open() override {
    if (!(left_->output_schema() == right_->output_schema())) {
      return Status::SyntacticError("UNION ALL schema mismatch: " +
                                    left_->output_schema().ToString() +
                                    " vs " +
                                    right_->output_schema().ToString());
    }
    KATHDB_RETURN_IF_ERROR(left_->Open());
    KATHDB_RETURN_IF_ERROR(right_->Open());
    on_left_ = true;
    return Status::OK();
  }
  Result<bool> Next(Row* row, int64_t* lid) override {
    if (on_left_) {
      KATHDB_ASSIGN_OR_RETURN(bool has, left_->Next(row, lid));
      if (has) return true;
      on_left_ = false;
    }
    return right_->Next(row, lid);
  }
  void Close() override {
    left_->Close();
    right_->Close();
  }
  const Schema& output_schema() const override {
    return left_->output_schema();
  }
  std::string Describe() const override { return "UnionAll"; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  bool on_left_ = true;
};

}  // namespace

OperatorPtr MakeSeqScan(TablePtr table) {
  return std::make_unique<SeqScanOp>(std::move(table));
}
OperatorPtr MakeFilter(OperatorPtr child, ExprPtr predicate) {
  return std::make_unique<FilterOp>(std::move(child), std::move(predicate));
}
OperatorPtr MakeProject(OperatorPtr child, std::vector<ExprPtr> exprs,
                        std::vector<std::string> names) {
  return std::make_unique<ProjectOp>(std::move(child), std::move(exprs),
                                     std::move(names));
}
OperatorPtr MakeHashJoin(OperatorPtr left, OperatorPtr right,
                         std::string left_col, std::string right_col,
                         std::string right_prefix) {
  return std::make_unique<HashJoinOp>(std::move(left), std::move(right),
                                      std::move(left_col),
                                      std::move(right_col),
                                      std::move(right_prefix));
}
OperatorPtr MakeNestedLoopJoin(OperatorPtr left, OperatorPtr right,
                               ExprPtr predicate, std::string right_prefix) {
  return std::make_unique<NestedLoopJoinOp>(std::move(left), std::move(right),
                                            std::move(predicate),
                                            std::move(right_prefix));
}
OperatorPtr MakeAggregate(OperatorPtr child,
                          std::vector<std::string> group_cols,
                          std::vector<AggSpec> aggs) {
  return std::make_unique<AggregateOp>(std::move(child),
                                       std::move(group_cols),
                                       std::move(aggs));
}
OperatorPtr MakeSort(OperatorPtr child, std::vector<SortKey> keys) {
  return std::make_unique<SortOp>(std::move(child), std::move(keys));
}
OperatorPtr MakeLimit(OperatorPtr child, size_t limit) {
  return std::make_unique<LimitOp>(std::move(child), limit);
}
OperatorPtr MakeDistinct(OperatorPtr child) {
  return std::make_unique<DistinctOp>(std::move(child));
}
OperatorPtr MakeUnionAll(OperatorPtr left, OperatorPtr right) {
  return std::make_unique<UnionAllOp>(std::move(left), std::move(right));
}

}  // namespace kathdb::rel
