#include "relational/ops.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "relational/expr_vec.h"

namespace kathdb::rel {

Result<bool> Operator::NextChunk(Chunk* chunk) {
  // Adapter for row-only operators: buffer up to kChunkRows Next() pulls
  // into a private table and emit it as one dense chunk.
  auto buf = std::make_shared<Table>(std::string(), output_schema());
  Row row;
  int64_t lid = 0;
  while (buf->num_rows() < kChunkRows) {
    KATHDB_ASSIGN_OR_RETURN(bool has, Next(&row, &lid));
    if (!has) break;
    buf->AppendRow(std::move(row), lid);
  }
  if (buf->num_rows() == 0) return false;
  chunk->begin = 0;
  chunk->end = buf->num_rows();
  chunk->sel.clear();
  chunk->table = std::move(buf);
  return true;
}

Result<Table> Materialize(Operator* op, const std::string& name) {
  KATHDB_RETURN_IF_ERROR(op->Open());
  Table out(name, op->output_schema());
  Chunk chunk;
  while (true) {
    KATHDB_ASSIGN_OR_RETURN(bool has, op->NextChunk(&chunk));
    if (!has) break;
    out.Reserve(out.num_rows() + chunk.size());
    if (chunk.sel.empty()) {
      out.AppendSlice(*chunk.table, chunk.begin, chunk.end);
    } else {
      out.AppendGather(*chunk.table, chunk.sel.data(), chunk.sel.size());
    }
  }
  op->Close();
  return out;
}

Result<Table> MaterializeRows(Operator* op, const std::string& name) {
  KATHDB_RETURN_IF_ERROR(op->Open());
  Table out(name, op->output_schema());
  Row row;
  int64_t lid = 0;
  while (true) {
    KATHDB_ASSIGN_OR_RETURN(bool has, op->Next(&row, &lid));
    if (!has) break;
    out.AppendRow(row, lid);
  }
  op->Close();
  return out;
}

namespace {

// ---------------------------------------------------------------- SeqScan
class SeqScanOp : public Operator {
 public:
  explicit SeqScanOp(TablePtr table) : table_(std::move(table)) {}

  Status Open() override {
    pos_ = 0;
    return table_ == nullptr ? Status::InvalidArgument("null table scan")
                             : Status::OK();
  }
  Result<bool> Next(Row* row, int64_t* lid) override {
    if (pos_ >= table_->num_rows()) return false;
    *row = table_->row(pos_);
    *lid = table_->row_lid(pos_);
    ++pos_;
    return true;
  }
  Result<bool> NextChunk(Chunk* chunk) override {
    // Zero-copy: a chunk is a window over the scanned table itself.
    if (pos_ >= table_->num_rows()) return false;
    chunk->table = table_;
    chunk->begin = pos_;
    chunk->end = std::min(pos_ + kChunkRows, table_->num_rows());
    chunk->sel.clear();
    pos_ = chunk->end;
    return true;
  }
  void Close() override {}
  const Schema& output_schema() const override { return table_->schema(); }
  std::string Describe() const override {
    return "SeqScan(" + table_->name() + ")";
  }

 private:
  TablePtr table_;
  size_t pos_ = 0;
};

// ----------------------------------------------------------------- Filter
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* row, int64_t* lid) override {
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, child_->Next(row, lid));
      if (!has) return false;
      KATHDB_ASSIGN_OR_RETURN(Value v,
                              pred_->Eval(*row, child_->output_schema()));
      if (!v.is_null() && v.AsBool()) return true;
    }
  }
  Result<bool> NextChunk(Chunk* chunk) override {
    // Vectorized: evaluate the predicate over the child's chunk into a
    // selection vector; the chunk's table passes through untouched.
    while (true) {
      Chunk in;
      KATHDB_ASSIGN_OR_RETURN(bool has, child_->NextChunk(&in));
      if (!has) return false;
      std::vector<uint32_t> keep;
      keep.reserve(in.size());
      if (in.sel.empty()) {
        KATHDB_RETURN_IF_ERROR(EvalPredicateSelect(*pred_, *in.table,
                                                   in.begin, in.end, &keep));
      } else {
        KATHDB_RETURN_IF_ERROR(
            EvalPredicateSelectOn(*pred_, *in.table, in.sel, &keep));
      }
      if (keep.empty()) continue;
      chunk->table = std::move(in.table);
      chunk->begin = in.begin;
      chunk->end = in.end;
      chunk->sel = std::move(keep);
      return true;
    }
  }
  void Close() override { child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string Describe() const override {
    return "Filter(" + pred_->ToString() + ")";
  }

 private:
  OperatorPtr child_;
  ExprPtr pred_;
};

// ---------------------------------------------------------------- Project
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
            std::vector<std::string> names)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        names_(std::move(names)) {
    // Best-effort schema: column refs keep their input type; everything
    // else starts as STRING and is refined from the first row at Open().
    for (size_t i = 0; i < exprs_.size(); ++i) {
      DataType t = DataType::kString;
      if (exprs_[i]->kind() == ExprKind::kColumnRef) {
        auto idx = child_->output_schema().IndexOf(exprs_[i]->column_name());
        if (idx.has_value()) {
          t = child_->output_schema().column(*idx).type;
        }
      }
      schema_.AddColumn(names_[i], t);
    }
  }

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Row* row, int64_t* lid) override {
    Row in;
    KATHDB_ASSIGN_OR_RETURN(bool has, child_->Next(&in, lid));
    if (!has) return false;
    row->clear();
    row->reserve(exprs_.size());
    for (const auto& e : exprs_) {
      KATHDB_ASSIGN_OR_RETURN(Value v, e->Eval(in, child_->output_schema()));
      row->push_back(std::move(v));
    }
    if (!typed_) {
      // Refine declared types from the first real row.
      Schema refined;
      for (size_t i = 0; i < row->size(); ++i) {
        DataType t = (*row)[i].type();
        refined.AddColumn(names_[i],
                          t == DataType::kNull ? schema_.column(i).type : t);
      }
      schema_ = refined;
      typed_ = true;
    }
    return true;
  }

  Result<bool> NextChunk(Chunk* chunk) override {
    // Vectorized: evaluate every output expression column-at-a-time over
    // the child's chunk and assemble the output table from the columns.
    Chunk in;
    KATHDB_ASSIGN_OR_RETURN(bool has, child_->NextChunk(&in));
    if (!has) return false;
    std::vector<uint32_t> dense;
    const uint32_t* sel = in.sel.data();
    size_t n = in.sel.size();
    if (in.sel.empty()) {
      dense.resize(in.end - in.begin);
      std::iota(dense.begin(), dense.end(), static_cast<uint32_t>(in.begin));
      sel = dense.data();
      n = dense.size();
    }
    std::vector<ColumnPtr> cols;
    cols.reserve(exprs_.size());
    for (const auto& e : exprs_) {
      auto col = std::make_shared<ColumnVector>();
      col->Reserve(n);
      KATHDB_RETURN_IF_ERROR(EvalExprVector(*e, *in.table, sel, n,
                                            col.get()));
      cols.push_back(std::move(col));
    }
    std::vector<int64_t> lids(n);
    for (size_t i = 0; i < n; ++i) lids[i] = in.table->row_lid(sel[i]);
    if (!typed_ && n > 0) {
      // Same refinement rule as the row path, read from the columns.
      Schema refined;
      for (size_t i = 0; i < cols.size(); ++i) {
        DataType t = cols[i]->Get(0).type();
        refined.AddColumn(names_[i],
                          t == DataType::kNull ? schema_.column(i).type : t);
      }
      schema_ = refined;
      typed_ = true;
    }
    chunk->table = std::make_shared<Table>(Table::FromColumns(
        std::string(), schema_, std::move(cols), std::move(lids)));
    chunk->begin = 0;
    chunk->end = n;
    chunk->sel.clear();
    return true;
  }

  void Close() override { child_->Close(); }
  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override {
    std::string out = "Project(";
    for (size_t i = 0; i < exprs_.size(); ++i) {
      if (i > 0) out += ", ";
      out += exprs_[i]->ToString() + " AS " + names_[i];
    }
    return out + ")";
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  std::vector<std::string> names_;
  Schema schema_;
  bool typed_ = false;
};

// --------------------------------------------------------------- HashJoin
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, std::string lcol,
             std::string rcol, std::string right_prefix)
      : left_(std::move(left)),
        right_(std::move(right)),
        lcol_(std::move(lcol)),
        rcol_(std::move(rcol)) {
    schema_ = Schema::Concat(left_->output_schema(), right_->output_schema(),
                             right_prefix);
  }

  Status Open() override {
    KATHDB_RETURN_IF_ERROR(left_->Open());
    KATHDB_RETURN_IF_ERROR(right_->Open());
    ridx_ = right_->output_schema().IndexOf(rcol_);
    if (!ridx_.has_value()) {
      return Status::SyntacticError("hash join: right column '" + rcol_ +
                                    "' not found");
    }
    lidx_ = left_->output_schema().IndexOf(lcol_);
    if (!lidx_.has_value()) {
      return Status::SyntacticError("hash join: left column '" + lcol_ +
                                    "' not found");
    }
    // Build side: materialize the right input columnar (chunked bulk
    // appends) and index build rows by the hash of their key cell — the
    // hash table holds row indices, not copies of the rows.
    build_table_ = Table(std::string(), right_->output_schema());
    Chunk chunk;
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, right_->NextChunk(&chunk));
      if (!has) break;
      build_table_.Reserve(build_table_.num_rows() + chunk.size());
      if (chunk.sel.empty()) {
        build_table_.AppendSlice(*chunk.table, chunk.begin, chunk.end);
      } else {
        build_table_.AppendGather(*chunk.table, chunk.sel.data(),
                                  chunk.sel.size());
      }
    }
    right_->Close();
    build_.clear();
    if (build_table_.num_rows() > 0 &&
        *ridx_ < build_table_.num_physical_columns()) {
      build_.reserve(build_table_.num_rows());
      const ColumnVector& key = build_table_.column(*ridx_);
      for (size_t r = 0; r < build_table_.num_rows(); ++r) {
        build_[key.HashAt(r)].push_back(static_cast<uint32_t>(r));
      }
    }
    match_pos_ = 0;
    matches_ = nullptr;
    return Status::OK();
  }

  Result<bool> Next(Row* row, int64_t* lid) override {
    while (true) {
      if (matches_ != nullptr && match_pos_ < matches_->size()) {
        uint32_t r = (*matches_)[match_pos_++];
        // Only emit genuine equals (hash collisions filtered here).
        if (probe_row_[*lidx_] == build_table_.at(r, *ridx_)) {
          *row = probe_row_;
          Row rr = build_table_.row(r);
          row->insert(row->end(), rr.begin(), rr.end());
          *lid = probe_lid_;
          return true;
        }
        continue;
      }
      KATHDB_ASSIGN_OR_RETURN(bool has, left_->Next(&probe_row_, &probe_lid_));
      if (!has) return false;
      auto it = build_.find(probe_row_[*lidx_].Hash());
      matches_ = it == build_.end() ? nullptr : &it->second;
      match_pos_ = 0;
    }
  }

  void Close() override {
    left_->Close();
    build_.clear();
    build_table_ = Table();
  }
  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override {
    return "HashJoin(" + lcol_ + " = " + rcol_ + ")";
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::string lcol_;
  std::string rcol_;
  Schema schema_;
  std::optional<size_t> lidx_;
  std::optional<size_t> ridx_;
  Table build_table_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> build_;
  Row probe_row_;
  int64_t probe_lid_ = 0;
  const std::vector<uint32_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

// --------------------------------------------------------- NestedLoopJoin
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr pred,
                   std::string right_prefix)
      : left_(std::move(left)), right_(std::move(right)),
        pred_(std::move(pred)) {
    schema_ = Schema::Concat(left_->output_schema(), right_->output_schema(),
                             right_prefix);
  }

  Status Open() override {
    KATHDB_RETURN_IF_ERROR(left_->Open());
    KATHDB_RETURN_IF_ERROR(right_->Open());
    Row row;
    int64_t lid = 0;
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, right_->Next(&row, &lid));
      if (!has) break;
      right_rows_.push_back(row);
    }
    right_->Close();
    rpos_ = right_rows_.size();  // force first left fetch
    return Status::OK();
  }

  Result<bool> Next(Row* row, int64_t* lid) override {
    while (true) {
      if (rpos_ >= right_rows_.size()) {
        KATHDB_ASSIGN_OR_RETURN(bool has,
                                left_->Next(&probe_row_, &probe_lid_));
        if (!has) return false;
        rpos_ = 0;
      }
      while (rpos_ < right_rows_.size()) {
        Row joined = probe_row_;
        const Row& r = right_rows_[rpos_++];
        joined.insert(joined.end(), r.begin(), r.end());
        KATHDB_ASSIGN_OR_RETURN(Value v, pred_->Eval(joined, schema_));
        if (!v.is_null() && v.AsBool()) {
          *row = std::move(joined);
          *lid = probe_lid_;
          return true;
        }
      }
    }
  }

  void Close() override {
    left_->Close();
    right_rows_.clear();
  }
  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override {
    return "NestedLoopJoin(" + pred_->ToString() + ")";
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  ExprPtr pred_;
  Schema schema_;
  std::vector<Row> right_rows_;
  Row probe_row_;
  int64_t probe_lid_ = 0;
  size_t rpos_ = 0;
};

// -------------------------------------------------------------- Aggregate

/// Output schema shared by both aggregate kernels: group columns keep
/// their input type, COUNT is INT, SUM/AVG are DOUBLE, MIN/MAX keep the
/// input column's declared type.
Schema AggOutputSchema(const Schema& in,
                       const std::vector<std::string>& group_cols,
                       const std::vector<AggSpec>& aggs) {
  Schema schema;
  for (const auto& g : group_cols) {
    auto idx = in.IndexOf(g);
    schema.AddColumn(g, idx.has_value() ? in.column(*idx).type
                                        : DataType::kString);
  }
  for (const auto& a : aggs) {
    DataType t = DataType::kDouble;
    if (a.fn == AggFn::kCount) t = DataType::kInt;
    if ((a.fn == AggFn::kMin || a.fn == AggFn::kMax) && !a.column.empty()) {
      auto idx = in.IndexOf(a.column);
      if (idx.has_value()) t = in.column(*idx).type;
    }
    schema.AddColumn(a.output_name, t);
  }
  return schema;
}

/// Resolves group/aggregate input columns against the child schema; both
/// kernels fail with identical messages.
Status ResolveAggColumns(const Schema& in,
                         const std::vector<std::string>& group_cols,
                         const std::vector<AggSpec>& aggs,
                         std::vector<size_t>* gidx,
                         std::vector<std::optional<size_t>>* aidx) {
  for (const auto& g : group_cols) {
    auto idx = in.IndexOf(g);
    if (!idx.has_value()) {
      return Status::SyntacticError("group by unknown column '" + g + "'");
    }
    gidx->push_back(*idx);
  }
  for (const auto& a : aggs) {
    if (a.column.empty()) {
      aidx->push_back(std::nullopt);
    } else {
      auto idx = in.IndexOf(a.column);
      if (!idx.has_value()) {
        return Status::SyntacticError("aggregate over unknown column '" +
                                      a.column + "'");
      }
      aidx->push_back(*idx);
    }
  }
  return Status::OK();
}

/// The seed/multiplier of the multiplicative group-key hash fold. Both
/// kernels key groups purely on this 64-bit hash (first-seen order), so
/// they agree bit-for-bit — including on the astronomically unlikely
/// collision that would merge two groups.
constexpr uint64_t kGroupHashSeed = 0x9E3779B97F4A7C15ULL;
constexpr uint64_t kGroupHashMul = 1315423911ULL;
/// Value::Null().Hash(), folded for group keys on missing columns.
constexpr uint64_t kNullValueHash = 0x6b617468ULL;

class RowAggregateOp : public Operator {
 public:
  RowAggregateOp(OperatorPtr child, std::vector<std::string> group_cols,
                 std::vector<AggSpec> aggs)
      : child_(std::move(child)),
        group_cols_(std::move(group_cols)),
        aggs_(std::move(aggs)),
        schema_(AggOutputSchema(child_->output_schema(), group_cols_,
                                aggs_)) {}

  Status Open() override {
    KATHDB_RETURN_IF_ERROR(child_->Open());
    const Schema& in = child_->output_schema();
    std::vector<size_t> gidx;
    std::vector<std::optional<size_t>> aidx;
    KATHDB_RETURN_IF_ERROR(
        ResolveAggColumns(in, group_cols_, aggs_, &gidx, &aidx));

    struct AggState {
      int64_t count = 0;
      double sum = 0.0;
      Value min, max;
      bool seen = false;
    };
    struct GroupState {
      Row key;
      std::vector<AggState> states;
    };
    std::unordered_map<uint64_t, GroupState> groups;
    std::vector<uint64_t> order;

    Row row;
    int64_t lid = 0;
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, child_->Next(&row, &lid));
      if (!has) break;
      uint64_t h = 0x9E3779B97F4A7C15ULL;
      Row key;
      for (size_t gi : gidx) {
        key.push_back(row[gi]);
        h = h * 1315423911ULL + row[gi].Hash();
      }
      auto it = groups.find(h);
      if (it == groups.end()) {
        GroupState gs;
        gs.key = key;
        gs.states.resize(aggs_.size());
        it = groups.emplace(h, std::move(gs)).first;
        order.push_back(h);
      }
      for (size_t i = 0; i < aggs_.size(); ++i) {
        AggState& st = it->second.states[i];
        ++st.count;
        if (aidx[i].has_value()) {
          const Value& v = row[*aidx[i]];
          if (!v.is_null()) {
            st.sum += v.AsDouble();
            if (!st.seen || v.Compare(st.min) < 0) st.min = v;
            if (!st.seen || v.Compare(st.max) > 0) st.max = v;
            st.seen = true;
          }
        }
      }
    }
    child_->Close();

    // Global aggregate over empty input still yields one row.
    if (groups.empty() && group_cols_.empty()) {
      GroupState gs;
      gs.states.resize(aggs_.size());
      groups.emplace(0, std::move(gs));
      order.push_back(0);
    }

    for (uint64_t h : order) {
      GroupState& gs = groups[h];
      Row out = gs.key;
      for (size_t i = 0; i < aggs_.size(); ++i) {
        const AggState& st = gs.states[i];
        switch (aggs_[i].fn) {
          case AggFn::kCount:
            out.push_back(Value::Int(st.count));
            break;
          case AggFn::kSum:
            out.push_back(Value::Double(st.sum));
            break;
          case AggFn::kAvg:
            out.push_back(st.count == 0
                              ? Value::Null()
                              : Value::Double(st.sum /
                                              static_cast<double>(st.count)));
            break;
          case AggFn::kMin:
            out.push_back(st.seen ? st.min : Value::Null());
            break;
          case AggFn::kMax:
            out.push_back(st.seen ? st.max : Value::Null());
            break;
        }
      }
      results_.push_back(std::move(out));
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* row, int64_t* lid) override {
    if (pos_ >= results_.size()) return false;
    *row = results_[pos_++];
    *lid = 0;  // wide dependency: table-level lineage only (Section 3)
    return true;
  }

  void Close() override { results_.clear(); }
  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override {
    return "Aggregate(groups=" + std::to_string(group_cols_.size()) +
           ", aggs=" + std::to_string(aggs_.size()) + ")";
  }

 private:
  OperatorPtr child_;
  std::vector<std::string> group_cols_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

// ---------------------------------------------- Aggregate (columnar kernel)

/// Open-addressing linear-probe map from 64-bit group hash to dense group
/// id: two flat arrays, power-of-two capacity, <= 50% load — the
/// SHIP/Othello-style memory-dense lookup layout, no per-node allocation
/// on the hot path.
class GroupIndex {
 public:
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

  /// Returns the group id for `h`, assigning `next_gid` (and setting
  /// *inserted) when the hash is new.
  uint32_t LookupOrInsert(uint64_t h, uint32_t next_gid, bool* inserted) {
    if ((used_ + 1) * 2 > gids_.size()) Grow();
    size_t mask = gids_.size() - 1;
    size_t i = common::Mix64(h) & mask;
    while (true) {
      if (gids_[i] == kEmptySlot) {
        hashes_[i] = h;
        gids_[i] = next_gid;
        ++used_;
        *inserted = true;
        return next_gid;
      }
      if (hashes_[i] == h) {
        *inserted = false;
        return gids_[i];
      }
      i = (i + 1) & mask;
    }
  }

 private:
  void Grow() {
    size_t cap = gids_.empty() ? 1024 : gids_.size() * 2;
    std::vector<uint64_t> oh = std::move(hashes_);
    std::vector<uint32_t> og = std::move(gids_);
    hashes_.assign(cap, 0);
    gids_.assign(cap, kEmptySlot);
    size_t mask = cap - 1;
    for (size_t s = 0; s < og.size(); ++s) {
      if (og[s] == kEmptySlot) continue;
      size_t i = common::Mix64(oh[s]) & mask;
      while (gids_[i] != kEmptySlot) i = (i + 1) & mask;
      hashes_[i] = oh[s];
      gids_[i] = og[s];
    }
  }

  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> gids_;
  size_t used_ = 0;
};

/// Typed MIN/MAX accumulator: one dense array per group in the storage
/// matching the input column's encoding, demoted to boxed Values only
/// when a column genuinely mixes types. Replacement uses the exact
/// Value::Compare ordering (numerics compare as doubles, strict compare
/// keeps the first value on ties) so results match the row kernel
/// bit-for-bit.
struct MinMaxAcc {
  ColumnEncoding mode = ColumnEncoding::kEmpty;  // active storage
  std::vector<uint8_t> seen;
  std::vector<uint8_t> b8;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string> str;
  std::vector<Value> val;  // generic fallback (mode == kMixed)

  void Resize(size_t n) {
    seen.resize(n, 0);
    switch (mode) {
      case ColumnEncoding::kBool:
        b8.resize(n, 0);
        break;
      case ColumnEncoding::kInt:
        i64.resize(n, 0);
        break;
      case ColumnEncoding::kDouble:
        f64.resize(n, 0.0);
        break;
      case ColumnEncoding::kDict:
        str.resize(n);
        break;
      case ColumnEncoding::kMixed:
        val.resize(n);
        break;
      case ColumnEncoding::kEmpty:
        break;
    }
  }

  void SetMode(ColumnEncoding m) {
    mode = m;
    Resize(seen.size());
  }

  /// Re-boxes the typed extrema as Values; from then on the generic loop
  /// (Value::Compare) takes over. Ties already resolved stay resolved.
  void DemoteToGeneric() {
    std::vector<Value> boxed(seen.size());
    for (size_t g = 0; g < seen.size(); ++g) {
      if (seen[g]) boxed[g] = Extreme(g);
    }
    val = std::move(boxed);
    b8.clear();
    i64.clear();
    f64.clear();
    str.clear();
    mode = ColumnEncoding::kMixed;
  }

  Value Extreme(size_t g) const {
    if (g >= seen.size() || !seen[g]) return Value::Null();
    switch (mode) {
      case ColumnEncoding::kBool:
        return Value::Bool(b8[g] != 0);
      case ColumnEncoding::kInt:
        return Value::Int(i64[g]);
      case ColumnEncoding::kDouble:
        return Value::Double(f64[g]);
      case ColumnEncoding::kDict:
        return Value::Str(str[g]);
      case ColumnEncoding::kMixed:
        return val[g];
      case ColumnEncoding::kEmpty:
        break;
    }
    return Value::Null();
  }
};

/// sums[gid[i]] += AsDouble(col[phys[i]]) for non-NULL cells, in row
/// order — FP accumulation order matches the row kernel exactly, so the
/// resulting doubles are bit-identical. Strings coerce to 0.0 (kDict is a
/// no-op) and kEmpty columns are all NULL.
void AccumulateSum(const ColumnVector& col, const std::vector<uint32_t>& phys,
                   const std::vector<uint32_t>& gid, double* sums) {
  const size_t n = phys.size();
  switch (col.encoding()) {
    case ColumnEncoding::kBool:
      for (size_t i = 0; i < n; ++i) {
        uint32_t p = phys[i];
        if (!col.IsNull(p)) sums[gid[i]] += col.BoolAt(p) ? 1.0 : 0.0;
      }
      break;
    case ColumnEncoding::kInt:
      for (size_t i = 0; i < n; ++i) {
        uint32_t p = phys[i];
        if (!col.IsNull(p)) {
          sums[gid[i]] += static_cast<double>(col.IntAt(p));
        }
      }
      break;
    case ColumnEncoding::kDouble:
      for (size_t i = 0; i < n; ++i) {
        uint32_t p = phys[i];
        if (!col.IsNull(p)) sums[gid[i]] += col.DoubleAt(p);
      }
      break;
    case ColumnEncoding::kMixed:
      for (size_t i = 0; i < n; ++i) {
        uint32_t p = phys[i];
        if (!col.IsNull(p)) sums[gid[i]] += col.MixedAt(p).AsDouble();
      }
      break;
    case ColumnEncoding::kDict:
    case ColumnEncoding::kEmpty:
      break;
  }
}

template <bool kIsMin>
void AccumulateMinMax(const ColumnVector& col,
                      const std::vector<uint32_t>& phys,
                      const std::vector<uint32_t>& gid, MinMaxAcc* acc) {
  ColumnEncoding enc = col.encoding();
  if (enc == ColumnEncoding::kEmpty) return;  // all NULL: nothing to fold
  if (acc->mode == ColumnEncoding::kEmpty) {
    acc->SetMode(enc);
  } else if (acc->mode != enc && acc->mode != ColumnEncoding::kMixed) {
    acc->DemoteToGeneric();
  }
  const size_t n = phys.size();
  uint8_t* seen = acc->seen.data();
  switch (acc->mode) {
    case ColumnEncoding::kBool: {
      uint8_t* cur = acc->b8.data();
      for (size_t i = 0; i < n; ++i) {
        uint32_t p = phys[i];
        if (col.IsNull(p)) continue;
        uint8_t x = col.BoolAt(p) ? 1 : 0;
        uint32_t g = gid[i];
        if (!seen[g] || (kIsMin ? x < cur[g] : x > cur[g])) cur[g] = x;
        seen[g] = 1;
      }
      break;
    }
    case ColumnEncoding::kInt: {
      // Replacement is a strict *double* comparison — exactly
      // Value::Compare — so large-int64 precision ties keep the first
      // value, as the row kernel does.
      int64_t* cur = acc->i64.data();
      for (size_t i = 0; i < n; ++i) {
        uint32_t p = phys[i];
        if (col.IsNull(p)) continue;
        int64_t x = col.IntAt(p);
        uint32_t g = gid[i];
        double xd = static_cast<double>(x);
        double cd = static_cast<double>(cur[g]);
        if (!seen[g] || (kIsMin ? xd < cd : xd > cd)) cur[g] = x;
        seen[g] = 1;
      }
      break;
    }
    case ColumnEncoding::kDouble: {
      double* cur = acc->f64.data();
      for (size_t i = 0; i < n; ++i) {
        uint32_t p = phys[i];
        if (col.IsNull(p)) continue;
        double x = col.DoubleAt(p);
        uint32_t g = gid[i];
        if (!seen[g] || (kIsMin ? x < cur[g] : x > cur[g])) cur[g] = x;
        seen[g] = 1;
      }
      break;
    }
    case ColumnEncoding::kDict: {
      std::string* cur = acc->str.data();
      for (size_t i = 0; i < n; ++i) {
        uint32_t p = phys[i];
        if (col.IsNull(p)) continue;
        const std::string& x = col.StrAt(p);
        uint32_t g = gid[i];
        if (!seen[g] || (kIsMin ? x < cur[g] : x > cur[g])) cur[g] = x;
        seen[g] = 1;
      }
      break;
    }
    case ColumnEncoding::kMixed: {
      // Generic: the accumulator or the column mixes value types.
      Value* cur = acc->val.data();
      for (size_t i = 0; i < n; ++i) {
        uint32_t p = phys[i];
        if (col.IsNull(p)) continue;
        Value x = col.Get(p);
        uint32_t g = gid[i];
        if (!seen[g] ||
            (kIsMin ? x.Compare(cur[g]) < 0 : x.Compare(cur[g]) > 0)) {
          cur[g] = std::move(x);
        }
        seen[g] = 1;
      }
      break;
    }
    case ColumnEncoding::kEmpty:
      break;
  }
}

class ColumnarAggregateOp : public Operator {
 public:
  ColumnarAggregateOp(OperatorPtr child, std::vector<std::string> group_cols,
                      std::vector<AggSpec> aggs)
      : child_(std::move(child)),
        group_cols_(std::move(group_cols)),
        aggs_(std::move(aggs)),
        schema_(AggOutputSchema(child_->output_schema(), group_cols_,
                                aggs_)) {}

  Status Open() override {
    KATHDB_RETURN_IF_ERROR(child_->Open());
    const Schema& in = child_->output_schema();
    std::vector<size_t> gidx;
    std::vector<std::optional<size_t>> aidx;
    KATHDB_RETURN_IF_ERROR(
        ResolveAggColumns(in, group_cols_, aggs_, &gidx, &aidx));

    const size_t nag = aggs_.size();
    GroupIndex index;
    uint32_t ngroups = 0;
    std::vector<int64_t> counts;  // rows per group (every agg counts all)
    std::vector<std::vector<double>> sums(nag);
    std::vector<MinMaxAcc> extrema(nag);
    std::vector<ColumnPtr> key_cols;
    key_cols.reserve(gidx.size());
    for (size_t k = 0; k < gidx.size(); ++k) {
      key_cols.push_back(std::make_shared<ColumnVector>());
    }

    Chunk chunk;
    std::vector<uint64_t> hashes;
    std::vector<uint32_t> phys;
    std::vector<uint32_t> gid;
    std::vector<uint32_t> new_rows;
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, child_->NextChunk(&chunk));
      if (!has) break;
      const Table& t = *chunk.table;
      const size_t off = t.offset();
      const size_t n = chunk.size();
      // Physical row index per chunk position, shared by every pass.
      phys.resize(n);
      if (chunk.sel.empty()) {
        for (size_t i = 0; i < n; ++i) {
          phys[i] = static_cast<uint32_t>(off + chunk.begin + i);
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          phys[i] = static_cast<uint32_t>(off + chunk.sel[i]);
        }
      }
      // Multi-column group hash: one typed fold pass per key column.
      hashes.assign(n, kGroupHashSeed);
      for (size_t k = 0; k < gidx.size(); ++k) {
        if (gidx[k] < t.num_physical_columns()) {
          t.column(gidx[k]).FoldHashGather(phys.data(), n, kGroupHashMul,
                                           hashes.data());
        } else {
          for (size_t i = 0; i < n; ++i) {
            hashes[i] = hashes[i] * kGroupHashMul + kNullValueHash;
          }
        }
      }
      // Group-id pass; rows that created a group gather their key cells
      // in bulk below (first-seen order, like the row kernel).
      gid.resize(n);
      new_rows.clear();
      for (size_t i = 0; i < n; ++i) {
        bool inserted = false;
        gid[i] = index.LookupOrInsert(hashes[i], ngroups, &inserted);
        if (inserted) {
          ++ngroups;
          new_rows.push_back(phys[i]);
        }
      }
      if (!new_rows.empty()) {
        for (size_t k = 0; k < key_cols.size(); ++k) {
          if (gidx[k] < t.num_physical_columns()) {
            key_cols[k]->Reserve(ngroups);
            key_cols[k]->AppendGather(t.column(gidx[k]), new_rows.data(),
                                      new_rows.size());
          } else {
            for (size_t i = 0; i < new_rows.size(); ++i) {
              key_cols[k]->AppendNull();
            }
          }
        }
        counts.resize(ngroups, 0);
        for (size_t a = 0; a < nag; ++a) {
          if (aggs_[a].fn == AggFn::kSum || aggs_[a].fn == AggFn::kAvg) {
            sums[a].resize(ngroups, 0.0);
          } else if (aggs_[a].fn == AggFn::kMin ||
                     aggs_[a].fn == AggFn::kMax) {
            extrema[a].Resize(ngroups);
          }
        }
      }
      // Accumulate: counts first (every agg counts all group rows), then
      // one tight typed loop per aggregate over the chunk.
      for (size_t i = 0; i < n; ++i) ++counts[gid[i]];
      for (size_t a = 0; a < nag; ++a) {
        if (!aidx[a].has_value() || *aidx[a] >= t.num_physical_columns()) {
          continue;  // COUNT(*) or a missing (all-NULL) column
        }
        const ColumnVector& col = t.column(*aidx[a]);
        switch (aggs_[a].fn) {
          case AggFn::kSum:
          case AggFn::kAvg:
            AccumulateSum(col, phys, gid, sums[a].data());
            break;
          case AggFn::kMin:
            AccumulateMinMax<true>(col, phys, gid, &extrema[a]);
            break;
          case AggFn::kMax:
            AccumulateMinMax<false>(col, phys, gid, &extrema[a]);
            break;
          case AggFn::kCount:
            break;
        }
      }
    }
    child_->Close();

    // Global aggregate over empty input still yields one row.
    if (ngroups == 0 && group_cols_.empty()) {
      ngroups = 1;
      counts.assign(1, 0);
      for (size_t a = 0; a < nag; ++a) {
        if (aggs_[a].fn == AggFn::kSum || aggs_[a].fn == AggFn::kAvg) {
          sums[a].assign(1, 0.0);
        } else if (aggs_[a].fn == AggFn::kMin || aggs_[a].fn == AggFn::kMax) {
          extrema[a].Resize(1);
        }
      }
    }

    result_ = std::make_shared<Table>(
        BuildOutput(ngroups, std::move(key_cols), counts, sums, extrema));
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* row, int64_t* lid) override {
    if (result_ == nullptr || pos_ >= result_->num_rows()) return false;
    *row = result_->row(pos_);
    *lid = 0;  // wide dependency: table-level lineage only (Section 3)
    ++pos_;
    return true;
  }

  Result<bool> NextChunk(Chunk* chunk) override {
    if (result_ == nullptr || pos_ >= result_->num_rows()) return false;
    chunk->table = result_;
    chunk->begin = pos_;
    chunk->end = std::min(pos_ + kChunkRows, result_->num_rows());
    chunk->sel.clear();
    pos_ = chunk->end;
    return true;
  }

  void Close() override { result_.reset(); }
  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override {
    return "Aggregate(groups=" + std::to_string(group_cols_.size()) +
           ", aggs=" + std::to_string(aggs_.size()) + ")";
  }

 private:
  /// Assembles the result table straight from the accumulator arrays —
  /// no per-group Value boxing except string/mixed extrema.
  Table BuildOutput(uint32_t ngroups, std::vector<ColumnPtr> key_cols,
                    const std::vector<int64_t>& counts,
                    const std::vector<std::vector<double>>& sums,
                    const std::vector<MinMaxAcc>& extrema) const {
    if (schema_.num_columns() == 0) {
      // Degenerate aggregate with no outputs: keep the row count.
      Table out((std::string()), schema_);
      for (uint32_t g = 0; g < ngroups; ++g) out.AppendRow({});
      return out;
    }
    auto all_valid = [](size_t n) {
      return std::vector<uint64_t>((n + 63) / 64, ~uint64_t{0});
    };
    std::vector<ColumnPtr> cols = std::move(key_cols);
    for (size_t a = 0; a < aggs_.size(); ++a) {
      switch (aggs_[a].fn) {
        case AggFn::kCount:
          cols.push_back(
              ColumnVector::FromInts(counts, all_valid(ngroups)));
          break;
        case AggFn::kSum:
          cols.push_back(
              ColumnVector::FromDoubles(sums[a], all_valid(ngroups)));
          break;
        case AggFn::kAvg: {
          std::vector<double> v(ngroups, 0.0);
          std::vector<uint64_t> bits((ngroups + 63) / 64, 0);
          for (uint32_t g = 0; g < ngroups; ++g) {
            if (counts[g] != 0) {
              v[g] = sums[a][g] / static_cast<double>(counts[g]);
              bits[g >> 6] |= uint64_t{1} << (g & 63);
            }
          }
          cols.push_back(
              ColumnVector::FromDoubles(std::move(v), std::move(bits)));
          break;
        }
        case AggFn::kMin:
        case AggFn::kMax:
          cols.push_back(ExtremeColumn(extrema[a], ngroups));
          break;
      }
    }
    return Table::FromColumns(std::string(), schema_, std::move(cols), {});
  }

  static ColumnPtr ExtremeColumn(const MinMaxAcc& acc, uint32_t ngroups) {
    std::vector<uint64_t> bits((ngroups + 63) / 64, 0);
    for (uint32_t g = 0; g < ngroups; ++g) {
      if (g < acc.seen.size() && acc.seen[g]) {
        bits[g >> 6] |= uint64_t{1} << (g & 63);
      }
    }
    switch (acc.mode) {
      case ColumnEncoding::kBool:
        return ColumnVector::FromBools(acc.b8, std::move(bits));
      case ColumnEncoding::kInt:
        return ColumnVector::FromInts(acc.i64, std::move(bits));
      case ColumnEncoding::kDouble:
        return ColumnVector::FromDoubles(acc.f64, std::move(bits));
      case ColumnEncoding::kDict:
      case ColumnEncoding::kMixed: {
        // Boxed assembly: one cell per group, same appends as the row
        // kernel so the output encoding matches it too.
        auto col = std::make_shared<ColumnVector>();
        col->Reserve(ngroups);
        for (uint32_t g = 0; g < ngroups; ++g) {
          if (!acc.seen[g]) {
            col->AppendNull();
          } else if (acc.mode == ColumnEncoding::kDict) {
            col->Append(Value::Str(acc.str[g]));
          } else {
            col->Append(acc.val[g]);
          }
        }
        return col;
      }
      case ColumnEncoding::kEmpty:
        break;
    }
    return ColumnVector::AllNulls(ngroups);
  }

  OperatorPtr child_;
  std::vector<std::string> group_cols_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  TablePtr result_;
  size_t pos_ = 0;
};

// ------------------------------------------------------------------- Sort
class RowSortOp : public Operator {
 public:
  RowSortOp(OperatorPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  Status Open() override {
    KATHDB_RETURN_IF_ERROR(child_->Open());
    const Schema& in = child_->output_schema();
    std::vector<std::pair<size_t, bool>> kidx;
    for (const auto& k : keys_) {
      auto idx = in.IndexOf(k.column);
      if (!idx.has_value()) {
        return Status::SyntacticError("sort by unknown column '" + k.column +
                                      "'");
      }
      kidx.emplace_back(*idx, k.descending);
    }
    Row row;
    int64_t lid = 0;
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, child_->Next(&row, &lid));
      if (!has) break;
      rows_.emplace_back(std::move(row), lid);
    }
    child_->Close();
    std::stable_sort(rows_.begin(), rows_.end(),
                     [&](const auto& a, const auto& b) {
                       for (const auto& [idx, desc] : kidx) {
                         int c = a.first[idx].Compare(b.first[idx]);
                         if (c != 0) return desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* row, int64_t* lid) override {
    if (pos_ >= rows_.size()) return false;
    *row = rows_[pos_].first;
    *lid = rows_[pos_].second;
    ++pos_;
    return true;
  }

  void Close() override { rows_.clear(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string Describe() const override {
    std::string out = "Sort(";
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i > 0) out += ", ";
      out += keys_[i].column + (keys_[i].descending ? " DESC" : " ASC");
    }
    return out + ")";
  }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<std::pair<Row, int64_t>> rows_;
  size_t pos_ = 0;
};

// --------------------------------------------------- Sort (columnar kernel)

/// One resolved sort key over the gathered input: typed comparator state.
/// Dictionary columns compare by precomputed code rank — one string sort
/// over the dictionary instead of a string compare per row pair.
struct SortKeyCol {
  const ColumnVector* col = nullptr;
  size_t off = 0;
  bool desc = false;
  ColumnEncoding enc = ColumnEncoding::kEmpty;
  std::vector<uint32_t> rank;  // kDict: dictionary code -> sorted rank
};

/// Three-way compare of rows a/b under one key, replicating
/// Value::Compare exactly: NULL first, numerics as doubles (NaN compares
/// equal to everything numeric), strings lexicographic.
int CompareKeyAt(const SortKeyCol& k, uint32_t a, uint32_t b) {
  const ColumnVector& col = *k.col;
  size_t pa = k.off + a;
  size_t pb = k.off + b;
  bool na = col.IsNull(pa);
  bool nb = col.IsNull(pb);
  if (na || nb) return na == nb ? 0 : (na ? -1 : 1);
  switch (k.enc) {
    case ColumnEncoding::kBool: {
      int x = col.BoolAt(pa) ? 1 : 0;
      int y = col.BoolAt(pb) ? 1 : 0;
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ColumnEncoding::kInt: {
      // Value::Compare ranks numerics as doubles; match it exactly so
      // large-int64 precision ties stay ties (stable order preserved).
      double x = static_cast<double>(col.IntAt(pa));
      double y = static_cast<double>(col.IntAt(pb));
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ColumnEncoding::kDouble: {
      double x = col.DoubleAt(pa);
      double y = col.DoubleAt(pb);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ColumnEncoding::kDict: {
      uint32_t x = k.rank[col.CodeAt(pa)];
      uint32_t y = k.rank[col.CodeAt(pb)];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ColumnEncoding::kMixed:
      return col.MixedAt(pa).Compare(col.MixedAt(pb));
    case ColumnEncoding::kEmpty:
      return 0;
  }
  return 0;
}

/// Monotone map from doubles (no NaN) onto u64: a < b iff image(a) <
/// image(b), equal doubles share an image. -0.0 collapses onto +0.0 so
/// the pair stays a tie, exactly as `x < y ? -1 : (x > y ? 1 : 0)` ranks
/// it. Never returns 0, so the caller can reserve 0 for NULL.
uint64_t OrderedDoubleBits(double x) {
  if (x == 0.0) x = 0.0;
  uint64_t b;
  std::memcpy(&b, &x, sizeof b);
  return (b >> 63) ? ~b : (b | (1ull << 63));
}

/// Whether `k` can be rendered as an order-preserving u64 per row.
/// kMixed has no cheap total-order image, and a double column holding
/// NaN cannot be packed at all: CompareKeyAt ties NaN with every
/// numeric, which no total order reproduces.
bool KeyIsPackable(const SortKeyCol& k, size_t n) {
  if (k.enc == ColumnEncoding::kMixed) return false;
  if (k.enc == ColumnEncoding::kDouble) {
    for (size_t r = 0; r < n; ++r) {
      size_t p = k.off + r;
      if (!k.col->IsNull(p)) {
        double x = k.col->DoubleAt(p);
        if (x != x) return false;
      }
    }
  }
  return true;
}

/// u64 image of row `p` under key `k`, ordered exactly as CompareKeyAt
/// orders cells: NULL is 0 (first), everything else lands above it.
/// DESC keys are handled by the caller inverting the image bits.
uint64_t PackSortKey(const SortKeyCol& k, size_t p) {
  if (k.col->IsNull(p)) return 0;
  switch (k.enc) {
    case ColumnEncoding::kBool:
      return k.col->BoolAt(p) ? 2 : 1;
    case ColumnEncoding::kInt:
      // Same double rounding as CompareKeyAt: large int64s that collide
      // as doubles stay ties.
      return OrderedDoubleBits(static_cast<double>(k.col->IntAt(p)));
    case ColumnEncoding::kDouble:
      return OrderedDoubleBits(k.col->DoubleAt(p));
    case ColumnEncoding::kDict:
      return 1ull + k.rank[k.col->CodeAt(p)];
    default:
      return 1;  // kEmpty: every non-NULL comparison ties
  }
}

class ColumnarSortOp : public Operator {
 public:
  ColumnarSortOp(OperatorPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  Status Open() override {
    KATHDB_RETURN_IF_ERROR(child_->Open());
    const Schema& in = child_->output_schema();
    std::vector<std::pair<size_t, bool>> kidx;
    for (const auto& k : keys_) {
      auto idx = in.IndexOf(k.column);
      if (!idx.has_value()) {
        return Status::SyntacticError("sort by unknown column '" + k.column +
                                      "'");
      }
      kidx.emplace_back(*idx, k.descending);
    }
    // Gather the input once (chunked bulk appends), then sort an index
    // permutation: rows are never boxed and never move until a consumer
    // gathers the permutation out.
    input_ = std::make_shared<Table>(std::string(), in);
    Chunk chunk;
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, child_->NextChunk(&chunk));
      if (!has) break;
      input_->Reserve(input_->num_rows() + chunk.size());
      if (chunk.sel.empty()) {
        input_->AppendSlice(*chunk.table, chunk.begin, chunk.end);
      } else {
        input_->AppendGather(*chunk.table, chunk.sel.data(),
                             chunk.sel.size());
      }
    }
    child_->Close();
    const size_t n = input_->num_rows();
    perm_.resize(n);
    std::iota(perm_.begin(), perm_.end(), 0u);
    std::vector<SortKeyCol> cmp;
    for (const auto& [idx, desc] : kidx) {
      // Missing physical columns read as all-NULL: every comparison under
      // that key ties, so it contributes nothing — skip it.
      if (idx >= input_->num_physical_columns()) continue;
      SortKeyCol k;
      k.col = &input_->column(idx);
      k.off = input_->offset();
      k.desc = desc;
      k.enc = k.col->encoding();
      if (k.enc == ColumnEncoding::kDict) {
        // Rank the dictionary once: distinct codes are distinct strings,
        // so rank order == lexicographic order, compared as uint32.
        size_t dn = k.col->dict_size();
        std::vector<uint32_t> order(dn);
        std::iota(order.begin(), order.end(), 0u);
        const ColumnVector* c = k.col;
        std::sort(order.begin(), order.end(), [c](uint32_t x, uint32_t y) {
          return c->DictEntry(x) < c->DictEntry(y);
        });
        k.rank.resize(dn);
        for (size_t r = 0; r < dn; ++r) {
          k.rank[order[r]] = static_cast<uint32_t>(r);
        }
      }
      cmp.push_back(std::move(k));
    }
    if (!cmp.empty() && n > 1 && !TrySortPacked(cmp, n)) {
      std::stable_sort(perm_.begin(), perm_.end(),
                       [&cmp](uint32_t a, uint32_t b) {
                         for (const auto& k : cmp) {
                           int c = CompareKeyAt(k, a, b);
                           if (c != 0) return k.desc ? c > 0 : c < 0;
                         }
                         return false;
                       });
    }
    pos_ = 0;
    return Status::OK();
  }

  /// Fast path for totally-ordered keys: render each key as an
  /// order-preserving u64 per row, then stable_sort contiguous
  /// {keys..., index} records. The merge passes stream sequentially
  /// through one packed array instead of chasing the permutation into
  /// per-column storage and re-deciding NULL/encoding on every
  /// comparison, which is where the generic comparator spends its time.
  /// Returns false (perm_ untouched) when any key resists packing.
  bool TrySortPacked(const std::vector<SortKeyCol>& cmp, size_t n) {
    for (const auto& k : cmp) {
      if (!KeyIsPackable(k, n)) return false;
    }
    auto key_at = [](const SortKeyCol& k, size_t r) {
      uint64_t v = PackSortKey(k, k.off + r);
      // Bit inversion flips the whole order, NULL placement included —
      // the same effect as CompareKeyAt's per-key DESC sign flip.
      return k.desc ? ~v : v;
    };
    if (cmp.size() == 1) {
      struct E {
        uint64_t k0;
        uint32_t idx;
      };
      std::vector<E> e(n);
      for (size_t r = 0; r < n; ++r) {
        e[r] = {key_at(cmp[0], r), static_cast<uint32_t>(r)};
      }
      std::stable_sort(e.begin(), e.end(),
                       [](const E& a, const E& b) { return a.k0 < b.k0; });
      for (size_t r = 0; r < n; ++r) perm_[r] = e[r].idx;
      return true;
    }
    if (cmp.size() == 2) {
      struct E {
        uint64_t k0;
        uint64_t k1;
        uint32_t idx;
      };
      std::vector<E> e(n);
      for (size_t r = 0; r < n; ++r) {
        e[r] = {key_at(cmp[0], r), key_at(cmp[1], r),
                static_cast<uint32_t>(r)};
      }
      std::stable_sort(e.begin(), e.end(), [](const E& a, const E& b) {
        if (a.k0 != b.k0) return a.k0 < b.k0;
        return a.k1 < b.k1;
      });
      for (size_t r = 0; r < n; ++r) perm_[r] = e[r].idx;
      return true;
    }
    // Three or more keys: row-major key matrix, permutation sort. Less
    // cache-friendly than the struct forms but still branch-cheap.
    const size_t nk = cmp.size();
    std::vector<uint64_t> keys(n * nk);
    for (size_t r = 0; r < n; ++r) {
      for (size_t j = 0; j < nk; ++j) keys[r * nk + j] = key_at(cmp[j], r);
    }
    std::stable_sort(perm_.begin(), perm_.end(),
                     [&keys, nk](uint32_t a, uint32_t b) {
                       const uint64_t* ka = &keys[a * nk];
                       const uint64_t* kb = &keys[b * nk];
                       for (size_t j = 0; j < nk; ++j) {
                         if (ka[j] != kb[j]) return ka[j] < kb[j];
                       }
                       return false;
                     });
    return true;
  }

  Result<bool> Next(Row* row, int64_t* lid) override {
    if (pos_ >= perm_.size()) return false;
    *row = input_->row(perm_[pos_]);
    *lid = input_->row_lid(perm_[pos_]);
    ++pos_;
    return true;
  }

  Result<bool> NextChunk(Chunk* chunk) override {
    // Zero extra materialization: chunks are selection-vector windows of
    // the permutation over the gathered input; AppendGather carries the
    // cells and lids out in sorted order.
    if (pos_ >= perm_.size()) return false;
    size_t end = std::min(pos_ + kChunkRows, perm_.size());
    chunk->table = input_;
    chunk->begin = 0;
    chunk->end = input_->num_rows();
    chunk->sel.assign(perm_.begin() + pos_, perm_.begin() + end);
    pos_ = end;
    return true;
  }

  void Close() override {
    input_.reset();
    perm_.clear();
  }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string Describe() const override {
    std::string out = "Sort(";
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i > 0) out += ", ";
      out += keys_[i].column + (keys_[i].descending ? " DESC" : " ASC");
    }
    return out + ")";
  }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  TablePtr input_;
  std::vector<uint32_t> perm_;
  size_t pos_ = 0;
};

// ------------------------------------------------------------------ Limit
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }
  Result<bool> Next(Row* row, int64_t* lid) override {
    if (emitted_ >= limit_) return false;
    KATHDB_ASSIGN_OR_RETURN(bool has, child_->Next(row, lid));
    if (!has) return false;
    ++emitted_;
    return true;
  }
  void Close() override { child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string Describe() const override {
    return "Limit(" + std::to_string(limit_) + ")";
  }

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t emitted_ = 0;
};

// --------------------------------------------------------------- Distinct
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child) : child_(std::move(child)) {}

  Status Open() override {
    seen_.clear();
    return child_->Open();
  }
  Result<bool> Next(Row* row, int64_t* lid) override {
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(bool has, child_->Next(row, lid));
      if (!has) return false;
      std::string key;
      for (const auto& v : *row) {
        key += v.ToString();
        key += '\x01';
      }
      if (seen_.insert(key).second) return true;
    }
  }
  void Close() override { child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string Describe() const override { return "Distinct"; }

 private:
  OperatorPtr child_;
  std::unordered_set<std::string> seen_;
};

// --------------------------------------------------------------- UnionAll
class UnionAllOp : public Operator {
 public:
  UnionAllOp(OperatorPtr left, OperatorPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Status Open() override {
    if (!(left_->output_schema() == right_->output_schema())) {
      return Status::SyntacticError("UNION ALL schema mismatch: " +
                                    left_->output_schema().ToString() +
                                    " vs " +
                                    right_->output_schema().ToString());
    }
    KATHDB_RETURN_IF_ERROR(left_->Open());
    KATHDB_RETURN_IF_ERROR(right_->Open());
    on_left_ = true;
    return Status::OK();
  }
  Result<bool> Next(Row* row, int64_t* lid) override {
    if (on_left_) {
      KATHDB_ASSIGN_OR_RETURN(bool has, left_->Next(row, lid));
      if (has) return true;
      on_left_ = false;
    }
    return right_->Next(row, lid);
  }
  void Close() override {
    left_->Close();
    right_->Close();
  }
  const Schema& output_schema() const override {
    return left_->output_schema();
  }
  std::string Describe() const override { return "UnionAll"; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  bool on_left_ = true;
};

}  // namespace

OperatorPtr MakeSeqScan(TablePtr table) {
  return std::make_unique<SeqScanOp>(std::move(table));
}
OperatorPtr MakeFilter(OperatorPtr child, ExprPtr predicate) {
  return std::make_unique<FilterOp>(std::move(child), std::move(predicate));
}
OperatorPtr MakeProject(OperatorPtr child, std::vector<ExprPtr> exprs,
                        std::vector<std::string> names) {
  return std::make_unique<ProjectOp>(std::move(child), std::move(exprs),
                                     std::move(names));
}
OperatorPtr MakeHashJoin(OperatorPtr left, OperatorPtr right,
                         std::string left_col, std::string right_col,
                         std::string right_prefix) {
  return std::make_unique<HashJoinOp>(std::move(left), std::move(right),
                                      std::move(left_col),
                                      std::move(right_col),
                                      std::move(right_prefix));
}
OperatorPtr MakeNestedLoopJoin(OperatorPtr left, OperatorPtr right,
                               ExprPtr predicate, std::string right_prefix) {
  return std::make_unique<NestedLoopJoinOp>(std::move(left), std::move(right),
                                            std::move(predicate),
                                            std::move(right_prefix));
}
OperatorPtr MakeAggregate(OperatorPtr child,
                          std::vector<std::string> group_cols,
                          std::vector<AggSpec> aggs, ExecImpl impl) {
  if (impl == ExecImpl::kRow) {
    return std::make_unique<RowAggregateOp>(std::move(child),
                                            std::move(group_cols),
                                            std::move(aggs));
  }
  return std::make_unique<ColumnarAggregateOp>(std::move(child),
                                               std::move(group_cols),
                                               std::move(aggs));
}
OperatorPtr MakeSort(OperatorPtr child, std::vector<SortKey> keys,
                     ExecImpl impl) {
  if (impl == ExecImpl::kRow) {
    return std::make_unique<RowSortOp>(std::move(child), std::move(keys));
  }
  return std::make_unique<ColumnarSortOp>(std::move(child), std::move(keys));
}
OperatorPtr MakeLimit(OperatorPtr child, size_t limit) {
  return std::make_unique<LimitOp>(std::move(child), limit);
}
OperatorPtr MakeDistinct(OperatorPtr child) {
  return std::make_unique<DistinctOp>(std::move(child));
}
OperatorPtr MakeUnionAll(OperatorPtr left, OperatorPtr right) {
  return std::make_unique<UnionAllOp>(std::move(left), std::move(right));
}

}  // namespace kathdb::rel
