#include "relational/schema.h"

#include "common/strings.h"

namespace kathdb::rel {

void Schema::IndexColumn(size_t i) {
  by_name_.emplace(cols_[i].name, i);            // keeps first occurrence
  by_lower_name_.emplace(ToLower(cols_[i].name), i);
}

void Schema::RebuildIndex() {
  by_name_.clear();
  by_lower_name_.clear();
  by_name_.reserve(cols_.size());
  by_lower_name_.reserve(cols_.size());
  for (size_t i = 0; i < cols_.size(); ++i) IndexColumn(i);
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  // Exact match first, then case-insensitive — same precedence as the
  // original linear scans.
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  auto lit = by_lower_name_.find(ToLower(name));
  if (lit != by_lower_name_.end()) return lit->second;
  return std::nullopt;
}

Schema Schema::Concat(const Schema& left, const Schema& right,
                      const std::string& right_prefix) {
  Schema out = left;
  for (const auto& c : right.columns()) {
    std::string name = c.name;
    if (out.HasColumn(name) && !right_prefix.empty()) {
      name = right_prefix + "." + name;
    }
    // Still clashing (or no prefix): add numeric suffix for uniqueness.
    int suffix = 2;
    std::string candidate = name;
    while (out.HasColumn(candidate)) {
      candidate = name + "_" + std::to_string(suffix++);
    }
    out.AddColumn(candidate, c.type);
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (i > 0) out += ", ";
    out += cols_[i].name;
    out += ":";
    out += DataTypeName(cols_[i].type);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (cols_.size() != other.cols_.size()) return false;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name != other.cols_[i].name ||
        cols_[i].type != other.cols_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace kathdb::rel
