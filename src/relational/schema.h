/// \file schema.h
/// \brief Column and Schema descriptors for relational tables and views.
///
/// \ingroup kathdb_relational

#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace kathdb::rel {

/// A named, typed column.
struct Column {
  std::string name;
  DataType type = DataType::kString;
};

/// \brief Ordered list of columns; resolves names to positions.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {
    RebuildIndex();
  }

  size_t num_columns() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }
  const std::vector<Column>& columns() const { return cols_; }

  void AddColumn(std::string name, DataType type) {
    cols_.push_back({std::move(name), type});
    IndexColumn(cols_.size() - 1);
  }

  /// Case-insensitive lookup; nullopt when absent. O(1): backed by a
  /// name→index map (exact spelling first, then lower-cased), so per-row
  /// hot loops no longer pay a linear scan per cell.
  std::optional<size_t> IndexOf(const std::string& name) const;
  bool HasColumn(const std::string& name) const {
    return IndexOf(name).has_value();
  }

  /// Concatenation used by joins; clashing names on the right side get the
  /// prefix "<right_prefix>." when non-empty.
  static Schema Concat(const Schema& left, const Schema& right,
                       const std::string& right_prefix = "");

  /// "name:TYPE, name:TYPE, ..." — for logs, catalog listings and prompts.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  void RebuildIndex();
  void IndexColumn(size_t i);

  std::vector<Column> cols_;
  // First occurrence wins in both maps, matching the old linear scan.
  std::unordered_map<std::string, size_t> by_name_;
  std::unordered_map<std::string, size_t> by_lower_name_;
};

}  // namespace kathdb::rel
