/// \file io.h
/// \brief CSV import/export for tables and whole catalogs.
///
/// KathDB persists materialized intermediates and lets users load their
/// own relational data. The format is RFC-4180-style CSV with a typed
/// header line ("title:STRING,year:INT,...") so round-trips preserve
/// column types; NULL cells are written as empty fields.
///
/// \ingroup kathdb_relational

#pragma once

#include <string>

#include "common/status.h"
#include "relational/catalog.h"
#include "relational/table.h"

namespace kathdb::rel {

/// Writes `table` to `path` (typed header + one line per row).
Status SaveTableCsv(const Table& table, const std::string& path);

/// Reads a table written by SaveTableCsv. The table name is taken from
/// the file stem unless `name` is non-empty.
Result<Table> LoadTableCsv(const std::string& path,
                           const std::string& name = "");

/// Serializes a table to a CSV string (used by tests and the blackbox
/// baseline's prompt construction).
std::string TableToCsv(const Table& table);

/// Parses a CSV string produced by TableToCsv.
Result<Table> TableFromCsv(const std::string& csv, const std::string& name);

/// Saves every catalog relation as `<dir>/<name>.csv`.
Status SaveCatalogCsv(const Catalog& catalog, const std::string& dir);

/// Loads every `*.csv` in `dir` into `catalog` (upserting by file stem).
Status LoadCatalogCsv(Catalog* catalog, const std::string& dir);

}  // namespace kathdb::rel
