/// \file column.h
/// \brief Typed columnar storage: one ColumnVector per table column.
///
/// A ColumnVector stores the cells of one column in a compact typed array
/// instead of one std::variant per cell: BOOL as bytes, INT64/DOUBLE as
/// contiguous machine words, STRING dictionary-encoded (a uint32 code per
/// row into a per-column dictionary), plus a validity bitmap for NULLs.
/// Columns whose cells mix value types (rare: hand-built tables, lineage
/// views) degrade to a kMixed encoding holding plain Values, so every
/// table the row engine could represent is still representable.
///
/// The encoding is chosen from the first non-NULL value appended — not
/// from the declared schema type — so a round trip through a column is
/// byte-exact: Append(v) followed by Get(i) returns a Value of the same
/// type and contents as v, which is what the differential tests against
/// the row engine rely on.
///
/// \ingroup kathdb_relational

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/value.h"

namespace kathdb::rel {

/// Physical layout of one column.
enum class ColumnEncoding { kEmpty, kBool, kInt, kDouble, kDict, kMixed };

/// Human-readable encoding name ("INT", "DICT", ...) for debug output.
const char* ColumnEncodingName(ColumnEncoding e);

/// \brief One table column: typed contiguous cells + validity bitmap.
class ColumnVector {
 public:
  ColumnVector() = default;

  size_t size() const { return size_; }
  ColumnEncoding encoding() const { return enc_; }
  /// Distinct strings in the dictionary (kDict only).
  size_t dict_size() const { return dict_.size(); }

  void Reserve(size_t n);

  /// Appends one cell; mismatched value types demote the column to kMixed.
  void Append(const Value& v);
  void AppendNull();

  /// Bulk-appends src cells [begin, begin+len) — the zero-per-row path
  /// behind chunked Materialize. Falls back to per-cell Append when the
  /// encodings are incompatible.
  void AppendRange(const ColumnVector& src, size_t begin, size_t len);

  /// Bulk-appends the src cells named by sel[0..n) (selection-vector
  /// gather, used by Filter output assembly).
  void AppendGather(const ColumnVector& src, const uint32_t* sel, size_t n);

  bool IsNull(size_t i) const {
    return (valid_[i >> 6] & (uint64_t{1} << (i & 63))) == 0;
  }
  /// Cell as a Value; exactly what was appended.
  Value Get(size_t i) const;

  // Raw typed accessors: valid only for the matching encoding and a
  // non-NULL row. Hot loops in expr_vec.cc read these directly.
  bool BoolAt(size_t i) const { return bools_[i] != 0; }
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  const std::string& StrAt(size_t i) const { return dict_[codes_[i]]; }
  uint32_t CodeAt(size_t i) const { return codes_[i]; }
  const std::string& DictEntry(uint32_t code) const { return dict_[code]; }
  const Value& MixedAt(size_t i) const { return mixed_[i]; }

  /// Hash of cell i, consistent with Value::Hash() (no Value materialized
  /// for typed encodings). Used by the hash-join build side.
  uint64_t HashAt(size_t i) const;

  /// Folds cell hashes into per-row accumulators: for each i in [0, len),
  /// acc[i] = acc[i] * mul + HashAt(begin + i). The group-by kernel builds
  /// multi-column group hashes with one pass per key column instead of one
  /// Value materialization per cell; kDict hashes each distinct dictionary
  /// string at most once per call.
  void FoldHashRange(size_t begin, size_t len, uint64_t mul,
                     uint64_t* acc) const;
  /// Same fold over the physical rows named by idx[0..n).
  void FoldHashGather(const uint32_t* idx, size_t n, uint64_t mul,
                      uint64_t* acc) const;

  // Wire-decode factories: assemble a column directly from typed buffers
  // (the kathdb-wire/1 columnar result encoding). `valid` is the validity
  // bitmap, bit i set = cell i non-NULL, sized ceil(n/64) words; bits at
  // or beyond the row count are cleared. NULL rows must hold placeholder
  // payload values (0 / 0.0 / code 0), as the append paths produce.
  static std::shared_ptr<ColumnVector> AllNulls(size_t n);
  static std::shared_ptr<ColumnVector> FromBools(std::vector<uint8_t> vals,
                             std::vector<uint64_t> valid);
  static std::shared_ptr<ColumnVector> FromInts(std::vector<int64_t> vals,
                            std::vector<uint64_t> valid);
  static std::shared_ptr<ColumnVector> FromDoubles(std::vector<double> vals,
                               std::vector<uint64_t> valid);
  /// Dictionary column from decoded codes; rebuilds the dictionary index
  /// eagerly so later appends into the column can intern new strings.
  static std::shared_ptr<ColumnVector> FromDict(std::vector<std::string> dict,
                            std::vector<uint32_t> codes,
                            std::vector<uint64_t> valid);
  /// Type-mixed column; validity derives from each value's is_null().
  static std::shared_ptr<ColumnVector> FromValues(std::vector<Value> vals);

  /// Order-sensitive 64-bit fingerprint of cells [begin, begin+len),
  /// independent of the physical encoding: two columns holding the same
  /// logical values fingerprint identically even if one is dictionary
  /// encoded and the other kMixed. Feeds ResultCache keys.
  uint64_t FingerprintRange(size_t begin, size_t len) const;

  /// Approximate heap bytes held (diagnostics / bench reporting).
  size_t MemoryBytes() const;

 private:
  void SetValid(size_t i) { valid_[i >> 6] |= uint64_t{1} << (i & 63); }
  void GrowBitmap() {
    if (valid_.size() * 64 < size_ + 1) valid_.push_back(0);
  }
  /// Re-encodes every cell as a plain Value (type-mixed column).
  void DemoteToMixed();
  /// Adopts `enc` from kEmpty, backfilling placeholder slots for the
  /// NULLs appended so far.
  void AdoptEncoding(ColumnEncoding enc);
  uint32_t DictCode(const std::string& s);

  ColumnEncoding enc_ = ColumnEncoding::kEmpty;
  size_t size_ = 0;
  std::vector<uint64_t> valid_;  // bit i set = cell i is non-NULL
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, uint32_t> dict_index_;
  std::vector<Value> mixed_;
};

using ColumnPtr = std::shared_ptr<ColumnVector>;

}  // namespace kathdb::rel
