#include "relational/expr.h"

#include <cmath>
#include <set>

#include "common/strings.h"

namespace kathdb::rel {

ExprPtr Expr::Literal(Value v) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string name) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kColumnRef;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->bop_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->uop_ = op;
  e->children_ = {std::move(operand)};
  return e;
}

ExprPtr Expr::Call(std::string fn, std::vector<ExprPtr> args) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kFunctionCall;
  e->name_ = ToLower(fn);
  e->children_ = std::move(args);
  return e;
}

namespace detail {

bool IsNumericBinary(BinaryOp op) {
  return op == BinaryOp::kAdd || op == BinaryOp::kSub ||
         op == BinaryOp::kMul || op == BinaryOp::kDiv;
}

Result<Value> EvalNumeric(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.type() == DataType::kString || b.type() == DataType::kString) {
    if (op == BinaryOp::kAdd) {
      return Value::Str(a.ToString() + b.ToString());
    }
    return Status::SyntacticError("arithmetic on STRING operand");
  }
  bool both_int =
      a.type() == DataType::kInt && b.type() == DataType::kInt;
  double x = a.AsDouble();
  double y = b.AsDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return both_int ? Value::Int(a.AsInt() + b.AsInt())
                      : Value::Double(x + y);
    case BinaryOp::kSub:
      return both_int ? Value::Int(a.AsInt() - b.AsInt())
                      : Value::Double(x - y);
    case BinaryOp::kMul:
      return both_int ? Value::Int(a.AsInt() * b.AsInt())
                      : Value::Double(x * y);
    case BinaryOp::kDiv:
      if (y == 0.0) return Status::SyntacticError("division by zero");
      return Value::Double(x / y);
    default:
      return Status::RuntimeError("not a numeric op");
  }
}

Value EvalCompare(BinaryOp op, const Value& a, const Value& b) {
  // Comparisons: NULL compares as NULL (rendered false by filters).
  if (a.is_null() || b.is_null()) return Value::Null();
  int c = a.Compare(b);
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(c == 0);
    case BinaryOp::kNe:
      return Value::Bool(c != 0);
    case BinaryOp::kLt:
      return Value::Bool(c < 0);
    case BinaryOp::kLe:
      return Value::Bool(c <= 0);
    case BinaryOp::kGt:
      return Value::Bool(c > 0);
    default:
      return Value::Bool(c >= 0);  // kGe
  }
}

Value EvalUnary(UnaryOp op, const Value& v) {
  if (v.is_null()) return Value::Null();
  if (op == UnaryOp::kNot) return Value::Bool(!v.AsBool());
  if (v.type() == DataType::kInt) return Value::Int(-v.AsInt());
  return Value::Double(-v.AsDouble());
}

Result<Value> EvalCall(const std::string& name,
                       const std::vector<Value>& args) {
  auto need = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::SyntacticError("function " + name + " expects " +
                                    std::to_string(n) + " args, got " +
                                    std::to_string(args.size()));
    }
    return Status::OK();
  };
  if (name == "lower") {
    KATHDB_RETURN_IF_ERROR(need(1));
    return Value::Str(ToLower(args[0].ToString()));
  }
  if (name == "upper") {
    KATHDB_RETURN_IF_ERROR(need(1));
    std::string s = args[0].ToString();
    for (auto& ch : s) ch = static_cast<char>(std::toupper(
        static_cast<unsigned char>(ch)));
    return Value::Str(std::move(s));
  }
  if (name == "length") {
    KATHDB_RETURN_IF_ERROR(need(1));
    return Value::Int(static_cast<int64_t>(args[0].ToString().size()));
  }
  if (name == "abs") {
    KATHDB_RETURN_IF_ERROR(need(1));
    if (args[0].type() == DataType::kInt) {
      return Value::Int(std::abs(args[0].AsInt()));
    }
    return Value::Double(std::abs(args[0].AsDouble()));
  }
  if (name == "round") {
    if (args.size() == 1) {
      return Value::Double(std::round(args[0].AsDouble()));
    }
    KATHDB_RETURN_IF_ERROR(need(2));
    double scale = std::pow(10.0, args[1].AsDouble());
    return Value::Double(std::round(args[0].AsDouble() * scale) / scale);
  }
  if (name == "contains") {
    KATHDB_RETURN_IF_ERROR(need(2));
    return Value::Bool(ContainsIgnoreCase(args[0].ToString(),
                                          args[1].ToString()));
  }
  if (name == "coalesce") {
    for (const auto& a : args) {
      if (!a.is_null()) return a;
    }
    return Value::Null();
  }
  if (name == "min2") {
    KATHDB_RETURN_IF_ERROR(need(2));
    return args[0].Compare(args[1]) <= 0 ? args[0] : args[1];
  }
  if (name == "max2") {
    KATHDB_RETURN_IF_ERROR(need(2));
    return args[0].Compare(args[1]) >= 0 ? args[0] : args[1];
  }
  if (name == "if") {
    KATHDB_RETURN_IF_ERROR(need(3));
    return (!args[0].is_null() && args[0].AsBool()) ? args[1] : args[2];
  }
  return Status::SyntacticError("unknown function '" + name + "'");
}

}  // namespace detail

Result<Value> Expr::Eval(const Row& row, const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kColumnRef: {
      auto idx = schema.IndexOf(name_);
      if (!idx.has_value()) {
        return Status::SyntacticError("unknown column '" + name_ +
                                      "' (schema: " + schema.ToString() + ")");
      }
      if (*idx >= row.size()) {
        return Status::SyntacticError("row narrower than schema");
      }
      return row[*idx];
    }
    case ExprKind::kUnary: {
      KATHDB_ASSIGN_OR_RETURN(Value v, children_[0]->Eval(row, schema));
      return detail::EvalUnary(uop_, v);
    }
    case ExprKind::kBinary: {
      if (bop_ == BinaryOp::kAnd || bop_ == BinaryOp::kOr) {
        KATHDB_ASSIGN_OR_RETURN(Value a, children_[0]->Eval(row, schema));
        // Short-circuit.
        if (bop_ == BinaryOp::kAnd && !a.is_null() && !a.AsBool()) {
          return Value::Bool(false);
        }
        if (bop_ == BinaryOp::kOr && !a.is_null() && a.AsBool()) {
          return Value::Bool(true);
        }
        KATHDB_ASSIGN_OR_RETURN(Value b, children_[1]->Eval(row, schema));
        if (a.is_null() || b.is_null()) return Value::Null();
        return Value::Bool(bop_ == BinaryOp::kAnd
                               ? (a.AsBool() && b.AsBool())
                               : (a.AsBool() || b.AsBool()));
      }
      KATHDB_ASSIGN_OR_RETURN(Value a, children_[0]->Eval(row, schema));
      KATHDB_ASSIGN_OR_RETURN(Value b, children_[1]->Eval(row, schema));
      if (detail::IsNumericBinary(bop_)) {
        return detail::EvalNumeric(bop_, a, b);
      }
      return detail::EvalCompare(bop_, a, b);
    }
    case ExprKind::kFunctionCall: {
      std::vector<Value> args;
      args.reserve(children_.size());
      for (const auto& c : children_) {
        KATHDB_ASSIGN_OR_RETURN(Value v, c->Eval(row, schema));
        args.push_back(std::move(v));
      }
      return detail::EvalCall(name_, args);
    }
  }
  return Status::RuntimeError("corrupt expression node");
}

namespace {
void CollectColumns(const Expr& e, std::set<std::string>* out) {
  if (e.kind() == ExprKind::kColumnRef) {
    out->insert(e.column_name());
  }
  for (const auto& c : e.children()) CollectColumns(*c, out);
}

const char* OpText(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}
}  // namespace

std::vector<std::string> Expr::ReferencedColumns() const {
  std::set<std::string> cols;
  CollectColumns(*this, &cols);
  return {cols.begin(), cols.end()};
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      if (literal_.type() == DataType::kString) {
        return "'" + literal_.ToString() + "'";
      }
      return literal_.ToString();
    case ExprKind::kColumnRef:
      return name_;
    case ExprKind::kUnary:
      return (uop_ == UnaryOp::kNot ? "NOT " : "-") +
             children_[0]->ToString();
    case ExprKind::kBinary:
      return "(" + children_[0]->ToString() + " " + OpText(bop_) + " " +
             children_[1]->ToString() + ")";
    case ExprKind::kFunctionCall: {
      std::string out = name_ + "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace kathdb::rel
