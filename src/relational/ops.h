/// \file ops.h
/// \brief Volcano-style physical operators over in-memory tables.
///
/// These are KathDB's classical relational operators. FAO function bodies
/// of kind "SQL sub-query" lower to trees of these operators; the optimizer
/// also uses them directly for rewrites such as predicate pushdown.
///
/// \ingroup kathdb_relational

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/expr.h"
#include "relational/table.h"

namespace kathdb::rel {

/// Rows produced by one NextChunk() pull: the window [begin, end) of
/// `table`'s rows, optionally narrowed to the rows named by `sel`
/// (table-relative indices; empty = the whole dense window). The table is
/// shared, not copied — a scan chunk is a window over the scanned table
/// itself, and a filter chunk is the same window plus a selection vector.
struct Chunk {
  TablePtr table;
  size_t begin = 0;
  size_t end = 0;
  std::vector<uint32_t> sel;

  size_t size() const { return sel.empty() ? end - begin : sel.size(); }
};

/// Rows per chunk pulled by the vectorized operators (morsel-sized: the
/// working set of a chunk stays cache-resident).
inline constexpr size_t kChunkRows = 2048;

/// \brief Pull-based operator interface: Open / Next / Close.
///
/// Operators expose two pull granularities: row-at-a-time Next() (the
/// classical volcano contract, kept for joins/aggregates and as the
/// differential-testing reference) and NextChunk(), which produces a
/// batch of rows at once. Scan, filter and project implement NextChunk
/// natively (columnar, no per-row Value materialization); every other
/// operator inherits an adapter that builds chunks from Next() pulls.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open() = 0;
  /// Produces the next row into *row (and its lineage id into *lid, 0 when
  /// untracked). Returns false when exhausted.
  virtual Result<bool> Next(Row* row, int64_t* lid) = 0;
  /// Produces the next batch of rows. Returns false when exhausted; never
  /// produces an empty chunk. Default implementation adapts Next().
  virtual Result<bool> NextChunk(Chunk* chunk);
  virtual void Close() = 0;

  /// Output schema, valid after construction.
  virtual const Schema& output_schema() const = 0;

  /// One-line description for EXPLAIN-style rendering.
  virtual std::string Describe() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Runs an operator tree to completion into a named table, consuming
/// chunks (bulk column appends; the fast path).
Result<Table> Materialize(Operator* op, const std::string& name);

/// Row-at-a-time reference implementation of Materialize. Kept as the
/// baseline the differential tests (and benchmarks) compare the chunked
/// path against; produces byte-identical tables.
Result<Table> MaterializeRows(Operator* op, const std::string& name);

/// Leaf scan over a materialized table.
OperatorPtr MakeSeqScan(TablePtr table);

/// Keeps rows where `predicate` evaluates to true (NULL drops the row).
OperatorPtr MakeFilter(OperatorPtr child, ExprPtr predicate);

/// Computes `exprs` per row; output columns named `names`. Output column
/// types are inferred from the first produced row (STRING when unknown).
OperatorPtr MakeProject(OperatorPtr child, std::vector<ExprPtr> exprs,
                        std::vector<std::string> names);

/// Equi-join: builds a hash table on `right_col` of the right input and
/// probes with `left_col`. Output schema is Concat(left, right, right name).
OperatorPtr MakeHashJoin(OperatorPtr left, OperatorPtr right,
                         std::string left_col, std::string right_col,
                         std::string right_prefix = "r");

/// General theta-join evaluated over the concatenated row.
OperatorPtr MakeNestedLoopJoin(OperatorPtr left, OperatorPtr right,
                               ExprPtr predicate,
                               std::string right_prefix = "r");

/// Aggregate function tags for MakeAggregate.
enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

struct AggSpec {
  AggFn fn;
  /// Input column; ignored for COUNT(*) (empty name).
  std::string column;
  std::string output_name;
};

/// Kernel selector for operators that keep two implementations: the
/// chunk-native columnar kernel (default — typed accumulator arrays, no
/// per-row Value boxing) and the original row-at-a-time path, retained as
/// the reference the differential tests and benchmarks compare against.
enum class ExecImpl { kColumnar, kRow };

/// Hash aggregation grouped by `group_cols` (may be empty = global).
/// Groups are keyed by a 64-bit hash of the key cells (first-seen output
/// order); both kernels produce byte-identical tables.
OperatorPtr MakeAggregate(OperatorPtr child,
                          std::vector<std::string> group_cols,
                          std::vector<AggSpec> aggs,
                          ExecImpl impl = ExecImpl::kColumnar);

struct SortKey {
  std::string column;
  bool descending = false;
};

/// Blocking stable sort. The columnar kernel sorts an index permutation
/// over the materialized input with typed key comparators (dictionary
/// columns compare by precomputed code rank) and streams the permutation
/// out as selection-vector chunks; the row kernel stable-sorts boxed rows.
OperatorPtr MakeSort(OperatorPtr child, std::vector<SortKey> keys,
                     ExecImpl impl = ExecImpl::kColumnar);

/// Emits at most `limit` rows.
OperatorPtr MakeLimit(OperatorPtr child, size_t limit);

/// Removes duplicate rows (all columns).
OperatorPtr MakeDistinct(OperatorPtr child);

/// Concatenates two inputs with identical schemas.
OperatorPtr MakeUnionAll(OperatorPtr left, OperatorPtr right);

}  // namespace kathdb::rel
