/// \file expr_vec.h
/// \brief Vectorized expression evaluation over columnar tables.
///
/// Evaluates an Expr tree one column at a time over a chunk of rows
/// instead of one Value tree-walk per row. Typed fast loops cover the
/// numeric arithmetic/comparison cases; everything else falls back to a
/// generic per-row loop that dispatches into the SAME scalar kernels as
/// the row interpreter (expr.h detail namespace), so values and error
/// statuses agree with Expr::Eval by construction. AND/OR evaluate the
/// right operand only on the sub-selection of rows the interpreter's
/// short-circuit would have reached, preserving error behavior (e.g. a
/// division by zero hidden behind `false AND ...` stays hidden).
///
/// \ingroup kathdb_relational

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "relational/column.h"
#include "relational/expr.h"
#include "relational/table.h"

namespace kathdb::rel {

/// Evaluates `expr` for the `n` table-relative rows named by sel[0..n),
/// appending one result cell per row into *out (in sel order).
Status EvalExprVector(const Expr& expr, const Table& table,
                      const uint32_t* sel, size_t n, ColumnVector* out);

/// Appends to *sel_out the table-relative rows in [begin, end) where
/// `pred` evaluates to non-NULL true — the Filter hot path. A predicate
/// of shape `column <cmp> literal` over a numeric column runs as a tight
/// loop over the raw column array with no Value materialized.
Status EvalPredicateSelect(const Expr& pred, const Table& table,
                           size_t begin, size_t end,
                           std::vector<uint32_t>* sel_out);

/// As above, but over a pre-selected row set (Filter stacked on Filter).
Status EvalPredicateSelectOn(const Expr& pred, const Table& table,
                             const std::vector<uint32_t>& sel,
                             std::vector<uint32_t>* sel_out);

}  // namespace kathdb::rel
