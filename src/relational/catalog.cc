#include "relational/catalog.h"

#include <algorithm>
#include <set>

namespace kathdb::rel {

namespace {

const char* KindName(RelationKind kind) {
  switch (kind) {
    case RelationKind::kBaseTable:
      return "base";
    case RelationKind::kView:
      return "view";
    case RelationKind::kIntermediate:
      return "intermediate";
  }
  return "intermediate";
}

/// Shared joinability heuristic over two resolved tables.
bool JoinableTables(const Table& lt, const Table& rt,
                    std::string* on_column) {
  const Schema& ls = lt.schema();
  const Schema& rs = rt.schema();
  for (const auto& lc : ls.columns()) {
    auto ri = rs.IndexOf(lc.name);
    if (!ri.has_value()) continue;
    if (rs.column(*ri).type != lc.type) continue;
    // Require some value overlap on a sample to call it joinable.
    std::set<std::string> lvals;
    size_t li = *ls.IndexOf(lc.name);
    for (size_t r = 0; r < std::min<size_t>(lt.num_rows(), 64); ++r) {
      lvals.insert(lt.at(r, li).ToString());
    }
    for (size_t r = 0; r < std::min<size_t>(rt.num_rows(), 64); ++r) {
      if (lvals.count(rt.at(r, *ri).ToString()) > 0) {
        if (on_column != nullptr) *on_column = lc.name;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Status Catalog::Register(TablePtr table, RelationKind kind) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  const std::string name = table->name();
  common::WriterLock lock(mu_);
  if (entries_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name +
                                 "' already registered");
  }
  order_.push_back(name);
  entries_[name] = Entry{std::move(table), kind};
  return Status::OK();
}

void Catalog::Upsert(TablePtr table, RelationKind kind) {
  if (table == nullptr) return;
  const std::string name = table->name();
  common::WriterLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    order_.push_back(name);
  }
  entries_[name] = Entry{std::move(table), kind};
}

Result<TablePtr> Catalog::GetLocked(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("relation '" + name + "' not in catalog");
  }
  return it->second.table;
}

Result<TablePtr> Catalog::Get(const std::string& name) const {
  common::ReaderLock lock(mu_);
  return GetLocked(name);
}

bool Catalog::Has(const std::string& name) const {
  common::ReaderLock lock(mu_);
  return entries_.count(name) > 0;
}

Status Catalog::Drop(const std::string& name) {
  common::WriterLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("relation '" + name + "' not in catalog");
  }
  entries_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), name), order_.end());
  return Status::OK();
}

RelationKind Catalog::KindOf(const std::string& name) const {
  common::ReaderLock lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? RelationKind::kIntermediate : it->second.kind;
}

std::vector<std::string> Catalog::ListNames() const {
  common::ReaderLock lock(mu_);
  return order_;
}

Result<Table> Catalog::SampleRows(const std::string& name, size_t n) const {
  common::ReaderLock lock(mu_);
  KATHDB_ASSIGN_OR_RETURN(TablePtr t, GetLocked(name));
  return t->Head(n);
}

std::string Catalog::DescribeEntry(const std::string& name,
                                   const Entry& e) const {
  std::string out = name;
  out += "(";
  out += e.table->schema().ToString();
  out += ") [";
  out += KindName(e.kind);
  out += ", " + std::to_string(e.table->num_rows()) + " rows]\n";
  return out;
}

std::string Catalog::DescribeAll() const {
  common::ReaderLock lock(mu_);
  std::string out;
  for (const auto& name : order_) {
    out += DescribeEntry(name, entries_.at(name));
  }
  return out;
}

bool Catalog::Joinable(const std::string& left, const std::string& right,
                       std::string* on_column) const {
  common::ReaderLock lock(mu_);
  auto lit = entries_.find(left);
  auto rit = entries_.find(right);
  if (lit == entries_.end() || rit == entries_.end()) return false;
  return JoinableTables(*lit->second.table, *rit->second.table, on_column);
}

// ----------------------------------------------------------- ScopedCatalog

Status ScopedCatalog::Register(TablePtr table, RelationKind kind) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  const std::string name = table->name();
  common::WriterLock lock(overlay_mu_);
  if (overlay_.count(name) > 0 || base_->Has(name)) {
    return Status::AlreadyExists("relation '" + name +
                                 "' already registered");
  }
  order_.push_back(name);
  overlay_[name] = OverlayEntry{std::move(table), kind};
  return Status::OK();
}

void ScopedCatalog::Upsert(TablePtr table, RelationKind kind) {
  if (table == nullptr) return;
  const std::string name = table->name();
  common::WriterLock lock(overlay_mu_);
  if (overlay_.count(name) == 0) order_.push_back(name);
  overlay_[name] = OverlayEntry{std::move(table), kind};
}

Result<TablePtr> ScopedCatalog::Get(const std::string& name) const {
  {
    common::ReaderLock lock(overlay_mu_);
    auto it = overlay_.find(name);
    if (it != overlay_.end()) return it->second.table;
  }
  return base_->Get(name);
}

bool ScopedCatalog::Has(const std::string& name) const {
  {
    common::ReaderLock lock(overlay_mu_);
    if (overlay_.count(name) > 0) return true;
  }
  return base_->Has(name);
}

Status ScopedCatalog::Drop(const std::string& name) {
  common::WriterLock lock(overlay_mu_);
  auto it = overlay_.find(name);
  if (it == overlay_.end()) {
    if (base_->Has(name)) {
      return Status::InvalidArgument(
          "cannot drop shared relation '" + name + "' from a query scope");
    }
    return Status::NotFound("relation '" + name + "' not in catalog");
  }
  overlay_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), name), order_.end());
  return Status::OK();
}

RelationKind ScopedCatalog::KindOf(const std::string& name) const {
  {
    common::ReaderLock lock(overlay_mu_);
    auto it = overlay_.find(name);
    if (it != overlay_.end()) return it->second.kind;
  }
  return base_->KindOf(name);
}

std::vector<std::string> ScopedCatalog::ListNames() const {
  std::vector<std::string> names = base_->ListNames();
  common::ReaderLock lock(overlay_mu_);
  for (const auto& name : order_) {
    if (!base_->Has(name)) names.push_back(name);
  }
  return names;
}

Result<Table> ScopedCatalog::SampleRows(const std::string& name,
                                        size_t n) const {
  KATHDB_ASSIGN_OR_RETURN(TablePtr t, Get(name));
  return t->Head(n);
}

std::string ScopedCatalog::DescribeAll() const {
  // Built from ListNames + Get so a name present in both layers is
  // described once, with the overlay (query-local) version winning.
  std::string out;
  for (const auto& name : ListNames()) {
    auto t = Get(name);
    if (!t.ok()) continue;
    out += name + "(" + t.value()->schema().ToString() + ") [" +
           KindName(KindOf(name)) + ", " +
           std::to_string(t.value()->num_rows()) + " rows]\n";
  }
  return out;
}

bool ScopedCatalog::Joinable(const std::string& left,
                             const std::string& right,
                             std::string* on_column) const {
  auto lt = Get(left);
  auto rt = Get(right);
  if (!lt.ok() || !rt.ok()) return false;
  return JoinableTables(*lt.value(), *rt.value(), on_column);
}

}  // namespace kathdb::rel
