#include "relational/catalog.h"

#include <algorithm>
#include <set>

namespace kathdb::rel {

Status Catalog::Register(TablePtr table, RelationKind kind) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  const std::string name = table->name();
  if (entries_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name +
                                 "' already registered");
  }
  order_.push_back(name);
  entries_[name] = Entry{std::move(table), kind};
  return Status::OK();
}

void Catalog::Upsert(TablePtr table, RelationKind kind) {
  if (table == nullptr) return;
  const std::string name = table->name();
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    order_.push_back(name);
  }
  entries_[name] = Entry{std::move(table), kind};
}

Result<TablePtr> Catalog::Get(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("relation '" + name + "' not in catalog");
  }
  return it->second.table;
}

bool Catalog::Has(const std::string& name) const {
  return entries_.count(name) > 0;
}

Status Catalog::Drop(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("relation '" + name + "' not in catalog");
  }
  entries_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), name), order_.end());
  return Status::OK();
}

RelationKind Catalog::KindOf(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? RelationKind::kIntermediate : it->second.kind;
}

std::vector<std::string> Catalog::ListNames() const { return order_; }

Result<Table> Catalog::SampleRows(const std::string& name, size_t n) const {
  KATHDB_ASSIGN_OR_RETURN(TablePtr t, Get(name));
  return t->Head(n);
}

std::string Catalog::DescribeAll() const {
  std::string out;
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    out += name;
    out += "(";
    out += e.table->schema().ToString();
    out += ") [";
    switch (e.kind) {
      case RelationKind::kBaseTable:
        out += "base";
        break;
      case RelationKind::kView:
        out += "view";
        break;
      case RelationKind::kIntermediate:
        out += "intermediate";
        break;
    }
    out += ", " + std::to_string(e.table->num_rows()) + " rows]\n";
  }
  return out;
}

bool Catalog::Joinable(const std::string& left, const std::string& right,
                       std::string* on_column) const {
  auto lit = entries_.find(left);
  auto rit = entries_.find(right);
  if (lit == entries_.end() || rit == entries_.end()) return false;
  const Schema& ls = lit->second.table->schema();
  const Schema& rs = rit->second.table->schema();
  for (const auto& lc : ls.columns()) {
    auto ri = rs.IndexOf(lc.name);
    if (!ri.has_value()) continue;
    if (rs.column(*ri).type != lc.type) continue;
    // Require some value overlap on a sample to call it joinable.
    const Table& lt = *lit->second.table;
    const Table& rt = *rit->second.table;
    std::set<std::string> lvals;
    size_t li = *ls.IndexOf(lc.name);
    for (size_t r = 0; r < std::min<size_t>(lt.num_rows(), 64); ++r) {
      lvals.insert(lt.at(r, li).ToString());
    }
    for (size_t r = 0; r < std::min<size_t>(rt.num_rows(), 64); ++r) {
      if (lvals.count(rt.at(r, *ri).ToString()) > 0) {
        if (on_column != nullptr) *on_column = lc.name;
        return true;
      }
    }
  }
  return false;
}

}  // namespace kathdb::rel
