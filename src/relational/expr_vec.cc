#include "relational/expr_vec.h"

#include <numeric>

namespace kathdb::rel {

namespace {

bool IsNumericEnc(ColumnEncoding e) {
  return e == ColumnEncoding::kInt || e == ColumnEncoding::kDouble;
}

/// Numeric cell as double; pre: numeric encoding, non-NULL row. Matches
/// Value::AsDouble, which is what Value::Compare uses for numerics, so
/// comparing doubles here is exact interpreter parity (including the
/// int64-beyond-2^53 cases — the interpreter converts those too).
inline double NumAt(const ColumnVector& c, size_t i) {
  return c.encoding() == ColumnEncoding::kInt
             ? static_cast<double>(c.IntAt(i))
             : c.DoubleAt(i);
}

bool IsCompareOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

inline bool CompareResult(BinaryOp op, double x, double y) {
  switch (op) {
    case BinaryOp::kEq:
      return x == y;
    case BinaryOp::kNe:
      return x != y;
    case BinaryOp::kLt:
      return x < y;
    case BinaryOp::kLe:
      return x <= y;
    case BinaryOp::kGt:
      return x > y;
    default:
      return x >= y;  // kGe
  }
}

/// Typed arithmetic loop over two numeric columns (same length n).
Status NumericArithLoop(BinaryOp op, const ColumnVector& a,
                        const ColumnVector& b, size_t n, ColumnVector* out) {
  bool both_int = a.encoding() == ColumnEncoding::kInt &&
                  b.encoding() == ColumnEncoding::kInt;
  for (size_t i = 0; i < n; ++i) {
    if (a.IsNull(i) || b.IsNull(i)) {
      out->AppendNull();
      continue;
    }
    if (both_int && op != BinaryOp::kDiv) {
      int64_t x = a.IntAt(i);
      int64_t y = b.IntAt(i);
      switch (op) {
        case BinaryOp::kAdd:
          out->Append(Value::Int(x + y));
          break;
        case BinaryOp::kSub:
          out->Append(Value::Int(x - y));
          break;
        default:  // kMul
          out->Append(Value::Int(x * y));
          break;
      }
      continue;
    }
    double x = NumAt(a, i);
    double y = NumAt(b, i);
    switch (op) {
      case BinaryOp::kAdd:
        out->Append(Value::Double(x + y));
        break;
      case BinaryOp::kSub:
        out->Append(Value::Double(x - y));
        break;
      case BinaryOp::kMul:
        out->Append(Value::Double(x * y));
        break;
      default:  // kDiv
        if (y == 0.0) return Status::SyntacticError("division by zero");
        out->Append(Value::Double(x / y));
        break;
    }
  }
  return Status::OK();
}

/// Typed comparison loop over two numeric columns (same length n).
void NumericCompareLoop(BinaryOp op, const ColumnVector& a,
                        const ColumnVector& b, size_t n, ColumnVector* out) {
  for (size_t i = 0; i < n; ++i) {
    if (a.IsNull(i) || b.IsNull(i)) {
      out->AppendNull();
      continue;
    }
    out->Append(Value::Bool(CompareResult(op, NumAt(a, i), NumAt(b, i))));
  }
}

}  // namespace

Status EvalExprVector(const Expr& expr, const Table& table,
                      const uint32_t* sel, size_t n, ColumnVector* out) {
  const Schema& schema = table.schema();
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = expr.literal();
      for (size_t i = 0; i < n; ++i) out->Append(v);
      return Status::OK();
    }
    case ExprKind::kColumnRef: {
      auto idx = schema.IndexOf(expr.column_name());
      if (!idx.has_value()) {
        return Status::SyntacticError("unknown column '" +
                                      expr.column_name() + "' (schema: " +
                                      schema.ToString() + ")");
      }
      table.GatherColumn(*idx, sel, n, out);
      return Status::OK();
    }
    case ExprKind::kUnary: {
      ColumnVector v;
      v.Reserve(n);
      KATHDB_RETURN_IF_ERROR(
          EvalExprVector(*expr.children()[0], table, sel, n, &v));
      for (size_t i = 0; i < n; ++i) {
        if (v.IsNull(i)) {
          out->AppendNull();
        } else {
          out->Append(detail::EvalUnary(expr.unary_op(), v.Get(i)));
        }
      }
      return Status::OK();
    }
    case ExprKind::kBinary: {
      BinaryOp op = expr.binary_op();
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        // Short-circuit parity: evaluate the rhs only for rows where the
        // interpreter would have (lhs NULL, or lhs not deciding the op).
        ColumnVector a;
        a.Reserve(n);
        KATHDB_RETURN_IF_ERROR(
            EvalExprVector(*expr.children()[0], table, sel, n, &a));
        std::vector<uint32_t> bsel;     // table rows needing the rhs
        std::vector<size_t> bslot(n);   // position i -> index into b
        bsel.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          bool decided = !a.IsNull(i) &&
                         (op == BinaryOp::kAnd ? !a.Get(i).AsBool()
                                               : a.Get(i).AsBool());
          if (decided) {
            bslot[i] = SIZE_MAX;
          } else {
            bslot[i] = bsel.size();
            bsel.push_back(sel[i]);
          }
        }
        ColumnVector b;
        b.Reserve(bsel.size());
        if (!bsel.empty()) {
          KATHDB_RETURN_IF_ERROR(EvalExprVector(
              *expr.children()[1], table, bsel.data(), bsel.size(), &b));
        }
        for (size_t i = 0; i < n; ++i) {
          if (bslot[i] == SIZE_MAX) {
            out->Append(Value::Bool(op == BinaryOp::kOr));
            continue;
          }
          if (a.IsNull(i) || b.IsNull(bslot[i])) {
            out->AppendNull();
            continue;
          }
          bool av = a.Get(i).AsBool();
          bool bv = b.Get(bslot[i]).AsBool();
          out->Append(Value::Bool(op == BinaryOp::kAnd ? (av && bv)
                                                       : (av || bv)));
        }
        return Status::OK();
      }
      ColumnVector a;
      ColumnVector b;
      a.Reserve(n);
      b.Reserve(n);
      KATHDB_RETURN_IF_ERROR(
          EvalExprVector(*expr.children()[0], table, sel, n, &a));
      KATHDB_RETURN_IF_ERROR(
          EvalExprVector(*expr.children()[1], table, sel, n, &b));
      bool numeric = IsNumericEnc(a.encoding()) && IsNumericEnc(b.encoding());
      if (numeric && IsCompareOp(op)) {
        NumericCompareLoop(op, a, b, n, out);
        return Status::OK();
      }
      if (numeric && detail::IsNumericBinary(op)) {
        return NumericArithLoop(op, a, b, n, out);
      }
      // Generic: same scalar kernels as the interpreter, one row at a time.
      for (size_t i = 0; i < n; ++i) {
        Value av = a.Get(i);
        Value bv = b.Get(i);
        if (detail::IsNumericBinary(op)) {
          KATHDB_ASSIGN_OR_RETURN(Value r, detail::EvalNumeric(op, av, bv));
          out->Append(r);
        } else {
          out->Append(detail::EvalCompare(op, av, bv));
        }
      }
      return Status::OK();
    }
    case ExprKind::kFunctionCall: {
      std::vector<ColumnVector> argcols(expr.children().size());
      for (size_t c = 0; c < expr.children().size(); ++c) {
        argcols[c].Reserve(n);
        KATHDB_RETURN_IF_ERROR(
            EvalExprVector(*expr.children()[c], table, sel, n, &argcols[c]));
      }
      std::vector<Value> args(argcols.size());
      for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < argcols.size(); ++c) {
          args[c] = argcols[c].Get(i);
        }
        KATHDB_ASSIGN_OR_RETURN(Value r,
                                detail::EvalCall(expr.function_name(), args));
        out->Append(r);
      }
      return Status::OK();
    }
  }
  return Status::RuntimeError("corrupt expression node");
}

namespace {

/// One recognized `col <cmp> literal` conjunct: raw column pointer plus
/// the literal as double. `flip` marks `literal <cmp> col` operand order.
struct FastCompare {
  BinaryOp op = BinaryOp::kEq;
  const ColumnVector* col = nullptr;
  size_t off = 0;  ///< table view offset, added to logical row numbers
  double lit = 0.0;
  bool flip = false;
};

/// Row r passes the conjunct: non-NULL and the comparison holds. NULL
/// never passes, same as the interpreter's three-valued compare.
inline bool FastPass(const FastCompare& f, size_t r) {
  size_t p = f.off + r;
  if (f.col->IsNull(p)) return false;
  double x = NumAt(*f.col, p);
  return f.flip ? CompareResult(f.op, f.lit, x)
                : CompareResult(f.op, x, f.lit);
}

/// Recognizes `col <cmp> lit` / `lit <cmp> col` over a numeric column
/// with a numeric/bool literal. kEmpty columns (all NULL so far) are
/// accepted too: no row can pass, which the pass loop yields naturally.
bool RecognizeFastCompare(const Expr& pred, const Table& table,
                          FastCompare* out) {
  if (pred.kind() != ExprKind::kBinary || !IsCompareOp(pred.binary_op())) {
    return false;
  }
  const Expr& lhs = *pred.children()[0];
  const Expr& rhs = *pred.children()[1];
  const Expr* colref = nullptr;
  const Expr* lit = nullptr;
  bool flip = false;
  if (lhs.kind() == ExprKind::kColumnRef && rhs.kind() == ExprKind::kLiteral) {
    colref = &lhs;
    lit = &rhs;
  } else if (lhs.kind() == ExprKind::kLiteral &&
             rhs.kind() == ExprKind::kColumnRef) {
    colref = &rhs;
    lit = &lhs;
    flip = true;
  } else {
    return false;
  }
  DataType lt = lit->literal().type();
  if (lt != DataType::kInt && lt != DataType::kDouble &&
      lt != DataType::kBool) {
    return false;
  }
  auto idx = table.schema().IndexOf(colref->column_name());
  // Column must physically exist and be numerically encoded.
  if (!idx.has_value() || *idx >= table.num_physical_columns()) return false;
  const ColumnVector& col = table.column(*idx);
  if (!IsNumericEnc(col.encoding()) &&
      col.encoding() != ColumnEncoding::kEmpty) {
    return false;
  }
  out->op = pred.binary_op();
  out->col = &col;
  out->off = table.offset();
  out->lit = lit->literal().AsDouble();
  out->flip = flip;
  return true;
}

/// Flattens an AND tree whose every leaf is a fast-comparable conjunct.
/// A conjunctive filter keeps a row iff every conjunct is non-NULL true,
/// and these leaves cannot error, so chained selection is exact
/// interpreter parity (including short-circuit: skipped conjuncts could
/// only have produced more NULL/false drops).
bool CollectFastConjuncts(const Expr& pred, const Table& table,
                          std::vector<FastCompare>* out) {
  if (pred.kind() == ExprKind::kBinary &&
      pred.binary_op() == BinaryOp::kAnd) {
    return CollectFastConjuncts(*pred.children()[0], table, out) &&
           CollectFastConjuncts(*pred.children()[1], table, out);
  }
  FastCompare fc;
  if (!RecognizeFastCompare(pred, table, &fc)) return false;
  out->push_back(fc);
  return true;
}

/// After the first conjunct seeded sel_out[base..), each further conjunct
/// compacts the survivor list in place.
void NarrowByConjuncts(const std::vector<FastCompare>& cmps, size_t base,
                       std::vector<uint32_t>* sel_out) {
  for (size_t k = 1; k < cmps.size(); ++k) {
    size_t w = base;
    for (size_t i = base; i < sel_out->size(); ++i) {
      uint32_t r = (*sel_out)[i];
      if (FastPass(cmps[k], r)) (*sel_out)[w++] = r;
    }
    sel_out->resize(w);
  }
}

/// Recognizes a conjunction of `col <cmp> lit` comparisons and selects
/// via tight raw-array loops: no Value, no ColumnVector materialization.
/// Returns false (sel_out untouched) when the shape does not match.
bool TryFastSelect(const Expr& pred, const Table& table, size_t begin,
                   size_t end, std::vector<uint32_t>* sel_out) {
  std::vector<FastCompare> cmps;
  if (!CollectFastConjuncts(pred, table, &cmps)) return false;
  size_t base = sel_out->size();
  const FastCompare& f0 = cmps[0];
  for (size_t r = begin; r < end; ++r) {
    if (FastPass(f0, r)) sel_out->push_back(static_cast<uint32_t>(r));
  }
  NarrowByConjuncts(cmps, base, sel_out);
  return true;
}

/// TryFastSelect over an explicit selection vector (stacked filters).
bool TryFastSelectOn(const Expr& pred, const Table& table,
                     const std::vector<uint32_t>& sel,
                     std::vector<uint32_t>* sel_out) {
  std::vector<FastCompare> cmps;
  if (!CollectFastConjuncts(pred, table, &cmps)) return false;
  size_t base = sel_out->size();
  const FastCompare& f0 = cmps[0];
  for (uint32_t r : sel) {
    if (FastPass(f0, r)) sel_out->push_back(r);
  }
  NarrowByConjuncts(cmps, base, sel_out);
  return true;
}

/// Appends sel[i] for rows whose predicate value is non-NULL true — the
/// same keep rule as the row Filter (NULL drops the row).
void SelectTrue(const ColumnVector& v, const uint32_t* sel, size_t n,
                std::vector<uint32_t>* sel_out) {
  if (v.encoding() == ColumnEncoding::kBool) {
    for (size_t i = 0; i < n; ++i) {
      if (!v.IsNull(i) && v.BoolAt(i)) sel_out->push_back(sel[i]);
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    Value val = v.Get(i);
    if (!val.is_null() && val.AsBool()) sel_out->push_back(sel[i]);
  }
}

}  // namespace

Status EvalPredicateSelect(const Expr& pred, const Table& table, size_t begin,
                           size_t end, std::vector<uint32_t>* sel_out) {
  if (begin >= end) return Status::OK();
  if (TryFastSelect(pred, table, begin, end, sel_out)) return Status::OK();
  std::vector<uint32_t> dense(end - begin);
  std::iota(dense.begin(), dense.end(), static_cast<uint32_t>(begin));
  ColumnVector v;
  v.Reserve(dense.size());
  KATHDB_RETURN_IF_ERROR(
      EvalExprVector(pred, table, dense.data(), dense.size(), &v));
  SelectTrue(v, dense.data(), dense.size(), sel_out);
  return Status::OK();
}

Status EvalPredicateSelectOn(const Expr& pred, const Table& table,
                             const std::vector<uint32_t>& sel,
                             std::vector<uint32_t>* sel_out) {
  if (sel.empty()) return Status::OK();
  if (TryFastSelectOn(pred, table, sel, sel_out)) return Status::OK();
  ColumnVector v;
  v.Reserve(sel.size());
  KATHDB_RETURN_IF_ERROR(
      EvalExprVector(pred, table, sel.data(), sel.size(), &v));
  SelectTrue(v, sel.data(), sel.size(), sel_out);
  return Status::OK();
}

}  // namespace kathdb::rel
