#include "lineage/lineage.h"

#include <set>

#include "common/rng.h"

namespace kathdb::lineage {

const char* DependencyPatternName(DependencyPattern p) {
  switch (p) {
    case DependencyPattern::kOneToOne:
      return "one_to_one";
    case DependencyPattern::kOneToMany:
      return "one_to_many";
    case DependencyPattern::kManyToOne:
      return "many_to_one";
    case DependencyPattern::kManyToMany:
      return "many_to_many";
  }
  return "?";
}

int64_t LineageStore::NewLid() {
  common::MutexLock lock(mu_);
  return next_lid_++;
}

void LineageStore::AppendLocked(LineageEntry e) {
  clock_ += 0.1;
  e.ts = clock_;
  by_child_.emplace(e.lid, entries_.size());
  entries_.push_back(std::move(e));
}

int64_t LineageStore::RecordIngest(const std::string& src_uri,
                                   const std::string& func_id, int64_t ver_id,
                                   LineageDataType type) {
  if (mode_ == TrackingMode::kOff) return 0;
  common::MutexLock lock(mu_);
  LineageEntry e;
  e.lid = next_lid_++;
  e.parent_lid = std::nullopt;
  e.src_uri = src_uri;
  e.func_id = func_id;
  e.ver_id = ver_id;
  e.data_type = type;
  int64_t lid = e.lid;
  AppendLocked(std::move(e));
  return lid;
}

int64_t LineageStore::RecordRowDerivation(int64_t parent_lid,
                                          const std::string& func_id,
                                          int64_t ver_id) {
  common::MutexLock lock(mu_);
  switch (mode_) {
    case TrackingMode::kOff:
    case TrackingMode::kTable:
      return 0;
    case TrackingMode::kSampled: {
      sample_state_ = SplitMix64(sample_state_);
      double draw = static_cast<double>(sample_state_ >> 11) /
                    9007199254740992.0;
      if (draw >= sample_rate_) return 0;
      break;
    }
    case TrackingMode::kRow:
      break;
  }
  LineageEntry e;
  e.lid = next_lid_++;
  if (parent_lid != 0) e.parent_lid = parent_lid;
  e.func_id = func_id;
  e.ver_id = ver_id;
  e.data_type = LineageDataType::kRow;
  int64_t lid = e.lid;
  AppendLocked(std::move(e));
  return lid;
}

int64_t LineageStore::RecordTableDerivation(
    const std::vector<int64_t>& parent_lids, const std::string& func_id,
    int64_t ver_id) {
  if (mode_ == TrackingMode::kOff) return 0;
  common::MutexLock lock(mu_);
  int64_t lid = next_lid_++;
  if (parent_lids.empty()) {
    LineageEntry e;
    e.lid = lid;
    e.func_id = func_id;
    e.ver_id = ver_id;
    e.data_type = LineageDataType::kTable;
    AppendLocked(std::move(e));
    return lid;
  }
  for (int64_t p : parent_lids) {
    LineageEntry e;
    e.lid = lid;
    if (p != 0) e.parent_lid = p;
    e.func_id = func_id;
    e.ver_id = ver_id;
    e.data_type = LineageDataType::kTable;
    AppendLocked(std::move(e));
  }
  return lid;
}

std::vector<LineageEntry> LineageStore::EdgesOfLocked(int64_t lid) const {
  std::vector<LineageEntry> out;
  auto [lo, hi] = by_child_.equal_range(lid);
  for (auto it = lo; it != hi; ++it) {
    out.push_back(entries_[it->second]);
  }
  return out;
}

std::vector<LineageEntry> LineageStore::EdgesOf(int64_t lid) const {
  common::MutexLock lock(mu_);
  return EdgesOfLocked(lid);
}

std::vector<int64_t> LineageStore::ParentsOf(int64_t lid) const {
  common::MutexLock lock(mu_);
  std::vector<int64_t> out;
  for (const auto& e : EdgesOfLocked(lid)) {
    if (e.parent_lid.has_value()) out.push_back(*e.parent_lid);
  }
  return out;
}

std::vector<LineageEntry> LineageStore::TraceToSources(int64_t lid) const {
  common::MutexLock lock(mu_);
  std::vector<LineageEntry> out;
  std::set<int64_t> visited;
  std::vector<int64_t> frontier{lid};
  while (!frontier.empty()) {
    int64_t cur = frontier.back();
    frontier.pop_back();
    if (!visited.insert(cur).second) continue;
    for (const auto& e : EdgesOfLocked(cur)) {
      out.push_back(e);
      if (e.parent_lid.has_value()) frontier.push_back(*e.parent_lid);
    }
  }
  return out;
}

rel::Table LineageStore::ToTable(size_t max_rows) const {
  using rel::DataType;
  using rel::Value;
  rel::Table t("Lineage", rel::Schema({{"lid", DataType::kInt},
                                       {"parent_lid", DataType::kInt},
                                       {"src_uri", DataType::kString},
                                       {"func_id", DataType::kString},
                                       {"ver_id", DataType::kInt},
                                       {"data_type", DataType::kString},
                                       {"ts", DataType::kDouble}}));
  common::MutexLock lock(mu_);
  size_t n = max_rows == 0 ? entries_.size()
                           : std::min(max_rows, entries_.size());
  for (size_t i = 0; i < n; ++i) {
    const LineageEntry& e = entries_[i];
    t.AppendRow({Value::Int(e.lid),
                 e.parent_lid.has_value() ? Value::Int(*e.parent_lid)
                                          : Value::Null(),
                 e.src_uri.empty() ? Value::Null() : Value::Str(e.src_uri),
                 e.func_id.empty() ? Value::Null() : Value::Str(e.func_id),
                 Value::Int(e.ver_id),
                 Value::Str(e.data_type == LineageDataType::kRow ? "row"
                                                                 : "table"),
                 Value::Double(e.ts)});
  }
  return t;
}

size_t LineageStore::ApproxBytes() const {
  common::MutexLock lock(mu_);
  size_t bytes = 0;
  for (const auto& e : entries_) {
    bytes += sizeof(LineageEntry) + e.src_uri.size() + e.func_id.size();
  }
  return bytes;
}

}  // namespace kathdb::lineage
