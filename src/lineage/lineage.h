/// \file lineage.h
/// \brief Unified provenance model (Table 3 of the paper).
///
/// Every row records one edge of the provenance graph:
///   Lineage(lid, parent_lid, src_uri, func_id, ver_id, data_type, ts)
/// Functions whose dependency pattern is one_to_one / one_to_many get
/// row-level lineage; many_to_one / many_to_many (aggregation, sort, join
/// of whole tables) get table-level lineage where every input is assumed
/// to contribute to every output. Tracking granularity is configurable so
/// the lineage-overhead experiment (E6) can sweep modes.
///
/// \ingroup kathdb_lineage

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "relational/table.h"

namespace kathdb::lineage {

/// How a function's outputs depend on its inputs (classified by the same
/// LLM that generates the function; Section 3).
enum class DependencyPattern {
  kOneToOne,
  kOneToMany,
  kManyToOne,
  kManyToMany,
};

const char* DependencyPatternName(DependencyPattern p);

/// Row- vs table-level provenance edge.
enum class LineageDataType { kRow, kTable };

/// Granularity knob for experiment E6.
enum class TrackingMode {
  kOff,      ///< record nothing
  kTable,    ///< only table-level edges, even for narrow dependencies
  kSampled,  ///< row-level edges for a sampled fraction of rows
  kRow,      ///< full row-level lineage for narrow dependencies
};

/// One provenance edge (one row of the Lineage table).
struct LineageEntry {
  int64_t lid = 0;
  std::optional<int64_t> parent_lid;  // nullopt for external input data
  std::string src_uri;                // non-empty for ingested raw data
  std::string func_id;
  int64_t ver_id = 0;
  LineageDataType data_type = LineageDataType::kRow;
  double ts = 0.0;  // logical timestamp (monotone per store)
};

/// \brief Append-only provenance store with graph traversal.
///
/// Appends and traversals are internally synchronized (one mutex), so
/// concurrent queries of the service layer can record derivations into a
/// shared store. The zero-copy `entries()` accessor is the exception: it
/// is only safe while no concurrent writer is active (tests/benches).
class LineageStore {
 public:
  explicit LineageStore(TrackingMode mode = TrackingMode::kRow,
                        double sample_rate = 0.1)
      : mode_(mode), sample_rate_(sample_rate) {}

  TrackingMode mode() const { return mode_; }
  void set_mode(TrackingMode mode) { mode_ = mode; }
  double sample_rate() const { return sample_rate_; }

  /// Allocates a fresh lineage id (monotonically increasing, starts at 1).
  int64_t NewLid() KATHDB_EXCLUDES(mu_);

  /// Records the ingestion of external data (parent NULL, src_uri set).
  /// Returns the new lid, or 0 when tracking is off.
  int64_t RecordIngest(const std::string& src_uri, const std::string& func_id,
                       int64_t ver_id, LineageDataType type)
      KATHDB_EXCLUDES(mu_);

  /// Records a row-level derivation edge child<-parent. Honors the
  /// tracking mode (may drop the edge under kOff/kTable/kSampled).
  /// Returns the child lid, or 0 when the edge was not recorded.
  int64_t RecordRowDerivation(int64_t parent_lid, const std::string& func_id,
                              int64_t ver_id) KATHDB_EXCLUDES(mu_);

  /// Records a table-level derivation with one edge per parent table.
  /// Returns the child lid (0 when tracking is off).
  int64_t RecordTableDerivation(const std::vector<int64_t>& parent_lids,
                                const std::string& func_id, int64_t ver_id)
      KATHDB_EXCLUDES(mu_);

  /// All edges whose child is `lid`.
  std::vector<LineageEntry> EdgesOf(int64_t lid) const
      KATHDB_EXCLUDES(mu_);

  /// Direct parents of `lid`.
  std::vector<int64_t> ParentsOf(int64_t lid) const KATHDB_EXCLUDES(mu_);

  /// Transitive closure of parents up to the external sources; each hop is
  /// returned once, root-most last.
  std::vector<LineageEntry> TraceToSources(int64_t lid) const
      KATHDB_EXCLUDES(mu_);

  size_t num_entries() const KATHDB_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return entries_.size();
  }
  /// Unsynchronized view; only valid without concurrent writers
  /// (tests/benches), hence the analysis escape hatch.
  const std::vector<LineageEntry>& entries() const
      KATHDB_NO_THREAD_SAFETY_ANALYSIS {
    return entries_;
  }

  /// Renders the store as a relational table in the Table-3 layout for the
  /// Figure-2 reproduction.
  rel::Table ToTable(size_t max_rows = 0) const KATHDB_EXCLUDES(mu_);

  /// Approximate memory footprint of the stored edges in bytes (E6).
  size_t ApproxBytes() const KATHDB_EXCLUDES(mu_);

 private:
  void AppendLocked(LineageEntry e) KATHDB_REQUIRES(mu_);
  std::vector<LineageEntry> EdgesOfLocked(int64_t lid) const
      KATHDB_REQUIRES(mu_);

  mutable common::Mutex mu_;
  TrackingMode mode_;
  double sample_rate_;
  int64_t next_lid_ KATHDB_GUARDED_BY(mu_) = 1;
  double clock_ KATHDB_GUARDED_BY(mu_) = 0.0;
  uint64_t sample_state_ KATHDB_GUARDED_BY(mu_) = 0x9E3779B97F4A7C15ULL;
  std::vector<LineageEntry> entries_ KATHDB_GUARDED_BY(mu_);
  std::multimap<int64_t, size_t> by_child_
      KATHDB_GUARDED_BY(mu_);  // lid -> entry index
};

}  // namespace kathdb::lineage
