/// \file kathdb.h
/// \brief KathDB — the public facade of the system.
///
/// One object owning the catalog, lineage store, function registry, usage
/// meter, simulated models and media stores, exposing the full paper
/// pipeline:
///
///   KathDB db;
///   db.RegisterTable(movie_table);
///   db.IngestDocument(plot);      // populates the text semantic graph
///   db.IngestImage(vid, poster);  // populates the scene graph
///   llm::ScriptedUser user({"plots with uncommon scenes", "OK"});
///   auto result = db.Query("Sort the films by how exciting they are, "
///                          "but the poster should be 'boring'", &user);
///   db.ExplainPipeline();         // coarse (Figure 5 left)
///   db.ExplainTuple(lid);         // fine-grained (Figure 5 right)
///
/// \ingroup kathdb_engine

#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "engine/executor.h"
#include "service/result_cache.h"
#include "engine/explainer.h"
#include "fao/function.h"
#include "fao/registry.h"
#include "lineage/lineage.h"
#include "llm/channel.h"
#include "llm/model.h"
#include "multimodal/media.h"
#include "multimodal/scene_graph.h"
#include "multimodal/text_graph.h"
#include "optimizer/optimizer.h"
#include "parser/nl_parser.h"
#include "planner/plan_generator.h"
#include "relational/catalog.h"

namespace kathdb::engine {

struct KathDBOptions {
  lineage::TrackingMode lineage_mode = lineage::TrackingMode::kRow;
  double lineage_sample_rate = 0.1;  ///< used when mode == kSampled
  /// Default executor knobs; executor.max_parallel_nodes > 1 makes the
  /// engine create an intra-query worker pool of that many threads (the
  /// DAG scheduler and morsel evaluation draw from it).
  ExecutorOptions executor;
  opt::OptimizerOptions optimizer;
  mm::VlmConfig vlm;
  mm::NerConfig ner;
};

/// \brief Everything produced while answering one NL query.
struct QueryOutcome {
  rel::Table result;
  parser::QuerySketch sketch;
  fao::LogicalPlan logical_plan;
  opt::PhysicalPlan physical_plan;
  ExecutionReport report;
};

/// \brief The KathDB system facade.
class KathDB {
 public:
  explicit KathDB(KathDBOptions options = {});

  // ---- component access (benches and tests reach inside) ----
  rel::Catalog* catalog() { return &catalog_; }
  lineage::LineageStore* lineage() { return &lineage_; }
  fao::FunctionRegistry* registry() { return &registry_; }
  llm::UsageMeter* meter() { return &meter_; }
  fao::ImageStore* images() { return &images_; }
  mm::ImageLoader* image_loader() { return &loader_; }
  mm::SimulatedVlm* vlm() { return &vlm_; }
  mm::SimulatedNer* ner() { return &ner_; }
  llm::SimulatedLLM* llm() { return &llm_; }
  // Const overloads so read-only callers (stats endpoints, monitors)
  // don't need a mutable handle on the facade.
  const rel::Catalog* catalog() const { return &catalog_; }
  const lineage::LineageStore* lineage() const { return &lineage_; }
  const fao::FunctionRegistry* registry() const { return &registry_; }
  const llm::UsageMeter* meter() const { return &meter_; }
  const fao::ImageStore* images() const { return &images_; }
  const mm::ImageLoader* image_loader() const { return &loader_; }
  const mm::SimulatedVlm* vlm() const { return &vlm_; }
  const mm::SimulatedNer* ner() const { return &ner_; }
  const llm::SimulatedLLM* llm() const { return &llm_; }
  const KathDBOptions& options() const { return options_; }

  /// Attaches a cross-query result cache: FAO evaluation (via the exec
  /// context) and the simulated LLM both consult it. Call before serving
  /// traffic; pass nullptr to detach. The cache is owned by the caller
  /// (normally service::QueryService).
  void set_result_cache(service::ResultCache* cache);
  service::ResultCache* result_cache() const { return result_cache_; }

  /// Attaches a cross-query LLM batch scheduler: FAO evaluation (via the
  /// exec context, when the executor enables batching) and the simulated
  /// LLM's Submit both route through it. Same ownership and lifecycle
  /// discipline as set_result_cache; pass nullptr to detach.
  void set_batch_scheduler(llm::BatchScheduler* batcher);
  llm::BatchScheduler* batch_scheduler() const { return batcher_; }

  /// Injects the time source used for simulated model round trips (the
  /// ExecContext clock). Null (default) means the wall clock.
  void set_clock(common::Clock* clock) { clock_ = clock; }
  common::Clock* clock() const { return clock_; }

  /// Execution context wired to this instance's components.
  fao::ExecContext MakeContext();

  // ---- ingestion ----
  Status RegisterTable(rel::TablePtr table,
                       rel::RelationKind kind = rel::RelationKind::kBaseTable);
  /// Extracts the text semantic graph of `doc` into the views.
  Status IngestDocument(const mm::Document& doc);
  /// Stores the raw image and populates the scene-graph views.
  Status IngestImage(int64_t vid, const mm::SyntheticImage& image);

  // ---- the paper pipeline ----
  /// NL query -> clarification/sketch (interactive) -> logical plan ->
  /// physical plan -> monitored execution. The outcome is retained for
  /// explanation queries.
  Result<QueryOutcome> Query(const std::string& nl_query,
                             llm::UserChannel* user);

  /// Re-entrant variant for the concurrent service layer: runs the same
  /// pipeline against a per-query ScopedCatalog overlay (intermediates
  /// stay query-local, so simultaneous queries never collide on output
  /// names) and does *not* retain the outcome as `last_outcome()`.
  /// Safe to call from many threads on one KathDB instance.
  Result<QueryOutcome> QueryDetached(const std::string& nl_query,
                                     llm::UserChannel* user);

  /// QueryDetached with a per-query executor-options override — the
  /// service layer's intra-query parallelism budget — and an externally
  /// owned worker pool for DAG/morsel work (null falls back to the
  /// engine's own pool, if any).
  Result<QueryOutcome> QueryDetached(const std::string& nl_query,
                                     llm::UserChannel* user,
                                     const ExecutorOptions& exec_options,
                                     common::ThreadPool* exec_pool);

  /// Coarse pipeline explanation of the last query (Figure 5, left).
  Result<std::string> ExplainPipeline();
  /// Fine-grained tuple explanation (Figure 5, right).
  Result<std::string> ExplainTuple(int64_t lid);
  /// NL explanation entry point over the last query's lineage.
  Result<std::string> AskExplanation(const std::string& question);

  /// Persists all generated function versions (FAO disk persistence).
  Status SaveFunctions(const std::string& dir) const {
    return registry_.SaveToDir(dir);
  }

  /// Last query outcome, if any.
  const std::optional<QueryOutcome>& last_outcome() const { return last_; }

 private:
  /// Shared pipeline body behind Query/QueryDetached; all mutable state
  /// it touches is reached through `ctx` or internally synchronized
  /// components (registry, lineage, meter). `exec_options` governs the
  /// executor only (monitoring, repairs, intra-query parallelism).
  Result<QueryOutcome> RunPipeline(const std::string& nl_query,
                                   llm::UserChannel* user,
                                   fao::ExecContext* ctx,
                                   const ExecutorOptions& exec_options);

  KathDBOptions options_;
  /// Intra-query worker pool; created when the configured executor
  /// options ask for parallelism, else null (fully sequential).
  std::unique_ptr<common::ThreadPool> exec_pool_;
  rel::Catalog catalog_;
  lineage::LineageStore lineage_;
  fao::FunctionRegistry registry_;
  llm::UsageMeter meter_;
  llm::SimulatedLLM llm_;
  mm::ImageLoader loader_;
  fao::ImageStore images_;
  mm::SimulatedVlm vlm_;
  mm::SimulatedNer ner_;
  service::ResultCache* result_cache_ = nullptr;  ///< not owned
  llm::BatchScheduler* batcher_ = nullptr;        ///< not owned
  common::Clock* clock_ = nullptr;                ///< not owned
  std::optional<QueryOutcome> last_;
};

}  // namespace kathdb::engine
