#include "engine/executor.h"

#include <chrono>
#include <future>
#include <map>
#include <set>

#include "common/strings.h"
#include "engine/scheduler.h"

namespace kathdb::engine {

using fao::FunctionSpec;
using rel::Table;
using rel::TablePtr;

std::string ExecutionReport::ToText() const {
  std::string out = "Execution report (" +
                    std::to_string(node_runs.size()) + " nodes, " +
                    std::to_string(total_repairs) + " repairs, " +
                    std::to_string(total_anomalies) + " anomalies)\n";
  for (const auto& run : node_runs) {
    // Built from string helpers, not a fixed-size buffer: long repaired
    // function names must never be silently truncated.
    out += "  " + PadRight(run.name, 24) + " [" + run.template_id + " v" +
           std::to_string(run.ver_id) + "] rows=" +
           PadRight(std::to_string(run.output_rows), 6) + " " +
           FormatDouble(run.runtime_ms, 2) + "ms";
    if (run.repair_attempts > 0) out += " (repaired)";
    if (run.semantic_flagged) out += " (anomaly escalated)";
    out += "\n";
  }
  return out;
}

// -------------------------------------------------------- AgenticMonitor

Result<FunctionSpec> AgenticMonitor::RepairSyntactic(
    const FunctionSpec& failed, const Status& error, fao::ExecContext* ctx) {
  // Reviewer: diagnose from the captured stack trace / error message.
  std::string diagnosis;
  FunctionSpec patched = failed;
  bool repairable = false;

  if (ContainsIgnoreCase(error.message(), "heic")) {
    // The paper's running example: the pipeline hits an unsupported HEIC
    // poster; the rewriter adds a conversion step to a supported format.
    diagnosis = "unsupported HEIC input; add a format-conversion step "
                "before pixel analysis";
    if (ctx->image_loader != nullptr) {
      ctx->image_loader->EnableHeicConversion();
      patched.params.Set("heic_conversion", Json::Bool(true));
      patched.source_text += " [rewriter fix: convert HEIC inputs to a "
                             "supported format before decoding]";
      repairable = true;
    }
  } else if (ContainsIgnoreCase(error.message(), "division by zero")) {
    diagnosis = "division by zero; guard the denominator";
    patched.params.Set("zero_guard", Json::Bool(true));
    patched.source_text += " [rewriter fix: guarded zero denominator]";
    repairable = true;
  }

  llm_->Charge("Reviewer: diagnose the exception '" + error.message() +
                   "' with node metadata and sampled parameters.",
               diagnosis.empty() ? "cannot repair automatically" : diagnosis);
  if (!repairable) {
    return Status::SyntacticError("monitor cannot repair: " +
                                  error.message());
  }
  // Rewriter: new version, earlier versions left intact.
  patched.ver_id = registry_->RegisterNewVersion(patched);
  if (user_ != nullptr) {
    user_->Notify("execute", "Repaired '" + failed.name + "' (" + diagnosis +
                                 "); resuming from version " +
                                 std::to_string(patched.ver_id) + ".");
  }
  return patched;
}

std::string AgenticMonitor::DetectAnomaly(const opt::PhysicalNode& node,
                                          const Table& output,
                                          double sample_rate) {
  if (sample_rate <= 0.0 || output.num_rows() == 0) return "";
  size_t inspect = std::max<size_t>(
      1, static_cast<size_t>(output.num_rows() * sample_rate));

  // Check 1 — a join that links one poster to several movies: the paper's
  // example of a silent semantic fault. Applies to join-ish nodes with a
  // vid column: one vid should map to one title.
  if (ContainsIgnoreCase(node.sig.name, "join")) {
    auto vidx = output.schema().IndexOf("vid");
    auto tidx = output.schema().IndexOf("title");
    if (vidx.has_value() && tidx.has_value()) {
      std::map<int64_t, std::set<std::string>> titles_per_vid;
      for (size_t r = 0; r < inspect; ++r) {
        titles_per_vid[output.at(r, *vidx).AsInt()].insert(
            output.at(r, *tidx).AsString());
      }
      for (const auto& [vid, titles] : titles_per_vid) {
        if (titles.size() > 1) {
          std::string msg =
              "poster image vid=" + std::to_string(vid) + " is linked to " +
              std::to_string(titles.size()) +
              " different movies; the generated join likely assumed a "
              "one-to-one correspondence between posters and movie_table "
              "rows, which does not hold";
          llm_->Charge("Monitor: inspect sampled output of '" +
                           node.sig.name + "' for semantic anomalies.",
                       msg);
          return msg;
        }
      }
    }
  }
  // Check 2 — score columns must not be NULL or out of [0,1].
  for (const auto& col : output.schema().columns()) {
    if (col.name.find("_score") == std::string::npos) continue;
    auto cidx = output.schema().IndexOf(col.name);
    for (size_t r = 0; r < inspect; ++r) {
      const rel::Value& v = output.at(r, *cidx);
      if (v.is_null()) {
        return "column '" + col.name + "' contains NULL scores";
      }
      double d = v.AsDouble();
      if (d < -1e-9 || d > 1.0 + 1e-9) {
        return "column '" + col.name + "' holds out-of-range score " +
               FormatDouble(d, 4);
      }
    }
  }
  llm_->Charge("Monitor: inspect sampled output of '" + node.sig.name +
                   "' for semantic anomalies.",
               "clean");
  return "";
}

Result<FunctionSpec> AgenticMonitor::ResolveAnomaly(
    const opt::PhysicalNode& node, const std::string& anomaly,
    bool ask_user) {
  std::string reply = "adjust";
  if (ask_user && user_ != nullptr) {
    KATHDB_ASSIGN_OR_RETURN(
        reply,
        user_->Ask("execute",
                   "Semantic anomaly in '" + node.sig.name + "': " + anomaly +
                       ". Reply 'accept' to keep the operator as is, "
                       "'adjust' to enforce a unique match per poster, or "
                       "'rewrite' for a full rewrite."));
  }
  std::string r = ToLower(Trim(reply));
  if (r == "accept" || r == "ok") {
    return node.spec;  // user accepted the behaviour
  }
  // Adjust (default): enforce uniqueness by deduplicating on the key.
  FunctionSpec patched = node.spec;
  if (patched.template_id == "sql" &&
      ContainsIgnoreCase(anomaly, "linked to")) {
    patched.params.Set("enforce_unique", Json::Str("vid"));
    patched.source_text +=
        " [monitor fix: enforce one movie per poster via deduplication]";
  } else {
    patched.source_text += " [monitor note: " + anomaly + "]";
  }
  patched.ver_id = registry_->RegisterNewVersion(patched);
  return patched;
}

// --------------------------------------------------------------- Executor

namespace {

/// Parents for table-level lineage: prefer each input's table lid; fall
/// back to the lid of its first tracked row.
std::vector<int64_t> TableParents(const std::vector<TablePtr>& inputs) {
  std::vector<int64_t> parents;
  for (const auto& t : inputs) {
    if (t == nullptr) continue;
    if (t->table_lid() != 0) {
      parents.push_back(t->table_lid());
    } else {
      for (size_t r = 0; r < t->num_rows(); ++r) {
        if (t->row_lid(r) != 0) {
          parents.push_back(t->row_lid(r));
          break;
        }
      }
    }
  }
  return parents;
}

/// Deduplicates rows by the given key column, keeping the first row.
/// Survivors are collected into a selection vector and gathered in one
/// bulk append instead of boxing a Row per survivor.
Table DedupByColumn(const Table& in, const std::string& key) {
  auto kidx = in.schema().IndexOf(key);
  if (!kidx.has_value()) return in;
  std::vector<uint32_t> sel;
  std::set<std::string> seen;
  for (size_t r = 0; r < in.num_rows(); ++r) {
    std::string k = in.at(r, *kidx).ToString();
    if (seen.insert(k).second) sel.push_back(static_cast<uint32_t>(r));
  }
  Table out(in.name(), in.schema());
  out.Reserve(sel.size());
  out.AppendGather(in, sel.data(), sel.size());
  out.set_table_lid(in.table_lid());
  return out;
}

}  // namespace

Status Executor::RunNode(const opt::PhysicalNode& node, fao::ExecContext* ctx,
                         NodeRun* run, TablePtr* out_table, bool is_final) {
  run->name = node.sig.name;
  run->template_id = node.spec.template_id;
  run->ver_id = node.spec.ver_id;
  run->dependency_pattern = node.spec.dependency_pattern;

  // Resolve inputs from the catalog (base tables, views, intermediates);
  // the scheduler guarantees every producing node has materialized its
  // output before this node starts.
  std::vector<TablePtr> inputs;
  for (const auto& in : node.sig.inputs) {
    KATHDB_ASSIGN_OR_RETURN(TablePtr t, ctx->catalog->Get(in));
    inputs.push_back(std::move(t));
  }

  fao::MorselOptions morsels;
  morsels.morsel_size = options_.morsel_size;
  morsels.pool = ctx->exec_pool;

  auto t0 = std::chrono::steady_clock::now();
  Result<Table> result =
      fao::EvaluateWithMorsels(node.spec, inputs, ctx, morsels);
  return FinishNode(node, ctx, run, out_table, inputs, node.spec,
                    std::move(result), t0, is_final);
}

void Executor::RunNodeAsync(const opt::PhysicalNode& node,
                            fao::ExecContext* ctx, NodeRun* run,
                            TablePtr* out_table, bool is_final,
                            DagScheduler::DoneFn done) {
  bool batched = options_.enable_llm_batching && ctx->batcher != nullptr &&
                 fao::IsBatchableTemplate(node.spec.template_id);
  if (!batched) {
    done(RunNode(node, ctx, run, out_table, is_final));
    return;
  }

  run->name = node.sig.name;
  run->template_id = node.spec.template_id;
  run->ver_id = node.spec.ver_id;
  run->dependency_pattern = node.spec.dependency_pattern;
  std::vector<TablePtr> inputs;
  for (const auto& in : node.sig.inputs) {
    auto t = ctx->catalog->Get(in);
    if (!t.ok()) {
      done(t.status());
      return;
    }
    inputs.push_back(std::move(t).value());
  }
  fao::MorselOptions morsels;
  morsels.morsel_size = options_.morsel_size;
  morsels.pool = ctx->exec_pool;
  auto t0 = std::chrono::steady_clock::now();

  if (ctx->exec_pool == nullptr || options_.max_parallel_nodes <= 1) {
    // Sequential mode: nothing to resume on, so await the batch here.
    // Cross-query coalescing and the single-RTT flush still apply; only
    // this query's thread blocks, never the flusher.
    std::promise<Result<Table>> landed;
    fao::EvaluateBatched(
        node.spec, inputs, ctx, morsels,
        [&landed](Result<Table> r) { landed.set_value(std::move(r)); });
    done(FinishNode(node, ctx, run, out_table, inputs, node.spec,
                    landed.get_future().get(), t0, is_final));
    return;
  }

  // Parallel mode: park. The NodeRun state lives in this callback; the
  // dispatched worker returns to the pool as soon as every partition is
  // submitted, and the finish tail resumes on the exec pool when the
  // last batch lands (inline on the completing thread if the pool
  // refuses) — open LLM requests no longer occupy threads.
  const opt::PhysicalNode* nodep = &node;
  fao::EvaluateBatched(
      node.spec, inputs, ctx, morsels,
      [this, nodep, ctx, run, out_table, inputs, done, t0,
       is_final](Result<Table> r) {
        auto resume = [this, nodep, ctx, run, out_table, inputs, done, t0,
                       is_final, r]() mutable {
          done(FinishNode(*nodep, ctx, run, out_table, inputs, nodep->spec,
                          std::move(r), t0, is_final));
        };
        if (!ctx->exec_pool->TrySubmit(resume)) resume();
      });
}

Status Executor::FinishNode(const opt::PhysicalNode& node,
                            fao::ExecContext* ctx, NodeRun* run,
                            TablePtr* out_table,
                            const std::vector<TablePtr>& inputs,
                            FunctionSpec spec, Result<Table> result,
                            std::chrono::steady_clock::time_point started,
                            bool is_final) {
  fao::MorselOptions morsels;
  morsels.morsel_size = options_.morsel_size;
  morsels.pool = ctx->exec_pool;

  // Syntactic-repair loop over the first evaluation's outcome; repaired
  // specs re-evaluate synchronously (a repair changes the spec, so its
  // fingerprints no longer coalesce with in-flight twins anyway).
  for (int attempt = 0;; ++attempt) {
    if (result.ok()) break;
    if (!result.status().IsSyntacticError() ||
        attempt == options_.max_repair_attempts) {
      return result.status();
    }
    // On-the-fly repair instead of aborting (Section 5). Serialized so
    // concurrent branches never interleave user-channel escalations.
    {
      common::MutexLock lock(monitor_mu_);
      KATHDB_ASSIGN_OR_RETURN(
          spec, monitor_.RepairSyntactic(spec, result.status(), ctx));
    }
    ++run->repair_attempts;
    result = fao::EvaluateWithMorsels(spec, inputs, ctx, morsels);
  }
  auto t1 = std::chrono::steady_clock::now();
  run->runtime_ms =
      std::chrono::duration<double, std::milli>(t1 - started).count();
  run->ver_id = spec.ver_id;
  Table out = std::move(result).value();
  out.set_name(node.sig.output);

  // Post-hoc patch semantics: a monitor-enforced unique key applies to
  // this and future runs of the function. The key used here is tracked
  // so the anomaly path below never deduplicates the same key twice.
  std::string applied_dedup_key = spec.params.GetString("enforce_unique");
  if (!applied_dedup_key.empty()) {
    out = DedupByColumn(out, applied_dedup_key);
  }

  // ---- lineage recording per dependency pattern --------------------
  bool narrow = spec.dependency_pattern == "one_to_one" ||
                spec.dependency_pattern == "one_to_many";
  auto mode = ctx->lineage->mode();
  if (narrow && (mode == lineage::TrackingMode::kRow ||
                 mode == lineage::TrackingMode::kSampled)) {
    // Row-level: each output row derives from the input row whose lid it
    // carried through the function body.
    int64_t fallback_parent =
        inputs.empty() ? 0
                       : (inputs[0]->table_lid() != 0 ? inputs[0]->table_lid()
                                                      : 0);
    for (size_t r = 0; r < out.num_rows(); ++r) {
      int64_t parent = out.row_lid(r);
      if (parent == 0) parent = fallback_parent;
      int64_t child =
          ctx->lineage->RecordRowDerivation(parent, spec.name, spec.ver_id);
      out.set_row_lid(r, child);
    }
  } else {
    // Wide (or coarse tracking): one table-level derivation; all input
    // tuples are assumed to contribute to all output tuples.
    int64_t tlid = ctx->lineage->RecordTableDerivation(
        TableParents(inputs), spec.name, spec.ver_id);
    out.set_table_lid(tlid);
    // Row lids (if any) propagate unchanged through wide operators such
    // as sort, so downstream row-level tracing still works.
  }

  // ---- semantic monitoring on sampled output -----------------------
  std::string anomaly =
      monitor_.DetectAnomaly(node, out, options_.monitor_sample_rate);
  if (!anomaly.empty()) {
    run->semantic_flagged = true;
    FunctionSpec resolved;
    {
      common::MutexLock lock(monitor_mu_);
      KATHDB_ASSIGN_OR_RETURN(
          resolved, monitor_.ResolveAnomaly(node, anomaly,
                                            options_.ask_user_on_anomaly));
    }
    std::string key = resolved.params.GetString("enforce_unique");
    if (!key.empty() && resolved.ver_id != spec.ver_id) {
      run->ver_id = resolved.ver_id;
      if (key != applied_dedup_key) {
        out = DedupByColumn(out, key);
      }
    }
  }

  run->output_rows = out.num_rows();
  TablePtr shared = std::make_shared<Table>(std::move(out));
  ctx->catalog->Upsert(shared, rel::RelationKind::kIntermediate);
  *out_table = shared;
  EmitProgress(*run, shared, is_final);
  return Status::OK();
}

void Executor::EmitProgress(const NodeRun& run, const TablePtr& table,
                            bool is_final) {
  ProgressSink* sink = options_.progress;
  if (sink == nullptr) return;
  sink->OnNodeComplete(run, is_final);
  if (!is_final || table == nullptr) return;
  const Table& t = *table;
  size_t chunk = options_.stream_chunk_rows;
  if (chunk == 0 || chunk >= t.num_rows()) {
    // One chunk — emitted even for an empty table so the consumer always
    // learns the output schema.
    sink->OnResultChunk(t, 0, /*last=*/true);
    return;
  }
  for (size_t off = 0; off < t.num_rows(); off += chunk) {
    bool last = off + chunk >= t.num_rows();
    sink->OnResultChunk(t.Slice(off, off + chunk), off, last);
  }
}

Result<ExecutionReport> Executor::Run(const opt::PhysicalPlan& plan,
                                      fao::ExecContext* ctx) {
  ExecutionReport report;
  report.node_runs.resize(plan.nodes.size());
  std::vector<TablePtr> outputs(plan.nodes.size());

  // The node producing the plan's final output (mirrors the final_table
  // selection below): its completion triggers streamed result chunks.
  size_t final_idx = plan.nodes.empty() ? 0 : plan.nodes.size() - 1;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    if (plan.nodes[i].sig.output == plan.final_output) final_idx = i;
  }

  // Each node task writes only its own node_runs / outputs slot, so the
  // report keeps plan order however branches are interleaved; the
  // scheduler's completion handshake publishes the slots to this thread.
  SchedulerOptions sched;
  sched.max_parallel_nodes = options_.max_parallel_nodes;
  sched.pool = ctx->exec_pool;
  KATHDB_RETURN_IF_ERROR(DagScheduler::RunAsync(
      plan, sched,
      [this, &plan, ctx, &report, &outputs, final_idx](
          size_t idx, DagScheduler::DoneFn done) {
        RunNodeAsync(plan.nodes[idx], ctx, &report.node_runs[idx],
                     &outputs[idx], idx == final_idx, std::move(done));
      }));

  TablePtr final_table;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const NodeRun& run = report.node_runs[i];
    report.total_repairs += run.repair_attempts;
    if (run.semantic_flagged) ++report.total_anomalies;
    if (plan.nodes[i].sig.output == plan.final_output) {
      final_table = outputs[i];
      report.final_output_name = plan.final_output;
    }
  }
  if (final_table == nullptr && !plan.nodes.empty()) {
    // Fall back to the last node's output — the shared pointer already
    // in hand, never a deep copy out of the catalog.
    final_table = outputs.back();
    report.final_output_name = plan.nodes.back().sig.output;
  }
  report.result = std::move(final_table);
  return report;
}

}  // namespace kathdb::engine
