/// \file executor.h
/// \brief Execution engine with lineage recording and an agentic monitor.
///
/// The executor instantiates the physical plan node by node, materializing
/// every intermediate into the catalog and recording provenance according
/// to each function's dependency pattern (Section 3). Nodes are scheduled
/// over the plan's dependency DAG (engine/scheduler.h): with a parallelism
/// budget > 1 and a worker pool in the ExecContext, independent branches
/// run concurrently and row-wise FAO nodes additionally evaluate their
/// input in morsel partitions (fao::EvaluateWithMorsels). The agentic
/// monitor wraps each node:
///  - *syntactic faults* (e.g. an unsupported HEIC poster) trigger a
///    reviewer/rewriter loop that patches the function, bumps its ver_id
///    and resumes from the failed operator — the query never aborts;
///  - *semantic anomalies* (e.g. one poster joined to several movies) are
///    detected on sampled output and escalated to the user channel for
///    confirmation or correction.
///
/// \ingroup kathdb_engine

#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "engine/scheduler.h"
#include "fao/function.h"
#include "fao/registry.h"
#include "llm/channel.h"
#include "llm/model.h"
#include "optimizer/optimizer.h"

namespace kathdb::engine {

/// Per-node execution record.
struct NodeRun {
  std::string name;
  std::string template_id;
  int64_t ver_id = 0;
  std::string dependency_pattern;
  size_t output_rows = 0;
  double runtime_ms = 0.0;
  int repair_attempts = 0;      ///< syntactic repairs on this node
  bool semantic_flagged = false;  ///< anomaly escalated to the user
};

/// Result of executing a physical plan.
struct ExecutionReport {
  /// Final output table, shared with the catalog's materialized entry
  /// (never deep-copied out of the catalog); null only when the plan was
  /// empty.
  rel::TablePtr result;
  std::string final_output_name;
  /// One record per plan node, in plan order regardless of the order
  /// parallel branches actually finished in.
  std::vector<NodeRun> node_runs;
  int total_repairs = 0;
  int total_anomalies = 0;

  std::string ToText() const;
};

/// \brief Observer for streamed execution progress.
///
/// The net front-end implements this to flush row batches to a client
/// while the rest of the pipeline is still wrapping up. Callbacks run on
/// whatever thread finished the node (a pool worker under DAG-parallel
/// execution), so implementations must be thread-safe and must not block
/// for long — they sit on the query's critical path.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  /// A plan node finished successfully. `is_final` marks the node that
  /// produces the plan's final output.
  virtual void OnNodeComplete(const NodeRun& run, bool is_final) = 0;
  /// A batch of final-output rows (schema + rows + lineage ids), emitted
  /// in offset order immediately after the final node completes — before
  /// sibling branches finish and before the service layer wraps the
  /// outcome. `last` marks the tail batch. An empty result still emits
  /// one empty chunk so consumers always learn the output schema.
  virtual void OnResultChunk(const rel::Table& chunk, size_t row_offset,
                             bool last) = 0;
};

struct ExecutorOptions {
  /// Fraction of each node's output rows the monitor inspects for
  /// semantic anomalies (E11 sweeps this; 0 disables the monitor).
  double monitor_sample_rate = 1.0;
  /// Maximum automatic repair attempts per node before giving up.
  int max_repair_attempts = 2;
  /// Ask the user before applying a semantic fix (true reproduces the
  /// paper's interaction; false auto-accepts for unattended benches).
  bool ask_user_on_anomaly = true;
  /// Intra-query parallelism budget: maximum plan nodes in flight at
  /// once on ExecContext::exec_pool. 1 (or a null pool) keeps the
  /// classic sequential topological walk.
  int max_parallel_nodes = 1;
  /// Rows per partition for morsel-wise evaluation of row-wise FAO
  /// nodes; 0 keeps whole-table-at-a-time evaluation. Partitioning (and
  /// therefore result-cache keys) depends only on this value, never on
  /// the worker count.
  size_t morsel_size = 0;
  /// Cross-query batched LLM execution: when true and the ExecContext
  /// carries a llm::BatchScheduler, pure FAO nodes evaluate through the
  /// async submit -> flush -> resume path (fao::EvaluateBatched) instead
  /// of blocking a worker per simulated model round trip. Results,
  /// lineage, and usage accounting are byte-identical to the sequential
  /// path; only scheduling changes. Off by default — the service layer
  /// turns it on.
  bool enable_llm_batching = false;
  /// Streamed partial results: when set, node completions and the final
  /// node's output rows are reported through this sink as they happen.
  /// Not owned; must outlive the run and be thread-safe.
  ProgressSink* progress = nullptr;
  /// Rows per OnResultChunk emission; 0 streams the whole final table as
  /// one chunk.
  size_t stream_chunk_rows = 0;
};

/// \brief The agentic monitor: reviewer (diagnose) + rewriter (patch).
class AgenticMonitor {
 public:
  AgenticMonitor(llm::SimulatedLLM* llm, fao::FunctionRegistry* registry,
                 llm::UserChannel* user)
      : llm_(llm), registry_(registry), user_(user) {}

  /// Diagnoses a syntactic fault and attempts a patch. On success returns
  /// the new spec (registered with a fresh ver_id) to re-execute.
  Result<fao::FunctionSpec> RepairSyntactic(const fao::FunctionSpec& failed,
                                            const Status& error,
                                            fao::ExecContext* ctx);

  /// Inspects (a sample of) a node's output for semantic anomalies.
  /// Returns a description of the anomaly, or "" when clean.
  std::string DetectAnomaly(const opt::PhysicalNode& node,
                            const rel::Table& output, double sample_rate);

  /// Escalates an anomaly to the user; if the user requests a fix,
  /// returns a patched spec (registered), otherwise the original.
  Result<fao::FunctionSpec> ResolveAnomaly(const opt::PhysicalNode& node,
                                           const std::string& anomaly,
                                           bool ask_user);

 private:
  llm::SimulatedLLM* llm_;
  fao::FunctionRegistry* registry_;
  llm::UserChannel* user_;
};

/// \brief Executes physical plans.
class Executor {
 public:
  Executor(llm::SimulatedLLM* llm, fao::FunctionRegistry* registry,
           llm::UserChannel* user, ExecutorOptions options = {})
      : monitor_(llm, registry, user), options_(options) {}

  /// Runs the plan; intermediates are upserted into ctx->catalog under
  /// their declared output names. Lineage is recorded per dependency
  /// pattern through ctx->lineage. With options.max_parallel_nodes > 1
  /// and ctx->exec_pool set, independent DAG branches run concurrently;
  /// per-node work (repairs, anomaly escalation, lineage) stays
  /// deterministic and node_runs keeps plan order.
  Result<ExecutionReport> Run(const opt::PhysicalPlan& plan,
                              fao::ExecContext* ctx);

 private:
  /// Executes one plan node end to end: resolve inputs, evaluate with
  /// the repair loop (morsel-partitioned for row-wise functions), dedup
  /// exactly once, record lineage, monitor the output, upsert into the
  /// catalog. Safe to call from concurrent node tasks of one plan.
  /// `is_final` marks the node producing the plan's final output (it
  /// feeds the progress sink's streamed chunks).
  Status RunNode(const opt::PhysicalNode& node, fao::ExecContext* ctx,
                 NodeRun* run, rel::TablePtr* out, bool is_final);

  /// Continuation-style RunNode used under the DAG scheduler's async
  /// path. Without batching this is RunNode with an inline `done`. With
  /// batching, the node's first evaluation goes through
  /// fao::EvaluateBatched: the NodeRun state parks in the completion
  /// callback, the calling worker returns to the pool, and the finish
  /// tail resumes on ctx->exec_pool when the batch lands (inline on the
  /// completing thread if the pool refuses). In sequential mode (budget
  /// 1 / no pool) the batch is awaited on the calling thread instead —
  /// cross-query coalescing still applies, only this query blocks.
  void RunNodeAsync(const opt::PhysicalNode& node, fao::ExecContext* ctx,
                    NodeRun* run, rel::TablePtr* out, bool is_final,
                    DagScheduler::DoneFn done);

  /// Shared tail of both paths, starting from the first evaluation's
  /// result: syntactic-repair loop (re-evaluations run synchronously),
  /// dedup, lineage recording, semantic monitoring, catalog upsert.
  Status FinishNode(const opt::PhysicalNode& node, fao::ExecContext* ctx,
                    NodeRun* run, rel::TablePtr* out,
                    const std::vector<rel::TablePtr>& inputs,
                    fao::FunctionSpec spec, Result<rel::Table> result,
                    std::chrono::steady_clock::time_point started,
                    bool is_final);

  /// Reports a completed node to the progress sink; for the final node
  /// additionally streams the output in stream_chunk_rows-sized chunks.
  void EmitProgress(const NodeRun& run, const rel::TablePtr& table,
                    bool is_final);

  AgenticMonitor monitor_;
  ExecutorOptions options_;
  /// Serializes monitor escalations (repair + anomaly resolution) so
  /// concurrent branches never interleave user-channel interactions.
  /// (The monitor itself is not guarded: DetectAnomaly is a concurrent
  /// read-only probe; only the escalating calls are serialized.)
  common::Mutex monitor_mu_;
};

}  // namespace kathdb::engine
