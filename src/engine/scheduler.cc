#include "engine/scheduler.h"

#include <condition_variable>
#include <mutex>
#include <queue>
#include <set>
#include <vector>

namespace kathdb::engine {

Status DagScheduler::Run(const opt::PhysicalPlan& plan,
                         const SchedulerOptions& options,
                         const NodeFn& run_node) {
  const size_t n = plan.nodes.size();
  if (n == 0) return Status::OK();
  const std::vector<std::vector<size_t>> deps =
      plan.deps.size() == n ? plan.deps : plan.ComputeDeps();

  // Sequential fast path: exactly the classic topological walk.
  if (options.max_parallel_nodes <= 1 || options.pool == nullptr || n < 2) {
    for (size_t i = 0; i < n; ++i) {
      KATHDB_RETURN_IF_ERROR(run_node(i));
    }
    return Status::OK();
  }

  std::vector<size_t> indegree(n, 0);
  std::vector<std::vector<size_t>> dependents(n);
  for (size_t i = 0; i < n; ++i) {
    // Sanitize defensively: hand-built plans may list a producer twice,
    // name the node itself, or point past the plan.
    std::set<size_t> uniq(deps[i].begin(), deps[i].end());
    uniq.erase(i);
    for (size_t d : uniq) {
      if (d >= n) {
        return Status::InvalidArgument(
            "physical plan node " + std::to_string(i) +
            " depends on out-of-range node " + std::to_string(d));
      }
      dependents[d].push_back(i);
    }
    indegree[i] = uniq.size();
  }

  std::mutex mu;
  std::condition_variable cv;
  // Lowest index first: ties between simultaneously-ready nodes resolve
  // in plan order, keeping dispatch deterministic.
  std::priority_queue<size_t, std::vector<size_t>, std::greater<size_t>>
      ready;
  size_t completed = 0;
  int inflight = 0;
  bool failed = false;
  Status first_error = Status::OK();

  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }

  auto finish = [&](size_t idx, const Status& st) {
    std::lock_guard<std::mutex> lock(mu);
    --inflight;
    ++completed;
    if (!st.ok()) {
      if (!failed) {
        failed = true;
        first_error = st;
      }
    } else {
      for (size_t d : dependents[idx]) {
        if (--indegree[d] == 0) ready.push(d);
      }
    }
    cv.notify_all();
  };

  std::unique_lock<std::mutex> lock(mu);
  while (true) {
    while (!failed && !ready.empty() &&
           inflight < options.max_parallel_nodes) {
      size_t idx = ready.top();
      ready.pop();
      ++inflight;
      lock.unlock();
      bool submitted = options.pool->TrySubmit(
          [&finish, &run_node, idx] { finish(idx, run_node(idx)); });
      if (!submitted) {
        // Pool saturated or shutting down: run the node on this thread
        // so scheduling never blocks on a free worker.
        finish(idx, run_node(idx));
      }
      lock.lock();
    }
    if (completed == n) break;
    if (inflight == 0) {
      if (failed) break;
      if (ready.empty()) {
        return Status::InvalidArgument(
            "physical plan dependencies are unsatisfiable (cycle or "
            "forward reference); " +
            std::to_string(n - completed) + " node(s) unreachable");
      }
      continue;  // budget freed up; dispatch more
    }
    cv.wait(lock);
  }
  return first_error;
}

}  // namespace kathdb::engine
