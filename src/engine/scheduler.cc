#include "engine/scheduler.h"

#include <condition_variable>
#include <mutex>
#include <queue>
#include <set>
#include <vector>

namespace kathdb::engine {

Status DagScheduler::Run(const opt::PhysicalPlan& plan,
                         const SchedulerOptions& options,
                         const NodeFn& run_node) {
  return RunAsync(plan, options,
                  [&run_node](size_t idx, DoneFn done) { done(run_node(idx)); });
}

Status DagScheduler::RunAsync(const opt::PhysicalPlan& plan,
                              const SchedulerOptions& options,
                              const AsyncNodeFn& run_node) {
  const size_t n = plan.nodes.size();
  if (n == 0) return Status::OK();
  const std::vector<std::vector<size_t>> deps =
      plan.deps.size() == n ? plan.deps : plan.ComputeDeps();

  // Sequential fast path: exactly the classic topological walk, awaiting
  // each node's completion signal in turn (a parked node blocks only this
  // caller; batch flushes still progress on the scheduler's own thread).
  if (options.max_parallel_nodes <= 1 || options.pool == nullptr || n < 2) {
    for (size_t i = 0; i < n; ++i) {
      std::mutex m;
      std::condition_variable c;
      bool signalled = false;
      Status node_status = Status::OK();
      run_node(i, [&](Status st) {
        {
          std::lock_guard<std::mutex> node_lock(m);
          node_status = std::move(st);
          signalled = true;
        }
        c.notify_all();
      });
      std::unique_lock<std::mutex> node_lock(m);
      c.wait(node_lock, [&] { return signalled; });
      KATHDB_RETURN_IF_ERROR(node_status);
    }
    return Status::OK();
  }

  std::vector<size_t> indegree(n, 0);
  std::vector<std::vector<size_t>> dependents(n);
  for (size_t i = 0; i < n; ++i) {
    // Sanitize defensively: hand-built plans may list a producer twice,
    // name the node itself, or point past the plan.
    std::set<size_t> uniq(deps[i].begin(), deps[i].end());
    uniq.erase(i);
    for (size_t d : uniq) {
      if (d >= n) {
        return Status::InvalidArgument(
            "physical plan node " + std::to_string(i) +
            " depends on out-of-range node " + std::to_string(d));
      }
      dependents[d].push_back(i);
    }
    indegree[i] = uniq.size();
  }

  std::mutex mu;
  std::condition_variable cv;
  // Lowest index first: ties between simultaneously-ready nodes resolve
  // in plan order, keeping dispatch deterministic.
  std::priority_queue<size_t, std::vector<size_t>, std::greater<size_t>>
      ready;
  size_t completed = 0;
  int inflight = 0;
  bool failed = false;
  Status first_error = Status::OK();

  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }

  auto finish = [&](size_t idx, const Status& st) {
    std::lock_guard<std::mutex> lock(mu);
    --inflight;
    ++completed;
    if (!st.ok()) {
      if (!failed) {
        failed = true;
        first_error = st;
      }
    } else {
      for (size_t d : dependents[idx]) {
        if (--indegree[d] == 0) ready.push(d);
      }
    }
    cv.notify_all();
  };

  std::unique_lock<std::mutex> lock(mu);
  while (true) {
    while (!failed && !ready.empty() &&
           inflight < options.max_parallel_nodes) {
      size_t idx = ready.top();
      ready.pop();
      ++inflight;
      lock.unlock();
      // The node slot stays in flight until the body's DoneFn fires —
      // the dispatched task itself may return early after parking its
      // state on a batch, freeing the worker.
      auto done = [&finish, idx](Status st) { finish(idx, std::move(st)); };
      bool submitted = options.pool->TrySubmit(
          [&run_node, idx, done] { run_node(idx, done); });
      if (!submitted) {
        // Pool saturated or shutting down: run the node on this thread
        // so scheduling never blocks on a free worker.
        run_node(idx, done);
      }
      lock.lock();
    }
    if (completed == n) break;
    if (inflight == 0) {
      if (failed) break;
      if (ready.empty()) {
        return Status::InvalidArgument(
            "physical plan dependencies are unsatisfiable (cycle or "
            "forward reference); " +
            std::to_string(n - completed) + " node(s) unreachable");
      }
      continue;  // budget freed up; dispatch more
    }
    cv.wait(lock);
  }
  return first_error;
}

}  // namespace kathdb::engine
