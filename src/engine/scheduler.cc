#include "engine/scheduler.h"

#include <queue>
#include <set>
#include <vector>

#include "common/sync.h"

namespace kathdb::engine {

Status DagScheduler::Run(const opt::PhysicalPlan& plan,
                         const SchedulerOptions& options,
                         const NodeFn& run_node) {
  return RunAsync(plan, options,
                  [&run_node](size_t idx, DoneFn done) { done(run_node(idx)); });
}

namespace {

/// Shared completion state of one RunAsync invocation. All members are
/// guarded by `mu`; node bodies signal through Finish from any thread.
struct DagState {
  common::Mutex mu;
  common::CondVar cv;
  // Lowest index first: ties between simultaneously-ready nodes resolve
  // in plan order, keeping dispatch deterministic.
  std::priority_queue<size_t, std::vector<size_t>, std::greater<size_t>>
      ready KATHDB_GUARDED_BY(mu);
  std::vector<size_t> indegree KATHDB_GUARDED_BY(mu);
  std::vector<std::vector<size_t>> dependents KATHDB_GUARDED_BY(mu);
  size_t completed KATHDB_GUARDED_BY(mu) = 0;
  int inflight KATHDB_GUARDED_BY(mu) = 0;
  bool failed KATHDB_GUARDED_BY(mu) = false;
  Status first_error KATHDB_GUARDED_BY(mu) = Status::OK();

  void Finish(size_t idx, const Status& st) KATHDB_EXCLUDES(mu) {
    common::MutexLock lock(mu);
    --inflight;
    ++completed;
    if (!st.ok()) {
      if (!failed) {
        failed = true;
        first_error = st;
      }
    } else {
      for (size_t d : dependents[idx]) {
        if (--indegree[d] == 0) ready.push(d);
      }
    }
    cv.NotifyAll();
  }
};

}  // namespace

Status DagScheduler::RunAsync(const opt::PhysicalPlan& plan,
                              const SchedulerOptions& options,
                              const AsyncNodeFn& run_node) {
  const size_t n = plan.nodes.size();
  if (n == 0) return Status::OK();
  const std::vector<std::vector<size_t>> deps =
      plan.deps.size() == n ? plan.deps : plan.ComputeDeps();

  // Sequential fast path: exactly the classic topological walk, awaiting
  // each node's completion signal in turn (a parked node blocks only this
  // caller; batch flushes still progress on the scheduler's own thread).
  if (options.max_parallel_nodes <= 1 || options.pool == nullptr || n < 2) {
    for (size_t i = 0; i < n; ++i) {
      common::Mutex m;
      common::CondVar c;
      bool signalled = false;
      Status node_status = Status::OK();
      // The lambda outlives no one: run_node arranges for it to fire
      // before we return from the wait below. The analysis cannot see
      // through std::function, so the completion body asserts nothing.
      run_node(i, [&](Status st) KATHDB_NO_THREAD_SAFETY_ANALYSIS {
        {
          common::MutexLock node_lock(m);
          node_status = std::move(st);
          signalled = true;
        }
        c.NotifyAll();
      });
      common::MutexLock node_lock(m);
      while (!signalled) c.Wait(m);
      KATHDB_RETURN_IF_ERROR(node_status);
    }
    return Status::OK();
  }

  auto state = std::make_shared<DagState>();
  {
    common::MutexLock lock(state->mu);
    state->indegree.assign(n, 0);
    state->dependents.assign(n, {});
    for (size_t i = 0; i < n; ++i) {
      // Sanitize defensively: hand-built plans may list a producer twice,
      // name the node itself, or point past the plan.
      std::set<size_t> uniq(deps[i].begin(), deps[i].end());
      uniq.erase(i);
      for (size_t d : uniq) {
        if (d >= n) {
          return Status::InvalidArgument(
              "physical plan node " + std::to_string(i) +
              " depends on out-of-range node " + std::to_string(d));
        }
        state->dependents[d].push_back(i);
      }
      state->indegree[i] = uniq.size();
    }
    for (size_t i = 0; i < n; ++i) {
      if (state->indegree[i] == 0) state->ready.push(i);
    }
  }

  for (;;) {
    // Decide under the lock, dispatch outside it: a dispatched body may
    // complete inline (pool refusal, cache hit) and re-enter Finish.
    std::vector<size_t> dispatch_now;
    bool all_done = false;
    {
      common::MutexLock lock(state->mu);
      for (;;) {
        if (state->completed == n) {
          all_done = true;
          break;
        }
        if (!state->failed && !state->ready.empty() &&
            state->inflight < options.max_parallel_nodes) {
          while (!state->ready.empty() &&
                 state->inflight < options.max_parallel_nodes) {
            dispatch_now.push_back(state->ready.top());
            state->ready.pop();
            ++state->inflight;
          }
          break;
        }
        if (state->inflight == 0) {
          if (state->failed) {
            all_done = true;
            break;
          }
          // No work in flight, nothing ready, no failure: the remaining
          // nodes are unreachable.
          return Status::InvalidArgument(
              "physical plan dependencies are unsatisfiable (cycle or "
              "forward reference); " +
              std::to_string(n - state->completed) + " node(s) unreachable");
        }
        state->cv.Wait(state->mu);
      }
      if (all_done) return state->first_error;
    }

    for (size_t idx : dispatch_now) {
      // The node slot stays in flight until the body's DoneFn fires —
      // the dispatched task itself may return early after parking its
      // state on a batch, freeing the worker.
      auto done = [state, idx](Status st) { state->Finish(idx, std::move(st)); };
      bool submitted = options.pool->TrySubmit(
          [&run_node, idx, done] { run_node(idx, done); });
      if (!submitted) {
        // Pool saturated or shutting down: run the node on this thread
        // so scheduling never blocks on a free worker.
        run_node(idx, done);
      }
    }
  }
}

}  // namespace kathdb::engine
