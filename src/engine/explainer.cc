#include "engine/explainer.h"

#include <set>

#include "common/strings.h"

namespace kathdb::engine {

std::string ResultExplainer::ExplainPipeline(
    const opt::PhysicalPlan& plan) const {
  std::string out = "Pipeline explanation (coarse):\n";
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const auto& n = plan.nodes[i];
    std::string gloss = llm_->Summarize(n.sig.description);
    out += "  " + std::to_string(i + 1) + ": " + gloss + " [function " +
           n.sig.name + " v" + std::to_string(n.spec.ver_id) + " -> " +
           n.sig.output + "]\n";
  }
  return out;
}

Result<std::string> ResultExplainer::ExplainTuple(
    int64_t lid, const rel::Table& result) const {
  if (lid == 0) {
    return Status::InvalidArgument(
        "tuple has no lineage id (was tracking enabled?)");
  }
  std::string out = "Explanation for tuple lid=" + std::to_string(lid) + "\n";

  // Locate the row carrying this lid for field values.
  rel::Row row;
  bool found = false;
  for (size_t r = 0; r < result.num_rows(); ++r) {
    if (result.row_lid(r) == lid) {
      row = result.row(r);
      found = true;
      break;
    }
  }
  if (found) {
    auto tidx = result.schema().IndexOf("title");
    if (tidx.has_value()) {
      out += "  tuple: \"" + row[*tidx].ToString() + "\"\n";
    }
    out += "  fields:\n";
    for (size_t c = 0; c < result.schema().num_columns(); ++c) {
      out += "    " + result.schema().column(c).name + " = " +
             row[c].ToString() + "\n";
    }
  }

  // Walk the provenance chain root-ward.
  out += "  derivation:\n";
  std::set<int64_t> visited;
  std::vector<int64_t> frontier{lid};
  int depth = 0;
  while (!frontier.empty() && depth < 64) {
    int64_t cur = frontier.back();
    frontier.pop_back();
    if (!visited.insert(cur).second) continue;
    auto edges = lineage_->EdgesOf(cur);
    if (edges.empty()) continue;
    for (const auto& e : edges) {
      std::string line = "    lid " + std::to_string(e.lid);
      line += std::string(" [") +
              (e.data_type == lineage::LineageDataType::kRow ? "row"
                                                             : "table") +
              "]";
      if (!e.func_id.empty()) {
        line += " produced by " + e.func_id + " (v" +
                std::to_string(e.ver_id) + ")";
        auto spec = registry_->Version(e.func_id, e.ver_id);
        if (spec.ok() && !spec.value().source_text.empty()) {
          line += ": " + spec.value().source_text;
        }
      }
      if (e.parent_lid.has_value()) {
        line += " <- parent lid " + std::to_string(*e.parent_lid);
        frontier.push_back(*e.parent_lid);
      } else if (!e.src_uri.empty()) {
        line += " <- external source " + e.src_uri;
      }
      out += line + "\n";
    }
    ++depth;
  }

  // Field-derivation detail: recompute the combine formula with the
  // actual row values, like Figure 5's fine-grained example.
  if (found) {
    auto fidx = result.schema().IndexOf("final_score");
    auto ridx = result.schema().IndexOf("recency_score");
    // The content score carries the user's own term ("exciting_score",
    // "scary_score", ...): any *_score column that is neither the final
    // nor the recency score.
    std::optional<size_t> eidx;
    std::string content_col;
    for (size_t c = 0; c < result.schema().num_columns(); ++c) {
      const std::string& n = result.schema().column(c).name;
      if (n.find("_score") != std::string::npos && n != "final_score" &&
          n != "recency_score") {
        eidx = c;
        content_col = n;
        break;
      }
    }
    if (fidx.has_value() && eidx.has_value() && ridx.has_value()) {
      double ex = row[*eidx].AsDouble();
      double re = row[*ridx].AsDouble();
      double fin = row[*fidx].AsDouble();
      // Pull weights from the latest combine implementation if present.
      double w_ex = 0.7;
      double w_re = 0.3;
      auto combine = registry_->Latest("combine_scores");
      if (!combine.ok()) combine = registry_->Latest("gen_scores_fused");
      if (combine.ok() && combine.value().params.Has("terms")) {
        const Json& terms = combine.value().params.Get("terms");
        if (terms.size() == 2) {
          w_ex = terms.at(0).GetDouble("weight", 0.7);
          w_re = terms.at(1).GetDouble("weight", 0.3);
        }
      }
      out += "  field derivation:\n";
      out += "    " + content_col + ": plot entities matched the generated "
             "keyword list; score " + FormatDouble(ex, 8) + "\n";
      out += "    recency_score: assigned " + FormatDouble(re, 8) +
             (re >= 0.999 ? " (likely the most recent or very recent film)"
                          : "") + "\n";
      out += "    final_score: weighted sum: " + FormatDouble(w_ex, 2) +
             " * " + FormatDouble(ex, 8) + " + " + FormatDouble(w_re, 2) +
             " * " + FormatDouble(re, 8) + " = " + FormatDouble(fin, 8) +
             "\n";
    }
  }
  llm_->Charge("Explain how tuple " + std::to_string(lid) +
                   " was derived, using its lineage records.",
               out);
  return out;
}

Result<std::string> ResultExplainer::ExplainComparison(
    int64_t lid_a, int64_t lid_b, const rel::Table& result) const {
  rel::Row row_a;
  rel::Row row_b;
  bool found_a = false;
  bool found_b = false;
  for (size_t r = 0; r < result.num_rows(); ++r) {
    if (result.row_lid(r) == lid_a) { row_a = result.row(r); found_a = true; }
    if (result.row_lid(r) == lid_b) { row_b = result.row(r); found_b = true; }
  }
  if (!found_a || !found_b) {
    return Status::NotFound("one of the tuples is not in the result");
  }
  auto name_of = [&](const rel::Row& row) {
    auto tidx = result.schema().IndexOf("title");
    return tidx.has_value() ? row[*tidx].ToString() : "<tuple>";
  };
  std::string out = "Why \"" + name_of(row_a) + "\" (lid " +
                    std::to_string(lid_a) + ") ranks relative to \"" +
                    name_of(row_b) + "\" (lid " + std::to_string(lid_b) +
                    "):\n";
  for (size_t c = 0; c < result.schema().num_columns(); ++c) {
    const std::string& col = result.schema().column(c).name;
    if (col.find("_score") == std::string::npos && col != "year") continue;
    double a = row_a[c].AsDouble();
    double b = row_b[c].AsDouble();
    out += "  " + col + ": " + FormatDouble(a, 6) + " vs " +
           FormatDouble(b, 6);
    if (a > b) {
      out += "  <- advantage " + name_of(row_a);
    } else if (b > a) {
      out += "  <- advantage " + name_of(row_b);
    }
    out += "\n";
  }
  llm_->Charge("Explain the relative ranking of tuples " +
                   std::to_string(lid_a) + " and " + std::to_string(lid_b),
               out);
  return out;
}

Result<std::string> ResultExplainer::ExplainOperator(
    const std::string& name, const opt::PhysicalPlan& plan,
    const ExecutionReport& report) const {
  const opt::PhysicalNode* node = nullptr;
  for (const auto& n : plan.nodes) {
    if (ContainsIgnoreCase(n.sig.name, name)) {
      node = &n;
      break;
    }
  }
  if (node == nullptr) {
    return Status::NotFound("no operator named '" + name +
                            "' in the executed plan");
  }
  std::string out = "Operator " + node->sig.name + ":\n";
  out += "  intent: " + node->sig.description + "\n";
  out += "  implementation: " + node->spec.template_id + " (v" +
         std::to_string(node->spec.ver_id) + ", " +
         node->spec.dependency_pattern + ")\n";
  if (!node->spec.source_text.empty()) {
    out += "  body: " + node->spec.source_text + "\n";
  }
  for (const auto& run : report.node_runs) {
    if (run.name != node->sig.name) continue;
    out += "  execution: " + std::to_string(run.output_rows) +
           " output rows in " + FormatDouble(run.runtime_ms, 2) + " ms";
    if (run.repair_attempts > 0) {
      out += " after " + std::to_string(run.repair_attempts) +
             " automatic repair(s)";
    }
    if (run.semantic_flagged) out += "; a semantic anomaly was escalated";
    out += "\n";
  }
  auto versions = registry_->VersionsOf(node->sig.name);
  if (versions.size() > 1) {
    out += "  version history:\n";
    for (const auto& v : versions) {
      out += "    v" + std::to_string(v.ver_id) + " [" + v.template_id +
             "]\n";
    }
  }
  llm_->Charge("Explain why operator " + name + " behaved as it did.", out);
  return out;
}

Result<std::string> ResultExplainer::Ask(const std::string& question,
                                         const opt::PhysicalPlan& plan,
                                         const ExecutionReport& report,
                                         const rel::Table& result) const {
  std::string q = ToLower(question);
  // Collect numeric tokens for tuple/comparison questions.
  std::vector<int64_t> numbers;
  for (const auto& tok : Tokenize(q)) {
    if (!tok.empty() &&
        tok.find_first_not_of("0123456789") == std::string::npos) {
      numbers.push_back(std::strtoll(tok.c_str(), nullptr, 10));
    }
  }
  bool mentions_tuple = ContainsIgnoreCase(q, "tuple") ||
                        ContainsIgnoreCase(q, "lid") ||
                        ContainsIgnoreCase(q, "row");
  if (numbers.size() >= 2 && mentions_tuple &&
      (ContainsIgnoreCase(q, "above") || ContainsIgnoreCase(q, "over") ||
       ContainsIgnoreCase(q, "than") || ContainsIgnoreCase(q, "versus") ||
       ContainsIgnoreCase(q, " vs"))) {
    return ExplainComparison(numbers[0], numbers[1], result);
  }
  if (numbers.size() == 1 && mentions_tuple) {
    return ExplainTuple(numbers[0], result);
  }
  // "explain operator classify_boring" / "why did filter_boring ...".
  for (const auto& node : plan.nodes) {
    if (ContainsIgnoreCase(q, node.sig.name)) {
      return ExplainOperator(node.sig.name, plan, report);
    }
  }
  if (ContainsIgnoreCase(q, "pipeline") || ContainsIgnoreCase(q, "overview") ||
      ContainsIgnoreCase(q, "how") || ContainsIgnoreCase(q, "what")) {
    return ExplainPipeline(plan);
  }
  return Status::NotSupported(
      "cannot interpret the explanation request; ask about 'the pipeline', "
      "'tuple <lid>', 'tuple <a> above tuple <b>', or an operator name");
}

}  // namespace kathdb::engine
