/// \file explainer.h
/// \brief Query result explanation at two granularities (Figure 5).
///
/// After execution, the user can interrogate the full provenance of the
/// result in natural language. The coarse mode walks the physical plan and
/// glosses each transformation; the fine mode takes a specific lid,
/// inspects the function signature and implementation that produced it,
/// traces parent tuples through the lineage store, and shows how every
/// field of the output tuple was derived.
///
/// \ingroup kathdb_engine

#pragma once

#include <string>

#include "common/status.h"
#include "engine/executor.h"
#include "fao/registry.h"
#include "lineage/lineage.h"
#include "llm/model.h"
#include "optimizer/optimizer.h"
#include "relational/table.h"

namespace kathdb::engine {

/// \brief Renders pipeline- and tuple-level explanations from lineage.
class ResultExplainer {
 public:
  ResultExplainer(llm::SimulatedLLM* llm,
                  const fao::FunctionRegistry* registry,
                  const lineage::LineageStore* lineage)
      : llm_(llm), registry_(registry), lineage_(lineage) {}

  /// Coarse mode: numbered NL overview of the executed pipeline.
  std::string ExplainPipeline(const opt::PhysicalPlan& plan) const;

  /// Fine mode: field-by-field derivation of the tuple with lineage id
  /// `lid`, using `result` (the table carrying that row) for values.
  /// Walks parents up to the external sources.
  Result<std::string> ExplainTuple(int64_t lid,
                                   const rel::Table& result) const;

  /// Comparative mode: why does the tuple with `lid_a` rank above the one
  /// with `lid_b`? Contrasts their score fields.
  Result<std::string> ExplainComparison(int64_t lid_a, int64_t lid_b,
                                        const rel::Table& result) const;

  /// Operator mode ("why did filter_boring behave that way?"): the
  /// function's signature, body, version history and row counts.
  Result<std::string> ExplainOperator(const std::string& name,
                                      const opt::PhysicalPlan& plan,
                                      const ExecutionReport& report) const;

  /// NL entry point over lineage: dispatches "explain the pipeline",
  /// "explain tuple <lid>", "why is tuple <a> above tuple <b>" and
  /// "explain operator <name>" style questions.
  Result<std::string> Ask(const std::string& question,
                          const opt::PhysicalPlan& plan,
                          const ExecutionReport& report,
                          const rel::Table& result) const;

 private:
  llm::SimulatedLLM* llm_;
  const fao::FunctionRegistry* registry_;
  const lineage::LineageStore* lineage_;
};

}  // namespace kathdb::engine
