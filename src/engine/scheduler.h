/// \file scheduler.h
/// \brief DAG scheduler for intra-query parallelism.
///
/// PR 2 made KathDB concurrent *across* queries; the scheduler makes one
/// query parallel *inside*: it walks the physical plan's dependency DAG
/// (PhysicalPlan::deps) and dispatches every node whose inputs are ready
/// onto the shared common::ThreadPool, so independent branches — e.g. a
/// poster-classification chain and a recency-scoring chain — execute
/// concurrently. The node body itself (monitored execution, repairs,
/// lineage recording) is supplied by the executor as a callback and stays
/// per-node and deterministic.
///
/// Deadlock freedom: when the pool refuses a task (saturated or shared
/// with morsel work), the scheduler runs the node on its own thread —
/// the calling thread always participates, so progress never depends on
/// a free worker. With a budget of 1 (or no pool) the scheduler
/// degenerates to the classic sequential walk of the topological order,
/// byte-for-byte reproducing pre-DAG behaviour.
///
/// \ingroup kathdb_engine

#pragma once

#include <functional>

#include "common/status.h"
#include "common/thread_pool.h"
#include "optimizer/optimizer.h"

namespace kathdb::engine {

/// Scheduling knobs (derived from ExecutorOptions by the executor).
struct SchedulerOptions {
  /// Maximum plan nodes in flight at once; 1 = sequential.
  int max_parallel_nodes = 1;
  /// Worker pool node tasks are dispatched to; null = sequential.
  common::ThreadPool* pool = nullptr;
};

/// \brief Runs the nodes of a physical plan in dependency order.
class DagScheduler {
 public:
  /// Executes node `index`; called exactly once per node, only after all
  /// of the node's dependencies completed successfully.
  using NodeFn = std::function<Status(size_t index)>;

  /// Signals completion of an asynchronously executed node. Must be
  /// invoked exactly once, from any thread; may be invoked inline.
  using DoneFn = std::function<void(Status)>;

  /// Continuation-style node body: starts node `index` and arranges for
  /// `done` to fire when it completes. A body that parks on a batched
  /// LLM round trip returns immediately — the task's worker goes back to
  /// the pool and the node slot stays "in flight" until `done` fires, so
  /// concurrent LLM work scales with open requests, not threads.
  using AsyncNodeFn = std::function<void(size_t index, DoneFn done)>;

  /// Runs every node of `plan` respecting its dependency edges (taken
  /// from plan.deps when built, re-derived otherwise). Ready nodes are
  /// dispatched lowest-index-first. On the first node error no further
  /// nodes start; in-flight nodes finish and that first error is
  /// returned. Blocks until all dispatched work completed.
  static Status Run(const opt::PhysicalPlan& plan,
                    const SchedulerOptions& options, const NodeFn& run_node);

  /// Continuation-style variant of Run: a node occupies a parallelism
  /// slot from dispatch until its DoneFn fires, but no thread is held
  /// while it is parked. Blocks until every dispatched node completed.
  /// The sequential fast path (budget 1 / no pool) awaits each node's
  /// DoneFn in turn, byte-for-byte reproducing the sequential walk.
  static Status RunAsync(const opt::PhysicalPlan& plan,
                         const SchedulerOptions& options,
                         const AsyncNodeFn& run_node);
};

}  // namespace kathdb::engine
