#include "engine/kathdb.h"

namespace kathdb::engine {

KathDB::KathDB(KathDBOptions options)
    : options_(options),
      lineage_(options.lineage_mode, options.lineage_sample_rate),
      llm_(llm::KathLargeSpec(), &meter_),
      vlm_(options.vlm),
      ner_(options.ner) {
  if (options_.executor.max_parallel_nodes > 1) {
    exec_pool_ = std::make_unique<common::ThreadPool>(
        options_.executor.max_parallel_nodes);
  }
}

fao::ExecContext KathDB::MakeContext() {
  fao::ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.lineage = &lineage_;
  ctx.meter = &meter_;
  ctx.image_loader = &loader_;
  ctx.images = &images_;
  ctx.result_cache = result_cache_;
  ctx.exec_pool = exec_pool_.get();
  ctx.clock = clock_;
  ctx.batcher = batcher_;
  return ctx;
}

void KathDB::set_result_cache(service::ResultCache* cache) {
  result_cache_ = cache;
  llm_.set_result_cache(cache);
}

void KathDB::set_batch_scheduler(llm::BatchScheduler* batcher) {
  batcher_ = batcher;
  llm_.set_batch_scheduler(batcher);
}

Status KathDB::RegisterTable(rel::TablePtr table, rel::RelationKind kind) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  // Base-table ingestion creates a single table-level lineage entry
  // (paper, Section 3: "Ingesting a raw table creates a single lineage
  // entry with data_type=table").
  int64_t lid = lineage_.RecordIngest("table://" + table->name(),
                                      "load_data", 1,
                                      lineage::LineageDataType::kTable);
  table->set_table_lid(lid);
  return catalog_.Register(std::move(table), kind);
}

Status KathDB::IngestDocument(const mm::Document& doc) {
  return ner_.PopulateFromDocument(doc, &catalog_, &lineage_);
}

Status KathDB::IngestImage(int64_t vid, const mm::SyntheticImage& image) {
  images_.Put(vid, image);
  // The scene graph is populated from the *decodable* view of the image;
  // HEIC posters still enter the store raw so the pixel-level classifier
  // trips over them at execution time exactly as in the paper's scenario.
  mm::SyntheticImage decodable = image;
  decodable.format = "simg";
  return vlm_.PopulateFromImage(vid, decodable, &catalog_, &lineage_);
}

Result<QueryOutcome> KathDB::Query(const std::string& nl_query,
                                   llm::UserChannel* user) {
  fao::ExecContext ctx = MakeContext();
  KATHDB_ASSIGN_OR_RETURN(
      QueryOutcome outcome,
      RunPipeline(nl_query, user, &ctx, options_.executor));
  last_ = outcome;
  return outcome;
}

Result<QueryOutcome> KathDB::QueryDetached(const std::string& nl_query,
                                           llm::UserChannel* user) {
  return QueryDetached(nl_query, user, options_.executor, nullptr);
}

Result<QueryOutcome> KathDB::QueryDetached(const std::string& nl_query,
                                           llm::UserChannel* user,
                                           const ExecutorOptions& exec_options,
                                           common::ThreadPool* exec_pool) {
  rel::ScopedCatalog scoped(&catalog_);
  fao::ExecContext ctx = MakeContext();
  ctx.catalog = &scoped;
  if (exec_pool != nullptr) ctx.exec_pool = exec_pool;
  return RunPipeline(nl_query, user, &ctx, exec_options);
}

Result<QueryOutcome> KathDB::RunPipeline(const std::string& nl_query,
                                         llm::UserChannel* user,
                                         fao::ExecContext* ctx_in,
                                         const ExecutorOptions& exec_options) {
  fao::ExecContext& ctx = *ctx_in;

  // 1. Interactive NL parsing -> accepted query sketch.
  parser::NlParser nl_parser(&llm_, user, ctx.catalog);
  KATHDB_ASSIGN_OR_RETURN(parser::QuerySketch sketch,
                          nl_parser.Parse(nl_query));

  // 2. Logical plan generation (writer / tool user / verifier).
  planner::LogicalPlanGenerator generator(&llm_, ctx.catalog);
  KATHDB_ASSIGN_OR_RETURN(fao::LogicalPlan logical,
                          generator.Generate(sketch, nl_parser.intent()));

  // 3. Cost-based physical optimization (coder / profiler / critic).
  opt::QueryOptimizer optimizer(&llm_, &registry_, options_.optimizer);
  KATHDB_ASSIGN_OR_RETURN(opt::PhysicalPlan physical,
                          optimizer.Optimize(logical, nl_parser.intent(),
                                             &ctx));

  // 4. Monitored execution with lineage recording, scheduled over the
  // plan's dependency DAG.
  Executor executor(&llm_, &registry_, user, exec_options);
  KATHDB_ASSIGN_OR_RETURN(ExecutionReport report, executor.Run(physical,
                                                               &ctx));

  QueryOutcome outcome;
  if (report.result != nullptr) outcome.result = *report.result;
  outcome.sketch = std::move(sketch);
  outcome.logical_plan = std::move(logical);
  outcome.physical_plan = std::move(physical);
  outcome.report = std::move(report);
  return outcome;
}

Result<std::string> KathDB::ExplainPipeline() {
  if (!last_.has_value()) {
    return Status::NotFound("no query has been executed yet");
  }
  ResultExplainer explainer(&llm_, &registry_, &lineage_);
  return explainer.ExplainPipeline(last_->physical_plan);
}

Result<std::string> KathDB::ExplainTuple(int64_t lid) {
  if (!last_.has_value()) {
    return Status::NotFound("no query has been executed yet");
  }
  ResultExplainer explainer(&llm_, &registry_, &lineage_);
  return explainer.ExplainTuple(lid, last_->result);
}

Result<std::string> KathDB::AskExplanation(const std::string& question) {
  if (!last_.has_value()) {
    return Status::NotFound("no query has been executed yet");
  }
  ResultExplainer explainer(&llm_, &registry_, &lineage_);
  return explainer.Ask(question, last_->physical_plan, last_->report,
                       last_->result);
}

}  // namespace kathdb::engine
