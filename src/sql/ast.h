/// \file ast.h
/// \brief Abstract syntax tree for KathDB's embedded SQL dialect.
///
/// Dialect: SELECT [DISTINCT] items FROM rel [JOIN rel ON expr]* [WHERE]
/// [GROUP BY] [HAVING] [ORDER BY] [LIMIT]; CREATE TABLE; INSERT INTO.
///
/// \ingroup kathdb_sql

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relational/expr.h"
#include "relational/schema.h"

namespace kathdb::sql {

/// One SELECT-list item: expression plus optional alias. A `*` item has a
/// null expr.
struct SelectItem {
  rel::ExprPtr expr;  // null means '*'
  std::string alias;  // empty -> derived from expression
  /// Set when the item is an aggregate call (COUNT/SUM/AVG/MIN/MAX).
  bool is_aggregate = false;
  std::string agg_fn;     // upper-case name when is_aggregate
  std::string agg_arg;    // column name; empty for COUNT(*)
};

struct TableRef {
  std::string table;
  std::string alias;  // empty -> table name
  const std::string& effective_name() const {
    return alias.empty() ? table : alias;
  }
};

struct JoinClause {
  TableRef table;
  rel::ExprPtr on;  // null for CROSS JOIN
};

struct OrderItem {
  std::string column;  // output column name (or alias)
  bool descending = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  rel::ExprPtr where;  // may be null
  std::vector<std::string> group_by;
  rel::ExprPtr having;  // may be null
  std::vector<OrderItem> order_by;
  std::optional<size_t> limit;
};

struct CreateTableStmt {
  std::string name;
  rel::Schema schema;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<rel::Value>> rows;
};

enum class StmtKind { kSelect, kCreateTable, kInsert };

struct Statement {
  StmtKind kind = StmtKind::kSelect;
  SelectStmt select;
  CreateTableStmt create;
  InsertStmt insert;
};

}  // namespace kathdb::sql
