#include "sql/parser.h"

#include <cstdlib>

#include "common/strings.h"
#include "sql/token.h"

namespace kathdb::sql {

using rel::BinaryOp;
using rel::DataType;
using rel::Expr;
using rel::ExprPtr;
using rel::UnaryOp;
using rel::Value;

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (PeekKeyword("SELECT")) {
      stmt.kind = StmtKind::kSelect;
      KATHDB_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    } else if (PeekKeyword("CREATE")) {
      stmt.kind = StmtKind::kCreateTable;
      KATHDB_ASSIGN_OR_RETURN(stmt.create, ParseCreate());
    } else if (PeekKeyword("INSERT")) {
      stmt.kind = StmtKind::kInsert;
      KATHDB_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
    } else {
      return Err("expected SELECT, CREATE or INSERT");
    }
    ConsumeSymbol(";");
    if (!AtEnd()) return Err("trailing tokens after statement");
    return stmt;
  }

 private:
  // ------------------------------------------------------------ utilities
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    return Peek(ahead).type == TokenType::kKeyword && Peek(ahead).text == kw;
  }
  bool ConsumeKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool PeekSymbol(const std::string& s) const {
    return Peek().type == TokenType::kSymbol && Peek().text == s;
  }
  bool ConsumeSymbol(const std::string& s) {
    if (PeekSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("SQL parse error at position " +
                                   std::to_string(Peek().pos) + ": " + msg +
                                   " (near '" + Peek().text + "')");
  }
  Result<std::string> ExpectIdent() {
    if (Peek().type != TokenType::kIdent) return Err("expected identifier");
    return toks_[pos_++].text;
  }
  Status ExpectSymbol(const std::string& s) {
    if (!ConsumeSymbol(s)) return Err("expected '" + s + "'");
    return Status::OK();
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!ConsumeKeyword(kw)) return Err("expected " + kw);
    return Status::OK();
  }

  // ---------------------------------------------------------- expressions
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    KATHDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeyword("OR")) {
      KATHDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    KATHDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (ConsumeKeyword("AND")) {
      KATHDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      KATHDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return Expr::Unary(UnaryOp::kNot, inner);
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    KATHDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // IS [NOT] NULL
    if (ConsumeKeyword("IS")) {
      bool neg = ConsumeKeyword("NOT");
      KATHDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      // Encode as equality with NULL via coalesce trick: IS NULL becomes
      // NOT coalesce(true_if_value,...) — simplest: use dedicated function.
      ExprPtr isnull = Expr::Binary(
          BinaryOp::kEq,
          Expr::Call("coalesce", {lhs, Expr::Literal(Value::Str(
                                           "\x01__kathdb_null__"))}),
          Expr::Literal(Value::Str("\x01__kathdb_null__")));
      return neg ? Expr::Unary(UnaryOp::kNot, isnull) : isnull;
    }
    if (ConsumeKeyword("LIKE")) {
      KATHDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      // LIKE '%foo%' is lowered to CONTAINS (suffices for this dialect).
      if (rhs->kind() == rel::ExprKind::kLiteral &&
          rhs->literal().type() == DataType::kString) {
        std::string pat = rhs->literal().AsString();
        std::string needle;
        for (char c : pat) {
          if (c != '%') needle.push_back(c);
        }
        return Expr::Call("contains",
                          {lhs, Expr::Literal(Value::Str(needle))});
      }
      return Expr::Call("contains", {lhs, rhs});
    }
    struct OpMap {
      const char* sym;
      BinaryOp op;
    };
    static const OpMap kOps[] = {{"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                                 {"<>", BinaryOp::kNe}, {"!=", BinaryOp::kNe},
                                 {"=", BinaryOp::kEq},  {"<", BinaryOp::kLt},
                                 {">", BinaryOp::kGt}};
    for (const auto& om : kOps) {
      if (PeekSymbol(om.sym)) {
        ++pos_;
        KATHDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Expr::Binary(om.op, lhs, rhs);
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    KATHDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (PeekSymbol("+") || PeekSymbol("-")) {
      BinaryOp op = PeekSymbol("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      ++pos_;
      KATHDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    KATHDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (PeekSymbol("*") || PeekSymbol("/")) {
      BinaryOp op = PeekSymbol("*") ? BinaryOp::kMul : BinaryOp::kDiv;
      ++pos_;
      KATHDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (ConsumeSymbol("-")) {
      KATHDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, inner);
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kNumber: {
        ++pos_;
        if (t.text.find('.') != std::string::npos ||
            t.text.find('e') != std::string::npos ||
            t.text.find('E') != std::string::npos) {
          return Expr::Literal(Value::Double(std::strtod(t.text.c_str(),
                                                         nullptr)));
        }
        return Expr::Literal(
            Value::Int(std::strtoll(t.text.c_str(), nullptr, 10)));
      }
      case TokenType::kString:
        ++pos_;
        return Expr::Literal(Value::Str(t.text));
      case TokenType::kKeyword:
        if (ConsumeKeyword("TRUE")) return Expr::Literal(Value::Bool(true));
        if (ConsumeKeyword("FALSE")) return Expr::Literal(Value::Bool(false));
        if (ConsumeKeyword("NULL")) return Expr::Literal(Value::Null());
        return Err("unexpected keyword in expression");
      case TokenType::kIdent: {
        std::string name = t.text;
        ++pos_;
        if (ConsumeSymbol("(")) {
          std::vector<ExprPtr> args;
          if (!ConsumeSymbol(")")) {
            while (true) {
              KATHDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(arg);
              if (ConsumeSymbol(")")) break;
              KATHDB_RETURN_IF_ERROR(ExpectSymbol(","));
            }
          }
          return Expr::Call(name, std::move(args));
        }
        return Expr::Column(name);
      }
      case TokenType::kSymbol:
        if (ConsumeSymbol("(")) {
          KATHDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          KATHDB_RETURN_IF_ERROR(ExpectSymbol(")"));
          return inner;
        }
        return Err("unexpected symbol in expression");
      case TokenType::kEnd:
        return Err("unexpected end of input in expression");
    }
    return Err("unexpected token");
  }

  // -------------------------------------------------------------- SELECT
  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (ConsumeSymbol("*")) {
      item.expr = nullptr;
      return item;
    }
    // Aggregate calls are keywords in our tokenizer.
    static const char* kAggs[] = {"COUNT", "SUM", "AVG", "MIN", "MAX"};
    for (const char* agg : kAggs) {
      if (PeekKeyword(agg) && Peek(1).type == TokenType::kSymbol &&
          Peek(1).text == "(") {
        ++pos_;  // agg keyword
        ++pos_;  // '('
        item.is_aggregate = true;
        item.agg_fn = agg;
        if (ConsumeSymbol("*")) {
          item.agg_arg.clear();
        } else {
          KATHDB_ASSIGN_OR_RETURN(item.agg_arg, ExpectIdent());
        }
        KATHDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        item.alias = ToLower(item.agg_fn) +
                     (item.agg_arg.empty() ? "" : "_" + item.agg_arg);
        if (ConsumeKeyword("AS")) {
          KATHDB_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
        }
        return item;
      }
    }
    KATHDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (ConsumeKeyword("AS")) {
      KATHDB_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
    } else if (item.expr->kind() == rel::ExprKind::kColumnRef) {
      // Default alias: unqualified column name.
      std::string n = item.expr->column_name();
      auto dot = n.rfind('.');
      item.alias = dot == std::string::npos ? n : n.substr(dot + 1);
    } else {
      item.alias = "expr";
    }
    return item;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    KATHDB_ASSIGN_OR_RETURN(ref.table, ExpectIdent());
    if (ConsumeKeyword("AS")) {
      KATHDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdent());
    } else if (Peek().type == TokenType::kIdent && !PeekSymbol("(")) {
      // Bare alias only when followed by a clause keyword or end; keep
      // simple: accept bare identifier alias.
      KATHDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdent());
    }
    return ref;
  }

  Result<SelectStmt> ParseSelect() {
    SelectStmt sel;
    KATHDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    sel.distinct = ConsumeKeyword("DISTINCT");
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      sel.items.push_back(std::move(item));
      if (!ConsumeSymbol(",")) break;
    }
    KATHDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    KATHDB_ASSIGN_OR_RETURN(sel.from, ParseTableRef());
    while (PeekKeyword("JOIN") || PeekKeyword("INNER") ||
           PeekKeyword("CROSS")) {
      bool cross = ConsumeKeyword("CROSS");
      ConsumeKeyword("INNER");
      KATHDB_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      JoinClause jc;
      KATHDB_ASSIGN_OR_RETURN(jc.table, ParseTableRef());
      if (!cross) {
        KATHDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
        KATHDB_ASSIGN_OR_RETURN(jc.on, ParseExpr());
      }
      sel.joins.push_back(std::move(jc));
    }
    if (ConsumeKeyword("WHERE")) {
      KATHDB_ASSIGN_OR_RETURN(sel.where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      KATHDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        KATHDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        sel.group_by.push_back(std::move(col));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("HAVING")) {
      KATHDB_ASSIGN_OR_RETURN(sel.having, ParseExpr());
    }
    if (ConsumeKeyword("ORDER")) {
      KATHDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderItem oi;
        KATHDB_ASSIGN_OR_RETURN(oi.column, ExpectIdent());
        if (ConsumeKeyword("DESC")) {
          oi.descending = true;
        } else {
          ConsumeKeyword("ASC");
        }
        sel.order_by.push_back(std::move(oi));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().type != TokenType::kNumber) return Err("expected number");
      sel.limit = static_cast<size_t>(
          std::strtoll(Peek().text.c_str(), nullptr, 10));
      ++pos_;
    }
    return sel;
  }

  // -------------------------------------------------- CREATE TABLE/INSERT
  Result<CreateTableStmt> ParseCreate() {
    CreateTableStmt ct;
    KATHDB_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    KATHDB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    KATHDB_ASSIGN_OR_RETURN(ct.name, ExpectIdent());
    KATHDB_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      KATHDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      DataType t;
      if (ConsumeKeyword("INT")) {
        t = DataType::kInt;
      } else if (ConsumeKeyword("DOUBLE")) {
        t = DataType::kDouble;
      } else if (ConsumeKeyword("STRING")) {
        t = DataType::kString;
      } else if (ConsumeKeyword("BOOL")) {
        t = DataType::kBool;
      } else {
        return Err("expected column type (INT/DOUBLE/STRING/BOOL)");
      }
      ct.schema.AddColumn(col, t);
      if (ConsumeSymbol(")")) break;
      KATHDB_RETURN_IF_ERROR(ExpectSymbol(","));
    }
    return ct;
  }

  Result<InsertStmt> ParseInsert() {
    InsertStmt ins;
    KATHDB_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    KATHDB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    KATHDB_ASSIGN_OR_RETURN(ins.table, ExpectIdent());
    KATHDB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      KATHDB_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> row;
      while (true) {
        KATHDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        // Literal-only rows: evaluate against an empty schema.
        static const rel::Schema kEmpty;
        KATHDB_ASSIGN_OR_RETURN(Value v, e->Eval({}, kEmpty));
        row.push_back(std::move(v));
        if (ConsumeSymbol(")")) break;
        KATHDB_RETURN_IF_ERROR(ExpectSymbol(","));
      }
      ins.rows.push_back(std::move(row));
      if (!ConsumeSymbol(",")) break;
    }
    return ins;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseSql(const std::string& sql) {
  KATHDB_ASSIGN_OR_RETURN(std::vector<Token> toks, Tokenize(sql));
  return Parser(std::move(toks)).ParseStatement();
}

}  // namespace kathdb::sql
