#include "sql/token.h"

#include <cctype>
#include <set>

namespace kathdb::sql {

namespace {
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",     "HAVING", "ORDER",
      "LIMIT",  "JOIN",  "INNER",  "ON",     "AS",     "AND",    "OR",
      "NOT",    "ASC",   "DESC",   "CREATE", "TABLE",  "INSERT", "INTO",
      "VALUES", "TRUE",  "FALSE",  "NULL",   "DISTINCT", "UNION", "ALL",
      "INT",    "DOUBLE", "STRING", "BOOL",  "COUNT",  "SUM",    "AVG",
      "MIN",    "MAX",   "LIKE",   "IS",     "CROSS"};
  return kw;
}
}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_' || sql[i] == '.')) {
        word.push_back(sql[i++]);
      }
      std::string upper = word;
      for (auto& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (Keywords().count(upper) > 0) {
        out.push_back({TokenType::kKeyword, upper, start});
      } else {
        out.push_back({TokenType::kIdent, word, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::string num;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E')) {
        num.push_back(sql[i++]);
      }
      out.push_back({TokenType::kNumber, num, start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string str;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            str.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        str.push_back(sql[i++]);
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(start));
      }
      out.push_back({TokenType::kString, str, start});
      continue;
    }
    // Multi-char symbols.
    if ((c == '<' || c == '>' || c == '!') && i + 1 < n &&
        (sql[i + 1] == '=' || (c == '<' && sql[i + 1] == '>'))) {
      out.push_back({TokenType::kSymbol, sql.substr(i, 2), start});
      i += 2;
      continue;
    }
    static const std::string kSingles = "(),*=<>+-/.;";
    if (kSingles.find(c) != std::string::npos) {
      out.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at " +
                                   std::to_string(start));
  }
  out.push_back({TokenType::kEnd, "", n});
  return out;
}

}  // namespace kathdb::sql
