/// \file engine.h
/// \brief SQL execution engine over the KathDB catalog.
///
/// FAO function bodies of kind "sql" execute through this engine; the
/// baselines and tests also use it directly. The engine resolves qualified
/// column references introduced by joins, lowers statements onto the
/// volcano operators in relational/ops.h, and materializes results.
///
/// \ingroup kathdb_sql

#pragma once

#include <string>

#include "common/status.h"
#include "relational/catalog.h"
#include "sql/ast.h"

namespace kathdb::sql {

/// \brief Parses, plans and executes SQL statements against a catalog.
class SqlEngine {
 public:
  explicit SqlEngine(rel::Catalog* catalog) : catalog_(catalog) {}

  /// Executes one statement. SELECT returns the result table; CREATE TABLE
  /// and INSERT return an empty status table named "ok".
  Result<rel::Table> Execute(const std::string& sql);

  /// Executes an already-parsed SELECT.
  Result<rel::Table> ExecuteSelect(const SelectStmt& stmt,
                                   const std::string& result_name = "result");

  /// Renders the physical operator tree for a SELECT without running it.
  Result<std::string> Explain(const std::string& sql);

 private:
  rel::Catalog* catalog_;
};

}  // namespace kathdb::sql
