/// \file token.h
/// \brief SQL tokenizer for KathDB's embedded SQL dialect.
///
/// \ingroup kathdb_sql

#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace kathdb::sql {

enum class TokenType {
  kKeyword,   // SELECT, FROM, WHERE, ... (upper-cased)
  kIdent,     // possibly qualified: films.title
  kNumber,    // integer or decimal literal
  kString,    // 'single quoted'
  kSymbol,    // ( ) , * = <> <= >= < > + - / .
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // keywords upper-cased; idents as written
  size_t pos = 0;    // byte offset, for error messages
};

/// Tokenizes `sql`. Keywords are recognized case-insensitively.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace kathdb::sql
