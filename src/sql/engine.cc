#include "sql/engine.h"

#include <set>

#include "common/strings.h"
#include "relational/ops.h"
#include "sql/parser.h"

namespace kathdb::sql {

using rel::Expr;
using rel::ExprPtr;
using rel::OperatorPtr;
using rel::Schema;
using rel::Table;
using rel::TablePtr;
using rel::Value;

namespace {

/// Tracks how (qualifier, column) pairs map to physical column names in the
/// schema produced by the chain of joins so far.
class NameScope {
 public:
  void AddTable(const std::string& qualifier, const Schema& table_schema,
                const Schema& combined_schema) {
    // The freshly appended columns are the tail of combined_schema.
    size_t offset = combined_schema.num_columns() - table_schema.num_columns();
    for (size_t i = 0; i < table_schema.num_columns(); ++i) {
      bindings_.push_back({ToLower(qualifier),
                           ToLower(table_schema.column(i).name),
                           combined_schema.column(offset + i).name});
    }
  }

  /// Resolves a possibly-qualified reference to a physical column name.
  Result<std::string> Resolve(const std::string& ref) const {
    std::string lref = ToLower(ref);
    auto dot = lref.rfind('.');
    if (dot != std::string::npos) {
      std::string q = lref.substr(0, dot);
      std::string c = lref.substr(dot + 1);
      for (const auto& b : bindings_) {
        if (b.qualifier == q && b.column == c) return b.actual;
      }
      // Fall back to an exact physical name match (joins may synthesize
      // dotted column names such as "p.title").
      for (const auto& b : bindings_) {
        if (ToLower(b.actual) == lref) return b.actual;
      }
      return Status::SyntacticError("unknown column reference '" + ref + "'");
    }
    std::vector<std::string> hits;
    for (const auto& b : bindings_) {
      if (b.column == lref) hits.push_back(b.actual);
    }
    if (hits.empty()) {
      return Status::SyntacticError("unknown column '" + ref + "'");
    }
    if (hits.size() > 1) {
      // Identical physical name means the same column (self-consistent).
      std::set<std::string> uniq(hits.begin(), hits.end());
      if (uniq.size() > 1) {
        return Status::SyntacticError("ambiguous column '" + ref +
                                      "'; qualify with a table alias");
      }
    }
    return hits[0];
  }

 private:
  struct Binding {
    std::string qualifier;  // lower-cased table alias
    std::string column;     // lower-cased source column name
    std::string actual;     // physical name in the combined schema
  };
  std::vector<Binding> bindings_;
};

/// Rebuilds an expression with every column reference resolved via scope.
Result<ExprPtr> ResolveRefs(const ExprPtr& e, const NameScope& scope) {
  switch (e->kind()) {
    case rel::ExprKind::kLiteral:
      return e;
    case rel::ExprKind::kColumnRef: {
      KATHDB_ASSIGN_OR_RETURN(std::string actual,
                              scope.Resolve(e->column_name()));
      return Expr::Column(actual);
    }
    case rel::ExprKind::kUnary: {
      KATHDB_ASSIGN_OR_RETURN(ExprPtr c, ResolveRefs(e->children()[0], scope));
      return Expr::Unary(e->unary_op(), c);
    }
    case rel::ExprKind::kBinary: {
      KATHDB_ASSIGN_OR_RETURN(ExprPtr a, ResolveRefs(e->children()[0], scope));
      KATHDB_ASSIGN_OR_RETURN(ExprPtr b, ResolveRefs(e->children()[1], scope));
      return Expr::Binary(e->binary_op(), a, b);
    }
    case rel::ExprKind::kFunctionCall: {
      std::vector<ExprPtr> args;
      for (const auto& c : e->children()) {
        KATHDB_ASSIGN_OR_RETURN(ExprPtr r, ResolveRefs(c, scope));
        args.push_back(r);
      }
      return Expr::Call(e->function_name(), std::move(args));
    }
  }
  return Status::RuntimeError("corrupt expression");
}

/// If `on` is `a = b` with both sides column refs, extract the pair.
bool ExtractEquiJoin(const ExprPtr& on, std::string* left_ref,
                     std::string* right_ref) {
  if (on == nullptr || on->kind() != rel::ExprKind::kBinary ||
      on->binary_op() != rel::BinaryOp::kEq) {
    return false;
  }
  const auto& l = on->children()[0];
  const auto& r = on->children()[1];
  if (l->kind() != rel::ExprKind::kColumnRef ||
      r->kind() != rel::ExprKind::kColumnRef) {
    return false;
  }
  *left_ref = l->column_name();
  *right_ref = r->column_name();
  return true;
}

struct PlannedFrom {
  OperatorPtr op;
  NameScope scope;
};

Result<PlannedFrom> PlanFromClause(rel::Catalog* catalog,
                                   const SelectStmt& stmt) {
  PlannedFrom out;
  KATHDB_ASSIGN_OR_RETURN(TablePtr base, catalog->Get(stmt.from.table));
  out.op = rel::MakeSeqScan(base);
  out.scope.AddTable(stmt.from.effective_name(), base->schema(),
                     base->schema());

  for (const auto& jc : stmt.joins) {
    KATHDB_ASSIGN_OR_RETURN(TablePtr rt, catalog->Get(jc.table.table));
    const std::string& rq = jc.table.effective_name();
    Schema combined =
        Schema::Concat(out.op->output_schema(), rt->schema(), rq);

    // Scope for resolving the ON clause: previous bindings + right table.
    NameScope joined_scope = out.scope;
    joined_scope.AddTable(rq, rt->schema(), combined);

    std::string lref, rref;
    if (ExtractEquiJoin(jc.on, &lref, &rref)) {
      // Figure out which side each ref belongs to; swap if needed.
      auto in_left = [&](const std::string& ref) {
        return out.scope.Resolve(ref).ok();
      };
      std::string l = lref;
      std::string r = rref;
      if (!in_left(l) && in_left(r)) std::swap(l, r);
      auto lres = out.scope.Resolve(l);
      if (lres.ok()) {
        // Resolve the right ref against the right table alone.
        NameScope right_scope;
        right_scope.AddTable(rq, rt->schema(), rt->schema());
        auto rres = right_scope.Resolve(r);
        if (rres.ok()) {
          out.op = rel::MakeHashJoin(std::move(out.op),
                                     rel::MakeSeqScan(rt), lres.value(),
                                     rres.value(), rq);
          out.scope = joined_scope;
          continue;
        }
      }
    }
    // General theta join (or CROSS JOIN with constant-true predicate).
    ExprPtr pred = jc.on != nullptr ? jc.on
                                    : Expr::Literal(Value::Bool(true));
    KATHDB_ASSIGN_OR_RETURN(ExprPtr resolved, ResolveRefs(pred, joined_scope));
    out.op = rel::MakeNestedLoopJoin(std::move(out.op), rel::MakeSeqScan(rt),
                                     resolved, rq);
    out.scope = joined_scope;
  }
  return out;
}

rel::AggFn ToAggFn(const std::string& name) {
  if (name == "COUNT") return rel::AggFn::kCount;
  if (name == "SUM") return rel::AggFn::kSum;
  if (name == "AVG") return rel::AggFn::kAvg;
  if (name == "MIN") return rel::AggFn::kMin;
  return rel::AggFn::kMax;
}

}  // namespace

Result<Table> SqlEngine::ExecuteSelect(const SelectStmt& stmt,
                                       const std::string& result_name) {
  KATHDB_ASSIGN_OR_RETURN(PlannedFrom planned, PlanFromClause(catalog_, stmt));
  OperatorPtr op = std::move(planned.op);
  NameScope& scope = planned.scope;

  if (stmt.where != nullptr) {
    KATHDB_ASSIGN_OR_RETURN(ExprPtr pred, ResolveRefs(stmt.where, scope));
    op = rel::MakeFilter(std::move(op), pred);
  }

  bool has_agg = !stmt.group_by.empty();
  for (const auto& it : stmt.items) has_agg |= it.is_aggregate;
  bool pre_sorted = false;

  if (has_agg) {
    std::vector<std::string> group_cols;
    for (const auto& g : stmt.group_by) {
      KATHDB_ASSIGN_OR_RETURN(std::string actual, scope.Resolve(g));
      group_cols.push_back(actual);
    }
    std::vector<rel::AggSpec> aggs;
    for (const auto& it : stmt.items) {
      if (!it.is_aggregate) continue;
      rel::AggSpec spec;
      spec.fn = ToAggFn(it.agg_fn);
      if (!it.agg_arg.empty()) {
        KATHDB_ASSIGN_OR_RETURN(spec.column, scope.Resolve(it.agg_arg));
      }
      spec.output_name = it.alias;
      aggs.push_back(std::move(spec));
    }
    op = rel::MakeAggregate(std::move(op), group_cols, aggs);

    if (stmt.having != nullptr) {
      // HAVING references aggregate aliases / group columns directly.
      op = rel::MakeFilter(std::move(op), stmt.having);
    }

    // Final projection in SELECT-list order.
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (const auto& it : stmt.items) {
      if (it.is_aggregate) {
        exprs.push_back(Expr::Column(it.alias));
        names.push_back(it.alias);
      } else {
        if (it.expr == nullptr) {
          return Status::InvalidArgument("SELECT * with GROUP BY");
        }
        if (it.expr->kind() != rel::ExprKind::kColumnRef) {
          return Status::InvalidArgument(
              "non-aggregate SELECT item must be a grouped column");
        }
        KATHDB_ASSIGN_OR_RETURN(std::string actual,
                                scope.Resolve(it.expr->column_name()));
        bool grouped = false;
        for (const auto& g : group_cols) grouped |= (g == actual);
        if (!grouped) {
          return Status::InvalidArgument("column '" + actual +
                                         "' is not in GROUP BY");
        }
        exprs.push_back(Expr::Column(actual));
        names.push_back(it.alias);
      }
    }
    op = rel::MakeProject(std::move(op), exprs, names);
  } else {
    // ORDER BY may reference columns the projection drops (standard SQL);
    // in that case sort before projecting.
    if (!stmt.order_by.empty()) {
      std::set<std::string> projected;
      for (const auto& it : stmt.items) {
        if (it.expr == nullptr) {
          for (const auto& col : op->output_schema().columns()) {
            projected.insert(ToLower(col.name));
          }
        } else {
          projected.insert(ToLower(it.alias));
        }
      }
      bool all_projected = true;
      for (const auto& oi : stmt.order_by) {
        all_projected &= projected.count(ToLower(oi.column)) > 0;
      }
      if (!all_projected) {
        std::vector<rel::SortKey> keys;
        bool resolvable = true;
        for (const auto& oi : stmt.order_by) {
          auto r = scope.Resolve(oi.column);
          if (!r.ok()) {
            resolvable = false;
            break;
          }
          keys.push_back({r.value(), oi.descending});
        }
        if (resolvable) {
          op = rel::MakeSort(std::move(op), keys);
          pre_sorted = true;
        }
      }
    }
    // Plain projection (unless a lone '*').
    bool star_only = stmt.items.size() == 1 && stmt.items[0].expr == nullptr;
    if (!star_only) {
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (const auto& it : stmt.items) {
        if (it.expr == nullptr) {
          // '*' expands to all current columns.
          for (const auto& col : op->output_schema().columns()) {
            exprs.push_back(Expr::Column(col.name));
            names.push_back(col.name);
          }
          continue;
        }
        KATHDB_ASSIGN_OR_RETURN(ExprPtr resolved,
                                ResolveRefs(it.expr, scope));
        exprs.push_back(resolved);
        names.push_back(it.alias);
      }
      op = rel::MakeProject(std::move(op), exprs, names);
    }
  }

  if (stmt.distinct) op = rel::MakeDistinct(std::move(op));

  if (!stmt.order_by.empty() && !pre_sorted) {
    std::vector<rel::SortKey> keys;
    for (const auto& oi : stmt.order_by) {
      // Order by output column name; fall back to resolving via scope.
      std::string col = oi.column;
      if (!op->output_schema().HasColumn(col)) {
        auto r = scope.Resolve(col);
        if (r.ok()) col = r.value();
      }
      keys.push_back({col, oi.descending});
    }
    op = rel::MakeSort(std::move(op), keys);
  }
  if (stmt.limit.has_value()) op = rel::MakeLimit(std::move(op), *stmt.limit);

  return rel::Materialize(op.get(), result_name);
}

Result<Table> SqlEngine::Execute(const std::string& sql) {
  KATHDB_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  switch (stmt.kind) {
    case StmtKind::kSelect:
      return ExecuteSelect(stmt.select);
    case StmtKind::kCreateTable: {
      auto table = std::make_shared<Table>(stmt.create.name,
                                           stmt.create.schema);
      KATHDB_RETURN_IF_ERROR(catalog_->Register(table));
      return Table("ok", Schema{});
    }
    case StmtKind::kInsert: {
      KATHDB_ASSIGN_OR_RETURN(TablePtr table, catalog_->Get(stmt.insert.table));
      const Schema& schema = table->schema();
      for (const auto& row : stmt.insert.rows) {
        if (row.size() != schema.num_columns()) {
          return Status::InvalidArgument(
              "INSERT arity mismatch for table '" + stmt.insert.table + "'");
        }
        rel::Row coerced;
        for (size_t i = 0; i < row.size(); ++i) {
          const Value& v = row[i];
          switch (schema.column(i).type) {
            case rel::DataType::kDouble:
              coerced.push_back(v.is_null() ? v : Value::Double(v.AsDouble()));
              break;
            case rel::DataType::kInt:
              coerced.push_back(v.is_null() ? v : Value::Int(v.AsInt()));
              break;
            case rel::DataType::kBool:
              coerced.push_back(v.is_null() ? v : Value::Bool(v.AsBool()));
              break;
            default:
              coerced.push_back(v.is_null() ? v : Value::Str(v.ToString()));
          }
        }
        table->AppendRow(std::move(coerced));
      }
      return Table("ok", Schema{});
    }
  }
  return Status::RuntimeError("unknown statement kind");
}

Result<std::string> SqlEngine::Explain(const std::string& sql) {
  KATHDB_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  if (stmt.kind != StmtKind::kSelect) {
    return Status::NotSupported("EXPLAIN supports SELECT only");
  }
  // Build the plan but describe instead of executing. We reuse the planner
  // by materializing against a zero-row snapshot? Simplest faithful output:
  // run the planner and describe the final operator chain breadth-first.
  KATHDB_ASSIGN_OR_RETURN(PlannedFrom planned,
                          PlanFromClause(catalog_, stmt.select));
  std::string out = planned.op->Describe();
  if (stmt.select.where != nullptr) {
    out = "Filter(" + stmt.select.where->ToString() + ")\n  " + out;
  }
  if (!stmt.select.order_by.empty()) {
    out = "Sort(...)\n  " + out;
  }
  if (stmt.select.limit.has_value()) {
    out = "Limit(" + std::to_string(*stmt.select.limit) + ")\n  " + out;
  }
  return out;
}

}  // namespace kathdb::sql
