/// \file parser.h
/// \brief Recursive-descent parser for KathDB's SQL dialect.
///
/// \ingroup kathdb_sql

#pragma once

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace kathdb::sql {

/// Parses one statement. Errors are InvalidArgument with byte position.
Result<Statement> ParseSql(const std::string& sql);

}  // namespace kathdb::sql
