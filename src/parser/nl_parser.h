/// \file nl_parser.h
/// \brief Interactive NL parser: reviewer + sketch generator (Figure 4).
///
/// The parser converts an ambiguous NL request into a *query sketch* — a
/// step-by-step NL decomposition one abstraction level above the logical
/// plan. Two interaction modes (Section 5):
///  - proactive clarification: the reviewer agent detects subjective terms
///    ("exciting") and asks the user a focused question before sketching;
///  - reactive correction: the user reviews the sketch and requests changes
///    ("I prefer more recent movies"); the sketch generator revises and
///    resubmits until the user replies OK.
///
/// \ingroup kathdb_parser

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "llm/channel.h"
#include "llm/model.h"
#include "relational/catalog.h"

namespace kathdb::parser {

/// One ranking / filtering criterion extracted from the NL query.
struct Criterion {
  std::string term;      ///< surface term, e.g. "exciting"
  std::string modality;  ///< "text", "image" or "metadata"
  std::string role;      ///< "rank" or "filter"
  std::string clarified_meaning;  ///< user's clarification, may be empty
  double weight = 1.0;   ///< relative weight among rank criteria
};

/// Structured interpretation of the user's request.
struct QueryIntent {
  std::string raw_query;
  std::string table;   ///< target relation (resolved against the catalog)
  std::string action;  ///< "sort" | "filter" | "find"
  std::vector<Criterion> criteria;

  const Criterion* FindByRole(const std::string& role) const;
  const Criterion* FindByTerm(const std::string& term) const;
  /// First ranking criterion grounded in text content (nullptr when the
  /// query ranks by metadata only or does not rank at all).
  const Criterion* TextRank() const;
};

/// Chain-of-thought query sketch: numbered NL steps.
struct QuerySketch {
  int version = 1;
  std::string query;
  std::vector<std::string> steps;

  std::string ToText() const;
};

/// \brief The NL parser with its two collaborative agents.
class NlParser {
 public:
  NlParser(llm::SimulatedLLM* llm, llm::UserChannel* user,
           const rel::Catalog* catalog)
      : llm_(llm), user_(user), catalog_(catalog) {}

  /// Full pipeline: interpret -> clarify (proactive) -> sketch -> review
  /// loop (reactive) until the user accepts. The accepted sketch and final
  /// intent are retained for the planner.
  Result<QuerySketch> Parse(const std::string& nl_query);

  /// Intent after clarification/corrections (valid after Parse).
  const QueryIntent& intent() const { return intent_; }

  /// All sketch versions produced (v1, v2, ...).
  const std::vector<QuerySketch>& sketch_history() const { return history_; }

  /// --- exposed for tests ---
  /// Pattern-based intent extraction (no user interaction).
  Result<QueryIntent> InterpretQuery(const std::string& nl_query) const;
  /// Sketch generation from an intent (no user interaction).
  QuerySketch GenerateSketch(const QueryIntent& intent, int version) const;
  /// Applies one piece of user feedback to the intent; returns true if the
  /// intent changed structurally (new sketch needed).
  bool ApplyFeedback(const std::string& feedback, QueryIntent* intent) const;

 private:
  llm::SimulatedLLM* llm_;
  llm::UserChannel* user_;
  const rel::Catalog* catalog_;
  QueryIntent intent_;
  std::vector<QuerySketch> history_;
};

}  // namespace kathdb::parser
