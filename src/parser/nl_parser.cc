#include "parser/nl_parser.h"

#include <algorithm>

#include "common/strings.h"

namespace kathdb::parser {

const Criterion* QueryIntent::FindByRole(const std::string& role) const {
  for (const auto& c : criteria) {
    if (c.role == role) return &c;
  }
  return nullptr;
}

const Criterion* QueryIntent::FindByTerm(const std::string& term) const {
  for (const auto& c : criteria) {
    if (c.term == term) return &c;
  }
  return nullptr;
}

const Criterion* QueryIntent::TextRank() const {
  for (const auto& c : criteria) {
    if (c.role == "rank" && c.modality == "text") return &c;
  }
  return nullptr;
}

std::string QuerySketch::ToText() const {
  std::string out = "Query sketch v" + std::to_string(version) + " for: \"" +
                    query + "\"\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    out += "  " + std::to_string(i + 1) + ". " + steps[i] + "\n";
  }
  return out;
}

namespace {

/// Words hinting that a nearby subjective term applies to images.
bool NearImageWord(const std::vector<std::string>& toks, size_t pos) {
  static const char* kImageWords[] = {"poster", "image", "picture", "photo",
                                      "cover", "frame", "visual"};
  size_t lo = pos >= 4 ? pos - 4 : 0;
  size_t hi = std::min(toks.size(), pos + 5);
  for (size_t i = lo; i < hi; ++i) {
    for (const char* w : kImageWords) {
      if (toks[i] == w) return true;
    }
  }
  return false;
}

bool HasToken(const std::vector<std::string>& toks, const char* w) {
  return std::find(toks.begin(), toks.end(), w) != toks.end();
}

}  // namespace

Result<QueryIntent> NlParser::InterpretQuery(
    const std::string& nl_query) const {
  QueryIntent intent;
  intent.raw_query = nl_query;
  std::vector<std::string> toks = Tokenize(nl_query);
  if (toks.empty()) {
    return Status::InvalidArgument("empty query");
  }

  // Action.
  if (HasToken(toks, "sort") || HasToken(toks, "rank") ||
      HasToken(toks, "order")) {
    intent.action = "sort";
  } else if (HasToken(toks, "filter") || HasToken(toks, "only") ||
             HasToken(toks, "keep")) {
    intent.action = "filter";
  } else {
    intent.action = "find";
  }

  // Target relation: prefer a catalog table mentioned in the query, else
  // the first base table.
  if (catalog_ != nullptr) {
    for (const auto& name : catalog_->ListNames()) {
      if (catalog_->KindOf(name) != rel::RelationKind::kBaseTable) continue;
      if (intent.table.empty()) intent.table = name;  // default
      for (const auto& t : toks) {
        if (ToLower(name) == t ||
            ContainsIgnoreCase(name, t + "_table") ||
            (t == "films" && ContainsIgnoreCase(name, "movie")) ||
            (t == "movies" && ContainsIgnoreCase(name, "movie"))) {
          intent.table = name;
        }
      }
    }
  }

  // Criteria: subjective terms with modality + role.
  std::vector<std::string> ambiguous = llm_->DetectAmbiguousTerms(nl_query);
  // "but"/"where"/"should" introduce a constraint clause: subjective terms
  // after the marker act as filters, before it as ranking criteria.
  size_t clause_split = toks.size();
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i] == "but" || toks[i] == "where" || toks[i] == "should") {
      clause_split = i;
      break;
    }
  }
  for (const auto& term : ambiguous) {
    size_t pos = 0;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i] == term) {
        pos = i;
        break;
      }
    }
    Criterion c;
    c.term = term;
    c.modality = NearImageWord(toks, pos) ? "image" : "text";
    c.role = pos >= clause_split ? "filter" : "rank";
    intent.criteria.push_back(std::move(c));
  }
  if (intent.criteria.empty()) {
    // No subjective term: fall back to a metadata sort (year).
    Criterion c;
    c.term = "recent";
    c.modality = "metadata";
    c.role = "rank";
    intent.criteria.push_back(std::move(c));
  }
  return intent;
}

QuerySketch NlParser::GenerateSketch(const QueryIntent& intent,
                                     int version) const {
  QuerySketch sketch;
  sketch.version = version;
  sketch.query = intent.raw_query;
  auto& s = sketch.steps;

  const Criterion* rank = intent.FindByRole("rank");
  const Criterion* filter = intent.FindByRole("filter");
  bool wants_recency = intent.FindByTerm("recent") != nullptr;

  s.push_back("Check the schema of " + intent.table +
              " and select the relevant columns (title, release year, plot "
              "document id, poster image id).");
  s.push_back("Join the relational view over each film's plot text "
              "(entities, mentions) with " + intent.table + ".");
  s.push_back("Join the relational view over each film's poster image "
              "(scene-graph objects) with the result.");
  if (rank != nullptr && rank->modality == "text") {
    std::string meaning = rank->clarified_meaning.empty()
                              ? ("'" + rank->term + "' content")
                              : rank->clarified_meaning;
    s.push_back("Assign an \"" + rank->term + " score\" to each film based "
                "on how many and how intense the plot scenes matching the "
                "user's meaning (" + meaning + ") are, using vector "
                "similarity between an LLM-generated keyword list and the "
                "entities extracted from the plot.");
  }
  if (wants_recency) {
    s.push_back("Assign a \"recency score\" for each film based on the "
                "release date, scaled so newer films score higher.");
    s.push_back("Combine the " +
                std::string(rank != nullptr ? rank->term : "content") +
                " score and the recency score into a final score using a "
                "weighted sum that favors the content score.");
  }
  if (filter != nullptr && filter->modality == "image") {
    s.push_back("Analyze poster visual features using both extracted "
                "objects and image pixels to determine if the poster "
                "appears '" + filter->term + "' (e.g., lacks vivid colors, "
                "few objects, little action, plain background).");
    s.push_back("Filter the films so that only those whose poster is "
                "classified '" + filter->term + "' remain.");
  }
  if (wants_recency) {
    // Extra consolidation step once several score intermediates exist.
    s.push_back("Join the intermediate results so each remaining film "
                "carries its scores and poster classification.");
  }
  s.push_back("Rank the films by their " +
              std::string(wants_recency ? "final combined" : "content") +
              " score in descending order.");
  s.push_back("Return the ranked film list with scores, flags and lineage "
              "ids.");
  return sketch;
}

bool NlParser::ApplyFeedback(const std::string& feedback,
                             QueryIntent* intent) const {
  std::string f = ToLower(feedback);
  if (Trim(f) == "ok" || Trim(f).empty()) return false;
  bool changed = false;
  if ((ContainsIgnoreCase(f, "recent") || ContainsIgnoreCase(f, "newer")) &&
      intent->FindByTerm("recent") == nullptr) {
    Criterion c;
    c.term = "recent";
    c.modality = "metadata";
    c.role = "rank";
    c.weight = 0.3;
    // The existing rank criterion keeps the dominant weight.
    for (auto& existing : intent->criteria) {
      if (existing.role == "rank") existing.weight = 0.7;
    }
    c.clarified_meaning = feedback;
    intent->criteria.push_back(std::move(c));
    changed = true;
  }
  // Clarifications that refine an existing term's meaning.
  for (auto& c : intent->criteria) {
    if (ContainsIgnoreCase(f, c.term) && c.clarified_meaning.empty()) {
      c.clarified_meaning = feedback;
      changed = true;
    }
  }
  return changed;
}

Result<QuerySketch> NlParser::Parse(const std::string& nl_query) {
  history_.clear();
  KATHDB_ASSIGN_OR_RETURN(intent_, InterpretQuery(nl_query));

  // ---- proactive clarification (reviewer agent) ----------------------
  for (auto& c : intent_.criteria) {
    if (c.role != "rank" || c.modality == "metadata") continue;
    std::string question =
        "What does '" + c.term + "' mean in this context?";
    llm_->Charge("Reviewer: the query contains the subjective term '" +
                     c.term + "'. Ask the user a focused question.",
                 question);
    KATHDB_ASSIGN_OR_RETURN(std::string answer,
                            user_->Ask("parse", question));
    if (ToLower(Trim(answer)) != "ok" && !answer.empty()) {
      c.clarified_meaning = answer;
    }
  }

  // ---- sketch generation + reactive correction loop ------------------
  int version = 1;
  QuerySketch sketch = GenerateSketch(intent_, version);
  llm_->Charge("Sketch generator: decompose the query '" + nl_query +
                   "' into steps.",
               sketch.ToText());
  history_.push_back(sketch);
  constexpr int kMaxRounds = 5;
  for (int round = 0; round < kMaxRounds; ++round) {
    KATHDB_ASSIGN_OR_RETURN(
        std::string feedback,
        user_->Ask("parse", sketch.ToText() +
                                "Reply OK to accept the sketch, or describe "
                                "a correction."));
    if (ToLower(Trim(feedback)) == "ok" || feedback.empty()) {
      return sketch;
    }
    if (ApplyFeedback(feedback, &intent_)) {
      sketch = GenerateSketch(intent_, ++version);
      llm_->Charge("Sketch generator: revise the sketch given feedback: " +
                       feedback,
                   sketch.ToText());
      history_.push_back(sketch);
    } else {
      user_->Notify("parse",
                    "Noted: \"" + feedback +
                        "\" (no structural change to the sketch).");
    }
  }
  return sketch;
}

}  // namespace kathdb::parser
