// Lineage explorer: the provenance model of Section 3 / Figure 2.
//
// Runs the example query, prints rows of the unified Lineage table
// (Table 3 schema), then traces the top result tuple back to its external
// sources and answers NL explanation questions over the lineage.
//
// Run:  ./build/examples/example_lineage_explorer

#include <cstdio>

#include "data/movie_dataset.h"
#include "engine/kathdb.h"

using namespace kathdb;  // NOLINT: example brevity

int main() {
  data::DatasetOptions opts;
  opts.num_movies = 16;
  auto dataset = data::GenerateMovieDataset(opts);
  engine::KathDB db;
  if (!dataset.ok() || !data::IngestDataset(dataset.value(), &db).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  llm::ScriptedUser user({"uncommon scenes", "prefer recent movies", "OK"});
  auto outcome = db.Query(
      "Sort the given films in the table by how exciting they are, but "
      "the poster should be 'boring'",
      &user);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  // The Lineage table (Table 3 layout; Figure 2 shows sample rows).
  rel::Table lineage_table = db.lineage()->ToTable();
  std::printf("Lineage store holds %zu provenance edges. First rows:\n%s\n",
              db.lineage()->num_entries(), lineage_table.ToText(12).c_str());
  std::printf("Last rows (the result tuples):\n");
  rel::Table tail("tail", lineage_table.schema());
  for (size_t r = lineage_table.num_rows() - 8; r < lineage_table.num_rows();
       ++r) {
    tail.AppendRow(lineage_table.row(r));
  }
  std::printf("%s\n", tail.ToText(8).c_str());

  // Trace the winning tuple to its sources.
  int64_t lid = outcome->result.row_lid(0);
  std::printf("Tracing tuple lid=%lld ('%s'):\n",
              static_cast<long long>(lid),
              outcome->result.GetByName(0, "title").ToString().c_str());
  for (const auto& e : db.lineage()->TraceToSources(lid)) {
    std::printf("  lid=%-6lld parent=%-6s func=%-24s ver=%lld %s %s\n",
                static_cast<long long>(e.lid),
                e.parent_lid.has_value()
                    ? std::to_string(*e.parent_lid).c_str()
                    : "NULL",
                e.func_id.empty() ? "-" : e.func_id.c_str(),
                static_cast<long long>(e.ver_id),
                e.data_type == lineage::LineageDataType::kRow ? "[row]"
                                                              : "[table]",
                e.src_uri.empty() ? "" : ("<- " + e.src_uri).c_str());
  }

  // NL questions over the lineage.
  std::printf("\nQ: How does the pipeline work?\n");
  if (auto a = db.AskExplanation("How does the pipeline work?"); a.ok()) {
    std::printf("%s\n", a.value().c_str());
  }
  std::printf("Q: Explain tuple %lld?\n", static_cast<long long>(lid));
  if (auto a = db.AskExplanation("Explain tuple " + std::to_string(lid));
      a.ok()) {
    std::printf("%s\n", a.value().c_str());
  }
  if (outcome->result.num_rows() >= 2) {
    int64_t second = outcome->result.row_lid(1);
    std::printf("Q: Why is tuple %lld ranked above tuple %lld?\n",
                static_cast<long long>(lid), static_cast<long long>(second));
    if (auto a = db.AskExplanation(
            "Why is tuple " + std::to_string(lid) + " ranked above tuple " +
            std::to_string(second) + "?");
        a.ok()) {
      std::printf("%s\n", a.value().c_str());
    }
  }
  std::printf("Q: Why did filter_boring behave that way?\n");
  if (auto a = db.AskExplanation("Why did filter_boring behave that way?");
      a.ok()) {
    std::printf("%s\n", a.value().c_str());
  }
  return 0;
}
