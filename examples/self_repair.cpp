// On-the-fly self-repair (Section 5 of the paper).
//
// A fraction of posters are stored as HEIC, which the pixel-level
// classifier cannot decode. Instead of aborting, the agentic monitor's
// reviewer diagnoses the exception, the rewriter patches the function
// (adding a format-conversion step), bumps its version, and execution
// resumes — exactly the cv2/HEIC scenario in the paper.
//
// Run:  ./build/examples/example_self_repair

#include <cstdio>

#include "data/movie_dataset.h"
#include "engine/kathdb.h"

using namespace kathdb;  // NOLINT: example brevity

int main() {
  data::DatasetOptions opts;
  opts.num_movies = 20;
  opts.heic_fraction = 0.4;  // 40% of posters are HEIC
  auto dataset = data::GenerateMovieDataset(opts);

  engine::KathDBOptions db_opts;
  db_opts.optimizer.boring_impl = "pixels";  // force the pixel path
  engine::KathDB db(db_opts);
  if (!dataset.ok() || !data::IngestDataset(dataset.value(), &db).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  int heic = 0;
  for (const auto& [vid, poster] : dataset->posters) {
    if (poster.format == "heic") ++heic;
  }
  std::printf("%d of %zu posters are HEIC; the decoder does not support "
              "that format yet.\n\n",
              heic, dataset->posters.size());

  llm::ScriptedUser user({"uncommon scenes", "prefer recent movies", "OK"});
  auto outcome = db.Query(
      "Sort the given films in the table by how exciting they are, but "
      "the poster should be 'boring'",
      &user);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("Execution finished with %d automatic repair(s).\n\n",
              outcome->report.total_repairs);
  std::printf("%s\n", outcome->report.ToText().c_str());

  std::printf("Version history of classify_boring:\n");
  for (const auto& v : db.registry()->VersionsOf("classify_boring")) {
    std::printf("  v%lld [%s]: %s\n", static_cast<long long>(v.ver_id),
                v.template_id.c_str(), v.source_text.c_str());
  }

  std::printf("\nRepair notifications seen by the user:\n");
  for (const auto& e : user.history()) {
    if (e.answer.empty() && e.question.find("Repaired") != std::string::npos) {
      std::printf("  %s\n", e.question.c_str());
    }
  }
  std::printf("\nFinal ranking unaffected by the HEIC posters:\n%s\n",
              outcome->result.ToText(3).c_str());
  return 0;
}
