// Interactive clarification & correction (Figure 4 of the paper).
//
// Demonstrates the NL parser's two interaction modes: the reviewer agent's
// *proactive clarification* question about a subjective term, and the
// *reactive correction* loop where user feedback ("I prefer more recent
// movies") grows the query sketch from 8 to 11 steps.
//
// Run:  ./build/examples/example_interactive_clarification

#include <cstdio>

#include "data/movie_dataset.h"
#include "engine/kathdb.h"
#include "parser/nl_parser.h"

using namespace kathdb;  // NOLINT: example brevity

int main() {
  data::DatasetOptions opts;
  opts.num_movies = 12;
  auto dataset = data::GenerateMovieDataset(opts);
  engine::KathDB db;
  if (!dataset.ok() || !data::IngestDataset(dataset.value(), &db).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  llm::ScriptedUser user({
      "the movie plot contains scenes that are uncommon (e.g., gun fight) "
      "in real life",
      "Oh I prefer a more recent movie as well when scoring",
      "OK",
  });
  parser::NlParser parser(db.llm(), &user, db.catalog());
  auto sketch = parser.Parse(
      "Sort the given films in the table by how exciting they are, but "
      "the poster should be 'boring'");
  if (!sketch.ok()) {
    std::fprintf(stderr, "parse: %s\n", sketch.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Conversation transcript ===\n");
  for (const auto& e : user.history()) {
    if (e.answer.empty()) {
      std::printf("[KathDB notice] %s\n\n", e.question.c_str());
    } else {
      std::printf("[KathDB] %.300s%s\n[User]   %s\n\n", e.question.c_str(),
                  e.question.size() > 300 ? "..." : "", e.answer.c_str());
    }
  }

  std::printf("=== Sketch evolution ===\n");
  for (const auto& version : parser.sketch_history()) {
    std::printf("v%d: %zu steps\n", version.version, version.steps.size());
  }
  std::printf("\n%s", sketch->ToText().c_str());
  std::printf("\nClarified meaning of 'exciting': %s\n",
              parser.intent().FindByTerm("exciting")->clarified_meaning
                  .c_str());
  return 0;
}
