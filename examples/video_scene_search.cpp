// Video scene search: the temporal dimension of the scene-graph model.
//
// The paper's Table-1 schema identifies frames by (vid, fid), so videos
// are first-class: this example builds a synthetic trailer whose scenes
// evolve over frames (calm -> chase -> shootout), ingests it through the
// simulated VLM, and answers temporal questions with plain SQL over the
// views — e.g. "in which frame does the gun first appear?" and "which
// frames show a person riding a motorcycle?".
//
// Run:  ./build/examples/example_video_scene_search

#include <cstdio>

#include "engine/kathdb.h"
#include "multimodal/scene_graph.h"
#include "sql/engine.h"

using namespace kathdb;  // NOLINT: example brevity

namespace {

mm::SyntheticImage Frame(double variance,
                         std::vector<mm::LatentObject> objects,
                         std::vector<mm::LatentRelationship> rels) {
  mm::SyntheticImage f;
  f.color_variance = variance;
  f.objects = std::move(objects);
  f.relationships = std::move(rels);
  return f;
}

}  // namespace

int main() {
  engine::KathDB db;

  // A six-frame trailer: calm establishing shots, then the chase begins,
  // then a rooftop shootout.
  mm::SyntheticVideo trailer;
  trailer.uri = "file://videos/trailer.svid";
  trailer.frames.push_back(Frame(
      0.02, {{"person", 0.3, 0.2, 0.6, 0.9, {{"mood", "calm"}}},
             {"tree", 0.7, 0.1, 0.95, 0.9, {}}},
      {}));
  trailer.frames.push_back(Frame(
      0.03, {{"person", 0.3, 0.2, 0.6, 0.9, {}},
             {"car", 0.6, 0.5, 0.95, 0.85, {{"color", "black"}}}},
      {}));
  trailer.frames.push_back(Frame(
      0.15, {{"person", 0.2, 0.2, 0.5, 0.9, {}},
             {"motorcycle", 0.4, 0.5, 0.8, 0.95, {}}},
      {{0, "riding", 1}}));
  trailer.frames.push_back(Frame(
      0.22, {{"person", 0.2, 0.2, 0.5, 0.9, {}},
             {"motorcycle", 0.35, 0.5, 0.75, 0.95, {}},
             {"helicopter", 0.5, 0.05, 0.9, 0.3, {}}},
      {{0, "riding", 1}, {2, "chasing", 0}}));
  trailer.frames.push_back(Frame(
      0.28, {{"person", 0.3, 0.25, 0.6, 0.95, {}},
             {"gun", 0.5, 0.45, 0.6, 0.55, {}},
             {"person", 0.7, 0.2, 0.95, 0.9, {{"role", "villain"}}}},
      {{0, "holding", 1}, {0, "aiming_at", 2}}));
  trailer.frames.push_back(Frame(
      0.3, {{"person", 0.3, 0.25, 0.6, 0.95, {}},
            {"gun", 0.45, 0.45, 0.55, 0.55, {}},
            {"explosion", 0.6, 0.1, 1.0, 0.6, {}}},
      {{0, "holding", 1}}));

  fao::ExecContext ctx = db.MakeContext();
  if (!db.vlm()
           ->PopulateFromVideo(100, trailer, db.catalog(), db.lineage())
           .ok()) {
    std::fprintf(stderr, "video ingestion failed\n");
    return 1;
  }
  std::printf("Ingested a %zu-frame video as vid=100 (%lld simulated VLM "
              "tokens).\n\n",
              trailer.frames.size(),
              static_cast<long long>(db.vlm()->tokens_used()));

  sql::SqlEngine engine(db.catalog());
  auto show = [&](const char* label, const char* query) {
    std::printf("=== %s ===\n-- %s\n", label, query);
    auto r = engine.Execute(query);
    if (r.ok()) {
      std::printf("%s\n", r.value().ToText(12).c_str());
    } else {
      std::printf("error: %s\n\n", r.status().ToString().c_str());
    }
  };

  show("Objects per frame (temporal density)",
       "SELECT fid, COUNT(*) AS objects FROM scene_objects "
       "WHERE vid = 100 GROUP BY fid ORDER BY fid");
  show("First frame where a gun appears",
       "SELECT MIN(fid) AS first_gun_frame FROM scene_objects "
       "WHERE vid = 100 AND cid = 'gun'");
  show("Frames showing a person riding a motorcycle",
       "SELECT r.fid FROM scene_relationships r "
       "JOIN scene_objects s ON r.oid_i = s.oid "
       "JOIN scene_objects o ON r.oid_j = o.oid "
       "WHERE r.vid = 100 AND r.pid = 'riding' AND s.cid = 'person' "
       "AND o.cid = 'motorcycle' ORDER BY r.fid");
  show("Relationship timeline",
       "SELECT fid, pid, COUNT(*) AS n FROM scene_relationships "
       "WHERE vid = 100 GROUP BY fid, pid ORDER BY fid");

  // Scene-level excitement arc from frame statistics.
  std::printf("=== Excitement arc (action objects per frame) ===\n");
  for (int fid = 0; fid < 6; ++fid) {
    auto stats = mm::ComputeFrameStats(100, fid, *db.catalog());
    if (!stats.ok()) continue;
    std::printf("  frame %d: %d action objects, variance %.2f %s\n", fid,
                stats->num_action_objects, stats->color_variance,
                stats->num_action_objects > 0 ? "<-- exciting" : "");
  }
  return 0;
}
