// Quickstart: the full KathDB pipeline from the paper's Section 6.
//
// Loads the synthetic MMQA-like movie corpus, runs the running-example NL
// query with a scripted user (clarification + correction), and prints the
// sketch, plans, execution report, final ranking (Figure 6) and both
// explanation modes (Figure 5).
//
// Build & run:  cmake --build build && ./build/examples/example_quickstart

#include <cstdio>

#include "data/movie_dataset.h"
#include "engine/kathdb.h"

using namespace kathdb;  // NOLINT: example brevity

int main() {
  // 1. Generate and ingest the corpus (movie table + plots + posters).
  data::DatasetOptions data_opts;
  data_opts.num_movies = 40;
  auto dataset = data::GenerateMovieDataset(data_opts);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  engine::KathDB db;
  if (auto st = data::IngestDataset(dataset.value(), &db); !st.ok()) {
    std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Ingested %zu movies. Catalog:\n%s\n",
              dataset->movie_table->num_rows(),
              db.catalog()->DescribeAll().c_str());

  // 2. The paper's NL query, with the user replies of Figure 4 scripted.
  llm::ScriptedUser user({
      "The movie plot contains scenes that are uncommon in real life",
      "I prefer more recent movies when scoring",
      "OK",
  });
  auto outcome = db.Query(
      "Sort the given films in the table by how exciting they are, but "
      "the poster should be 'boring'",
      &user);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Accepted query sketch (v%d, %zu steps) ===\n%s\n",
              outcome->sketch.version, outcome->sketch.steps.size(),
              outcome->sketch.ToText().c_str());
  std::printf("=== Logical plan (%zu nodes, Figure 3 JSON) ===\n%s\n\n",
              outcome->logical_plan.nodes.size(),
              outcome->logical_plan.ToJson().Dump(2).c_str());
  std::printf("=== Physical plan ===\n%s\n",
              outcome->physical_plan.ToText().c_str());
  std::printf("=== Execution ===\n%s\n", outcome->report.ToText().c_str());

  // 3. Figure 6: the ranked result.
  std::printf("=== Final result (top 5) ===\n%s\n",
              outcome->result.ToText(5).c_str());

  // 4. Figure 5: explanations at both granularities.
  if (auto coarse = db.ExplainPipeline(); coarse.ok()) {
    std::printf("=== Coarse explanation ===\n%s\n", coarse.value().c_str());
  }
  int64_t top_lid = outcome->result.row_lid(0);
  if (auto fine = db.ExplainTuple(top_lid); fine.ok()) {
    std::printf("=== Fine-grained explanation (lid %lld) ===\n%s\n",
                static_cast<long long>(top_lid), fine.value().c_str());
  }

  // 5. Cost accounting and function persistence.
  std::printf("LLM usage: %s\n", db.meter()->Summary().c_str());
  if (auto st = db.SaveFunctions("generated_functions"); st.ok()) {
    std::printf("Generated functions persisted to ./generated_functions\n");
  }
  return 0;
}
