// Multimodal ingestion: the unified relational semantic layer (Section 3).
//
// Builds images and documents by hand, ingests them through the simulated
// VLM / NER extractors, and queries the scene-graph and text-graph views
// (Tables 1 and 2 of the paper) directly with SQL.
//
// Run:  ./build/examples/example_multimodal_ingest

#include <cstdio>

#include "engine/kathdb.h"
#include "sql/engine.h"

using namespace kathdb;  // NOLINT: example brevity

int main() {
  engine::KathDB db;

  // --- an "action" poster and a "plain" poster --------------------------
  mm::SyntheticImage action;
  action.uri = "file://posters/action.simg";
  action.color_variance = 0.21;
  action.objects.push_back({"person", 0.1, 0.1, 0.5, 0.9,
                            {{"color", "red"}, {"pose", "running"}}});
  action.objects.push_back({"gun", 0.42, 0.40, 0.52, 0.52, {}});
  action.objects.push_back({"motorcycle", 0.5, 0.5, 0.95, 0.95,
                            {{"color", "black"}}});
  action.relationships.push_back({0, "holding", 1});
  action.relationships.push_back({0, "riding", 2});

  mm::SyntheticImage plain;
  plain.uri = "file://posters/plain.simg";
  plain.color_variance = 0.01;
  plain.objects.push_back({"person", 0.3, 0.2, 0.7, 0.9,
                           {{"color", "gray"}}});

  if (!db.IngestImage(1, action).ok() || !db.IngestImage(2, plain).ok()) {
    std::fprintf(stderr, "image ingest failed\n");
    return 1;
  }

  // --- two plot documents ------------------------------------------------
  mm::Document thriller;
  thriller.did = 1;
  thriller.uri = "file://plots/thriller.txt";
  thriller.text =
      "Eleanor Finch chases the sniper across the rooftop. Mrs. Finch "
      "survives the explosion, but the conspiracy reaches her own office. "
      "She uncovers the betrayal at the trial.";
  mm::Document pastoral;
  pastoral.did = 2;
  pastoral.uri = "file://plots/pastoral.txt";
  pastoral.text =
      "Walter Cross tends a quiet garden by the lake. A gentle walk "
      "through the meadow ends with tea at sunset.";
  if (!db.IngestDocument(thriller).ok() ||
      !db.IngestDocument(pastoral).ok()) {
    std::fprintf(stderr, "document ingest failed\n");
    return 1;
  }

  // --- query the views with plain SQL -------------------------------------
  sql::SqlEngine engine(db.catalog());
  auto show = [&](const char* label, const char* query) {
    std::printf("=== %s ===\n-- %s\n", label, query);
    auto r = engine.Execute(query);
    if (r.ok()) {
      std::printf("%s\n", r.value().ToText(12).c_str());
    } else {
      std::printf("error: %s\n\n", r.status().ToString().c_str());
    }
  };

  show("Scene graph: objects per poster (Table 1)",
       "SELECT vid, COUNT(*) AS objects FROM scene_objects GROUP BY vid");
  show("Scene graph: what is the person doing?",
       "SELECT r.vid, o.cid, r.pid, t.cid FROM scene_relationships r "
       "JOIN scene_objects o ON r.oid_i = o.oid "
       "JOIN scene_objects t ON r.oid_j = t.oid");
  show("Object attributes",
       "SELECT vid, oid, k, v FROM scene_attributes ORDER BY vid");
  show("Text graph: entities by class (Table 2)",
       "SELECT cid, COUNT(*) AS n FROM text_entities GROUP BY cid "
       "ORDER BY n DESC");
  show("Coreference: mentions per entity",
       "SELECT did, eid, COUNT(*) AS mentions FROM text_mentions "
       "GROUP BY did, eid ORDER BY mentions DESC LIMIT 5");
  show("Cross-modal: posters whose movie text mentions violence",
       "SELECT DISTINCT e.did FROM text_entities e WHERE e.cid = "
       "'violence'");

  // Lineage of one extracted object.
  auto objects = db.catalog()->Get("scene_objects");
  if (objects.ok() && objects.value()->num_rows() > 0) {
    int64_t lid = objects.value()->row_lid(0);
    std::printf("Provenance of the first detected object (lid=%lld):\n",
                static_cast<long long>(lid));
    for (const auto& e : db.lineage()->TraceToSources(lid)) {
      std::printf("  %s (v%lld)%s\n",
                  e.func_id.empty() ? "external" : e.func_id.c_str(),
                  static_cast<long long>(e.ver_id),
                  e.src_uri.empty() ? "" : (" <- " + e.src_uri).c_str());
    }
  }
  return 0;
}
