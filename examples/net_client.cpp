// Demo of the kathdb-wire/1 network front-end: connects to a kathdbd
// server (pass --port to reach a running one; with no arguments the
// example starts its own in-process server on an ephemeral loopback
// port), opens a session, and runs the paper's running query with the
// clarification round-trips answered over the wire — the server ASKs,
// the client REPLYs — while partial result chunks stream in ahead of
// the FINAL frame.
//
//   ./examples/example_net_client             # self-contained
//   ./kathdbd --port 7432 &                   # or against a server
//   ./examples/example_net_client --port 7432

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>

#include "data/movie_dataset.h"
#include "engine/kathdb.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"

using namespace kathdb;  // NOLINT

namespace {

constexpr const char* kQuery =
    "Sort the given films in the table by how exciting they are, but the "
    "poster should be 'boring'";

struct InProcessServer {
  data::MovieDataset dataset;
  std::unique_ptr<engine::KathDB> db;
  std::unique_ptr<service::QueryService> service;
  std::unique_ptr<net::Server> server;
};

std::unique_ptr<InProcessServer> StartInProcess() {
  auto s = std::make_unique<InProcessServer>();
  data::DatasetOptions data_opts;
  data_opts.num_movies = 12;
  auto ds = data::GenerateMovieDataset(data_opts);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset: %s\n", ds.status().ToString().c_str());
    std::exit(1);
  }
  s->dataset = std::move(ds).value();
  s->db = std::make_unique<engine::KathDB>();
  Status st = data::IngestDataset(s->dataset, s->db.get());
  if (!st.ok()) {
    std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  s->service = std::make_unique<service::QueryService>(s->db.get());
  net::ServerOptions opts;
  opts.stream_chunk_rows = 2;  // small chunks so streaming is visible
  s->server = std::make_unique<net::Server>(s->service.get(), opts);
  st = s->server->Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<uint16_t>(std::atoi(argv[i + 1]));
    }
  }

  std::unique_ptr<InProcessServer> local;
  if (port == 0) {
    local = StartInProcess();
    port = local->server->port();
    std::printf("started in-process kathdbd on 127.0.0.1:%u\n\n", port);
  }

  net::ClientOptions copts;
  copts.port = port;
  net::Client client(copts);
  Status st = client.Connect();
  if (!st.ok()) {
    std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
    return 1;
  }
  auto sid = client.OpenSession();
  if (!sid.ok()) {
    std::fprintf(stderr, "open session: %s\n",
                 sid.status().ToString().c_str());
    return 1;
  }
  std::printf("session %llu open; submitting:\n  \"%s\"\n\n",
              static_cast<unsigned long long>(*sid), kQuery);

  // The paper's scripted replies, answered live over the wire as the
  // server raises each clarification.
  std::deque<std::string> replies = {
      "The movie plot contains scenes that are uncommon in real life",
      "I prefer more recent movies when scoring", "OK"};
  auto result = client.Query(
      *sid, kQuery, /*scripted=*/{},
      [&replies](const std::string& stage, const std::string& question) {
        std::printf("[%s] server asks: %s\n", stage.c_str(),
                    question.c_str());
        if (replies.empty()) return std::optional<std::string>("OK");
        std::string answer = replies.front();
        replies.pop_front();
        std::printf("        replying: %s\n", answer.c_str());
        return std::optional<std::string>(answer);
      });
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nstreamed %zu partial chunk(s), %llu row(s) total\n",
              result->partial_frames,
              static_cast<unsigned long long>(result->total_rows));
  std::printf("\n%s\n", result->table.ToText().c_str());
  std::printf("lineage summary:\n%s\n", result->lineage_summary.c_str());
  std::printf("\nexecution: %s\n", result->stats.c_str());

  auto stats = client.Stats();
  if (stats.ok()) std::printf("\nserver stats:\n%s\n", stats->c_str());

  client.CloseSession(*sid);
  client.Close();
  if (local) local->server->Stop();
  return 0;
}
