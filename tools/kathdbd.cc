/// \file kathdbd.cc
/// \brief The KathDB network server: seeds a movie corpus, starts a
/// QueryService and serves kathdb-wire/1 on a TCP port until SIGINT or
/// SIGTERM.
///
/// Usage:
///   kathdbd [--host H] [--port P] [--movies N] [--workers N]
///           [--queue N] [--chunk-rows N] [--poll]
///
/// With --port 0 (the default) the kernel assigns an ephemeral port; the
/// bound port is printed on stdout either way, so scripts can do:
///   kathdbd --port 7432 &
///   example_net_client --port 7432

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/movie_dataset.h"
#include "engine/kathdb.h"
#include "net/server.h"
#include "service/query_service.h"

namespace {

int64_t ArgInt(int argc, char** argv, const char* name, int64_t def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return def;
}

std::string ArgStr(int argc, char** argv, const char* name,
                   const std::string& def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return def;
}

bool ArgFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kathdb;

  // Block the shutdown signals before any thread exists so every worker
  // inherits the mask and sigwait below is the only consumer.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  data::DatasetOptions data_opts;
  data_opts.num_movies = static_cast<int>(ArgInt(argc, argv, "--movies", 12));
  auto dataset = data::GenerateMovieDataset(data_opts);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  engine::KathDB db;
  Status st = data::IngestDataset(dataset.value(), &db);
  if (!st.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
    return 1;
  }

  service::ServiceOptions svc_opts;
  svc_opts.workers = static_cast<int>(ArgInt(argc, argv, "--workers", 4));
  svc_opts.max_queue =
      static_cast<size_t>(ArgInt(argc, argv, "--queue", 64));
  service::QueryService service(&db, svc_opts);

  net::ServerOptions net_opts;
  net_opts.host = ArgStr(argc, argv, "--host", "127.0.0.1");
  net_opts.port = static_cast<uint16_t>(ArgInt(argc, argv, "--port", 0));
  net_opts.stream_chunk_rows =
      static_cast<size_t>(ArgInt(argc, argv, "--chunk-rows", 64));
  if (ArgFlag(argc, argv, "--poll")) {
    net_opts.backend = net::PollBackend::kPoll;
  }
  net::Server server(&service, net_opts);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("kathdbd listening on %s:%u (%s backend, %d workers, %d movies)\n",
              net_opts.host.c_str(), server.port(),
              net_opts.backend == net::PollBackend::kPoll ? "poll" : "epoll",
              svc_opts.workers, data_opts.num_movies);
  std::fflush(stdout);

  int sig = 0;
  sigwait(&set, &sig);

  std::printf("signal %d: shutting down\n", sig);
  server.Stop();
  std::printf("%s\n", server.stats().ToText().c_str());
  std::printf("%s\n", service.stats().ToText().c_str());
  return 0;
}
