// E11 / §5 research question — "an LLM-based monitor examining
// intermediate results will incur additional token costs, so some type of
// sampling is necessary."
//
// Injects duplicate-poster joins (the paper's semantic-anomaly example)
// and sweeps the monitor's output-sampling rate, reporting detection rate
// vs monitor token cost.

#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

void PrintSamplingTable() {
  std::printf("=== E11: monitor sampling rate vs anomaly detection & "
              "token cost ===\n");
  std::printf("%-12s %-12s %-14s %-12s\n", "sample_rate", "anomalies",
              "monitor_hits", "tokens");
  for (double rate : {0.0, 0.05, 0.25, 1.0}) {
    data::DatasetOptions data_opts;
    data_opts.duplicate_poster_fraction = 0.4;
    engine::KathDBOptions db_opts;
    db_opts.executor.monitor_sample_rate = rate;
    db_opts.executor.ask_user_on_anomaly = false;  // unattended sweep
    BenchDb b = MakeIngestedDb(60, data_opts, db_opts);
    int64_t tokens_before = b.db->meter()->total_tokens();
    engine::QueryOutcome outcome = RunPaperQuery(b.db.get());
    std::printf("%-12.2f %-12d %-14s %-12lld\n", rate,
                outcome.report.total_anomalies,
                outcome.report.total_anomalies > 0 ? "detected" : "missed",
                static_cast<long long>(b.db->meter()->total_tokens() -
                                       tokens_before));
  }
  std::printf("(expected shape: rate 0 misses the duplicate-poster "
              "anomaly; higher rates detect it at higher monitor token "
              "cost)\n\n");
}

void BM_QueryWithSampling(benchmark::State& state) {
  double rate = static_cast<double>(state.range(0)) / 100.0;
  data::DatasetOptions data_opts;
  data_opts.duplicate_poster_fraction = 0.4;
  engine::KathDBOptions db_opts;
  db_opts.executor.monitor_sample_rate = rate;
  db_opts.executor.ask_user_on_anomaly = false;
  for (auto _ : state) {
    state.PauseTiming();
    BenchDb b = MakeIngestedDb(60, data_opts, db_opts);
    state.ResumeTiming();
    benchmark::DoNotOptimize(RunPaperQuery(b.db.get()).result.num_rows());
  }
  state.SetLabel("rate=" + std::to_string(rate));
}
BENCHMARK(BM_QueryWithSampling)->Arg(0)->Arg(25)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSamplingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
