#!/usr/bin/env bash
# Run every KathDB benchmark binary and leave one BENCH_<name>.json per
# binary (google-benchmark JSON format) in the output directory.
#
# Usage:
#   bench/run_all.sh [BUILD_DIR] [OUT_DIR] [FILTER]
#
# BUILD_DIR defaults to ./build and must contain the bench_* binaries
# (configure with -DKATHDB_BUILD_BENCH=ON). OUT_DIR defaults to BUILD_DIR.
# FILTER, when given, restricts the run to binaries whose name contains
# the substring — e.g. `bench/run_all.sh build build service` re-runs
# only bench_service_throughput without the full suite.
# The paper-shaped stdout of each bench (figure/table reproduction) is
# captured alongside the JSON as BENCH_<name>.txt.
#
# Also reachable as `cmake --build build --target bench`.

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-${BENCH_OUT_DIR:-${BUILD_DIR}}}"
FILTER="${3:-}"

# Auto-discover every bench binary: current layout puts them in
# BUILD_DIR/bench, older trees kept them at the build root. Scan both so
# a freshly added bench_*.cpp (picked up by the CMake glob) is always
# run without touching this script.
BENCH_BINS=()
seen=" "
for dir in "${BUILD_DIR}/bench" "${BUILD_DIR}"; do
  for bin in "${dir}"/bench_*; do
    [ -x "${bin}" ] && [ -f "${bin}" ] || continue
    base="$(basename "${bin}")"
    case "${seen}" in *" ${base} "*) continue ;; esac  # bench/ copy wins
    seen="${seen}${base} "
    BENCH_BINS+=("${bin}")
  done
done
if [ "${#BENCH_BINS[@]}" -eq 0 ]; then
  echo "error: no bench_* binaries in '${BUILD_DIR}'." >&2
  echo "Configure with: cmake -B ${BUILD_DIR} -S . -DKATHDB_BUILD_BENCH=ON && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

status=0
matched=0
for bin in "${BENCH_BINS[@]}"; do
  name="$(basename "${bin}")"
  if [ -n "${FILTER}" ] && [[ "${name}" != *"${FILTER}"* ]]; then
    continue
  fi
  matched=$((matched + 1))
  json="${OUT_DIR}/BENCH_${name}.json"
  txt="${OUT_DIR}/BENCH_${name}.txt"
  echo "== ${name} -> ${json}"
  if ! "${bin}" --benchmark_out="${json}" --benchmark_out_format=json \
       >"${txt}" 2>&1; then
    echo "   FAILED (see ${txt})" >&2
    status=1
  fi
done

if [ -n "${FILTER}" ] && [ "${matched}" -eq 0 ]; then
  echo "error: no bench binary matches filter '${FILTER}'." >&2
  exit 1
fi

echo "Benchmark JSON written to ${OUT_DIR}/BENCH_*.json"
exit "${status}"
