// E8 / §4 — cost-based physical selection among alternative FAO
// implementations of classify_boring: scene-graph statistics (cheap),
// pixel-level vision model (accurate, expensive), and a cascade. The
// optimizer profiles the candidates on sample rows against the pixel
// reference and picks the cheapest implementation meeting the accuracy
// floor. Sweeping VLM detector noise shifts the choice.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "optimizer/optimizer.h"
#include "parser/nl_parser.h"
#include "planner/plan_generator.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

void PrintSelectionTable() {
  std::printf("=== E8: physical selection for classify_boring under VLM "
              "noise ===\n");
  std::printf("%-12s %-26s %-10s %-12s %-8s\n", "vlm_noise", "candidate",
              "agree", "est_cost_usd", "chosen");
  for (double noise : {0.0, 2.0, 3.5}) {
    data::DatasetOptions data_opts;
    engine::KathDBOptions db_opts;
    // Detector misses plus mis-reported pixel statistics: the cheap
    // scene-graph heuristic inherits both, the pixel path neither.
    db_opts.vlm.detection_drop_prob = std::min(0.5, noise / 4);
    db_opts.vlm.class_confusion_prob = std::min(0.4, noise / 5);
    db_opts.vlm.variance_noise = noise;
    db_opts.optimizer.accuracy_floor = 0.8;
    db_opts.optimizer.profile_sample_rows = 20;
    BenchDb b = MakeIngestedDb(60, data_opts, db_opts);

    llm::ScriptedUser user = PaperUser();
    parser::NlParser nl(b.db->llm(), &user, b.db->catalog());
    auto sketch = nl.Parse(kPaperQuery);
    if (!sketch.ok()) std::abort();
    planner::LogicalPlanGenerator gen(b.db->llm(), b.db->catalog());
    auto plan = gen.Generate(sketch.value(), nl.intent());
    if (!plan.ok()) std::abort();
    fao::ExecContext ctx = b.db->MakeContext();
    opt::QueryOptimizer optimizer(b.db->llm(), b.db->registry(),
                                  b.db->options().optimizer);
    auto physical = optimizer.Optimize(plan.value(), nl.intent(), &ctx);
    if (!physical.ok()) std::abort();
    for (const auto& p : optimizer.profiles()) {
      if (p.node != "classify_boring") continue;
      std::printf("%-12.2f %-26s %-10.2f %-12.4f %-8s\n", noise,
                  p.template_id.c_str(), p.agreement, p.est_cost_usd,
                  p.chosen ? "<== yes" : "");
    }
  }
  std::printf("(expected shape: with a clean detector the cheap stats "
              "implementation agrees with the vision reference and wins; "
              "as detector noise grows its agreement drops below the "
              "floor and the optimizer escalates to cascade/pixels)\n\n");
}

void BM_OptimizePlan(benchmark::State& state) {
  BenchDb b = MakeIngestedDb(40);
  llm::ScriptedUser user = PaperUser();
  parser::NlParser nl(b.db->llm(), &user, b.db->catalog());
  auto sketch = nl.Parse(kPaperQuery);
  if (!sketch.ok()) std::abort();
  planner::LogicalPlanGenerator gen(b.db->llm(), b.db->catalog());
  auto plan = gen.Generate(sketch.value(), nl.intent());
  if (!plan.ok()) std::abort();
  fao::ExecContext ctx = b.db->MakeContext();
  for (auto _ : state) {
    opt::QueryOptimizer optimizer(b.db->llm(), b.db->registry());
    benchmark::DoNotOptimize(
        optimizer.Optimize(plan.value(), nl.intent(), &ctx));
  }
}
BENCHMARK(BM_OptimizePlan)->Unit(benchmark::kMillisecond);

void BM_CascadeVsPixelsExecution(benchmark::State& state) {
  bool cascade = state.range(0) == 1;
  engine::KathDBOptions db_opts;
  db_opts.optimizer.boring_impl = cascade ? "cascade" : "pixels";
  for (auto _ : state) {
    state.PauseTiming();
    BenchDb b = MakeIngestedDb(80, {}, db_opts);
    state.ResumeTiming();
    engine::QueryOutcome outcome = RunPaperQuery(b.db.get());
    benchmark::DoNotOptimize(outcome.result.num_rows());
  }
  state.SetLabel(cascade ? "cascade" : "pixels");
}
BENCHMARK(BM_CascadeVsPixelsExecution)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSelectionTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
