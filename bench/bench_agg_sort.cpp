// Back-half vectorization research question — after PR "columnar scan"
// moved the front of the pipeline (scan/filter/project) to chunks, the
// aggregate and sort operators still boxed a Value per cell. How much do
// the chunk-native kernels (hash group-by over typed accumulator arrays,
// index-permutation sort with typed comparators) buy over the row
// kernels on 1M-row inputs, and is the output still byte-identical?
//
// Drives the SAME operator factories both ways via ExecImpl: the row
// kernels materialized row-at-a-time (the reference) against the
// columnar kernels materialized in chunks. Checks cell-for-cell identity
// (lids included) on a subset and fingerprint identity at full size
// before timing. Acceptance target: >= 4x wall-clock speedup each.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relational/ops.h"
#include "relational/table.h"

using namespace kathdb::rel;  // NOLINT

namespace {

constexpr size_t kRows = 1'000'000;
constexpr size_t kCheckRows = 20'000;  // equivalence-checked subset size

/// Deterministic fact table: mid INT, year INT, score DOUBLE, genre
/// STRING (8 distinct values -> dictionary encodes), watched BOOL.
std::shared_ptr<Table> MakeFactTable(size_t rows) {
  Schema schema;
  schema.AddColumn("mid", DataType::kInt);
  schema.AddColumn("year", DataType::kInt);
  schema.AddColumn("score", DataType::kDouble);
  schema.AddColumn("genre", DataType::kString);
  schema.AddColumn("watched", DataType::kBool);
  static const char* kGenres[] = {"action", "comedy", "drama",   "horror",
                                  "romance", "sci-fi", "western", "noir"};
  auto t = std::make_shared<Table>("facts", schema);
  uint64_t s = 0x2545F4914F6CDD1DULL;
  for (size_t i = 0; i < rows; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;  // xorshift64
    int64_t year = 1950 + static_cast<int64_t>(s % 75);
    double score = static_cast<double>(s % 10000) / 10000.0;
    t->AppendRow({Value::Int(static_cast<int64_t>(i)), Value::Int(year),
                  Value::Double(score), Value::Str(kGenres[s % 8]),
                  Value::Bool((s & 1) != 0)},
                 static_cast<int64_t>(i + 1));
  }
  return t;
}

/// GROUP BY genre, year with one aggregate of every function: 600 groups
/// out of 1M rows, dictionary + int keys.
OperatorPtr MakeGroupBy(std::shared_ptr<Table> table, ExecImpl impl) {
  std::vector<AggSpec> aggs = {
      {AggFn::kCount, "", "n"},
      {AggFn::kSum, "score", "sum_score"},
      {AggFn::kAvg, "score", "avg_score"},
      {AggFn::kMin, "score", "min_score"},
      {AggFn::kMax, "mid", "max_mid"},
  };
  return MakeAggregate(MakeSeqScan(std::move(table)), {"genre", "year"},
                       std::move(aggs), impl);
}

/// ORDER BY score DESC, mid ASC: a double key with heavy ties broken by
/// a unique int key, full-width payload carried through.
OperatorPtr MakeOrderBy(std::shared_ptr<Table> table, ExecImpl impl) {
  return MakeSort(MakeSeqScan(std::move(table)),
                  {{"score", true}, {"mid", false}}, impl);
}

bool Identical(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() ||
      !(a.schema() == b.schema()) ||
      a.Fingerprint() != b.Fingerprint()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    if (a.row_lid(r) != b.row_lid(r)) return false;
    for (size_t c = 0; c < a.schema().num_columns(); ++c) {
      if (a.at(r, c) != b.at(r, c) ||
          a.at(r, c).type() != b.at(r, c).type()) {
        return false;
      }
    }
  }
  return true;
}

double TimedMs(const std::function<kathdb::Result<Table>()>& run,
               Table* out) {
  auto t0 = std::chrono::steady_clock::now();
  auto r = run();
  auto t1 = std::chrono::steady_clock::now();
  if (!r.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  *out = std::move(r).value();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

using MakeOp = std::function<OperatorPtr(std::shared_ptr<Table>, ExecImpl)>;

void ComparePipeline(const char* label, const MakeOp& make, double target) {
  // Byte-identity first, on a subset small enough to compare cell by cell.
  auto check = MakeFactTable(kCheckRows);
  Table by_rows;
  Table by_cols;
  auto rows_op = make(check, ExecImpl::kRow);
  auto cols_op = make(check, ExecImpl::kColumnar);
  TimedMs([&] { return MaterializeRows(rows_op.get(), "out"); }, &by_rows);
  TimedMs([&] { return Materialize(cols_op.get(), "out"); }, &by_cols);
  if (!Identical(by_rows, by_cols)) {
    std::fprintf(stderr, "%s: columnar result differs from row result\n",
                 label);
    std::abort();
  }

  auto facts = MakeFactTable(kRows);
  std::printf("=== %s over %zu rows ===\n", label, kRows);
  std::printf("%-10s %-12s %-12s %-10s %-10s\n", "path", "wall_ms",
              "out_rows", "speedup", "identical");
  Table row_out;
  Table col_out;
  auto op_r = make(facts, ExecImpl::kRow);
  auto op_c = make(facts, ExecImpl::kColumnar);
  double row_ms =
      TimedMs([&] { return MaterializeRows(op_r.get(), "out"); }, &row_out);
  double col_ms =
      TimedMs([&] { return Materialize(op_c.get(), "out"); }, &col_out);
  bool same = row_out.num_rows() == col_out.num_rows() &&
              row_out.Fingerprint() == col_out.Fingerprint();
  std::printf("%-10s %-12.1f %-12zu %-10s %-10s\n", "row", row_ms,
              row_out.num_rows(), "1.00", "-");
  std::printf("%-10s %-12.1f %-12zu %-10.2f %-10s\n", "columnar", col_ms,
              col_out.num_rows(), row_ms / col_ms, same ? "yes" : "NO");
  std::printf("speedup: %.2fx (target >= %.1fx)\n\n", row_ms / col_ms,
              target);
  if (!same) std::abort();
}

void PrintComparison() {
  ComparePipeline("group-by: Aggregate(genre,year; 5 aggs)", MakeGroupBy,
                  4.0);
  ComparePipeline("sort: Sort(score DESC, mid ASC)", MakeOrderBy, 4.0);
}

void BM_RowGroupBy(benchmark::State& state) {
  auto facts = MakeFactTable(static_cast<size_t>(state.range(0)));
  size_t out_rows = 0;
  for (auto _ : state) {
    auto op = MakeGroupBy(facts, ExecImpl::kRow);
    auto r = MaterializeRows(op.get(), "out");
    if (!r.ok()) std::abort();
    out_rows = r->num_rows();
    benchmark::DoNotOptimize(out_rows);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RowGroupBy)
    ->Arg(kCheckRows)
    ->Arg(kRows)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ColumnarGroupBy(benchmark::State& state) {
  auto facts = MakeFactTable(static_cast<size_t>(state.range(0)));
  size_t out_rows = 0;
  for (auto _ : state) {
    auto op = MakeGroupBy(facts, ExecImpl::kColumnar);
    auto r = Materialize(op.get(), "out");
    if (!r.ok()) std::abort();
    out_rows = r->num_rows();
    benchmark::DoNotOptimize(out_rows);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColumnarGroupBy)
    ->Arg(kCheckRows)
    ->Arg(kRows)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_RowSort(benchmark::State& state) {
  auto facts = MakeFactTable(static_cast<size_t>(state.range(0)));
  size_t out_rows = 0;
  for (auto _ : state) {
    auto op = MakeOrderBy(facts, ExecImpl::kRow);
    auto r = MaterializeRows(op.get(), "out");
    if (!r.ok()) std::abort();
    out_rows = r->num_rows();
    benchmark::DoNotOptimize(out_rows);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RowSort)
    ->Arg(kCheckRows)
    ->Arg(kRows)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ColumnarSort(benchmark::State& state) {
  auto facts = MakeFactTable(static_cast<size_t>(state.range(0)));
  size_t out_rows = 0;
  for (auto _ : state) {
    auto op = MakeOrderBy(facts, ExecImpl::kColumnar);
    auto r = Materialize(op.get(), "out");
    if (!r.ok()) std::abort();
    out_rows = r->num_rows();
    benchmark::DoNotOptimize(out_rows);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColumnarSort)
    ->Arg(kCheckRows)
    ->Arg(kRows)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // The printed comparison (equivalence check + headline speedup) only
  // runs unfiltered; CI smoke runs filter to one benchmark and should
  // not pay for the full 1M-row sweep twice.
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_filter", 0) == 0) {
      filtered = true;
    }
  }
  if (!filtered) PrintComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
