// E10 / substrate — vector similarity search: exact brute force vs the
// IVF index, the two physical implementations the FAO optimizer can bind
// to a similarity-search signature. Reports recall@10 of IVF against the
// exact index and times both across collection sizes.

#include <benchmark/benchmark.h>

#include <set>

#include "common/rng.h"
#include "vector/embedding.h"
#include "vector/index.h"

using namespace kathdb;       // NOLINT
using namespace kathdb::vec;  // NOLINT

namespace {

std::vector<Embedding> RandomVectors(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Embedding> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Embedding e(dim);
    for (auto& v : e) v = static_cast<float>(rng.NextGaussian());
    Normalize(&e);
    out.push_back(std::move(e));
  }
  return out;
}

void PrintRecallTable() {
  std::printf("=== E10: IVF recall@10 vs exact search ===\n");
  std::printf("%-8s %-10s %-10s %-10s\n", "N", "clusters", "nprobe",
              "recall@10");
  const size_t dim = 64;
  for (size_t n : {1000, 8000}) {
    auto vecs = RandomVectors(n, dim, n);
    BruteForceIndex exact(dim);
    for (size_t i = 0; i < n; ++i) {
      (void)exact.Add(static_cast<int64_t>(i), vecs[i]);
    }
    (void)exact.Build();
    for (size_t nprobe : {2, 8, 16}) {
      IvfIndex ivf(dim, 32, nprobe);
      for (size_t i = 0; i < n; ++i) {
        (void)ivf.Add(static_cast<int64_t>(i), vecs[i]);
      }
      (void)ivf.Build();
      auto queries = RandomVectors(30, dim, 123);
      double recall = 0.0;
      for (const auto& q : queries) {
        auto te = exact.Search(q, 10).value();
        auto ta = ivf.Search(q, 10).value();
        std::set<int64_t> truth;
        for (const auto& h : te) truth.insert(h.id);
        size_t hit = 0;
        for (const auto& h : ta) {
          if (truth.count(h.id) > 0) ++hit;
        }
        recall += static_cast<double>(hit) / truth.size();
      }
      std::printf("%-8zu %-10d %-10zu %-10.3f\n", n, 32, nprobe,
                  recall / 30.0);
    }
  }
  std::printf("(expected shape: recall rises with nprobe; IVF search time "
              "stays well below brute force at large N)\n\n");
}

void BM_BruteForceSearch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  auto vecs = RandomVectors(n, dim, n);
  BruteForceIndex idx(dim);
  for (size_t i = 0; i < n; ++i) {
    (void)idx.Add(static_cast<int64_t>(i), vecs[i]);
  }
  (void)idx.Build();
  auto queries = RandomVectors(16, dim, 7);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.Search(queries[qi++ % 16], 10));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BruteForceSearch)->Arg(1000)->Arg(8000)->Arg(32000);

void BM_IvfSearch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  auto vecs = RandomVectors(n, dim, n);
  IvfIndex idx(dim, 64, 8);
  for (size_t i = 0; i < n; ++i) {
    (void)idx.Add(static_cast<int64_t>(i), vecs[i]);
  }
  (void)idx.Build();
  auto queries = RandomVectors(16, dim, 7);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.Search(queries[qi++ % 16], 10));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IvfSearch)->Arg(1000)->Arg(8000)->Arg(32000);

void BM_EmbedText(benchmark::State& state) {
  TextEmbedder embedder(64);
  std::string text =
      "A gun battle erupts when the detective corners the killer on the "
      "rooftop after the motorcycle chase.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedder.EmbedText(text));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmbedText);

}  // namespace

int main(int argc, char** argv) {
  PrintRecallTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
