// E5 / Figure 6 — the final output of KathDB for the §6 query: Guilty by
// Suspicion (1991) ranked above Clean and Sober (1988), both flagged as
// boring posters, with near-1.0 and ~0.97 final scores. Then times the
// end-to-end query.

#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

void PrintFigure6() {
  BenchDb b = MakeIngestedDb(40);
  engine::QueryOutcome outcome = RunPaperQuery(b.db.get());

  std::printf("=== Figure 6: example final output of KathDB ===\n");
  std::printf("(paper top-2: Guilty by Suspicion 1991 / 0.999..., Clean "
              "and Sober 1988 / 0.973..., both Boring Posters = True)\n\n");
  // Render the paper's columns: Name, Year, Final Score, Boring, lid.
  const rel::Table& r = outcome.result;
  auto tidx = *r.schema().IndexOf("title");
  auto yidx = *r.schema().IndexOf("year");
  auto fidx = *r.schema().IndexOf("final_score");
  auto bidx = *r.schema().IndexOf("boring_poster");
  std::printf("%-24s %-6s %-12s %-15s %s\n", "Name", "Year", "Final Score",
              "Boring Posters", "lid");
  for (size_t i = 0; i < std::min<size_t>(5, r.num_rows()); ++i) {
    std::printf("%-24s %-6s %-12.6f %-15s %lld\n",
                r.at(i, tidx).AsString().c_str(),
                r.at(i, yidx).ToString().c_str(), r.at(i, fidx).AsDouble(),
                r.at(i, bidx).AsBool() ? "True" : "False",
                static_cast<long long>(r.row_lid(i)));
  }
  std::printf("\nExecution: %s", outcome.report.ToText().c_str());
  std::printf("LLM usage for the full pipeline: %s\n\n",
              b.db->meter()->Summary().c_str());
}

void BM_EndToEndQuery(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BenchDb b = MakeIngestedDb(static_cast<int>(state.range(0)));
    state.ResumeTiming();
    engine::QueryOutcome outcome = RunPaperQuery(b.db.get());
    benchmark::DoNotOptimize(outcome.result.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EndToEndQuery)->Arg(20)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_IngestOnly(benchmark::State& state) {
  for (auto _ : state) {
    BenchDb b = MakeIngestedDb(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(b.db->catalog()->ListNames());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IngestOnly)->Arg(40)->Arg(160)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
