// E9 / §1 framing — KathDB vs the two worlds it reconciles:
//   (a) black-box LLM execution: no user effort, but opaque (no lineage,
//       no explanation) and accuracy bounded by per-record model quality;
//   (b) manual SQL + ML UDFs: exact, explainable to its author, but costly
//       in hand-written statements.
// Reports filter quality (F1 vs ground truth), ranking agreement with the
// expert pipeline (Kendall tau), token cost and user effort.

#include <benchmark/benchmark.h>

#include "baselines/baselines.h"
#include "baselines/metrics.h"
#include "bench_util.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

std::vector<int64_t> TruthBoring(const data::MovieDataset& ds) {
  std::vector<int64_t> out;
  for (const auto& t : ds.truth) {
    if (t.boring_poster) out.push_back(t.mid);
  }
  return out;
}

void PrintComparisonTable() {
  const int kMovies = 60;
  std::printf("=== E9: KathDB vs black-box LLM vs SQL+UDF (%d movies) "
              "===\n",
              kMovies);
  std::printf("%-22s %-8s %-8s %-10s %-10s %-12s %-12s\n", "system",
              "filterF1", "rankTau", "tokens", "cost_usd", "user_stmts",
              "explainable");

  // --- KathDB -----------------------------------------------------------
  BenchDb b = MakeIngestedDb(kMovies);
  engine::QueryOutcome outcome = RunPaperQuery(b.db.get());
  std::vector<int64_t> kath_ranking;
  auto midx = *outcome.result.schema().IndexOf("mid");
  for (size_t r = 0; r < outcome.result.num_rows(); ++r) {
    kath_ranking.push_back(outcome.result.at(r, midx).AsInt());
  }
  auto truth = TruthBoring(b.dataset);
  auto kath_q = baseline::CompareSets(kath_ranking, truth);

  // --- expert SQL+UDF over the same ingested substrate -------------------
  baseline::SqlUdfBaseline expert;
  auto su = expert.Run(b.db.get(), b.dataset);
  if (!su.ok()) std::abort();
  auto su_q = baseline::CompareSets(su->kept, truth);

  double kath_tau = baseline::KendallTau(kath_ranking, su->ranking);

  std::printf("%-22s %-8.2f %-8.2f %-10lld $%-9.4f %-12d %-12s\n", "KathDB",
              kath_q.f1, kath_tau,
              static_cast<long long>(b.db->meter()->total_tokens()),
              b.db->meter()->total_cost_usd(), 0, "yes (lineage)");
  std::printf("%-22s %-8.2f %-8.2f %-10lld $%-9.4f %-12d %-12s\n",
              "SQL+UDF (expert)", su_q.f1, 1.0,
              static_cast<long long>(su->tokens_used), su->cost_usd,
              su->user_authored_statements, "author-only");

  // --- black-box LLM at three quality tiers ------------------------------
  for (double quality : {0.95, 0.8, 0.6}) {
    baseline::BlackboxLlmBaseline blackbox(quality);
    auto bb = blackbox.Run(b.dataset);
    if (!bb.ok()) std::abort();
    auto bb_q = baseline::CompareSets(bb->kept, truth);
    double bb_tau = baseline::KendallTau(bb->ranking, su->ranking);
    char name[64];
    std::snprintf(name, sizeof(name), "black-box (q=%.2f)", quality);
    std::printf("%-22s %-8.2f %-8.2f %-10lld $%-9.4f %-12d %-12s\n", name,
                bb_q.f1, bb_tau, static_cast<long long>(bb->tokens_used),
                bb->cost_usd, bb->user_authored_statements, "no");
  }
  std::printf("(expected shape: KathDB matches the expert pipeline at zero "
              "authored statements and stays explainable; the black-box "
              "degrades with model quality and serializes the whole DB "
              "into every prompt)\n\n");
}

void BM_KathdbQuery(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BenchDb b = MakeIngestedDb(60);
    state.ResumeTiming();
    benchmark::DoNotOptimize(RunPaperQuery(b.db.get()).result.num_rows());
  }
}
BENCHMARK(BM_KathdbQuery)->Unit(benchmark::kMillisecond);

void BM_BlackboxBaseline(benchmark::State& state) {
  BenchDb b = MakeIngestedDb(60);
  for (auto _ : state) {
    baseline::BlackboxLlmBaseline blackbox(0.8);
    benchmark::DoNotOptimize(blackbox.Run(b.dataset));
  }
}
BENCHMARK(BM_BlackboxBaseline)->Unit(benchmark::kMillisecond);

void BM_SqlUdfBaseline(benchmark::State& state) {
  BenchDb b = MakeIngestedDb(60);
  for (auto _ : state) {
    baseline::SqlUdfBaseline expert;
    benchmark::DoNotOptimize(expert.Run(b.db.get(), b.dataset));
  }
}
BENCHMARK(BM_SqlUdfBaseline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintComparisonTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
