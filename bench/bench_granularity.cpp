// E7 / §4 research question — plan granularity: "a compact plan with
// fewer larger functions may execute more quickly, but ... may also make
// explanations harder."
//
// Compares the fine-grained 10-node plan against the fused variant
// (keyword + recency + combine merged into one operator) on runtime,
// intermediate materializations, lineage volume and explanation detail.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

struct GranularityRow {
  const char* variant;
  size_t nodes = 0;
  double exec_ms = 0.0;
  size_t lineage_edges = 0;
  size_t explanation_chars = 0;
  size_t distinct_funcs = 0;
};

GranularityRow RunVariant(const char* name, bool fuse, int movies) {
  engine::KathDBOptions db_opts;
  db_opts.optimizer.enable_fusion = fuse;
  BenchDb b = MakeIngestedDb(movies, {}, db_opts);
  size_t edges_before = b.db->lineage()->num_entries();
  auto t0 = std::chrono::steady_clock::now();
  engine::QueryOutcome outcome = RunPaperQuery(b.db.get());
  auto t1 = std::chrono::steady_clock::now();
  GranularityRow row;
  row.variant = name;
  row.nodes = outcome.physical_plan.nodes.size();
  row.exec_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.lineage_edges = b.db->lineage()->num_entries() - edges_before;
  row.distinct_funcs = b.db->registry()->num_functions();
  auto fine = b.db->ExplainTuple(outcome.result.row_lid(0));
  row.explanation_chars = fine.ok() ? fine.value().size() : 0;
  return row;
}

void PrintGranularityTable() {
  std::printf("=== E7: plan granularity (fine vs fused scoring chain) ===\n");
  std::printf("%-10s %-7s %-10s %-14s %-12s %-14s\n", "variant", "nodes",
              "exec_ms", "lineage_edges", "functions", "explain_chars");
  for (int movies : {100, 400}) {
    GranularityRow fine = RunVariant("fine", false, movies);
    GranularityRow fused = RunVariant("fused", true, movies);
    std::printf("-- %d movies --\n", movies);
    for (const auto& row : {fine, fused}) {
      std::printf("%-10s %-7zu %-10.2f %-14zu %-12zu %-14zu\n", row.variant,
                  row.nodes, row.exec_ms, row.lineage_edges,
                  row.distinct_funcs, row.explanation_chars);
    }
  }
  std::printf("(expected shape: fused has fewer nodes/edges and lower "
              "runtime, but a shorter — coarser — explanation)\n\n");
}

void BM_FinePlan(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BenchDb b = MakeIngestedDb(100);
    state.ResumeTiming();
    benchmark::DoNotOptimize(RunPaperQuery(b.db.get()).result.num_rows());
  }
}
BENCHMARK(BM_FinePlan)->Unit(benchmark::kMillisecond);

void BM_FusedPlan(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    engine::KathDBOptions db_opts;
    db_opts.optimizer.enable_fusion = true;
    BenchDb b = MakeIngestedDb(100, {}, db_opts);
    state.ResumeTiming();
    benchmark::DoNotOptimize(RunPaperQuery(b.db.get()).result.num_rows());
  }
}
BENCHMARK(BM_FusedPlan)->Unit(benchmark::kMillisecond);

void BM_PushdownPlan(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    engine::KathDBOptions db_opts;
    db_opts.optimizer.enable_pushdown = true;
    BenchDb b = MakeIngestedDb(100, {}, db_opts);
    state.ResumeTiming();
    benchmark::DoNotOptimize(RunPaperQuery(b.db.get()).result.num_rows());
  }
}
BENCHMARK(BM_PushdownPlan)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintGranularityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
