// Network front-end research question — the ROADMAP north star serves
// "heavy traffic from millions of users", and PR 7 moves the front door
// onto a socket: what does the kathdb-wire/1 framing + event loop +
// streamed partial results cost on top of the in-process QueryService,
// and how do throughput and tail latency hold up as loopback
// connections scale past the worker count?
//
// Each connection is a real TCP client running the paper query with
// scripted replies shipped in the QUERY frame; results stream back as
// partial-result chunks and are reassembled client-side. Both result
// encodings are swept — the legacy CSV PARTIAL_RESULT frames and the
// columnar PARTIAL_RESULT_COL frames — so the table shows what the
// columnar wire format saves in bytes-on-wire at equal or better qps.
// The google-benchmark pass exports the same shape (64 connections per
// encoding, with bytes-on-wire and MB/s counters) to
// BENCH_net_throughput.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

constexpr int kCorpusMovies = 40;
constexpr int kWorkers = 8;
constexpr int kQueriesPerConn = 4;
constexpr size_t kChunkRows = 8;

const char* EncodingName(net::ResultEncoding e) {
  return e == net::ResultEncoding::kColumnar ? "columnar" : "csv";
}

struct NetRun {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int64_t queries = 0;
  int64_t partial_frames = 0;
  int64_t partial_bytes = 0;  ///< wire bytes across the partial frames
  double wire_mbps = 0.0;     ///< partial-frame MB/s over the run
};

/// One server, `connections` concurrent clients negotiating `encoding`,
/// kQueriesPerConn paper queries each. Per-query wall times feed the
/// percentile columns; the server's partial-frame byte counter feeds
/// the bytes-on-wire column.
NetRun ServeConnections(engine::KathDB* db, int connections,
                        net::ResultEncoding encoding) {
  service::ServiceOptions svc_opts;
  svc_opts.workers = kWorkers;
  svc_opts.max_queue =
      static_cast<size_t>(connections) * kQueriesPerConn + 16;
  service::QueryService service(db, svc_opts);
  // Warm the shared cache once so the sweep measures serving, not the
  // first-ever LLM pass.
  service::SessionId warm = service.OpenSession(PaperReplies());
  auto warmup = service.Query(warm, kPaperQuery);
  if (!warmup.ok()) {
    std::fprintf(stderr, "warm-up failed: %s\n",
                 warmup.status().ToString().c_str());
    std::abort();
  }
  service.CloseSession(warm);

  net::ServerOptions net_opts;
  net_opts.stream_chunk_rows = kChunkRows;
  net::Server server(&service, net_opts);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }

  std::mutex mu;
  std::vector<double> latencies_ms;
  std::vector<std::thread> threads;
  threads.reserve(connections);
  auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&server, &mu, &latencies_ms, encoding] {
      net::ClientOptions copts;
      copts.port = server.port();
      copts.result_encoding = encoding;
      net::Client client(copts);
      Status st = client.Connect();
      if (!st.ok()) {
        std::fprintf(stderr, "connect failed: %s\n",
                     st.ToString().c_str());
        std::abort();
      }
      if (client.negotiated_encoding() != encoding) {
        std::fprintf(stderr, "server rejected the %s encoding\n",
                     EncodingName(encoding));
        std::abort();
      }
      auto sid = client.OpenSession();
      if (!sid.ok()) std::abort();
      std::vector<double> local;
      local.reserve(kQueriesPerConn);
      for (int q = 0; q < kQueriesPerConn; ++q) {
        auto q0 = std::chrono::steady_clock::now();
        auto result = client.Query(*sid, kPaperQuery, PaperReplies());
        auto q1 = std::chrono::steady_clock::now();
        if (!result.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       result.status().ToString().c_str());
          std::abort();
        }
        local.push_back(
            std::chrono::duration<double, std::milli>(q1 - q0).count());
      }
      client.CloseSession(*sid);
      client.Close();
      std::lock_guard<std::mutex> lock(mu);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  for (auto& t : threads) t.join();
  auto t1 = std::chrono::steady_clock::now();

  net::NetStats net_stats = server.stats();
  server.Stop();

  NetRun out;
  out.queries = static_cast<int64_t>(latencies_ms.size());
  out.partial_frames = net_stats.partial_frames;
  out.partial_bytes = net_stats.partial_bytes;
  double secs = std::chrono::duration<double>(t1 - t0).count();
  out.qps = secs > 0 ? out.queries / secs : 0.0;
  out.wire_mbps =
      secs > 0 ? out.partial_bytes / secs / (1024.0 * 1024.0) : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto pct = [&latencies_ms](double p) {
    if (latencies_ms.empty()) return 0.0;
    size_t idx = static_cast<size_t>(p * (latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  out.p50_ms = pct(0.50);
  out.p99_ms = pct(0.99);
  return out;
}

void PrintConnectionSweep() {
  std::printf(
      "=== net throughput: loopback kathdb-wire/1, %d workers, %d-movie "
      "corpus, %d queries/conn, %zu-row chunks ===\n",
      kWorkers, kCorpusMovies, kQueriesPerConn, kChunkRows);
  std::printf("%-10s %-13s %-10s %-10s %-10s %-10s %-10s %-13s %-10s\n",
              "encoding", "connections", "queries", "qps", "p50_ms",
              "p99_ms", "frames", "wire_bytes", "wire_MB/s");
  BenchDb b = MakeIngestedDb(kCorpusMovies);
  for (net::ResultEncoding encoding :
       {net::ResultEncoding::kCsv, net::ResultEncoding::kColumnar}) {
    for (int connections : {1, 8, 16, 64}) {
      NetRun r = ServeConnections(b.db.get(), connections, encoding);
      std::printf("%-10s %-13d %-10lld %-10.1f %-10.2f %-10.2f %-10lld "
                  "%-13lld %-10.2f\n",
                  EncodingName(encoding), connections,
                  static_cast<long long>(r.queries), r.qps, r.p50_ms,
                  r.p99_ms, static_cast<long long>(r.partial_frames),
                  static_cast<long long>(r.partial_bytes), r.wire_mbps);
    }
  }
  std::printf("\n");
}

void BM_NetThroughput(benchmark::State& state) {
  int connections = static_cast<int>(state.range(0));
  auto encoding = static_cast<net::ResultEncoding>(state.range(1));
  BenchDb b = MakeIngestedDb(kCorpusMovies);
  int64_t queries = 0;
  double p99 = 0.0;
  int64_t partial_bytes = 0;
  double wire_mbps = 0.0;
  for (auto _ : state) {
    NetRun r = ServeConnections(b.db.get(), connections, encoding);
    queries += r.queries;
    p99 = r.p99_ms;
    partial_bytes = r.partial_bytes;
    wire_mbps = r.wire_mbps;
    benchmark::DoNotOptimize(r.qps);
  }
  state.SetItemsProcessed(queries);  // items/sec == queries/sec
  state.counters["connections"] = connections;
  state.counters["workers"] = kWorkers;
  state.counters["p99_ms"] = p99;
  state.counters["columnar"] =
      encoding == net::ResultEncoding::kColumnar ? 1 : 0;
  state.counters["wire_bytes"] = static_cast<double>(partial_bytes);
  state.counters["wire_mbps"] = wire_mbps;
  state.SetLabel(EncodingName(encoding));
}
BENCHMARK(BM_NetThroughput)
    ->Args({8, static_cast<int>(net::ResultEncoding::kCsv)})
    ->Args({64, static_cast<int>(net::ResultEncoding::kCsv)})
    ->Args({8, static_cast<int>(net::ResultEncoding::kColumnar)})
    ->Args({64, static_cast<int>(net::ResultEncoding::kColumnar)})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // The printed sweep only runs unfiltered; CI smoke filters to one
  // benchmark and should not pay for the full two-encoding sweep twice.
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_filter", 0) == 0) {
      filtered = true;
    }
  }
  if (!filtered) PrintConnectionSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
