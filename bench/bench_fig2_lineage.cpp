// E3 / Figure 2 — example rows of the lineage table for the §6 query.
//
// Reproduces the provenance edges of Figure 2: the ingested base table
// (src_uri, parent NULL), the many-to-many join with table-level edges,
// and the one-to-one scoring function with row-level edges. Then times
// raw lineage-recording throughput.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "lineage/lineage.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

void PrintFigure2() {
  BenchDb b = MakeIngestedDb(30);
  engine::QueryOutcome outcome = RunPaperQuery(b.db.get());

  std::printf("=== Figure 2: example rows of the lineage table ===\n");
  rel::Table lineage_table = b.db->lineage()->ToTable();
  // Paper shows: the scoring row edge, the join table edges, the base
  // table ingest. Select representative rows of each kind.
  rel::Table shown("Lineage", lineage_table.schema());
  auto add_matching = [&](const std::string& func, const std::string& type,
                          int limit) {
    int added = 0;
    for (size_t r = 0; r < lineage_table.num_rows() && added < limit; ++r) {
      if (lineage_table.at(r, 3).ToString() == func &&
          lineage_table.at(r, 5).AsString() == type) {
        shown.AppendRow(lineage_table.row(r));
        ++added;
      }
    }
  };
  add_matching("gen_exciting_score", "row", 1);   // cf. lid 1417
  add_matching("join_text_graph", "table", 2);    // cf. lid 1274 x2 parents
  add_matching("load_data", "table", 1);          // cf. lid 1
  add_matching("populate_scene_graph", "table", 1);
  add_matching("combine_scores", "row", 1);
  std::printf("%s\n", shown.ToText(10).c_str());
  std::printf("Total provenance edges recorded for the query + ingest: "
              "%zu (~%zu KiB)\n\n",
              b.db->lineage()->num_entries(),
              b.db->lineage()->ApproxBytes() / 1024);
}

void BM_RecordRowDerivation(benchmark::State& state) {
  lineage::LineageStore store;
  int64_t parent = store.RecordIngest("bench", "ingest", 1,
                                      lineage::LineageDataType::kTable);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.RecordRowDerivation(parent, "bench_fn", 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordRowDerivation);

void BM_TraceToSources(benchmark::State& state) {
  lineage::LineageStore store;
  int64_t cur = store.RecordIngest("root", "ingest", 1,
                                   lineage::LineageDataType::kTable);
  for (int i = 0; i < state.range(0); ++i) {
    cur = store.RecordRowDerivation(cur, "fn", 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.TraceToSources(cur));
  }
}
BENCHMARK(BM_TraceToSources)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
