// Service-layer research question — the ROADMAP north star is "serving
// heavy traffic from millions of users": how many NL queries per second
// can one shared KathDB sustain as workers scale, and how much of that
// headroom comes from the sharded cross-query result cache?
//
// Drives N concurrent sessions over the movie corpus through
// service::QueryService and reports queries/sec and the cache hit rate
// at 1/2/4/8 workers, for both the cached and the cache-disabled
// configuration. Acceptance target: >= 3x queries/sec at 8 workers vs
// 1 worker on the cached repeated workload.
//
// Sessions simulate *remote* users: every interaction-channel question
// (clarification, anomaly confirmation) blocks its worker for
// kReplyLatencyMs before the scripted reply arrives, as a real user or a
// hosted model round-trip would. Hiding exactly this per-session blocking
// is the worker pool's job, so throughput scales with workers even when
// query CPU is a single core.
//
// The second table isolates the async batch scheduler: with the pixel
// classifier paying kVisionLatencyMs per image, the synchronous path
// sleeps once per row while the batched path coalesces identical
// partitions across all sessions and pays one round trip per flush. The
// grid sweeps batch size x flush deadline at 8 workers against the
// batching-off baseline (cache disabled on both sides so the speedup is
// batching, not memoization). Acceptance target: >= 2x qps with batching
// at 8 workers vs the synchronous baseline.

#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "bench_util.h"
#include "service/query_service.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

constexpr int kCorpusMovies = 40;
constexpr int kSessions = 8;
constexpr int kQueriesPerSession = 6;
constexpr double kReplyLatencyMs = 3.0;   // remote-user think time / RTT
constexpr double kVisionLatencyMs = 4.0;  // per-image model RTT (batch grid)

struct RunResult {
  double qps = 0.0;
  double hit_rate = 0.0;
  int64_t completed = 0;
};

/// Knobs for the async LLM batch scheduler; `enabled = false` is the
/// synchronous baseline every grid cell is compared against.
struct BatchConfig {
  bool enabled = false;
  int batch_size = 8;
  double deadline_ms = 1.0;
};

/// Serves kSessions * kQueriesPerSession paper queries with `workers`
/// workers; one warm-up query optionally pre-fills the shared cache.
RunResult ServeWorkload(engine::KathDB* db, int workers, bool enable_cache,
                        bool warm, const BatchConfig& batching = {}) {
  service::ServiceOptions opts;
  opts.workers = workers;
  opts.max_queue = kSessions * kQueriesPerSession + 8;
  opts.enable_result_cache = enable_cache;
  opts.reply_latency_ms = kReplyLatencyMs;
  opts.enable_llm_batching = batching.enabled;
  opts.llm_batch_size = batching.batch_size;
  opts.llm_flush_deadline_ms = batching.deadline_ms;
  service::QueryService service(db, opts);

  std::vector<service::SessionId> sessions;
  sessions.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(service.OpenSession(PaperReplies()));
  }
  if (warm && enable_cache) {
    auto warmup = service.Query(sessions[0], kPaperQuery);
    if (!warmup.ok()) {
      std::fprintf(stderr, "warm-up query failed: %s\n",
                   warmup.status().ToString().c_str());
      std::abort();
    }
  }

  // Snapshot after warm-up so qps and hit rate cover the same window.
  service::ServiceStats before = service.stats();
  auto t0 = std::chrono::steady_clock::now();
  std::vector<service::OutcomeFuture> futures;
  for (int q = 0; q < kQueriesPerSession; ++q) {
    for (service::SessionId sid : sessions) {
      auto fut = service.Submit(sid, kPaperQuery);
      if (!fut.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     fut.status().ToString().c_str());
        std::abort();
      }
      futures.push_back(std::move(fut).value());
    }
  }
  for (auto& fut : futures) {
    if (!fut.get().ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   fut.get().status().ToString().c_str());
      std::abort();
    }
  }
  auto t1 = std::chrono::steady_clock::now();

  service::ServiceStats st = service.stats();
  RunResult out;
  out.completed = st.completed - before.completed;
  double secs = std::chrono::duration<double>(t1 - t0).count();
  out.qps = secs > 0 ? futures.size() / secs : 0.0;
  int64_t lookups = (st.cache.hits + st.cache.misses) -
                    (before.cache.hits + before.cache.misses);
  out.hit_rate =
      lookups > 0
          ? static_cast<double>(st.cache.hits - before.cache.hits) / lookups
          : 0.0;
  return out;
}

void PrintScalingTable() {
  std::printf(
      "=== service throughput: %d sessions x %d queries, %d-movie corpus, "
      "%.0fms reply latency ===\n",
      kSessions, kQueriesPerSession, kCorpusMovies, kReplyLatencyMs);
  std::printf("%-9s %-12s %-14s %-12s %-14s\n", "workers", "qps(cached)",
              "hit_rate", "qps(nocache)", "speedup vs 1w");
  BenchDb b = MakeIngestedDb(kCorpusMovies);
  double base_qps = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    RunResult cached = ServeWorkload(b.db.get(), workers,
                                     /*enable_cache=*/true, /*warm=*/true);
    RunResult uncached = ServeWorkload(b.db.get(), workers,
                                       /*enable_cache=*/false,
                                       /*warm=*/false);
    if (workers == 1) base_qps = cached.qps;
    std::printf("%-9d %-12.1f %-14.2f %-12.1f %.2fx\n", workers, cached.qps,
                cached.hit_rate, uncached.qps,
                base_qps > 0 ? cached.qps / base_qps : 0.0);
  }
  std::printf("\n");
}

/// A corpus whose classify node pays a real per-image model round trip:
/// the batching grid must show latency collapse, so the plan is pinned to
/// the pixel implementation (the "auto" profiler could pick the free
/// stats path and hide the effect) and every image costs kVisionLatencyMs.
BenchDb MakeVisionLatencyDb() {
  engine::KathDBOptions db_opts;
  db_opts.optimizer.boring_impl = "pixels";
  db_opts.optimizer.vision_latency_ms_per_image = kVisionLatencyMs;
  return MakeIngestedDb(kCorpusMovies, {}, db_opts);
}

void PrintBatchingGrid() {
  std::printf(
      "=== async LLM batching: %d sessions x %d queries, 8 workers, "
      "%.0fms/image vision RTT, cache off ===\n",
      kSessions, kQueriesPerSession, kVisionLatencyMs);
  BenchDb b = MakeVisionLatencyDb();
  RunResult sync = ServeWorkload(b.db.get(), /*workers=*/8,
                                 /*enable_cache=*/false, /*warm=*/false);
  std::printf("%-12s %-14s %-10s %-14s\n", "batch_size", "deadline_ms",
              "qps", "speedup vs sync");
  std::printf("%-12s %-14s %-10.1f %.2fx\n", "(off)", "-", sync.qps, 1.0);
  for (int batch_size : {4, 8, 16}) {
    for (double deadline_ms : {0.5, 1.0, 2.0}) {
      BatchConfig cfg;
      cfg.enabled = true;
      cfg.batch_size = batch_size;
      cfg.deadline_ms = deadline_ms;
      RunResult r = ServeWorkload(b.db.get(), /*workers=*/8,
                                  /*enable_cache=*/false, /*warm=*/false,
                                  cfg);
      std::printf("%-12d %-14.1f %-10.1f %.2fx\n", batch_size, deadline_ms,
                  r.qps, sync.qps > 0 ? r.qps / sync.qps : 0.0);
    }
  }
  std::printf("\n");
}

void BM_ServiceThroughput(benchmark::State& state) {
  int workers = static_cast<int>(state.range(0));
  bool cached = state.range(1) != 0;
  BenchDb b = MakeIngestedDb(kCorpusMovies);
  double hit_rate = 0.0;
  int64_t queries = 0;
  for (auto _ : state) {
    RunResult r = ServeWorkload(b.db.get(), workers, cached, cached);
    hit_rate = r.hit_rate;
    queries += r.completed;
    benchmark::DoNotOptimize(r.qps);
  }
  state.SetItemsProcessed(queries);  // items/sec == queries/sec
  state.counters["cache_hit_rate"] = hit_rate;
  state.counters["workers"] = workers;
  state.SetLabel(cached ? "cached" : "nocache");
}
BENCHMARK(BM_ServiceThroughput)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({1, 0})
    ->Args({8, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Args: {batch_size, flush_deadline_us}; {0, 0} is the synchronous
/// baseline (batching off). All cells run 8 workers, cache off, on the
/// vision-latency corpus, so the JSON artifact carries the same grid as
/// PrintBatchingGrid.
void BM_ServiceThroughputBatched(benchmark::State& state) {
  int batch_size = static_cast<int>(state.range(0));
  double deadline_ms = static_cast<double>(state.range(1)) / 1000.0;
  BatchConfig cfg;
  cfg.enabled = batch_size > 0;
  cfg.batch_size = cfg.enabled ? batch_size : 8;
  cfg.deadline_ms = deadline_ms;
  BenchDb b = MakeVisionLatencyDb();
  int64_t queries = 0;
  for (auto _ : state) {
    RunResult r = ServeWorkload(b.db.get(), /*workers=*/8,
                                /*enable_cache=*/false, /*warm=*/false, cfg);
    queries += r.completed;
    benchmark::DoNotOptimize(r.qps);
  }
  state.SetItemsProcessed(queries);  // items/sec == queries/sec
  state.counters["batch_size"] = batch_size;
  state.counters["flush_deadline_ms"] = deadline_ms;
  state.SetLabel(cfg.enabled ? "batched" : "sync");
}
BENCHMARK(BM_ServiceThroughputBatched)
    ->Args({0, 0})
    ->Args({4, 1000})
    ->Args({8, 500})
    ->Args({8, 1000})
    ->Args({8, 2000})
    ->Args({16, 1000})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  PrintScalingTable();
  PrintBatchingGrid();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
