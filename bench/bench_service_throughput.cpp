// Service-layer research question — the ROADMAP north star is "serving
// heavy traffic from millions of users": how many NL queries per second
// can one shared KathDB sustain as workers scale, and how much of that
// headroom comes from the sharded cross-query result cache?
//
// Drives N concurrent sessions over the movie corpus through
// service::QueryService and reports queries/sec and the cache hit rate
// at 1/2/4/8 workers, for both the cached and the cache-disabled
// configuration. Acceptance target: >= 3x queries/sec at 8 workers vs
// 1 worker on the cached repeated workload.
//
// Sessions simulate *remote* users: every interaction-channel question
// (clarification, anomaly confirmation) blocks its worker for
// kReplyLatencyMs before the scripted reply arrives, as a real user or a
// hosted model round-trip would. Hiding exactly this per-session blocking
// is the worker pool's job, so throughput scales with workers even when
// query CPU is a single core.

#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "bench_util.h"
#include "service/query_service.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

constexpr int kCorpusMovies = 40;
constexpr int kSessions = 8;
constexpr int kQueriesPerSession = 6;
constexpr double kReplyLatencyMs = 3.0;  // remote-user think time / RTT

struct RunResult {
  double qps = 0.0;
  double hit_rate = 0.0;
  int64_t completed = 0;
};

/// Serves kSessions * kQueriesPerSession paper queries with `workers`
/// workers; one warm-up query optionally pre-fills the shared cache.
RunResult ServeWorkload(engine::KathDB* db, int workers, bool enable_cache,
                        bool warm) {
  service::ServiceOptions opts;
  opts.workers = workers;
  opts.max_queue = kSessions * kQueriesPerSession + 8;
  opts.enable_result_cache = enable_cache;
  opts.reply_latency_ms = kReplyLatencyMs;
  service::QueryService service(db, opts);

  std::vector<service::SessionId> sessions;
  sessions.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(service.OpenSession(PaperReplies()));
  }
  if (warm && enable_cache) {
    auto warmup = service.Query(sessions[0], kPaperQuery);
    if (!warmup.ok()) {
      std::fprintf(stderr, "warm-up query failed: %s\n",
                   warmup.status().ToString().c_str());
      std::abort();
    }
  }

  // Snapshot after warm-up so qps and hit rate cover the same window.
  service::ServiceStats before = service.stats();
  auto t0 = std::chrono::steady_clock::now();
  std::vector<service::OutcomeFuture> futures;
  for (int q = 0; q < kQueriesPerSession; ++q) {
    for (service::SessionId sid : sessions) {
      auto fut = service.Submit(sid, kPaperQuery);
      if (!fut.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     fut.status().ToString().c_str());
        std::abort();
      }
      futures.push_back(std::move(fut).value());
    }
  }
  for (auto& fut : futures) {
    if (!fut.get().ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   fut.get().status().ToString().c_str());
      std::abort();
    }
  }
  auto t1 = std::chrono::steady_clock::now();

  service::ServiceStats st = service.stats();
  RunResult out;
  out.completed = st.completed - before.completed;
  double secs = std::chrono::duration<double>(t1 - t0).count();
  out.qps = secs > 0 ? futures.size() / secs : 0.0;
  int64_t lookups = (st.cache.hits + st.cache.misses) -
                    (before.cache.hits + before.cache.misses);
  out.hit_rate =
      lookups > 0
          ? static_cast<double>(st.cache.hits - before.cache.hits) / lookups
          : 0.0;
  return out;
}

void PrintScalingTable() {
  std::printf(
      "=== service throughput: %d sessions x %d queries, %d-movie corpus, "
      "%.0fms reply latency ===\n",
      kSessions, kQueriesPerSession, kCorpusMovies, kReplyLatencyMs);
  std::printf("%-9s %-12s %-14s %-12s %-14s\n", "workers", "qps(cached)",
              "hit_rate", "qps(nocache)", "speedup vs 1w");
  BenchDb b = MakeIngestedDb(kCorpusMovies);
  double base_qps = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    RunResult cached = ServeWorkload(b.db.get(), workers,
                                     /*enable_cache=*/true, /*warm=*/true);
    RunResult uncached = ServeWorkload(b.db.get(), workers,
                                       /*enable_cache=*/false,
                                       /*warm=*/false);
    if (workers == 1) base_qps = cached.qps;
    std::printf("%-9d %-12.1f %-14.2f %-12.1f %.2fx\n", workers, cached.qps,
                cached.hit_rate, uncached.qps,
                base_qps > 0 ? cached.qps / base_qps : 0.0);
  }
  std::printf("\n");
}

void BM_ServiceThroughput(benchmark::State& state) {
  int workers = static_cast<int>(state.range(0));
  bool cached = state.range(1) != 0;
  BenchDb b = MakeIngestedDb(kCorpusMovies);
  double hit_rate = 0.0;
  int64_t queries = 0;
  for (auto _ : state) {
    RunResult r = ServeWorkload(b.db.get(), workers, cached, cached);
    hit_rate = r.hit_rate;
    queries += r.completed;
    benchmark::DoNotOptimize(r.qps);
  }
  state.SetItemsProcessed(queries);  // items/sec == queries/sec
  state.counters["cache_hit_rate"] = hit_rate;
  state.counters["workers"] = workers;
  state.SetLabel(cached ? "cached" : "nocache");
}
BENCHMARK(BM_ServiceThroughput)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({1, 0})
    ->Args({8, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  PrintScalingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
