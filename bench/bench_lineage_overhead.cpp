// E6 / §3 research question — "lineage tracking adds a significant
// overhead, so how should KathDB perform tracking without sacrificing
// much query execution speed?"
//
// Sweeps tracking modes (off / table-only / sampled / full row) across
// corpus sizes and reports execution time, edge counts and memory so the
// row-level-vs-table-level trade-off is visible.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

const char* ModeName(lineage::TrackingMode mode) {
  switch (mode) {
    case lineage::TrackingMode::kOff:
      return "off";
    case lineage::TrackingMode::kTable:
      return "table";
    case lineage::TrackingMode::kSampled:
      return "sampled(0.1)";
    case lineage::TrackingMode::kRow:
      return "row";
  }
  return "?";
}

void PrintOverheadTable() {
  std::printf("=== E6: lineage-tracking overhead by mode ===\n");
  std::printf("%-8s %-14s %-12s %-10s %-10s %-14s\n", "movies", "mode",
              "exec_ms", "edges", "KiB", "vs off");
  for (int n : {50, 200, 800}) {
    double baseline_ms = 0.0;
    for (auto mode :
         {lineage::TrackingMode::kOff, lineage::TrackingMode::kTable,
          lineage::TrackingMode::kSampled, lineage::TrackingMode::kRow}) {
      // Best-of-3 fresh runs to suppress allocator/cache noise.
      double ms = 1e18;
      size_t edges = 0;
      size_t bytes = 0;
      for (int rep = 0; rep < 3; ++rep) {
        engine::KathDBOptions db_opts;
        db_opts.lineage_mode = mode;
        db_opts.lineage_sample_rate = 0.1;
        BenchDb b = MakeIngestedDb(n, {}, db_opts);
        size_t edges_before = b.db->lineage()->num_entries();
        auto t0 = std::chrono::steady_clock::now();
        engine::QueryOutcome outcome = RunPaperQuery(b.db.get());
        auto t1 = std::chrono::steady_clock::now();
        ms = std::min(ms, std::chrono::duration<double, std::milli>(t1 - t0)
                              .count());
        edges = b.db->lineage()->num_entries() - edges_before;
        bytes = b.db->lineage()->ApproxBytes();
      }
      if (mode == lineage::TrackingMode::kOff) baseline_ms = ms;
      std::printf("%-8d %-14s %-12.2f %-10zu %-10zu %+.1f%%\n", n,
                  ModeName(mode), ms, edges, bytes / 1024,
                  baseline_ms > 0 ? (ms / baseline_ms - 1.0) * 100 : 0.0);
    }
  }
  std::printf("\n");
}

void BM_QueryWithMode(benchmark::State& state) {
  auto mode = static_cast<lineage::TrackingMode>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    engine::KathDBOptions db_opts;
    db_opts.lineage_mode = mode;
    BenchDb b = MakeIngestedDb(static_cast<int>(state.range(0)), {},
                               db_opts);
    state.ResumeTiming();
    engine::QueryOutcome outcome = RunPaperQuery(b.db.get());
    benchmark::DoNotOptimize(outcome.result.num_rows());
  }
  state.SetLabel(ModeName(mode));
}
BENCHMARK(BM_QueryWithMode)
    ->Args({100, static_cast<int>(lineage::TrackingMode::kOff)})
    ->Args({100, static_cast<int>(lineage::TrackingMode::kTable)})
    ->Args({100, static_cast<int>(lineage::TrackingMode::kSampled)})
    ->Args({100, static_cast<int>(lineage::TrackingMode::kRow)})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintOverheadTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
