// E2 / Figure 4 — NL parser interactions in two modes: proactive
// clarification and reactive correction, with the sketch growing from 8
// to 11 steps as in §6. Then times interactive parsing.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "parser/nl_parser.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

void PrintFigure4() {
  BenchDb b = MakeIngestedDb(20);
  llm::ScriptedUser user({
      "the movie plot contains scenes that are uncommon (e.g., gun fight) "
      "in real life",
      "Oh I prefer a more recent movie as well when scoring",
      "OK",
  });
  parser::NlParser nl(b.db->llm(), &user, b.db->catalog());
  auto sketch = nl.Parse(kPaperQuery);
  if (!sketch.ok()) std::abort();

  std::printf("=== Figure 4: NL parser interactions in two modes ===\n\n");
  std::printf("--- Proactive clarification ---\n");
  std::printf("Query:         %s\n", kPaperQuery);
  std::printf("Clarification: %s\n", user.history()[0].question.c_str());
  std::printf("Feedback:      %s\n\n", user.history()[0].answer.c_str());

  std::printf("--- Reactive correction ---\n");
  std::printf("COT sketch v1: %zu steps\n",
              nl.sketch_history()[0].steps.size());
  std::printf("Correction:    %s\n", user.history()[1].answer.c_str());
  std::printf("COT sketch v2: %zu steps (paper: 8 -> 11)\n\n",
              nl.sketch_history()[1].steps.size());

  std::printf("Updated knowledge captured in the intent:\n");
  for (const auto& c : nl.intent().criteria) {
    std::printf("  term='%s' modality=%s role=%s weight=%.1f meaning=\"%s\"\n",
                c.term.c_str(), c.modality.c_str(), c.role.c_str(),
                c.weight, c.clarified_meaning.c_str());
  }
  std::printf("\nAccepted sketch:\n%s\n", sketch->ToText().c_str());
  std::printf("User questions answered: %zu\n\n", user.questions_asked());
}

void BM_InteractiveParse(benchmark::State& state) {
  BenchDb b = MakeIngestedDb(20);
  for (auto _ : state) {
    llm::ScriptedUser user = PaperUser();
    parser::NlParser nl(b.db->llm(), &user, b.db->catalog());
    auto sketch = nl.Parse(kPaperQuery);
    benchmark::DoNotOptimize(sketch);
  }
}
BENCHMARK(BM_InteractiveParse);

void BM_AmbiguityDetection(benchmark::State& state) {
  llm::UsageMeter meter;
  llm::SimulatedLLM llm(llm::KathLargeSpec(), &meter);
  for (auto _ : state) {
    benchmark::DoNotOptimize(llm.DetectAmbiguousTerms(kPaperQuery));
  }
}
BENCHMARK(BM_AmbiguityDetection);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
