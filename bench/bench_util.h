/// \file bench_util.h
/// \brief Shared setup helpers for the KathDB benchmark binaries.
///
/// Every bench binary reproduces one table/figure of the paper (or one of
/// its research-question ablations): it first prints the paper-shaped
/// artifact, then runs google-benchmark timings.

#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "data/movie_dataset.h"
#include "engine/kathdb.h"

namespace kathdb::bench {

constexpr const char* kPaperQuery =
    "Sort the given films in the table by how exciting they are, but the "
    "poster should be 'boring'";

/// The §6 scripted replies: clarification, recency correction, accept.
inline std::vector<std::string> PaperReplies() {
  return {"The movie plot contains scenes that are uncommon in real life",
          "I prefer more recent movies when scoring", "OK"};
}

/// The §6 scripted user replaying PaperReplies().
inline llm::ScriptedUser PaperUser() {
  return llm::ScriptedUser(PaperReplies());
}

struct BenchDb {
  data::MovieDataset dataset;
  std::unique_ptr<engine::KathDB> db;
};

/// Generates and ingests a corpus of `num_movies` into a fresh KathDB.
inline BenchDb MakeIngestedDb(int num_movies,
                              data::DatasetOptions data_opts = {},
                              engine::KathDBOptions db_opts = {}) {
  data_opts.num_movies = num_movies;
  BenchDb out;
  auto ds = data::GenerateMovieDataset(data_opts);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 ds.status().ToString().c_str());
    std::abort();
  }
  out.dataset = std::move(ds).value();
  out.db = std::make_unique<engine::KathDB>(db_opts);
  Status st = data::IngestDataset(out.dataset, out.db.get());
  if (!st.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return out;
}

/// Runs the paper query; aborts on failure (benches need the result).
inline engine::QueryOutcome RunPaperQuery(engine::KathDB* db) {
  llm::ScriptedUser user = PaperUser();
  auto outcome = db->Query(kPaperQuery, &user);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    std::abort();
  }
  return std::move(outcome).value();
}

}  // namespace kathdb::bench
