// E4 / Figure 5 — query result explanations in two modes: the coarse
// pipeline overview and the fine-grained per-tuple derivation with the
// weighted-sum trace. Then times explanation generation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/explainer.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

void PrintFigure5() {
  BenchDb b = MakeIngestedDb(30);
  engine::QueryOutcome outcome = RunPaperQuery(b.db.get());
  int64_t lid = outcome.result.row_lid(0);

  std::printf("=== Figure 5: query explanations in two modes ===\n\n");
  std::printf("--- Coarse: \"Explain the pipeline?\" ---\n");
  auto coarse = b.db->ExplainPipeline();
  if (coarse.ok()) std::printf("%s\n", coarse.value().c_str());

  std::printf("--- Fine-grain: \"Explain tuple %lld?\" ---\n",
              static_cast<long long>(lid));
  auto fine = b.db->ExplainTuple(lid);
  if (fine.ok()) std::printf("%s\n", fine.value().c_str());
}

void BM_CoarseExplanation(benchmark::State& state) {
  BenchDb b = MakeIngestedDb(30);
  engine::QueryOutcome outcome = RunPaperQuery(b.db.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.db->ExplainPipeline());
  }
}
BENCHMARK(BM_CoarseExplanation);

void BM_FineExplanation(benchmark::State& state) {
  BenchDb b = MakeIngestedDb(30);
  engine::QueryOutcome outcome = RunPaperQuery(b.db.get());
  int64_t lid = outcome.result.row_lid(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.db->ExplainTuple(lid));
  }
}
BENCHMARK(BM_FineExplanation);

void BM_NlExplanationDispatch(benchmark::State& state) {
  BenchDb b = MakeIngestedDb(30);
  engine::QueryOutcome outcome = RunPaperQuery(b.db.get());
  int64_t lid = outcome.result.row_lid(0);
  std::string q = "Explain tuple " + std::to_string(lid) + " please";
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.db->AskExplanation(q));
  }
}
BENCHMARK(BM_NlExplanationDispatch);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
