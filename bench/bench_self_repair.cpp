// E12 / §5 — syntactic self-repair preserves throughput: when a fraction
// of posters are HEIC files the pixel classifier cannot decode, the
// monitor's reviewer/rewriter patch the function (format conversion) and
// execution resumes instead of aborting. Sweeps the HEIC fraction and
// reports repairs, runtime overhead and result stability.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

void PrintRepairTable() {
  std::printf("=== E12: HEIC self-repair (pixel classifier forced) ===\n");
  std::printf("%-12s %-9s %-10s %-14s %-14s\n", "heic_frac", "repairs",
              "exec_ms", "result_rows", "classify_vers");
  for (double frac : {0.0, 0.2, 0.5}) {
    data::DatasetOptions data_opts;
    data_opts.heic_fraction = frac;
    engine::KathDBOptions db_opts;
    db_opts.optimizer.boring_impl = "pixels";
    BenchDb b = MakeIngestedDb(50, data_opts, db_opts);
    auto t0 = std::chrono::steady_clock::now();
    engine::QueryOutcome outcome = RunPaperQuery(b.db.get());
    auto t1 = std::chrono::steady_clock::now();
    std::printf("%-12.2f %-9d %-10.2f %-14zu %-14zu\n", frac,
                outcome.report.total_repairs,
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                outcome.result.num_rows(),
                b.db->registry()->VersionsOf("classify_boring").size());
  }
  std::printf("(expected shape: with HEIC posters present exactly one "
              "repair fires, classify_boring gains a version, and the "
              "query completes with the same result rows — no abort)\n\n");
}

void BM_QueryWithHeicFraction(benchmark::State& state) {
  double frac = static_cast<double>(state.range(0)) / 100.0;
  data::DatasetOptions data_opts;
  data_opts.heic_fraction = frac;
  engine::KathDBOptions db_opts;
  db_opts.optimizer.boring_impl = "pixels";
  for (auto _ : state) {
    state.PauseTiming();
    BenchDb b = MakeIngestedDb(50, data_opts, db_opts);
    state.ResumeTiming();
    benchmark::DoNotOptimize(RunPaperQuery(b.db.get()).result.num_rows());
  }
  state.SetLabel("heic=" + std::to_string(frac));
}
BENCHMARK(BM_QueryWithHeicFraction)->Arg(0)->Arg(20)->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_HeicDecodeGate(benchmark::State& state) {
  mm::SyntheticImage img;
  img.uri = "bench.heic";
  img.format = "heic";
  mm::ImageLoader loader;
  loader.EnableHeicConversion();
  for (auto _ : state) {
    benchmark::DoNotOptimize(loader.Decode(img));
  }
}
BENCHMARK(BM_HeicDecodeGate);

}  // namespace

int main(int argc, char** argv) {
  PrintRepairTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
