// Columnar storage research question — the ROADMAP's "as fast as the
// hardware allows" north star starts at the storage layout: how much does
// the columnar engine (typed column arrays + vectorized predicates +
// selection-vector output assembly) buy over the row-at-a-time volcano
// path on the classical scan+filter shape, and is the output still
// byte-identical, lineage included?
//
// Drives a 1M-row synthetic fact table through SeqScan -> Filter with a
// ~5% selective numeric predicate, materialized two ways over the SAME
// operator classes: MaterializeRows (row-at-a-time Next(), the reference)
// and Materialize (NextChunk(), bulk column appends). Checks that the two
// results carry identical cells, lids and fingerprints before timing.
// Acceptance target: >= 5x wall-clock speedup for the chunked path.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "relational/expr.h"
#include "relational/ops.h"
#include "relational/table.h"

using namespace kathdb::rel;  // NOLINT

namespace {

constexpr size_t kRows = 1'000'000;
constexpr size_t kCheckRows = 20'000;  // equivalence-checked subset size

/// Deterministic fact table: mid INT, year INT, score DOUBLE, genre
/// STRING (8 distinct values -> dictionary encodes), watched BOOL.
std::shared_ptr<Table> MakeFactTable(size_t rows) {
  Schema schema;
  schema.AddColumn("mid", DataType::kInt);
  schema.AddColumn("year", DataType::kInt);
  schema.AddColumn("score", DataType::kDouble);
  schema.AddColumn("genre", DataType::kString);
  schema.AddColumn("watched", DataType::kBool);
  static const char* kGenres[] = {"action", "comedy", "drama",   "horror",
                                  "romance", "sci-fi", "western", "noir"};
  auto t = std::make_shared<Table>("facts", schema);
  uint64_t s = 0x2545F4914F6CDD1DULL;
  for (size_t i = 0; i < rows; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;  // xorshift64
    int64_t year = 1950 + static_cast<int64_t>(s % 75);
    double score = static_cast<double>(s % 10000) / 10000.0;
    t->AppendRow({Value::Int(static_cast<int64_t>(i)), Value::Int(year),
                  Value::Double(score), Value::Str(kGenres[s % 8]),
                  Value::Bool((s & 1) != 0)},
                 static_cast<int64_t>(i + 1));
  }
  return t;
}

/// score < 0.04 AND year >= 1990: ~2% selective, numeric fast path on the
/// first conjunct, vectorized sub-selection on the second.
ExprPtr ScanPredicate() {
  return Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kLt, Expr::Column("score"),
                   Expr::Literal(Value::Double(0.04))),
      Expr::Binary(BinaryOp::kGe, Expr::Column("year"),
                   Expr::Literal(Value::Int(1990))));
}

OperatorPtr MakeScanFilter(std::shared_ptr<Table> table) {
  return MakeFilter(MakeSeqScan(std::move(table)), ScanPredicate());
}

bool Identical(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() ||
      !(a.schema() == b.schema()) ||
      a.Fingerprint() != b.Fingerprint()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    if (a.row_lid(r) != b.row_lid(r)) return false;
    for (size_t c = 0; c < a.schema().num_columns(); ++c) {
      if (a.at(r, c) != b.at(r, c) ||
          a.at(r, c).type() != b.at(r, c).type()) {
        return false;
      }
    }
  }
  return true;
}

double TimedMs(const std::function<kathdb::Result<Table>()>& run,
               Table* out) {
  auto t0 = std::chrono::steady_clock::now();
  auto r = run();
  auto t1 = std::chrono::steady_clock::now();
  if (!r.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  *out = std::move(r).value();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void PrintComparison() {
  // Byte-identity first, on a subset small enough to compare cell by cell.
  auto check = MakeFactTable(kCheckRows);
  Table by_rows;
  Table by_chunks;
  auto rows_op = MakeScanFilter(check);
  auto chunk_op = MakeScanFilter(check);
  TimedMs([&] { return MaterializeRows(rows_op.get(), "out"); }, &by_rows);
  TimedMs([&] { return Materialize(chunk_op.get(), "out"); }, &by_chunks);
  if (!Identical(by_rows, by_chunks)) {
    std::fprintf(stderr, "columnar result differs from row result\n");
    std::abort();
  }

  auto facts = MakeFactTable(kRows);
  std::printf("=== columnar scan: SeqScan+Filter over %zu rows ===\n", kRows);
  std::printf("%-10s %-12s %-12s %-10s %-10s\n", "path", "wall_ms",
              "out_rows", "speedup", "identical");
  Table row_out;
  Table col_out;
  auto op_r = MakeScanFilter(facts);
  auto op_c = MakeScanFilter(facts);
  double row_ms =
      TimedMs([&] { return MaterializeRows(op_r.get(), "out"); }, &row_out);
  double col_ms =
      TimedMs([&] { return Materialize(op_c.get(), "out"); }, &col_out);
  bool same = row_out.num_rows() == col_out.num_rows() &&
              row_out.Fingerprint() == col_out.Fingerprint();
  std::printf("%-10s %-12.1f %-12zu %-10s %-10s\n", "row", row_ms,
              row_out.num_rows(), "1.00", "-");
  std::printf("%-10s %-12.1f %-12zu %-10.2f %-10s\n", "columnar", col_ms,
              col_out.num_rows(), row_ms / col_ms, same ? "yes" : "NO");
  std::printf("speedup: %.2fx (target >= 5.0x)\n\n", row_ms / col_ms);
  if (!same) std::abort();
}

void BM_RowScanFilter(benchmark::State& state) {
  auto facts = MakeFactTable(static_cast<size_t>(state.range(0)));
  size_t out_rows = 0;
  for (auto _ : state) {
    auto op = MakeScanFilter(facts);
    auto r = MaterializeRows(op.get(), "out");
    if (!r.ok()) std::abort();
    out_rows = r->num_rows();
    benchmark::DoNotOptimize(out_rows);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RowScanFilter)
    ->Arg(kCheckRows)
    ->Arg(kRows)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ColumnarScanFilter(benchmark::State& state) {
  auto facts = MakeFactTable(static_cast<size_t>(state.range(0)));
  size_t out_rows = 0;
  for (auto _ : state) {
    auto op = MakeScanFilter(facts);
    auto r = Materialize(op.get(), "out");
    if (!r.ok()) std::abort();
    out_rows = r->num_rows();
    benchmark::DoNotOptimize(out_rows);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColumnarScanFilter)
    ->Arg(kCheckRows)
    ->Arg(kRows)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // The printed comparison (equivalence check + headline speedup) only
  // runs unfiltered; CI smoke runs filter to one benchmark and should
  // not pay for the full 1M-row sweep twice.
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_filter", 0) == 0) {
      filtered = true;
    }
  }
  if (!filtered) PrintComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
