// Intra-query parallelism research question — the ROADMAP north star is
// "as fast as the hardware allows": how much wall-clock does DAG-parallel
// node scheduling plus morsel-partitioned FAO evaluation buy a single
// heavy multi-branch query, and does it stay byte-for-byte equivalent to
// sequential execution?
//
// Drives a hand-built physical plan with kBranches independent
// keyword-scoring branches over one shared base selection (the shape the
// planner produces when a query ranks by several criteria at once)
// through engine::Executor across a workers x morsel-size grid, and
// checks three invariants against the sequential reference:
//   - every branch output and the final table are byte-identical,
//   - the lineage store records the same number of derivations,
//   - with a result cache attached, the warm-run hit rate is unchanged
//     (morsel partitioning is a function of morsel size, never workers).
// Acceptance target: >= 2x wall-clock speedup at 4 workers vs 1.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "engine/executor.h"
#include "engine/scheduler.h"
#include "relational/expr.h"
#include "relational/ops.h"
#include "relational/table.h"
#include "service/result_cache.h"

using namespace kathdb;         // NOLINT
using namespace kathdb::bench;  // NOLINT

namespace {

constexpr int kCorpusMovies = 48;
// Six vision branches (latency-bound: each poster costs a simulated
// model round trip) plus two keyword branches (CPU-bound embedding
// work) — the mixed shape a query ranking by several criteria produces.
constexpr int kVisionBranches = 6;
constexpr int kKeywordBranches = 2;
constexpr int kBranches = kVisionBranches + kKeywordBranches;
constexpr double kVisionLatencyMs = 2.0;  // per-poster model round trip

const char* const kBranchKeywords[kKeywordBranches][3] = {
    {"explosion", "chase", "fight"},
    {"love", "wedding", "romance"},
};

/// kBranches independent branches fanning out of one shared selection,
/// joined back by a barrier node that depends on all of them.
opt::PhysicalPlan MultiBranchPlan() {
  opt::PhysicalPlan plan;
  {
    opt::PhysicalNode sel;
    sel.sig.name = "select_base";
    sel.sig.inputs = {"movie_table"};
    sel.sig.output = "px_base";
    sel.spec.name = "select_base";
    sel.spec.template_id = "sql";
    sel.spec.params.Set(
        "query", Json::Str("SELECT mid, title, year, did, vid FROM "
                           "movie_table"));
    sel.spec.dependency_pattern = "one_to_one";
    plan.nodes.push_back(std::move(sel));
  }
  std::vector<std::string> branch_outputs;
  for (int b = 0; b < kVisionBranches; ++b) {
    opt::PhysicalNode node;
    node.sig.name = "classify_lens_" + std::to_string(b);
    node.sig.inputs = {"px_base"};
    node.sig.output = "px_branch_" + std::to_string(b);
    node.spec.name = node.sig.name;
    node.spec.template_id = "classify_boring_pixels";
    node.spec.params.Set("vid_column", Json::Str("vid"));
    node.spec.params.Set("output_column",
                         Json::Str("b" + std::to_string(b) + "_poster"));
    // Distinct thresholds: every lens computes a genuinely different
    // classification, so branch outputs cannot be cross-cached.
    node.spec.params.Set("variance_threshold",
                         Json::Double(0.040 + 0.005 * b));
    node.spec.params.Set("latency_ms_per_image",
                         Json::Double(kVisionLatencyMs));
    node.spec.dependency_pattern = "one_to_one";
    branch_outputs.push_back(node.sig.output);
    plan.nodes.push_back(std::move(node));
  }
  for (int k = 0; k < kKeywordBranches; ++k) {
    int b = kVisionBranches + k;
    opt::PhysicalNode node;
    node.sig.name = "gen_keyword_" + std::to_string(k);
    node.sig.inputs = {"px_base"};
    node.sig.output = "px_branch_" + std::to_string(b);
    node.spec.name = node.sig.name;
    node.spec.template_id = "keyword_similarity_score";
    Json kw = Json::Array();
    for (const char* w : kBranchKeywords[k]) kw.Append(Json::Str(w));
    node.spec.params.Set("keywords", std::move(kw));
    node.spec.params.Set("did_column", Json::Str("did"));
    node.spec.params.Set("output_column",
                         Json::Str("s" + std::to_string(k) + "_score"));
    node.spec.dependency_pattern = "one_to_one";
    branch_outputs.push_back(node.sig.output);
    plan.nodes.push_back(std::move(node));
  }
  {
    // Barrier: consumes every branch (the deps force all of them to
    // finish) and ranks one of them; all branch outputs stay
    // materialized in the catalog for the equivalence check.
    opt::PhysicalNode fin;
    fin.sig.name = "rank_films";
    fin.sig.inputs = branch_outputs;
    fin.sig.output = "px_ranked";
    fin.spec.name = "rank_films";
    fin.spec.template_id = "sql";
    fin.spec.params.Set(
        "query", Json::Str("SELECT * FROM px_branch_" +
                           std::to_string(kVisionBranches) +
                           " ORDER BY s0_score DESC"));
    fin.spec.dependency_pattern = "many_to_one";
    plan.nodes.push_back(std::move(fin));
  }
  plan.final_output = "px_ranked";
  plan.BuildEdges();
  return plan;
}

struct RunResult {
  double wall_ms = 0.0;
  std::vector<rel::Table> branch_tables;
  rel::Table final_table;
  size_t lineage_entries = 0;
  double warm_hit_rate = 0.0;
};

RunResult RunOnce(int workers, size_t morsel_size, bool with_cache) {
  BenchDb b = MakeIngestedDb(kCorpusMovies);
  opt::PhysicalPlan plan = MultiBranchPlan();

  service::ResultCache cache;
  common::ThreadPool pool(workers);
  engine::ExecutorOptions opts;
  opts.max_parallel_nodes = workers;
  opts.morsel_size = morsel_size;
  engine::Executor executor(b.db->llm(), b.db->registry(), nullptr, opts);

  fao::ExecContext ctx = b.db->MakeContext();
  ctx.exec_pool = workers > 1 ? &pool : nullptr;
  if (with_cache) ctx.result_cache = &cache;

  auto t0 = std::chrono::steady_clock::now();
  auto report = executor.Run(plan, &ctx);
  auto t1 = std::chrono::steady_clock::now();
  if (!report.ok()) {
    std::fprintf(stderr, "plan execution failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }

  RunResult out;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (int br = 0; br < kBranches; ++br) {
    auto t = ctx.catalog->Get("px_branch_" + std::to_string(br));
    if (!t.ok()) std::abort();
    out.branch_tables.push_back(*t.value());
  }
  out.final_table = *report->result;
  out.lineage_entries = b.db->lineage()->num_entries();

  if (with_cache) {
    // Warm re-run: every cacheable evaluation must hit, and the rate
    // must not depend on the worker count.
    auto before = cache.stats();
    auto warm = executor.Run(plan, &ctx);
    if (!warm.ok()) std::abort();
    auto after = cache.stats();
    int64_t lookups =
        (after.hits + after.misses) - (before.hits + before.misses);
    out.warm_hit_rate =
        lookups > 0
            ? static_cast<double>(after.hits - before.hits) / lookups
            : 0.0;
  }
  return out;
}

bool SameValues(const rel::Table& a, const rel::Table& b) {
  if (a.num_rows() != b.num_rows() ||
      a.schema().num_columns() != b.schema().num_columns()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.schema().num_columns(); ++c) {
      if (a.at(r, c).ToString() != b.at(r, c).ToString()) return false;
    }
  }
  return true;
}

bool Equivalent(const RunResult& ref, const RunResult& run) {
  if (!SameValues(ref.final_table, run.final_table)) return false;
  for (int br = 0; br < kBranches; ++br) {
    if (!SameValues(ref.branch_tables[br], run.branch_tables[br])) {
      return false;
    }
  }
  return ref.lineage_entries == run.lineage_entries;
}

void PrintScalingTable() {
  std::printf(
      "=== parallel exec: %d-branch plan over %d movies (DAG scheduling "
      "x morsels) ===\n",
      kBranches, kCorpusMovies);
  std::printf("%-9s %-12s %-12s %-12s %-10s %-10s\n", "workers",
              "morsel_size", "wall_ms", "speedup", "identical",
              "hit_rate");
  double base_ms = 0.0;
  double speedup_4w = 0.0;
  RunResult ref;  // workers=1, morsel 0: the sequential reference
  for (size_t morsel : {size_t{0}, size_t{8}}) {
    for (int workers : {1, 2, 4}) {
      RunResult r = RunOnce(workers, morsel, /*with_cache=*/true);
      if (workers == 1 && morsel == 0) {
        base_ms = r.wall_ms;
        ref = r;
      }
      bool same = Equivalent(ref, r);
      double speedup = base_ms > 0 ? base_ms / r.wall_ms : 0.0;
      if (workers == 4 && speedup > speedup_4w) speedup_4w = speedup;
      std::printf("%-9d %-12zu %-12.1f %-12.2f %-10s %-10.2f\n", workers,
                  morsel, r.wall_ms, speedup, same ? "yes" : "NO",
                  r.warm_hit_rate);
      if (!same) {
        std::fprintf(stderr,
                     "equivalence violated at workers=%d morsel=%zu\n",
                     workers, morsel);
        std::abort();
      }
    }
  }
  std::printf("speedup at 4 workers: %.2fx (target >= 2.0x)\n\n",
              speedup_4w);
}

// --------------------------------------------------- layout comparison
//
// The morsel grid above answers "what does parallel scheduling buy";
// this point answers "what does the storage layout buy" on the same
// scan+filter shape, so the two speedups stay separable in the JSON:
// layout_speedup here is purely row-vs-columnar, workers fixed at 1.

constexpr size_t kLayoutRows = 200'000;

rel::TablePtr MakeLayoutTable(size_t rows) {
  rel::Schema schema;
  schema.AddColumn("mid", rel::DataType::kInt);
  schema.AddColumn("year", rel::DataType::kInt);
  schema.AddColumn("score", rel::DataType::kDouble);
  auto t = std::make_shared<rel::Table>("facts", schema);
  uint64_t s = 0x9E3779B97F4A7C15ULL;
  for (size_t i = 0; i < rows; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;  // xorshift64
    t->AppendRow({rel::Value::Int(static_cast<int64_t>(i)),
                  rel::Value::Int(1950 + static_cast<int64_t>(s % 75)),
                  rel::Value::Double(static_cast<double>(s % 10000) /
                                     10000.0)},
                 static_cast<int64_t>(i + 1));
  }
  return t;
}

rel::OperatorPtr MakeLayoutScanFilter(rel::TablePtr table) {
  auto pred = rel::Expr::Binary(
      rel::BinaryOp::kAnd,
      rel::Expr::Binary(rel::BinaryOp::kLt, rel::Expr::Column("score"),
                        rel::Expr::Literal(rel::Value::Double(0.05))),
      rel::Expr::Binary(rel::BinaryOp::kGe, rel::Expr::Column("year"),
                        rel::Expr::Literal(rel::Value::Int(1990))));
  return rel::MakeFilter(rel::MakeSeqScan(std::move(table)),
                         std::move(pred));
}

void BM_LayoutScanFilter(benchmark::State& state) {
  auto facts = MakeLayoutTable(static_cast<size_t>(state.range(0)));
  double row_ms = 0.0;
  double col_ms = 0.0;
  size_t out_rows = 0;
  for (auto _ : state) {
    auto op_r = MakeLayoutScanFilter(facts);
    auto t0 = std::chrono::steady_clock::now();
    auto by_rows = rel::MaterializeRows(op_r.get(), "out");
    auto t1 = std::chrono::steady_clock::now();
    auto op_c = MakeLayoutScanFilter(facts);
    auto by_chunks = rel::Materialize(op_c.get(), "out");
    auto t2 = std::chrono::steady_clock::now();
    if (!by_rows.ok() || !by_chunks.ok() ||
        by_rows->Fingerprint() != by_chunks->Fingerprint()) {
      std::fprintf(stderr, "layout paths diverged\n");
      std::abort();
    }
    row_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    col_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
    out_rows = by_chunks->num_rows();
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["row_ms_per_iter"] = row_ms / iters;
  state.counters["columnar_ms_per_iter"] = col_ms / iters;
  state.counters["layout_speedup"] = col_ms > 0 ? row_ms / col_ms : 0.0;
  state.counters["out_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_LayoutScanFilter)
    ->Arg(static_cast<int64_t>(kLayoutRows))
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ParallelExec(benchmark::State& state) {
  int workers = static_cast<int>(state.range(0));
  size_t morsel = static_cast<size_t>(state.range(1));
  double hit_rate = 0.0;
  for (auto _ : state) {
    RunResult r = RunOnce(workers, morsel, /*with_cache=*/true);
    hit_rate = r.warm_hit_rate;
    benchmark::DoNotOptimize(r.wall_ms);
  }
  state.counters["workers"] = workers;
  state.counters["morsel_size"] = static_cast<double>(morsel);
  state.counters["warm_hit_rate"] = hit_rate;
}
BENCHMARK(BM_ParallelExec)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // The paper-shaped grid (all 6 configs + equivalence checks) only
  // runs for unfiltered invocations; a CI smoke run that filters to a
  // subset of the benchmarks should not pay for — or fail on — the
  // full sweep.
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_filter", 0) == 0) {
      filtered = true;
    }
  }
  if (!filtered) PrintScalingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
