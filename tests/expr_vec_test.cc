// Vectorized-vs-interpreted equivalence property sweep: every BinaryOp
// and UnaryOp over every ordered pair of operand domains (NULL mixed into
// BOOL/INT/DOUBLE/STRING pools), values AND error statuses. Covers
// division by zero, string concatenation via kAdd, arithmetic on strings,
// and the NULL-propagation rules of the three-valued compare/logic ops.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "relational/column.h"
#include "relational/expr.h"
#include "relational/expr_vec.h"
#include "relational/table.h"

namespace kathdb::rel {
namespace {

struct Domain {
  const char* name;
  DataType declared;
  std::vector<Value> pool;  // includes NULL plus edge values
};

std::vector<Domain> Domains() {
  return {
      {"bool", DataType::kBool,
       {Value::Null(), Value::Bool(true), Value::Bool(false)}},
      {"int", DataType::kInt,
       {Value::Null(), Value::Int(0), Value::Int(1), Value::Int(-3),
        Value::Int(7)}},
      {"double", DataType::kDouble,
       {Value::Null(), Value::Double(0.0), Value::Double(2.5),
        Value::Double(-0.5)}},
      {"string", DataType::kString,
       {Value::Null(), Value::Str(""), Value::Str("abc"), Value::Str("1.5")}},
  };
}

/// Two-column table enumerating the full cross product pa x pb.
Table MakePairTable(const Domain& da, const Domain& db) {
  Schema schema;
  schema.AddColumn("a", da.declared);
  schema.AddColumn("b", db.declared);
  Table t("pairs", schema);
  for (const Value& va : da.pool) {
    for (const Value& vb : db.pool) {
      t.AppendRow({va, vb});
    }
  }
  return t;
}

/// Runs `expr` both ways over `t` and asserts identical behaviour: same
/// first error (row order) or same per-row values, types included.
void ExpectSameEvaluation(const ExprPtr& expr, const Table& t,
                          const std::string& what) {
  // Row-at-a-time reference: first error wins, like a volcano Filter.
  Status first_err = Status::OK();
  std::vector<Value> ref;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    auto v = expr->Eval(t.row(r), t.schema());
    if (!v.ok()) {
      first_err = v.status();
      break;
    }
    ref.push_back(std::move(v).value());
  }

  std::vector<uint32_t> sel(t.num_rows());
  std::iota(sel.begin(), sel.end(), 0u);
  ColumnVector out;
  Status st = EvalExprVector(*expr, t, sel.data(), sel.size(), &out);

  if (!first_err.ok()) {
    ASSERT_FALSE(st.ok()) << what << ": interpreter failed ("
                          << first_err.ToString()
                          << ") but vectorized succeeded";
    EXPECT_EQ(st.code(), first_err.code()) << what;
    EXPECT_EQ(st.message(), first_err.message()) << what;
    return;
  }
  ASSERT_TRUE(st.ok()) << what << ": vectorized failed (" << st.ToString()
                       << ") but interpreter succeeded";
  ASSERT_EQ(out.size(), ref.size()) << what;
  for (size_t i = 0; i < ref.size(); ++i) {
    Value v = out.Get(i);
    EXPECT_EQ(v.type(), ref[i].type())
        << what << " row " << i << ": " << v.ToString() << " vs "
        << ref[i].ToString();
    EXPECT_EQ(v.ToString(), ref[i].ToString()) << what << " row " << i;
  }
}

const BinaryOp kAllBinaryOps[] = {
    BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv,
    BinaryOp::kEq,  BinaryOp::kNe,  BinaryOp::kLt,  BinaryOp::kLe,
    BinaryOp::kGt,  BinaryOp::kGe,  BinaryOp::kAnd, BinaryOp::kOr,
};

const char* OpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "add";
    case BinaryOp::kSub: return "sub";
    case BinaryOp::kMul: return "mul";
    case BinaryOp::kDiv: return "div";
    case BinaryOp::kEq: return "eq";
    case BinaryOp::kNe: return "ne";
    case BinaryOp::kLt: return "lt";
    case BinaryOp::kLe: return "le";
    case BinaryOp::kGt: return "gt";
    case BinaryOp::kGe: return "ge";
    case BinaryOp::kAnd: return "and";
    default: return "or";
  }
}

TEST(ExprVecSweepTest, AllBinaryOpsOverAllTypePairs) {
  auto domains = Domains();
  for (const Domain& da : domains) {
    for (const Domain& db : domains) {
      Table t = MakePairTable(da, db);
      for (BinaryOp op : kAllBinaryOps) {
        std::string what = std::string(OpName(op)) + "(" + da.name + "," +
                           db.name + ")";
        ExpectSameEvaluation(
            Expr::Binary(op, Expr::Column("a"), Expr::Column("b")), t, what);
      }
    }
  }
}

TEST(ExprVecSweepTest, AllBinaryOpsAgainstLiterals) {
  // Column-vs-literal shapes additionally exercise TryFastSelect's
  // recognizer inputs; here they run through the generic evaluator.
  auto domains = Domains();
  std::vector<Value> literals = {Value::Null(),       Value::Bool(true),
                                 Value::Int(0),       Value::Int(2),
                                 Value::Double(-0.5), Value::Str("abc")};
  for (const Domain& da : domains) {
    Table t = MakePairTable(da, da);
    for (BinaryOp op : kAllBinaryOps) {
      for (const Value& lit : literals) {
        std::string what = std::string(OpName(op)) + "(" + da.name +
                           ", lit " + lit.ToString() + ")";
        ExpectSameEvaluation(
            Expr::Binary(op, Expr::Column("a"), Expr::Literal(lit)), t, what);
        ExpectSameEvaluation(
            Expr::Binary(op, Expr::Literal(lit), Expr::Column("a")), t,
            "flipped " + what);
      }
    }
  }
}

TEST(ExprVecSweepTest, UnaryOpsOverAllTypes) {
  for (const Domain& d : Domains()) {
    Table t = MakePairTable(d, d);
    ExpectSameEvaluation(Expr::Unary(UnaryOp::kNot, Expr::Column("a")), t,
                         std::string("not(") + d.name + ")");
    ExpectSameEvaluation(Expr::Unary(UnaryOp::kNeg, Expr::Column("a")), t,
                         std::string("neg(") + d.name + ")");
  }
}

TEST(ExprVecSweepTest, FunctionCallsOverAllTypes) {
  auto domains = Domains();
  for (const Domain& d : domains) {
    Table t = MakePairTable(d, d);
    for (const char* fn : {"lower", "upper", "length", "abs", "round"}) {
      ExpectSameEvaluation(Expr::Call(fn, {Expr::Column("a")}), t,
                           std::string(fn) + "(" + d.name + ")");
    }
  }
  for (const Domain& da : domains) {
    for (const Domain& db : domains) {
      Table t = MakePairTable(da, db);
      for (const char* fn : {"contains", "coalesce", "min2", "max2"}) {
        ExpectSameEvaluation(
            Expr::Call(fn, {Expr::Column("a"), Expr::Column("b")}), t,
            std::string(fn) + "(" + da.name + "," + db.name + ")");
      }
      ExpectSameEvaluation(
          Expr::Call("if", {Expr::Column("a"), Expr::Column("b"),
                            Expr::Literal(Value::Str("else"))}),
          t, std::string("if(") + da.name + "," + db.name + ",lit)");
    }
  }
}

TEST(ExprVecSweepTest, NestedExpressionsMatch) {
  // Compound shapes: arithmetic under compare, compare under logic, and
  // the division-by-zero path reached through a conjunction.
  Domain ints = Domains()[1];
  Domain doubles = Domains()[2];
  Table t = MakePairTable(ints, doubles);
  ExpectSameEvaluation(
      Expr::Binary(BinaryOp::kGt,
                   Expr::Binary(BinaryOp::kMul, Expr::Column("a"),
                                Expr::Column("b")),
                   Expr::Literal(Value::Double(1.0))),
      t, "a*b > 1.0");
  ExpectSameEvaluation(
      Expr::Binary(
          BinaryOp::kOr,
          Expr::Binary(BinaryOp::kLt, Expr::Column("b"),
                       Expr::Literal(Value::Double(0.0))),
          Expr::Binary(BinaryOp::kGe, Expr::Column("a"),
                       Expr::Literal(Value::Int(7)))),
      t, "b<0 OR a>=7");
  // 10 / a errors on the a==0 rows; the conjunction's lhs hides exactly
  // the rows the interpreter's short-circuit would hide.
  ExpectSameEvaluation(
      Expr::Binary(
          BinaryOp::kAnd,
          Expr::Binary(BinaryOp::kNe, Expr::Column("a"),
                       Expr::Literal(Value::Int(0))),
          Expr::Binary(BinaryOp::kGt,
                       Expr::Binary(BinaryOp::kDiv,
                                    Expr::Literal(Value::Int(10)),
                                    Expr::Column("a")),
                       Expr::Literal(Value::Int(2)))),
      t, "a!=0 AND 10/a>2");
  ExpectSameEvaluation(
      Expr::Binary(BinaryOp::kDiv, Expr::Literal(Value::Int(10)),
                   Expr::Column("a")),
      t, "10/a (division by zero surfaces)");
}

TEST(ExprVecSweepTest, StringConcatViaAdd) {
  Domain strs = Domains()[3];
  Table t = MakePairTable(strs, strs);
  ExpectSameEvaluation(
      Expr::Binary(BinaryOp::kAdd, Expr::Column("a"), Expr::Column("b")), t,
      "string + string");
  ExpectSameEvaluation(
      Expr::Binary(BinaryOp::kAdd, Expr::Column("a"),
                   Expr::Literal(Value::Str("-suffix"))),
      t, "string + literal");
}

TEST(ExprVecSweepTest, UnknownColumnErrorsMatchShape) {
  Domain ints = Domains()[1];
  Table t = MakePairTable(ints, ints);
  auto expr = Expr::Binary(BinaryOp::kEq, Expr::Column("ghost"),
                           Expr::Column("a"));
  auto ref = expr->Eval(t.row(0), t.schema());
  std::vector<uint32_t> sel(t.num_rows());
  std::iota(sel.begin(), sel.end(), 0u);
  ColumnVector out;
  Status st = EvalExprVector(*expr, t, sel.data(), sel.size(), &out);
  ASSERT_FALSE(ref.ok());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ref.status().code());
}

}  // namespace
}  // namespace kathdb::rel
