// Additional SQL engine coverage: multi-key sort, IS NULL, expression
// projections over joins, limits interacting with sorts.

#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "sql/engine.h"

namespace kathdb::sql {
namespace {

using rel::Catalog;
using rel::DataType;
using rel::Schema;
using rel::Table;
using rel::Value;

class SqlExtra : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = std::make_shared<Table>(
        "films", Schema({{"title", DataType::kString},
                         {"year", DataType::kInt},
                         {"studio", DataType::kString},
                         {"score", DataType::kDouble}}));
    t->AppendRow({Value::Str("A"), Value::Int(1990), Value::Str("X"),
                  Value::Double(0.5)});
    t->AppendRow({Value::Str("B"), Value::Int(1990), Value::Str("Y"),
                  Value::Double(0.9)});
    t->AppendRow({Value::Str("C"), Value::Int(1985), Value::Str("X"),
                  Value::Double(0.7)});
    t->AppendRow({Value::Str("D"), Value::Int(1985), Value::Str("Y"),
                  Value::Null()});
    ASSERT_TRUE(catalog_.Register(t).ok());
  }
  Catalog catalog_;
};

TEST_F(SqlExtra, MultiKeySort) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute(
      "SELECT title FROM films ORDER BY year DESC, studio ASC, title");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 4u);
  EXPECT_EQ(r.value().at(0, 0).AsString(), "A");  // 1990, X
  EXPECT_EQ(r.value().at(1, 0).AsString(), "B");  // 1990, Y
  EXPECT_EQ(r.value().at(2, 0).AsString(), "C");  // 1985, X
  EXPECT_EQ(r.value().at(3, 0).AsString(), "D");  // 1985, Y
}

TEST_F(SqlExtra, IsNullAndIsNotNull) {
  SqlEngine eng(&catalog_);
  auto nulls = eng.Execute("SELECT title FROM films WHERE score IS NULL");
  ASSERT_TRUE(nulls.ok()) << nulls.status().ToString();
  ASSERT_EQ(nulls.value().num_rows(), 1u);
  EXPECT_EQ(nulls.value().at(0, 0).AsString(), "D");

  auto not_nulls =
      eng.Execute("SELECT COUNT(*) AS n FROM films WHERE score IS NOT NULL");
  ASSERT_TRUE(not_nulls.ok());
  EXPECT_EQ(not_nulls.value().at(0, 0).AsInt(), 3);
}

TEST_F(SqlExtra, ExpressionProjectionOverJoin) {
  auto bonus = std::make_shared<Table>(
      "bonus", Schema({{"studio", DataType::kString},
                       {"extra", DataType::kDouble}}));
  bonus->AppendRow({Value::Str("X"), Value::Double(0.1)});
  bonus->AppendRow({Value::Str("Y"), Value::Double(0.2)});
  ASSERT_TRUE(catalog_.Register(bonus).ok());
  SqlEngine eng(&catalog_);
  auto r = eng.Execute(
      "SELECT f.title, f.score + b.extra AS boosted FROM films f "
      "JOIN bonus b ON f.studio = b.studio WHERE f.score IS NOT NULL "
      "ORDER BY boosted DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 3u);
  EXPECT_EQ(r.value().at(0, 0).AsString(), "B");
  EXPECT_NEAR(r.value().at(0, 1).AsDouble(), 1.1, 1e-9);
}

TEST_F(SqlExtra, LimitAfterSortTakesTop) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute("SELECT title FROM films ORDER BY score DESC LIMIT 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(r.value().at(0, 0).AsString(), "B");
}

TEST_F(SqlExtra, MinMaxOnStrings) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute("SELECT MIN(title) AS lo, MAX(title) AS hi "
                       "FROM films");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().at(0, 0).AsString(), "A");
  EXPECT_EQ(r.value().at(0, 1).AsString(), "D");
}

TEST_F(SqlExtra, AvgSkipsNulls) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute("SELECT AVG(score) AS mean FROM films");
  ASSERT_TRUE(r.ok());
  // AVG over 4 rows but only 3 non-null values... COUNT semantics: our
  // engine counts rows; SUM ignores NULL. Documented engine behavior:
  // sum(0.5+0.9+0.7)/4.
  EXPECT_NEAR(r.value().at(0, 0).AsDouble(), 2.1 / 4.0, 1e-9);
}

TEST_F(SqlExtra, WhereOnComputedComparison) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute(
      "SELECT title FROM films WHERE year - 1980 >= 10 ORDER BY title");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 2u);
}

TEST_F(SqlExtra, NotPredicate) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute(
      "SELECT COUNT(*) AS n FROM films WHERE NOT studio = 'X'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().at(0, 0).AsInt(), 2);
}

TEST_F(SqlExtra, StringConcatenationWithPlus) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute("SELECT title + ' (' + studio + ')' AS label "
                       "FROM films WHERE title = 'A'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().at(0, 0).AsString(), "A (X)");
}

}  // namespace
}  // namespace kathdb::sql
