// Unit tests for src/llm: model specs, usage metering, capabilities,
// user channels.

#include <gtest/gtest.h>

#include "llm/channel.h"
#include "llm/model.h"

namespace kathdb::llm {
namespace {

TEST(ModelSpecTest, TiersAreOrderedByCostAndQuality) {
  ModelSpec large = KathLargeSpec();
  ModelSpec mini = KathMiniSpec();
  EXPECT_GT(large.usd_per_1k_prompt, mini.usd_per_1k_prompt);
  EXPECT_GT(large.quality, mini.quality);
  EXPECT_EQ(KathVisionSpec().name, "kath-vision");
}

TEST(UsageMeterTest, RecordsTokensAndCost) {
  UsageMeter meter;
  meter.Record(KathLargeSpec(), 1000, 500);
  EXPECT_EQ(meter.total_calls(), 1);
  EXPECT_EQ(meter.total_prompt_tokens(), 1000);
  EXPECT_EQ(meter.total_completion_tokens(), 500);
  EXPECT_EQ(meter.total_tokens(), 1500);
  // 1.0 * 0.0025 + 0.5 * 0.0100
  EXPECT_NEAR(meter.total_cost_usd(), 0.0025 + 0.005, 1e-9);
  EXPECT_EQ(meter.tokens_for("kath-large"), 1500);
  EXPECT_EQ(meter.tokens_for("kath-mini"), 0);
}

TEST(UsageMeterTest, ResetClears) {
  UsageMeter meter;
  meter.Record(KathMiniSpec(), 100, 100);
  meter.Reset();
  EXPECT_EQ(meter.total_calls(), 0);
  EXPECT_EQ(meter.total_tokens(), 0);
  EXPECT_EQ(meter.total_cost_usd(), 0.0);
}

TEST(UsageMeterTest, SummaryMentionsCost) {
  UsageMeter meter;
  meter.Record(KathLargeSpec(), 2000, 1000);
  std::string s = meter.Summary();
  EXPECT_NE(s.find("calls=1"), std::string::npos);
  EXPECT_NE(s.find("cost=$"), std::string::npos);
}

TEST(SimulatedLlmTest, ChargeMetersApproxTokens) {
  UsageMeter meter;
  SimulatedLLM llm(KathLargeSpec(), &meter);
  llm.Charge("three word prompt", "two words");
  EXPECT_EQ(meter.total_prompt_tokens(), 3);
  EXPECT_EQ(meter.total_completion_tokens(), 2);
}

TEST(SimulatedLlmTest, NullMeterIsSafe) {
  SimulatedLLM llm(KathLargeSpec(), nullptr);
  EXPECT_NO_FATAL_FAILURE(llm.Charge("p", "c"));
}

TEST(SimulatedLlmTest, DetectsSubjectiveTerms) {
  UsageMeter meter;
  SimulatedLLM llm(KathLargeSpec(), &meter);
  auto terms = llm.DetectAmbiguousTerms(
      "Sort the films by how exciting they are, but the poster should be "
      "'boring'.");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "exciting");
  EXPECT_EQ(terms[1], "boring");
  EXPECT_GT(meter.total_calls(), 0);
}

TEST(SimulatedLlmTest, NoFalseAmbiguityOnPlainQueries) {
  SimulatedLLM llm(KathLargeSpec(), nullptr);
  auto terms = llm.DetectAmbiguousTerms("List films released after 1990");
  EXPECT_TRUE(terms.empty());
}

TEST(SimulatedLlmTest, KeywordGenerationMatchesConcepts) {
  SimulatedLLM llm(KathLargeSpec(), nullptr);
  auto kws = llm.GenerateKeywords(
      "exciting", "plots with scenes uncommon in real life");
  ASSERT_FALSE(kws.empty());
  ASSERT_LE(kws.size(), 16u);
  bool has_gun = false;
  for (const auto& k : kws) has_gun |= (k == "gun");
  EXPECT_TRUE(has_gun);

  auto boring = llm.GenerateKeywords("boring", "");
  bool has_plain = false;
  for (const auto& k : boring) has_plain |= (k == "plain");
  EXPECT_TRUE(has_plain);
}

TEST(SimulatedLlmTest, DependencyPatternClassification) {
  SimulatedLLM llm(KathLargeSpec(), nullptr);
  EXPECT_EQ(llm.ClassifyDependencyPattern(
                "Join the relational view over plot text with movies"),
            "many_to_many");
  EXPECT_EQ(llm.ClassifyDependencyPattern("Rank the films by score"),
            "many_to_one");
  EXPECT_EQ(llm.ClassifyDependencyPattern(
                "Assign an excitement score to each film"),
            "one_to_one");
  EXPECT_EQ(llm.ClassifyDependencyPattern(
                "Split the document and extract each sentence"),
            "one_to_many");
}

TEST(SimulatedLlmTest, SummarizeTruncatesAtClause) {
  SimulatedLLM llm(KathLargeSpec(), nullptr);
  EXPECT_EQ(llm.Summarize("Filter the films. Then sort them."),
            "Filter the films");
}

// ---------------------------------------------------------------- channel

TEST(ScriptedUserTest, RepliesInOrderThenOk) {
  ScriptedUser user({"first", "second"});
  EXPECT_EQ(user.Ask("parse", "q1").value(), "first");
  EXPECT_EQ(user.Ask("parse", "q2").value(), "second");
  EXPECT_EQ(user.Ask("parse", "q3").value(), "OK");
  EXPECT_EQ(user.questions_asked(), 3u);
}

TEST(ScriptedUserTest, HistoryLogsQuestionsAndNotifications) {
  ScriptedUser user({"yes"});
  (void)user.Ask("execute", "anomaly?");
  user.Notify("execute", "repaired");
  ASSERT_EQ(user.history().size(), 2u);
  EXPECT_EQ(user.history()[0].stage, "execute");
  EXPECT_EQ(user.history()[0].answer, "yes");
  EXPECT_EQ(user.history()[1].question, "repaired");
  EXPECT_EQ(user.history()[1].answer, "");
  EXPECT_EQ(user.questions_asked(), 1u);  // notify is not a question
}

TEST(ScriptedUserTest, PushAppendsReplies) {
  ScriptedUser user;
  user.Push("later");
  EXPECT_EQ(user.Ask("parse", "q").value(), "later");
}

}  // namespace
}  // namespace kathdb::llm
