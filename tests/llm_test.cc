// Unit tests for src/llm: model specs, usage metering, capabilities,
// user channels, and the batched-vs-synchronous completion differential.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "llm/batch_scheduler.h"
#include "llm/channel.h"
#include "llm/model.h"
#include "service/result_cache.h"

namespace kathdb::llm {
namespace {

TEST(ModelSpecTest, TiersAreOrderedByCostAndQuality) {
  ModelSpec large = KathLargeSpec();
  ModelSpec mini = KathMiniSpec();
  EXPECT_GT(large.usd_per_1k_prompt, mini.usd_per_1k_prompt);
  EXPECT_GT(large.quality, mini.quality);
  EXPECT_EQ(KathVisionSpec().name, "kath-vision");
}

TEST(UsageMeterTest, RecordsTokensAndCost) {
  UsageMeter meter;
  meter.Record(KathLargeSpec(), 1000, 500);
  EXPECT_EQ(meter.total_calls(), 1);
  EXPECT_EQ(meter.total_prompt_tokens(), 1000);
  EXPECT_EQ(meter.total_completion_tokens(), 500);
  EXPECT_EQ(meter.total_tokens(), 1500);
  // 1.0 * 0.0025 + 0.5 * 0.0100
  EXPECT_NEAR(meter.total_cost_usd(), 0.0025 + 0.005, 1e-9);
  EXPECT_EQ(meter.tokens_for("kath-large"), 1500);
  EXPECT_EQ(meter.tokens_for("kath-mini"), 0);
}

TEST(UsageMeterTest, ResetClears) {
  UsageMeter meter;
  meter.Record(KathMiniSpec(), 100, 100);
  meter.Reset();
  EXPECT_EQ(meter.total_calls(), 0);
  EXPECT_EQ(meter.total_tokens(), 0);
  EXPECT_EQ(meter.total_cost_usd(), 0.0);
}

TEST(UsageMeterTest, SummaryMentionsCost) {
  UsageMeter meter;
  meter.Record(KathLargeSpec(), 2000, 1000);
  std::string s = meter.Summary();
  EXPECT_NE(s.find("calls=1"), std::string::npos);
  EXPECT_NE(s.find("cost=$"), std::string::npos);
}

TEST(SimulatedLlmTest, ChargeMetersApproxTokens) {
  UsageMeter meter;
  SimulatedLLM llm(KathLargeSpec(), &meter);
  llm.Charge("three word prompt", "two words");
  EXPECT_EQ(meter.total_prompt_tokens(), 3);
  EXPECT_EQ(meter.total_completion_tokens(), 2);
}

TEST(SimulatedLlmTest, NullMeterIsSafe) {
  SimulatedLLM llm(KathLargeSpec(), nullptr);
  EXPECT_NO_FATAL_FAILURE(llm.Charge("p", "c"));
}

TEST(SimulatedLlmTest, DetectsSubjectiveTerms) {
  UsageMeter meter;
  SimulatedLLM llm(KathLargeSpec(), &meter);
  auto terms = llm.DetectAmbiguousTerms(
      "Sort the films by how exciting they are, but the poster should be "
      "'boring'.");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "exciting");
  EXPECT_EQ(terms[1], "boring");
  EXPECT_GT(meter.total_calls(), 0);
}

TEST(SimulatedLlmTest, NoFalseAmbiguityOnPlainQueries) {
  SimulatedLLM llm(KathLargeSpec(), nullptr);
  auto terms = llm.DetectAmbiguousTerms("List films released after 1990");
  EXPECT_TRUE(terms.empty());
}

TEST(SimulatedLlmTest, KeywordGenerationMatchesConcepts) {
  SimulatedLLM llm(KathLargeSpec(), nullptr);
  auto kws = llm.GenerateKeywords(
      "exciting", "plots with scenes uncommon in real life");
  ASSERT_FALSE(kws.empty());
  ASSERT_LE(kws.size(), 16u);
  bool has_gun = false;
  for (const auto& k : kws) has_gun |= (k == "gun");
  EXPECT_TRUE(has_gun);

  auto boring = llm.GenerateKeywords("boring", "");
  bool has_plain = false;
  for (const auto& k : boring) has_plain |= (k == "plain");
  EXPECT_TRUE(has_plain);
}

TEST(SimulatedLlmTest, DependencyPatternClassification) {
  SimulatedLLM llm(KathLargeSpec(), nullptr);
  EXPECT_EQ(llm.ClassifyDependencyPattern(
                "Join the relational view over plot text with movies"),
            "many_to_many");
  EXPECT_EQ(llm.ClassifyDependencyPattern("Rank the films by score"),
            "many_to_one");
  EXPECT_EQ(llm.ClassifyDependencyPattern(
                "Assign an excitement score to each film"),
            "one_to_one");
  EXPECT_EQ(llm.ClassifyDependencyPattern(
                "Split the document and extract each sentence"),
            "one_to_many");
}

TEST(SimulatedLlmTest, SummarizeTruncatesAtClause) {
  SimulatedLLM llm(KathLargeSpec(), nullptr);
  EXPECT_EQ(llm.Summarize("Filter the films. Then sort them."),
            "Filter the films");
}

// ---------------------------------------------------------------- channel

TEST(ScriptedUserTest, RepliesInOrderThenOk) {
  ScriptedUser user({"first", "second"});
  EXPECT_EQ(user.Ask("parse", "q1").value(), "first");
  EXPECT_EQ(user.Ask("parse", "q2").value(), "second");
  EXPECT_EQ(user.Ask("parse", "q3").value(), "OK");
  EXPECT_EQ(user.questions_asked(), 3u);
}

TEST(ScriptedUserTest, HistoryLogsQuestionsAndNotifications) {
  ScriptedUser user({"yes"});
  (void)user.Ask("execute", "anomaly?");
  user.Notify("execute", "repaired");
  ASSERT_EQ(user.history().size(), 2u);
  EXPECT_EQ(user.history()[0].stage, "execute");
  EXPECT_EQ(user.history()[0].answer, "yes");
  EXPECT_EQ(user.history()[1].question, "repaired");
  EXPECT_EQ(user.history()[1].answer, "");
  EXPECT_EQ(user.questions_asked(), 1u);  // notify is not a question
}

TEST(ScriptedUserTest, PushAppendsReplies) {
  ScriptedUser user;
  user.Push("later");
  EXPECT_EQ(user.Ask("parse", "q").value(), "later");
}

TEST(ScriptedUserTest, ReplyLatencyRunsOnTheInjectedClock) {
  // With a ManualClock the think time is virtual: Ask returns instantly
  // in wall time but advances the clock by exactly the configured
  // latency — the TSan-safe replacement for a real sleep_for.
  common::ManualClock clock;
  ScriptedUser user({"sure"});
  user.set_reply_latency_ms(25.0);
  user.set_clock(&clock);
  EXPECT_EQ(user.Ask("parse", "q").value(), "sure");
  EXPECT_EQ(clock.NowMicros(), 25000);
}

TEST(ScriptedUserTest, KnobsAreSafeToFlipDuringConcurrentAsks) {
  // Regression: reply_latency_ms / clock used to be plain members read
  // by Ask while setters ran on other threads — a data race TSan flags.
  // Both are atomics now; this test races setters against Asks and
  // Pushes so the sanitizer jobs prove the fix.
  common::ManualClock clock;
  ScriptedUser user;
  std::atomic<bool> stop{false};
  std::thread knobs([&] {
    for (int i = 0; !stop.load(); ++i) {
      user.set_reply_latency_ms(i % 2 == 0 ? 0.0 : 1.0);
      user.set_clock(i % 2 == 0 ? nullptr : &clock);
      std::this_thread::yield();
    }
    // Leave the knobs in a deterministic instant-reply state.
    user.set_reply_latency_ms(0.0);
    user.set_clock(&clock);
  });
  constexpr int kAsks = 200;
  std::thread asker([&] {
    for (int i = 0; i < kAsks; ++i) {
      user.Push("r" + std::to_string(i));
      EXPECT_TRUE(user.Ask("parse", "q").ok());
    }
  });
  asker.join();
  stop = true;
  knobs.join();
  EXPECT_EQ(user.questions_asked(), static_cast<size_t>(kAsks));
}

// ------------------- batched vs synchronous completion differential ----

TEST(SimulatedLlmTest, BatchedCompleteMatchesSynchronousExactly) {
  // Two identical models, one routed through a BatchScheduler. Every
  // observable — completion text, cache hit behavior, metered calls,
  // tokens, cost — must be identical.
  UsageMeter sync_meter;
  SimulatedLLM sync_llm(KathLargeSpec(), &sync_meter);
  service::ResultCache sync_cache;
  sync_llm.set_result_cache(&sync_cache);

  common::ManualClock clock;
  BatchOptions bopts;
  bopts.flush_deadline_ms = 0.0;  // flush as soon as the flusher wakes
  bopts.clock = &clock;
  BatchScheduler batcher(bopts);
  UsageMeter batch_meter;
  SimulatedLLM batch_llm(KathLargeSpec(), &batch_meter);
  service::ResultCache batch_cache;
  batch_llm.set_result_cache(&batch_cache);
  batch_llm.set_batch_scheduler(&batcher);

  const std::vector<std::string> prompts = {
      "expand the term exciting", "expand the term exciting",
      "classify this poster", "expand the term exciting"};
  for (const std::string& p : prompts) {
    std::string a = sync_llm.Complete(p, [&p] { return "gen:" + p; });
    std::string b = batch_llm.Complete(p, [&p] { return "gen:" + p; });
    EXPECT_EQ(a, b) << p;
  }
  EXPECT_EQ(sync_meter.total_calls(), batch_meter.total_calls());
  EXPECT_EQ(sync_meter.total_tokens(), batch_meter.total_tokens());
  EXPECT_DOUBLE_EQ(sync_meter.total_cost_usd(), batch_meter.total_cost_usd());
  // Two unique prompts, four calls: exactly two charged on both sides.
  EXPECT_EQ(batch_meter.total_calls(), 2);
  EXPECT_EQ(batch_cache.stats().hits, sync_cache.stats().hits);
  EXPECT_EQ(batch_cache.stats().misses, sync_cache.stats().misses);
}

TEST(SimulatedLlmTest, ConcurrentIdenticalSubmitsShareOneGeneration) {
  common::ManualClock clock;
  BatchOptions bopts;
  bopts.max_batch_size = 64;
  bopts.flush_deadline_ms = 3.0;
  bopts.clock = &clock;
  BatchScheduler batcher(bopts);
  UsageMeter meter;
  SimulatedLLM llm(KathLargeSpec(), &meter);
  service::ResultCache cache;
  llm.set_result_cache(&cache);
  llm.set_batch_scheduler(&batcher);

  // Submissions land while the deadline has not expired; all three join
  // one pending fingerprint and one metered generation.
  auto f1 = llm.Submit("the same prompt", [] { return "one"; });
  auto f2 = llm.Submit("the same prompt", [] { return "one"; });
  auto f3 = llm.Submit("the same prompt", [] { return "one"; });
  clock.Advance(3.0);
  EXPECT_EQ(f1.get().value(), "one");
  EXPECT_EQ(f2.get().value(), "one");
  EXPECT_EQ(f3.get().value(), "one");
  EXPECT_EQ(meter.total_calls(), 1);
  EXPECT_EQ(batcher.stats().coalesced, 2);
  EXPECT_EQ(batcher.stats().generated, 1);
}

}  // namespace
}  // namespace kathdb::llm
