/// \file sync_test.cc
/// \brief Behavior tests for the annotated sync primitives (common/sync.h).
///
/// The annotations themselves are compile-time (checked by the clang
/// -Wthread-safety CI job and the tests/compile_fail negative cases);
/// these tests pin down the *runtime* semantics the wrappers promise:
/// mutual exclusion, try-lock contracts, reader parallelism / writer
/// exclusion on SharedMutex, and the CondVar wait/timeout protocol.

#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace kathdb::common {
namespace {

TEST(Mutex, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;  // deliberately non-atomic: the mutex is the fence
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Mutex, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{true};
  // TryLock must be exercised from another thread: retrying the owner's
  // own non-recursive mutex is undefined behavior.
  std::thread probe([&] { acquired = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  std::thread probe2([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  probe2.join();
  EXPECT_TRUE(acquired.load());
}

TEST(SharedMutex, ReadersRunInParallel) {
  SharedMutex mu;
  std::atomic<int> concurrent{0};
  std::atomic<int> max_seen{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  std::atomic<bool> go{false};
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      ReaderLock lock(mu);
      int now = concurrent.fetch_add(1) + 1;
      int prev = max_seen.load();
      while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
      }
      // Hold long enough for the others to pile in.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent.fetch_sub(1);
    });
  }
  go = true;
  for (auto& th : readers) th.join();
  // All readers should have overlapped at least once (>= 2 is the
  // assertion that shared mode is actually shared; == kReaders would be
  // flaky under scheduler noise).
  EXPECT_GE(max_seen.load(), 2);
}

TEST(SharedMutex, WriterExcludesReadersAndWriters) {
  SharedMutex mu;
  int value = 0;
  std::atomic<bool> writer_in{false};
  std::atomic<bool> overlap{false};
  std::thread writer([&] {
    WriterLock lock(mu);
    writer_in = true;
    value = 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    value = 2;
    writer_in = false;
  });
  while (!writer_in.load()) std::this_thread::yield();
  std::thread reader([&] {
    ReaderLock lock(mu);
    if (writer_in.load()) overlap = true;
    // Under the reader lock the writer has fully finished: half-written
    // state (value == 1) must be invisible.
    EXPECT_EQ(value, 2);
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(overlap.load());
}

TEST(SharedMutex, TryLockRespectsBothModes) {
  SharedMutex mu;
  mu.LockShared();
  std::atomic<bool> got_excl{true}, got_shared{false};
  std::thread probe([&] {
    got_excl = mu.TryLock();          // must fail: reader active
    got_shared = mu.TryLockShared();  // must succeed: shared is shared
    if (got_shared) mu.UnlockShared();
  });
  probe.join();
  EXPECT_FALSE(got_excl.load());
  EXPECT_TRUE(got_shared.load());
  mu.UnlockShared();
}

TEST(CondVar, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST(CondVar, PredicateWaitHandlesSpuriousStyleWakeups) {
  Mutex mu;
  CondVar cv;
  int stage = 0;
  std::thread stepper([&] {
    for (int s = 1; s <= 3; ++s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      {
        MutexLock lock(mu);
        stage = s;
      }
      // Every step notifies; the waiter must re-check its predicate and
      // keep sleeping until the final stage.
      cv.NotifyAll();
    }
  });
  {
    MutexLock lock(mu);
    cv.Wait(mu, [&]() KATHDB_NO_THREAD_SAFETY_ANALYSIS { return stage == 3; });
    EXPECT_EQ(stage, 3);
  }
  stepper.join();
}

TEST(CondVar, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  // 1 ms deadline, nobody notifies: must return false (timed out)
  // instead of blocking forever.
  EXPECT_FALSE(cv.WaitFor(mu, 1000));
}

TEST(CondVar, WaitForReturnsTrueWhenNotified) {
  Mutex mu;
  CondVar cv;
  std::atomic<bool> waker_done{false};
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      MutexLock lock(mu);
    }
    cv.NotifyAll();
    waker_done = true;
  });
  bool notified;
  {
    MutexLock lock(mu);
    // Generous deadline; the notify lands long before it.
    notified = cv.WaitFor(mu, 5'000'000);
  }
  waker.join();
  EXPECT_TRUE(notified);
  EXPECT_TRUE(waker_done.load());
}

TEST(MutexLock, ReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
  }
  // Provable only by being able to take it again immediately.
  std::atomic<bool> acquired{false};
  std::thread probe([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  probe.join();
  EXPECT_TRUE(acquired.load());
}

}  // namespace
}  // namespace kathdb::common
