// Unit tests for src/baselines: metrics + the two comparison systems.

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "baselines/metrics.h"

namespace kathdb::baseline {
namespace {

// ----------------------------------------------------------------- metrics

TEST(KendallTauTest, PerfectAgreement) {
  EXPECT_DOUBLE_EQ(KendallTau({1, 2, 3, 4}, {1, 2, 3, 4}), 1.0);
}

TEST(KendallTauTest, PerfectDisagreement) {
  EXPECT_DOUBLE_EQ(KendallTau({1, 2, 3, 4}, {4, 3, 2, 1}), -1.0);
}

TEST(KendallTauTest, PartialAgreement) {
  double tau = KendallTau({1, 2, 3, 4}, {2, 1, 3, 4});
  EXPECT_GT(tau, 0.0);
  EXPECT_LT(tau, 1.0);
}

TEST(KendallTauTest, IgnoresNonCommonIds) {
  // Only {1,2} are common; both orders agree on them.
  EXPECT_DOUBLE_EQ(KendallTau({1, 9, 2}, {1, 2, 7}), 1.0);
}

TEST(KendallTauTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(KendallTau({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau({1}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau({1, 2}, {3, 4}), 1.0);  // no overlap
}

TEST(CompareSetsTest, ExactMatch) {
  SetQuality q = CompareSets({1, 2, 3}, {3, 2, 1});
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
}

TEST(CompareSetsTest, PartialOverlap) {
  SetQuality q = CompareSets({1, 2}, {2, 3, 4});
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_NEAR(q.recall, 1.0 / 3.0, 1e-9);
  EXPECT_GT(q.f1, 0.0);
}

TEST(CompareSetsTest, EmptyPrediction) {
  SetQuality q = CompareSets({}, {1});
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.f1, 0.0);
}

// --------------------------------------------------------------- baselines

class BaselineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::DatasetOptions opts;
    opts.num_movies = 24;
    auto ds = data::GenerateMovieDataset(opts);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::move(ds).value();
  }

  std::vector<int64_t> TruthBoringMids() const {
    std::vector<int64_t> out;
    for (const auto& t : dataset_.truth) {
      if (t.boring_poster) out.push_back(t.mid);
    }
    return out;
  }

  data::MovieDataset dataset_;
};

TEST_F(BaselineFixture, BlackboxPerfectQualityMatchesTruth) {
  BlackboxLlmBaseline perfect(1.0);
  auto out = perfect.Run(dataset_);
  ASSERT_TRUE(out.ok());
  SetQuality q = CompareSets(out->kept, TruthBoringMids());
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  // Anchor movies lead the ranking (they're the exciting boring-poster
  // films).
  ASSERT_GE(out->ranking.size(), 2u);
  EXPECT_TRUE(out->ranking[0] == 1 || out->ranking[0] == 2);
}

TEST_F(BaselineFixture, BlackboxLowQualityDegrades) {
  BlackboxLlmBaseline poor(0.3, 5);
  auto out = poor.Run(dataset_);
  ASSERT_TRUE(out.ok());
  SetQuality q = CompareSets(out->kept, TruthBoringMids());
  EXPECT_LT(q.f1, 0.95);
}

TEST_F(BaselineFixture, BlackboxTokensScaleWithDatabaseSize) {
  BlackboxLlmBaseline model(0.9);
  auto small = model.Run(dataset_);
  ASSERT_TRUE(small.ok());

  data::DatasetOptions big_opts;
  big_opts.num_movies = 96;
  auto big_ds = data::GenerateMovieDataset(big_opts);
  ASSERT_TRUE(big_ds.ok());
  BlackboxLlmBaseline model2(0.9);
  auto big = model2.Run(big_ds.value());
  ASSERT_TRUE(big.ok());
  EXPECT_GT(big->tokens_used, small->tokens_used * 2);
}

TEST_F(BaselineFixture, BlackboxIsNotExplainable) {
  BlackboxLlmBaseline model(0.9);
  auto out = model.Run(dataset_);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->explainable);
  EXPECT_EQ(out->user_authored_statements, 0);
}

TEST_F(BaselineFixture, SqlUdfMatchesGroundTruthExactly) {
  engine::KathDB db;
  ASSERT_TRUE(data::IngestDataset(dataset_, &db).ok());
  SqlUdfBaseline expert;
  auto out = expert.Run(&db, dataset_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  SetQuality q = CompareSets(out->kept, TruthBoringMids());
  // Noiseless substrate: the expert pipeline is exact.
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  // Guilty by Suspicion tops the expert ranking too.
  ASSERT_FALSE(out->ranking.empty());
  EXPECT_EQ(out->ranking[0], 1);
  // But it costs authored statements.
  EXPECT_GE(out->user_authored_statements, 6);
  EXPECT_TRUE(out->explainable);
}

}  // namespace
}  // namespace kathdb::baseline
