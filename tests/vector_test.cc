// Unit + property tests for src/vector: embeddings, lexicon, indexes.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "vector/embedding.h"
#include "vector/index.h"

namespace kathdb::vec {
namespace {

// ------------------------------------------------------------ embeddings

TEST(EmbeddingTest, CosineBasics) {
  Embedding a{1, 0, 0};
  Embedding b{0, 1, 0};
  Embedding c{2, 0, 0};
  EXPECT_FLOAT_EQ(CosineSimilarity(a, b), 0.0f);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(CosineSimilarity(a, {}), 0.0f);  // dim mismatch
  Embedding zero{0, 0, 0};
  EXPECT_FLOAT_EQ(CosineSimilarity(a, zero), 0.0f);
}

TEST(EmbeddingTest, NormalizeMakesUnitLength) {
  Embedding e{3, 4};
  Normalize(&e);
  EXPECT_NEAR(std::hypot(e[0], e[1]), 1.0, 1e-6);
  Embedding zero{0, 0};
  Normalize(&zero);  // must not divide by zero
  EXPECT_FLOAT_EQ(zero[0], 0.0f);
}

TEST(LexiconTest, BuiltInCoversRunningExample) {
  ConceptLexicon lex = ConceptLexicon::BuiltIn();
  EXPECT_EQ(lex.ConceptOf("gun"), "violence");
  EXPECT_EQ(lex.ConceptOf("WEAPON"), "violence");  // case-insensitive
  EXPECT_EQ(lex.ConceptOf("motorcycle"), "action");
  EXPECT_EQ(lex.ConceptOf("meadow"), "calm");
  EXPECT_EQ(lex.ConceptOf("blacklist"), "suspense");
  EXPECT_EQ(lex.ConceptOf("nonexistentword"), "");
  EXPECT_GT(lex.TokensOf("violence").size(), 10u);
}

TEST(LexiconTest, AddExtends) {
  ConceptLexicon lex;
  lex.Add("Violence", "Phaser");
  EXPECT_EQ(lex.ConceptOf("phaser"), "violence");
}

TEST(EmbedderTest, DeterministicAcrossInstances) {
  TextEmbedder a(64);
  TextEmbedder b(64);
  EXPECT_EQ(a.EmbedToken("gun"), b.EmbedToken("gun"));
  EXPECT_EQ(a.EmbedText("a gun fight"), b.EmbedText("a gun fight"));
}

TEST(EmbedderTest, TokenEmbeddingsAreUnitNorm) {
  TextEmbedder emb(64);
  for (const char* w : {"gun", "meadow", "zzyzx", "title"}) {
    Embedding e = emb.EmbedToken(w);
    double n = 0;
    for (float v : e) n += static_cast<double>(v) * v;
    EXPECT_NEAR(n, 1.0, 1e-5) << w;
  }
}

TEST(EmbedderTest, SameConceptTokensCorrelate) {
  TextEmbedder emb(64);
  // Same concept: strongly related.
  float gun_weapon = CosineSimilarity(emb.EmbedToken("gun"),
                                      emb.EmbedToken("weapon"));
  EXPECT_GT(gun_weapon, 0.6f);
  // Different concepts: weak relation.
  float gun_meadow = CosineSimilarity(emb.EmbedToken("gun"),
                                      emb.EmbedToken("meadow"));
  EXPECT_LT(gun_meadow, 0.4f);
  // Unmapped tokens: near-orthogonal.
  float rand_pair = CosineSimilarity(emb.EmbedToken("qwerty"),
                                     emb.EmbedToken("asdfgh"));
  EXPECT_LT(std::abs(rand_pair), 0.4f);
}

TEST(EmbedderTest, KeywordSetSimilarityDiscriminates) {
  TextEmbedder emb(64);
  std::vector<std::string> keywords{"gun", "murder", "chase"};
  float exciting = emb.KeywordSetSimilarity(
      keywords, {"shootout", "explosion", "detective"});
  float calm = emb.KeywordSetSimilarity(keywords,
                                        {"tea", "garden", "picnic"});
  EXPECT_GT(exciting, calm + 0.3f);
}

// Property sweep: embedding dimension does not break determinism/norms.
class EmbedderDimSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(EmbedderDimSweep, NormAndDeterminism) {
  size_t dim = GetParam();
  TextEmbedder emb(dim);
  Embedding e1 = emb.EmbedText("the quick brown fox");
  Embedding e2 = emb.EmbedText("the quick brown fox");
  ASSERT_EQ(e1.size(), dim);
  EXPECT_EQ(e1, e2);
  double n = 0;
  for (float v : e1) n += static_cast<double>(v) * v;
  EXPECT_NEAR(n, 1.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Dims, EmbedderDimSweep,
                         ::testing::Values(8, 16, 32, 64, 128, 256));

// --------------------------------------------------------------- indexes

std::vector<Embedding> RandomVectors(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Embedding> out;
  for (size_t i = 0; i < n; ++i) {
    Embedding e(dim);
    for (auto& v : e) v = static_cast<float>(rng.NextGaussian());
    Normalize(&e);
    out.push_back(std::move(e));
  }
  return out;
}

TEST(BruteForceIndexTest, ExactTopK) {
  BruteForceIndex idx(8);
  auto vecs = RandomVectors(100, 8, 5);
  for (size_t i = 0; i < vecs.size(); ++i) {
    ASSERT_TRUE(idx.Add(static_cast<int64_t>(i), vecs[i]).ok());
  }
  ASSERT_TRUE(idx.Build().ok());
  // Query with vector 42 itself: best hit must be id 42 with sim ~1.
  auto hits = idx.Search(vecs[42], 5);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits.value().size(), 5u);
  EXPECT_EQ(hits.value()[0].id, 42);
  EXPECT_NEAR(hits.value()[0].score, 1.0f, 1e-5);
  // Scores are non-increasing.
  for (size_t i = 1; i < hits.value().size(); ++i) {
    EXPECT_GE(hits.value()[i - 1].score, hits.value()[i].score);
  }
}

TEST(BruteForceIndexTest, RejectsDimMismatch) {
  BruteForceIndex idx(8);
  EXPECT_FALSE(idx.Add(1, Embedding(4)).ok());
  ASSERT_TRUE(idx.Add(1, Embedding(8, 0.5f)).ok());
  EXPECT_FALSE(idx.Search(Embedding(4), 1).ok());
}

TEST(BruteForceIndexTest, KLargerThanSize) {
  BruteForceIndex idx(4);
  ASSERT_TRUE(idx.Add(7, {1, 0, 0, 0}).ok());
  auto hits = idx.Search({1, 0, 0, 0}, 10);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value().size(), 1u);
}

TEST(IvfIndexTest, RequiresBuildBeforeSearch) {
  IvfIndex idx(8, 4, 2);
  ASSERT_TRUE(idx.Add(1, Embedding(8, 0.1f)).ok());
  EXPECT_FALSE(idx.Search(Embedding(8, 0.1f), 1).ok());
  ASSERT_TRUE(idx.Build().ok());
  EXPECT_TRUE(idx.Search(Embedding(8, 0.1f), 1).ok());
  // No adds after build.
  EXPECT_FALSE(idx.Add(2, Embedding(8, 0.2f)).ok());
}

TEST(IvfIndexTest, HighRecallWithEnoughProbes) {
  const size_t n = 500;
  const size_t dim = 16;
  auto vecs = RandomVectors(n, dim, 77);
  BruteForceIndex exact(dim);
  IvfIndex ivf(dim, 16, 8);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(exact.Add(static_cast<int64_t>(i), vecs[i]).ok());
    ASSERT_TRUE(ivf.Add(static_cast<int64_t>(i), vecs[i]).ok());
  }
  ASSERT_TRUE(exact.Build().ok());
  ASSERT_TRUE(ivf.Build().ok());

  auto queries = RandomVectors(20, dim, 99);
  double recall_sum = 0;
  for (const auto& q : queries) {
    auto te = exact.Search(q, 10);
    auto ta = ivf.Search(q, 10);
    ASSERT_TRUE(te.ok());
    ASSERT_TRUE(ta.ok());
    std::set<int64_t> truth;
    for (const auto& h : te.value()) truth.insert(h.id);
    size_t hit = 0;
    for (const auto& h : ta.value()) {
      if (truth.count(h.id) > 0) ++hit;
    }
    recall_sum += static_cast<double>(hit) / truth.size();
  }
  EXPECT_GT(recall_sum / 20.0, 0.6);  // probing half the clusters
}

TEST(IvfIndexTest, EmptyIndexSearchIsEmpty) {
  IvfIndex idx(8, 4, 2);
  ASSERT_TRUE(idx.Build().ok());
  auto hits = idx.Search(Embedding(8, 0.5f), 3);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits.value().empty());
}

// Property: brute-force top-1 self-retrieval across index sizes.
class IndexSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(IndexSizeSweep, SelfRetrievalAlwaysTop1) {
  size_t n = GetParam();
  auto vecs = RandomVectors(n, 12, n);
  BruteForceIndex idx(12);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(idx.Add(static_cast<int64_t>(i), vecs[i]).ok());
  }
  ASSERT_TRUE(idx.Build().ok());
  for (size_t probe = 0; probe < n; probe += std::max<size_t>(1, n / 7)) {
    auto hits = idx.Search(vecs[probe], 1);
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ(hits.value()[0].id, static_cast<int64_t>(probe));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IndexSizeSweep,
                         ::testing::Values(1, 2, 10, 64, 257));

}  // namespace
}  // namespace kathdb::vec
