// Deterministic-time tests for the cross-query LLM batch scheduler.
//
// Every test drives a common::ManualClock — no real sleeps anywhere, so
// the suite is exact (not "probably fast enough") and TSan-safe: deadline
// flushes happen because the test advanced virtual time, size-cap flushes
// because the test filled the batch, and shutdown drains are asserted by
// blocking on the futures the scheduler must complete.

#include "llm/batch_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "llm/model.h"
#include "service/result_cache.h"

namespace kathdb::llm {
namespace {

BatchGenerator TextGen(std::string text, std::atomic<int>* calls) {
  return [text = std::move(text), calls]() -> Result<BatchResult> {
    calls->fetch_add(1);
    BatchResult r;
    r.text = text;
    return r;
  };
}

TEST(BatchSchedulerTest, DeadlineFlushOnManualClock) {
  common::ManualClock clock;
  BatchOptions opts;
  opts.max_batch_size = 8;  // never reached: one item
  opts.flush_deadline_ms = 5.0;
  opts.clock = &clock;
  BatchScheduler sched(opts);

  std::atomic<int> calls{0};
  auto fut = sched.SubmitFuture(/*fingerprint=*/1, TextGen("alpha", &calls),
                                /*latency_ms=*/0.0);

  // Nothing has expired yet; the item must still be pending (the flusher
  // can only remove it by flushing, which needs 5 virtual ms).
  EXPECT_EQ(sched.pending(), 1u);

  clock.Advance(5.0);  // deadline reached -> flusher wakes and flushes
  Result<BatchResult> r = fut.get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().text, "alpha");
  EXPECT_EQ(calls.load(), 1);

  BatchStats st = sched.stats();
  EXPECT_EQ(st.submitted, 1);
  EXPECT_EQ(st.coalesced, 0);
  EXPECT_EQ(st.generated, 1);
  EXPECT_EQ(st.flushes, 1);
  EXPECT_EQ(st.deadline_flushes, 1);
  EXPECT_EQ(st.size_flushes, 0);
}

TEST(BatchSchedulerTest, SizeCapFlushWithoutTimePassing) {
  common::ManualClock clock;
  BatchOptions opts;
  opts.max_batch_size = 3;
  opts.flush_deadline_ms = 1e9;  // deadline effectively never fires
  opts.clock = &clock;
  BatchScheduler sched(opts);

  std::atomic<int> calls{0};
  std::vector<std::future<Result<BatchResult>>> futs;
  for (uint64_t fp = 1; fp <= 3; ++fp) {
    futs.push_back(
        sched.SubmitFuture(fp, TextGen("t" + std::to_string(fp), &calls), 0.0));
  }
  // The third unique fingerprint fills the cap; no Advance() needed.
  for (size_t i = 0; i < futs.size(); ++i) {
    Result<BatchResult> r = futs[i].get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().text, "t" + std::to_string(i + 1));
  }
  EXPECT_EQ(calls.load(), 3);

  BatchStats st = sched.stats();
  EXPECT_EQ(st.generated, 3);
  EXPECT_EQ(st.flushes, 1);
  EXPECT_EQ(st.size_flushes, 1);
  EXPECT_EQ(st.deadline_flushes, 0);
}

TEST(BatchSchedulerTest, CrossSubmitterCoalescingGeneratesOnce) {
  common::ManualClock clock;
  BatchOptions opts;
  opts.max_batch_size = 64;
  opts.flush_deadline_ms = 2.0;
  opts.clock = &clock;
  BatchScheduler sched(opts);

  // Five submitter threads race the same fingerprint in — whichever
  // arrives first installs the generator; the rest must coalesce.
  constexpr int kSubmitters = 5;
  std::atomic<int> calls{0};
  std::vector<std::future<Result<BatchResult>>> futs(kSubmitters);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kSubmitters; ++i) {
      threads.emplace_back([&, i] {
        futs[i] = sched.SubmitFuture(/*fingerprint=*/77,
                                     TextGen("shared", &calls), 0.0);
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(sched.pending(), 1u);  // one unique fingerprint

  clock.Advance(2.0);
  for (auto& f : futs) {
    Result<BatchResult> r = f.get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().text, "shared");
  }
  EXPECT_EQ(calls.load(), 1) << "coalesced twins must share one generation";

  BatchStats st = sched.stats();
  EXPECT_EQ(st.submitted, kSubmitters);
  EXPECT_EQ(st.coalesced, kSubmitters - 1);
  EXPECT_EQ(st.generated, 1);
}

TEST(BatchSchedulerTest, BatchPaysMaxLatencyNotSum) {
  common::ManualClock clock;
  BatchOptions opts;
  opts.max_batch_size = 3;
  opts.flush_deadline_ms = 1e9;
  opts.batch_latency_ms = 1.0;
  opts.clock = &clock;
  BatchScheduler sched(opts);

  std::atomic<int> calls{0};
  std::vector<std::future<Result<BatchResult>>> futs;
  futs.push_back(sched.SubmitFuture(1, TextGen("a", &calls), 4.0));
  futs.push_back(sched.SubmitFuture(2, TextGen("b", &calls), 9.0));
  futs.push_back(sched.SubmitFuture(3, TextGen("c", &calls), 2.0));
  for (auto& f : futs) ASSERT_TRUE(f.get().ok());

  // The flush slept max(batch_latency, max item latency) = 9 virtual ms —
  // not 4+9+2. On a ManualClock the sleeper advances time, so the round
  // trip is visible as exactly one 9 ms jump.
  EXPECT_EQ(clock.NowMicros(), 9000);
}

TEST(BatchSchedulerTest, ShutdownDrainsPendingWaiters) {
  common::ManualClock clock;
  BatchOptions opts;
  opts.max_batch_size = 64;
  opts.flush_deadline_ms = 1e9;  // only shutdown can flush these
  opts.clock = &clock;
  BatchScheduler sched(opts);

  std::atomic<int> calls{0};
  std::vector<std::future<Result<BatchResult>>> futs;
  for (uint64_t fp = 1; fp <= 7; ++fp) {
    futs.push_back(sched.SubmitFuture(fp, TextGen("drain", &calls), 0.0));
  }
  EXPECT_EQ(sched.pending(), 7u);

  sched.Shutdown();  // must flush, not abandon
  for (auto& f : futs) {
    Result<BatchResult> r = f.get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().text, "drain");
  }
  EXPECT_EQ(calls.load(), 7);
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_EQ(sched.stats().generated, 7);
}

TEST(BatchSchedulerTest, SubmitAfterShutdownFailsFast) {
  common::ManualClock clock;
  BatchOptions opts;
  opts.clock = &clock;
  BatchScheduler sched(opts);
  sched.Shutdown();

  std::atomic<int> calls{0};
  auto fut = sched.SubmitFuture(9, TextGen("late", &calls), 0.0);
  Result<BatchResult> r = fut.get();  // completed inline, no hang
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_EQ(calls.load(), 0);
}

TEST(BatchSchedulerTest, GenerationErrorReachesEveryWaiter) {
  common::ManualClock clock;
  BatchOptions opts;
  opts.max_batch_size = 64;
  opts.flush_deadline_ms = 3.0;
  opts.clock = &clock;
  BatchScheduler sched(opts);

  std::vector<std::future<Result<BatchResult>>> futs;
  for (int i = 0; i < 4; ++i) {
    futs.push_back(sched.SubmitFuture(
        /*fingerprint=*/5,
        []() -> Result<BatchResult> {
          return Status::IOError("model backend unreachable");
        },
        0.0));
  }
  clock.Advance(3.0);
  for (auto& f : futs) {
    Result<BatchResult> r = f.get();
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("model backend unreachable"),
              std::string::npos);
  }
  BatchStats st = sched.stats();
  EXPECT_EQ(st.failed, 1);  // one generation failed, four waiters informed
  EXPECT_EQ(st.coalesced, 3);
}

// --- exactly-once usage accounting through SimulatedLLM::Submit ---

TEST(BatchSchedulerTest, LlmSubmitChargesOncePerUniquePrompt) {
  common::ManualClock clock;
  BatchOptions opts;
  opts.max_batch_size = 64;
  opts.flush_deadline_ms = 2.0;
  opts.clock = &clock;
  BatchScheduler sched(opts);

  UsageMeter meter;
  SimulatedLLM llm(KathLargeSpec(), &meter);
  service::ResultCache cache;
  llm.set_result_cache(&cache);
  llm.set_batch_scheduler(&sched);

  std::atomic<int> gen_calls{0};
  auto generate = [&gen_calls] {
    gen_calls.fetch_add(1);
    return std::string("the completion");
  };

  // Six concurrent submissions of one prompt: one generation, one charge.
  std::vector<std::future<Result<std::string>>> futs(6);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < 6; ++i) {
      threads.emplace_back(
          [&, i] { futs[i] = llm.Submit("summarize the plot", generate); });
    }
    for (auto& t : threads) t.join();
  }
  clock.Advance(2.0);
  for (auto& f : futs) {
    Result<std::string> r = f.get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), "the completion");
  }
  EXPECT_EQ(gen_calls.load(), 1);
  EXPECT_EQ(meter.total_calls(), 1);
  int64_t tokens_after_first = meter.total_tokens();

  // A later identical prompt hits the completion cache: a ready future,
  // no new generation, no new charge.
  Result<std::string> again = llm.Submit("summarize the plot", generate).get();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), "the completion");
  EXPECT_EQ(gen_calls.load(), 1);
  EXPECT_EQ(meter.total_calls(), 1);
  EXPECT_EQ(meter.total_tokens(), tokens_after_first);
}

}  // namespace
}  // namespace kathdb::llm
