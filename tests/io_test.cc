// Unit tests for src/relational/io: CSV import/export with typed headers.

#include <gtest/gtest.h>

#include "relational/io.h"

namespace kathdb::rel {
namespace {

Table SampleTable() {
  Table t("movies", Schema({{"title", DataType::kString},
                            {"year", DataType::kInt},
                            {"score", DataType::kDouble},
                            {"boring", DataType::kBool}}));
  t.AppendRow({Value::Str("Guilty by Suspicion"), Value::Int(1991),
               Value::Double(0.999997), Value::Bool(true)});
  t.AppendRow({Value::Str("Comma, The \"Movie\""), Value::Int(1970),
               Value::Null(), Value::Bool(false)});
  t.AppendRow({Value::Str(""), Value::Null(), Value::Double(-1.5),
               Value::Bool(true)});
  return t;
}

TEST(CsvTest, RoundTripPreservesTypesAndNulls) {
  Table t = SampleTable();
  auto rt = TableFromCsv(TableToCsv(t), "movies");
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  const Table& r = rt.value();
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.schema().column(1).type, DataType::kInt);
  EXPECT_EQ(r.schema().column(2).type, DataType::kDouble);
  EXPECT_EQ(r.schema().column(3).type, DataType::kBool);
  EXPECT_EQ(r.at(0, 0).AsString(), "Guilty by Suspicion");
  EXPECT_EQ(r.at(0, 1).AsInt(), 1991);
  EXPECT_NEAR(r.at(0, 2).AsDouble(), 0.999997, 1e-9);
  EXPECT_TRUE(r.at(0, 3).AsBool());
  // Quoted field with comma and escaped quotes survives.
  EXPECT_EQ(r.at(1, 0).AsString(), "Comma, The \"Movie\"");
  // NULL (empty unquoted) vs empty string (quoted) are distinguished.
  EXPECT_TRUE(r.at(1, 2).is_null());
  EXPECT_FALSE(r.at(2, 0).is_null());
  EXPECT_EQ(r.at(2, 0).AsString(), "");
  EXPECT_TRUE(r.at(2, 1).is_null());
  EXPECT_NEAR(r.at(2, 2).AsDouble(), -1.5, 1e-9);
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/movies_io.csv";
  ASSERT_TRUE(SaveTableCsv(SampleTable(), path).ok());
  auto loaded = LoadTableCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().name(), "movies_io");  // from the file stem
  EXPECT_EQ(loaded.value().num_rows(), 3u);
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(LoadTableCsv("/nonexistent/x.csv").ok());
}

TEST(CsvTest, MalformedInputsRejected) {
  EXPECT_FALSE(TableFromCsv("", "t").ok());
  EXPECT_FALSE(TableFromCsv("a:INT\n\"unterminated\n", "t").ok());
  EXPECT_FALSE(TableFromCsv("a:INT,b:INT\n1\n", "t").ok());   // arity
  EXPECT_FALSE(TableFromCsv("a:WIDGET\n1\n", "t").ok());      // bad type
}

TEST(CsvTest, HeaderWithoutTypesDefaultsToString) {
  auto r = TableFromCsv("name,city\nann,oslo\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema().column(0).type, DataType::kString);
  EXPECT_EQ(r.value().at(0, 1).AsString(), "oslo");
}

TEST(CsvTest, CatalogRoundTrip) {
  Catalog catalog;
  catalog.Upsert(std::make_shared<Table>(SampleTable()));
  Table other("ratings", Schema({{"stars", DataType::kInt}}));
  other.AppendRow({Value::Int(5)});
  catalog.Upsert(std::make_shared<Table>(std::move(other)));

  std::string dir = ::testing::TempDir() + "/catalog_csv";
  ASSERT_TRUE(SaveCatalogCsv(catalog, dir).ok());

  Catalog loaded;
  ASSERT_TRUE(LoadCatalogCsv(&loaded, dir).ok());
  ASSERT_TRUE(loaded.Has("movies"));
  ASSERT_TRUE(loaded.Has("ratings"));
  EXPECT_EQ(loaded.Get("movies").value()->num_rows(), 3u);
  EXPECT_EQ(loaded.Get("ratings").value()->at(0, 0).AsInt(), 5);
}

TEST(CsvTest, CrlfLineEndingsAccepted) {
  auto r = TableFromCsv("a:INT\r\n7\r\n", "t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().at(0, 0).AsInt(), 7);
}

}  // namespace
}  // namespace kathdb::rel
