// Unit tests for src/fao: signatures, specs, registry, function templates.

#include <gtest/gtest.h>

#include "fao/function.h"
#include "fao/registry.h"
#include "fao/signature.h"
#include "lineage/lineage.h"
#include "multimodal/scene_graph.h"
#include "multimodal/text_graph.h"

namespace kathdb::fao {
namespace {

using rel::DataType;
using rel::Schema;
using rel::Table;
using rel::TablePtr;
using rel::Value;

// -------------------------------------------------------------- signature

TEST(SignatureTest, Figure3JsonLayout) {
  FunctionSignature sig;
  sig.name = "classify_boring";
  sig.description = "Analyze visual features of each film's poster...";
  sig.inputs = {"films_with_image_scene"};
  sig.output = "films_with_boring_flag";
  Json j = sig.ToJson();
  // Exact layout: nested name/description, sibling inputs/output.
  ASSERT_TRUE(j.Has("signature"));
  EXPECT_EQ(j.Get("signature").GetString("name"), "classify_boring");
  ASSERT_TRUE(j.Has("inputs"));
  EXPECT_EQ(j.Get("inputs").at(0).AsString(), "films_with_image_scene");
  EXPECT_EQ(j.GetString("output"), "films_with_boring_flag");

  auto parsed = FunctionSignature::FromJson(j);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name, sig.name);
  EXPECT_EQ(parsed.value().inputs, sig.inputs);
}

TEST(SignatureTest, FromJsonToleratesFlatLayout) {
  auto j = Json::Parse(R"({"name":"f","description":"d","output":"o"})");
  ASSERT_TRUE(j.ok());
  auto sig = FunctionSignature::FromJson(j.value());
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig.value().name, "f");
}

TEST(SignatureTest, FromJsonRejectsMissingName) {
  auto j = Json::Parse(R"({"description":"d"})");
  ASSERT_TRUE(j.ok());
  EXPECT_FALSE(FunctionSignature::FromJson(j.value()).ok());
}

TEST(LogicalPlanTest, JsonRoundTripAndFinalOutput) {
  LogicalPlan plan;
  FunctionSignature a;
  a.name = "select";
  a.inputs = {"movie_table"};
  a.output = "sel";
  FunctionSignature b;
  b.name = "rank";
  b.inputs = {"sel"};
  b.output = "ranked";
  plan.nodes = {a, b};
  EXPECT_EQ(plan.FinalOutput(), "ranked");
  EXPECT_EQ(plan.ProducerOf("sel")->name, "select");
  EXPECT_EQ(plan.ProducerOf("ghost"), nullptr);

  auto rt = LogicalPlan::FromJson(plan.ToJson());
  ASSERT_TRUE(rt.ok());
  ASSERT_EQ(rt.value().nodes.size(), 2u);
  EXPECT_EQ(rt.value().nodes[1].output, "ranked");
}

// ------------------------------------------------------------------- spec

TEST(SpecTest, JsonRoundTrip) {
  FunctionSpec spec;
  spec.name = "gen_excitement_score";
  spec.ver_id = 3;
  spec.template_id = "keyword_similarity_score";
  Json kw = Json::Array();
  kw.Append(Json::Str("gun"));
  spec.params.Set("keywords", std::move(kw));
  spec.dependency_pattern = "one_to_one";
  spec.source_text = "pseudo code";
  auto rt = FunctionSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt.value().ver_id, 3);
  EXPECT_EQ(rt.value().template_id, "keyword_similarity_score");
  EXPECT_EQ(rt.value().params.Get("keywords").at(0).AsString(), "gun");
}

TEST(SpecTest, FromJsonRejectsMissingTemplate) {
  auto j = Json::Parse(R"({"name":"f"})");
  ASSERT_TRUE(j.ok());
  EXPECT_FALSE(FunctionSpec::FromJson(j.value()).ok());
}

// --------------------------------------------------------------- registry

TEST(RegistryTest, VersionsAreMonotonePerFunction) {
  FunctionRegistry reg;
  FunctionSpec spec;
  spec.name = "f";
  spec.template_id = "sql";
  EXPECT_EQ(reg.RegisterNewVersion(spec), 1);
  EXPECT_EQ(reg.RegisterNewVersion(spec), 2);
  spec.name = "g";
  EXPECT_EQ(reg.RegisterNewVersion(spec), 1);
  EXPECT_EQ(reg.Latest("f").value().ver_id, 2);
  EXPECT_EQ(reg.Version("f", 1).value().ver_id, 1);
  EXPECT_FALSE(reg.Version("f", 9).ok());
  EXPECT_FALSE(reg.Latest("missing").ok());
  EXPECT_EQ(reg.VersionsOf("f").size(), 2u);
}

TEST(RegistryTest, EarlierVersionsLeftIntact) {
  FunctionRegistry reg;
  FunctionSpec v1;
  v1.name = "f";
  v1.template_id = "sql";
  v1.source_text = "original";
  reg.RegisterNewVersion(v1);
  FunctionSpec v2 = v1;
  v2.source_text = "patched";
  reg.RegisterNewVersion(v2);
  EXPECT_EQ(reg.Version("f", 1).value().source_text, "original");
  EXPECT_EQ(reg.Version("f", 2).value().source_text, "patched");
}

TEST(RegistryTest, DiskRoundTrip) {
  FunctionRegistry reg;
  FunctionSpec spec;
  spec.name = "classify_boring";
  spec.template_id = "classify_boring_stats";
  spec.params.Set("variance_threshold", Json::Double(0.055));
  reg.RegisterNewVersion(spec);
  reg.RegisterNewVersion(spec);

  std::string dir = ::testing::TempDir() + "/registry_rt";
  ASSERT_TRUE(reg.SaveToDir(dir).ok());
  FunctionRegistry loaded;
  ASSERT_TRUE(loaded.LoadFromDir(dir).ok());
  EXPECT_EQ(loaded.num_functions(), 1u);
  EXPECT_EQ(loaded.Latest("classify_boring").value().ver_id, 2);
  EXPECT_DOUBLE_EQ(loaded.Latest("classify_boring")
                       .value()
                       .params.GetDouble("variance_threshold"),
                   0.055);
}

TEST(RegistryTest, LoadFromMissingDirFails) {
  FunctionRegistry reg;
  EXPECT_FALSE(reg.LoadFromDir("/nonexistent/registry").ok());
}

TEST(RegistryTest, DiskRoundTripPreservesAllVersionsAndSpecs) {
  FunctionRegistry reg;

  FunctionSpec score;
  score.name = "gen_excitement_score";
  score.template_id = "keyword_similarity_score";
  score.dependency_pattern = "one_to_one";
  score.source_text = "score rows by keyword similarity";
  score.params.Set("threshold", Json::Double(0.6));
  reg.RegisterNewVersion(score);
  score.params.Set("threshold", Json::Double(0.7));
  score.source_text += " [critic fix: tightened threshold]";
  reg.RegisterNewVersion(score);
  reg.RegisterNewVersion(score);

  FunctionSpec combine;
  combine.name = "combine_scores";
  combine.template_id = "combine_scores";
  combine.dependency_pattern = "one_to_one";
  combine.params.Set("output_column", Json::Str("final_score"));
  reg.RegisterNewVersion(combine);

  std::string dir = ::testing::TempDir() + "/registry_full_rt";
  ASSERT_TRUE(reg.SaveToDir(dir).ok());
  FunctionRegistry loaded;
  ASSERT_TRUE(loaded.LoadFromDir(dir).ok());

  EXPECT_EQ(loaded.num_functions(), 2u);
  // Every version survives, oldest first, ver_ids intact.
  auto versions = loaded.VersionsOf("gen_excitement_score");
  ASSERT_EQ(versions.size(), 3u);
  for (size_t i = 0; i < versions.size(); ++i) {
    EXPECT_EQ(versions[i].ver_id, static_cast<int64_t>(i + 1));
    EXPECT_EQ(versions[i].template_id, "keyword_similarity_score");
    EXPECT_EQ(versions[i].dependency_pattern, "one_to_one");
  }
  // Spec payloads round-trip: params and source text per version.
  EXPECT_DOUBLE_EQ(versions[0].params.GetDouble("threshold"), 0.6);
  EXPECT_DOUBLE_EQ(versions[2].params.GetDouble("threshold"), 0.7);
  EXPECT_EQ(versions[0].source_text, "score rows by keyword similarity");
  EXPECT_NE(versions[2].source_text.find("critic fix"), std::string::npos);
  // Specific-version lookup still works after reload.
  EXPECT_TRUE(loaded.Version("gen_excitement_score", 2).ok());
  EXPECT_EQ(loaded.Latest("combine_scores")
                .value()
                .params.GetString("output_column"),
            "final_score");
  // Reloading is a full replacement: versions keep stamping monotonely.
  EXPECT_EQ(loaded.RegisterNewVersion(score), 4);
}

// ---------------------------------------------------- function templates

class FunctionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_.catalog = &catalog_;
    ctx_.lineage = &lineage_;
    ctx_.meter = &meter_;
    ctx_.image_loader = &loader_;
    ctx_.images = &images_;
  }

  TablePtr FilmsTable() {
    auto t = std::make_shared<Table>(
        "films", Schema({{"mid", DataType::kInt},
                         {"title", DataType::kString},
                         {"year", DataType::kInt},
                         {"did", DataType::kInt},
                         {"vid", DataType::kInt}}));
    t->AppendRow({Value::Int(1), Value::Str("Violent One"), Value::Int(1990),
                  Value::Int(11), Value::Int(21)}, 101);
    t->AppendRow({Value::Int(2), Value::Str("Calm One"), Value::Int(1960),
                  Value::Int(12), Value::Int(22)}, 102);
    return t;
  }

  void PopulateTextViews() {
    mm::SimulatedNer ner;
    mm::Document violent;
    violent.did = 11;
    violent.text = "A gun battle and a murder follow the chase through "
                   "the explosion.";
    ASSERT_TRUE(ner.PopulateFromDocument(violent, &catalog_, &lineage_).ok());
    mm::Document calm;
    calm.did = 12;
    calm.text = "A quiet garden, a gentle walk and tea in the meadow.";
    ASSERT_TRUE(ner.PopulateFromDocument(calm, &catalog_, &lineage_).ok());
  }

  void PopulateSceneViews(bool boring_21, bool boring_22) {
    mm::SimulatedVlm vlm;
    auto make_img = [](int64_t vid, bool boring) {
      mm::SyntheticImage img;
      img.uri = "file://p" + std::to_string(vid) + ".simg";
      img.color_variance = boring ? 0.01 : 0.2;
      img.objects.push_back({"person", 0, 0, 1, 1, {}});
      if (!boring) {
        img.objects.push_back({"gun", 0, 0, 0.2, 0.2, {}});
        img.objects.push_back({"motorcycle", 0, 0, 0.5, 0.5, {}});
      }
      return img;
    };
    mm::SyntheticImage i21 = make_img(21, boring_21);
    mm::SyntheticImage i22 = make_img(22, boring_22);
    images_.Put(21, i21);
    images_.Put(22, i22);
    ASSERT_TRUE(vlm.PopulateFromImage(21, i21, &catalog_, &lineage_).ok());
    ASSERT_TRUE(vlm.PopulateFromImage(22, i22, &catalog_, &lineage_).ok());
  }

  FunctionSpec KeywordSpec() {
    FunctionSpec spec;
    spec.name = "gen_excitement_score";
    spec.template_id = "keyword_similarity_score";
    Json kw = Json::Array();
    for (const char* k : {"gun", "murder", "chase"}) kw.Append(Json::Str(k));
    spec.params.Set("keywords", std::move(kw));
    spec.params.Set("output_column", Json::Str("excitement_score"));
    return spec;
  }

  rel::Catalog catalog_;
  lineage::LineageStore lineage_;
  llm::UsageMeter meter_;
  mm::ImageLoader loader_;
  ImageStore images_;
  fao::ExecContext ctx_;
};

TEST_F(FunctionFixture, UnknownTemplateRejected) {
  FunctionSpec spec;
  spec.name = "f";
  spec.template_id = "quantum_sort";
  EXPECT_FALSE(InstantiateFunction(spec).ok());
  EXPECT_FALSE(IsKnownTemplate("quantum_sort"));
  EXPECT_TRUE(IsKnownTemplate("sql"));
}

TEST_F(FunctionFixture, SqlTemplateRunsQuery) {
  ASSERT_TRUE(catalog_.Register(FilmsTable()).ok());
  FunctionSpec spec;
  spec.name = "select";
  spec.template_id = "sql";
  spec.params.Set("query",
                  Json::Str("SELECT title FROM films WHERE year > 1980"));
  auto fn = InstantiateFunction(spec);
  ASSERT_TRUE(fn.ok());
  auto out = fn.value()->Execute({}, &ctx_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out.value().num_rows(), 1u);
  EXPECT_EQ(out.value().at(0, 0).AsString(), "Violent One");
}

TEST_F(FunctionFixture, SqlTemplateMultiStepRegistersIntermediates) {
  ASSERT_TRUE(catalog_.Register(FilmsTable()).ok());
  FunctionSpec spec;
  spec.name = "two_step";
  spec.template_id = "sql";
  Json steps = Json::Array();
  Json s1 = Json::Object();
  s1.Set("query", Json::Str("SELECT mid, year FROM films WHERE year >= "
                            "1960"));
  s1.Set("as", Json::Str("tmp_recent"));
  steps.Append(s1);
  Json s2 = Json::Object();
  s2.Set("query", Json::Str("SELECT COUNT(*) AS n FROM tmp_recent"));
  steps.Append(s2);
  spec.params.Set("steps", std::move(steps));
  auto fn = InstantiateFunction(spec);
  ASSERT_TRUE(fn.ok());
  auto out = fn.value()->Execute({}, &ctx_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().at(0, 0).AsInt(), 2);
  EXPECT_TRUE(catalog_.Has("tmp_recent"));
}

TEST_F(FunctionFixture, SqlTemplateMissingQueryIsSyntacticError) {
  FunctionSpec spec;
  spec.name = "broken";
  spec.template_id = "sql";
  auto fn = InstantiateFunction(spec);
  ASSERT_TRUE(fn.ok());
  auto out = fn.value()->Execute({}, &ctx_);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsSyntacticError());
}

TEST_F(FunctionFixture, KeywordSimilarityDiscriminatesPlots) {
  PopulateTextViews();
  auto fn = InstantiateFunction(KeywordSpec());
  ASSERT_TRUE(fn.ok());
  auto out = fn.value()->Execute({FilmsTable()}, &ctx_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const Table& t = out.value();
  auto idx = t.schema().IndexOf("excitement_score");
  ASSERT_TRUE(idx.has_value());
  double violent = t.at(0, *idx).AsDouble();
  double calm = t.at(1, *idx).AsDouble();
  EXPECT_GT(violent, 0.8);
  EXPECT_LT(calm, 0.3);
  // Row lineage ids propagate through the function body.
  EXPECT_EQ(t.row_lid(0), 101);
}

TEST_F(FunctionFixture, KeywordSimilarityEmptyKeywordsFails) {
  FunctionSpec spec = KeywordSpec();
  spec.params.Set("keywords", Json::Array());
  auto fn = InstantiateFunction(spec);
  ASSERT_TRUE(fn.ok());
  auto out = fn.value()->Execute({FilmsTable()}, &ctx_);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsSyntacticError());
}

TEST_F(FunctionFixture, RecencyScoreDirections) {
  FunctionSpec spec;
  spec.name = "gen_recency_score";
  spec.template_id = "recency_score";
  spec.params.Set("min_year", Json::Double(1950));
  spec.params.Set("max_year", Json::Double(1990));
  auto fn = InstantiateFunction(spec);
  ASSERT_TRUE(fn.ok());
  auto out = fn.value()->Execute({FilmsTable()}, &ctx_);
  ASSERT_TRUE(out.ok());
  auto idx = out.value().schema().IndexOf("recency_score");
  EXPECT_DOUBLE_EQ(out.value().at(0, *idx).AsDouble(), 1.0);   // 1990
  EXPECT_DOUBLE_EQ(out.value().at(1, *idx).AsDouble(), 0.25);  // 1960

  // Reversed (buggy) direction: the critic's target.
  spec.params.Set("direction", Json::Double(-1.0));
  auto buggy = InstantiateFunction(spec).value()->Execute({FilmsTable()},
                                                          &ctx_);
  ASSERT_TRUE(buggy.ok());
  EXPECT_DOUBLE_EQ(buggy.value().at(0, *idx).AsDouble(), 0.0);
}

TEST_F(FunctionFixture, CombineScoresWeightedSum) {
  auto t = std::make_shared<Table>(
      "scored", Schema({{"a_score", DataType::kDouble},
                        {"b_score", DataType::kDouble}}));
  t->AppendRow({Value::Double(1.0), Value::Double(0.5)});
  FunctionSpec spec;
  spec.name = "combine_scores";
  spec.template_id = "combine_scores";
  Json terms = Json::Array();
  Json t1 = Json::Object();
  t1.Set("column", Json::Str("a_score"));
  t1.Set("weight", Json::Double(0.7));
  terms.Append(t1);
  Json t2 = Json::Object();
  t2.Set("column", Json::Str("b_score"));
  t2.Set("weight", Json::Double(0.3));
  terms.Append(t2);
  spec.params.Set("terms", std::move(terms));
  auto out = InstantiateFunction(spec).value()->Execute({t}, &ctx_);
  ASSERT_TRUE(out.ok());
  auto idx = out.value().schema().IndexOf("final_score");
  EXPECT_NEAR(out.value().at(0, *idx).AsDouble(), 0.85, 1e-9);
}

TEST_F(FunctionFixture, CombineScoresUnknownColumnFails) {
  auto t = std::make_shared<Table>("scored",
                                   Schema({{"x", DataType::kDouble}}));
  t->AppendRow({Value::Double(1.0)});
  FunctionSpec spec;
  spec.name = "combine_scores";
  spec.template_id = "combine_scores";
  Json terms = Json::Array();
  Json t1 = Json::Object();
  t1.Set("column", Json::Str("ghost_score"));
  terms.Append(t1);
  spec.params.Set("terms", std::move(terms));
  auto out = InstantiateFunction(spec).value()->Execute({t}, &ctx_);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsSyntacticError());
}

TEST_F(FunctionFixture, ClassifyBoringStatsUsesSceneGraph) {
  PopulateSceneViews(/*boring_21=*/true, /*boring_22=*/false);
  FunctionSpec spec;
  spec.name = "classify_boring";
  spec.template_id = "classify_boring_stats";
  spec.params.Set("output_column", Json::Str("boring_poster"));
  auto out = InstantiateFunction(spec).value()->Execute({FilmsTable()},
                                                        &ctx_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto idx = out.value().schema().IndexOf("boring_poster");
  EXPECT_TRUE(out.value().at(0, *idx).AsBool());   // vid 21 plain
  EXPECT_FALSE(out.value().at(1, *idx).AsBool());  // vid 22 action
}

TEST_F(FunctionFixture, ClassifyBoringPixelsChargesVisionTokens) {
  PopulateSceneViews(true, false);
  FunctionSpec spec;
  spec.name = "classify_boring";
  spec.template_id = "classify_boring_pixels";
  spec.params.Set("output_column", Json::Str("boring_poster"));
  auto out = InstantiateFunction(spec).value()->Execute({FilmsTable()},
                                                        &ctx_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(meter_.tokens_for("kath-vision"), 0);
  auto idx = out.value().schema().IndexOf("boring_poster");
  EXPECT_TRUE(out.value().at(0, *idx).AsBool());
  EXPECT_FALSE(out.value().at(1, *idx).AsBool());
}

TEST_F(FunctionFixture, ClassifyBoringPixelsHeicFailsSyntactically) {
  PopulateSceneViews(true, false);
  // Replace vid 21's stored image with an HEIC-format raw.
  mm::SyntheticImage heic;
  heic.uri = "file://p21.heic";
  heic.format = "heic";
  heic.color_variance = 0.01;
  images_.Put(21, heic);
  FunctionSpec spec;
  spec.name = "classify_boring";
  spec.template_id = "classify_boring_pixels";
  auto out = InstantiateFunction(spec).value()->Execute({FilmsTable()},
                                                        &ctx_);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsSyntacticError());
  EXPECT_NE(out.status().message().find("heic"), std::string::npos);
  // After enabling conversion (the monitor's patch) it succeeds.
  loader_.EnableHeicConversion();
  auto retry = InstantiateFunction(spec).value()->Execute({FilmsTable()},
                                                          &ctx_);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(FunctionFixture, CascadeEscalatesOnlyUncertainRows) {
  PopulateSceneViews(true, false);  // variances 0.01 and 0.2: both certain
  FunctionSpec spec;
  spec.name = "classify_boring";
  spec.template_id = "classify_boring_cascade";
  spec.params.Set("margin", Json::Double(0.005));
  int64_t before = meter_.tokens_for("kath-vision");
  auto out = InstantiateFunction(spec).value()->Execute({FilmsTable()},
                                                        &ctx_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // No escalation: no vision tokens.
  EXPECT_EQ(meter_.tokens_for("kath-vision"), before);
}

TEST_F(FunctionFixture, FusedScoresMatchesUnfusedPipeline) {
  PopulateTextViews();
  FunctionSpec spec;
  spec.name = "gen_scores_fused";
  spec.template_id = "fused_scores";
  Json ex = Json::Object();
  Json kw = Json::Array();
  for (const char* k : {"gun", "murder", "chase"}) kw.Append(Json::Str(k));
  ex.Set("keywords", std::move(kw));
  Json re = Json::Object();
  re.Set("min_year", Json::Double(1950));
  re.Set("max_year", Json::Double(1990));
  Json co = Json::Object();
  co.Set("excitement_weight", Json::Double(0.7));
  co.Set("recency_weight", Json::Double(0.3));
  spec.params.Set("excitement", std::move(ex));
  spec.params.Set("recency", std::move(re));
  spec.params.Set("combine", std::move(co));
  auto out = InstantiateFunction(spec).value()->Execute({FilmsTable()},
                                                        &ctx_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const Table& t = out.value();
  ASSERT_TRUE(t.schema().HasColumn("final_score"));
  auto e = t.schema().IndexOf("excitement_score");
  auto r = t.schema().IndexOf("recency_score");
  auto f = t.schema().IndexOf("final_score");
  EXPECT_NEAR(t.at(0, *f).AsDouble(),
              0.7 * t.at(0, *e).AsDouble() + 0.3 * t.at(0, *r).AsDouble(),
              1e-9);
}

TEST_F(FunctionFixture, WrongInputArityIsSyntacticError) {
  auto fn = InstantiateFunction(KeywordSpec());
  ASSERT_TRUE(fn.ok());
  auto out = fn.value()->Execute({}, &ctx_);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsSyntacticError());
}

}  // namespace
}  // namespace kathdb::fao
