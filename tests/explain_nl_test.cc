// Tests for the NL explanation question dispatcher: comparative and
// operator questions (Section 5: "how a particular tuple was derived or
// why an operator behaved as it did").

#include <gtest/gtest.h>

#include "data/movie_dataset.h"
#include "engine/kathdb.h"

namespace kathdb::engine {
namespace {

class ExplainNl : public ::testing::Test {
 protected:
  void SetUp() override {
    data::DatasetOptions opts;
    opts.num_movies = 16;
    auto ds = data::GenerateMovieDataset(opts);
    ASSERT_TRUE(ds.ok());
    db_ = std::make_unique<KathDB>();
    ASSERT_TRUE(data::IngestDataset(ds.value(), db_.get()).ok());
    llm::ScriptedUser user({"uncommon scenes", "prefer recent", "OK"});
    auto outcome = db_->Query(
        "Sort the given films in the table by how exciting they are, but "
        "the poster should be 'boring'",
        &user);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    result_ = outcome->result;
  }

  std::unique_ptr<KathDB> db_;
  rel::Table result_;
};

TEST_F(ExplainNl, ComparativeQuestionContrastsScores) {
  ASSERT_GE(result_.num_rows(), 2u);
  int64_t a = result_.row_lid(0);
  int64_t b = result_.row_lid(1);
  auto text = db_->AskExplanation("Why is tuple " + std::to_string(a) +
                                  " ranked above tuple " +
                                  std::to_string(b) + "?");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("Guilty by Suspicion"), std::string::npos);
  EXPECT_NE(text.value().find("Clean and Sober"), std::string::npos);
  EXPECT_NE(text.value().find("final_score"), std::string::npos);
  EXPECT_NE(text.value().find("advantage Guilty by Suspicion"),
            std::string::npos);
}

TEST_F(ExplainNl, ComparisonWithUnknownLidFails) {
  auto text = db_->AskExplanation("why is tuple 999999 above tuple 1?");
  EXPECT_FALSE(text.ok());
}

TEST_F(ExplainNl, OperatorQuestionShowsBodyAndRows) {
  auto text = db_->AskExplanation("Why did filter_boring remove films?");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("Operator filter_boring"), std::string::npos);
  EXPECT_NE(text.value().find("implementation: sql"), std::string::npos);
  EXPECT_NE(text.value().find("output rows"), std::string::npos);
}

TEST_F(ExplainNl, OperatorQuestionWithVersionHistory) {
  // Trigger a repair so the operator accumulates versions, then ask.
  data::DatasetOptions opts;
  opts.num_movies = 12;
  opts.heic_fraction = 0.5;
  KathDBOptions db_opts;
  db_opts.optimizer.boring_impl = "pixels";
  auto ds = data::GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  KathDB db(db_opts);
  ASSERT_TRUE(data::IngestDataset(ds.value(), &db).ok());
  llm::ScriptedUser user({"uncommon scenes", "recent", "OK"});
  ASSERT_TRUE(db.Query("Sort the given films in the table by how exciting "
                       "they are, but the poster should be 'boring'",
                       &user)
                  .ok());
  auto text = db.AskExplanation("explain the classify_boring operator");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("version history"), std::string::npos);
  EXPECT_NE(text.value().find("automatic repair"), std::string::npos);
}

TEST_F(ExplainNl, SingleTupleStillRoutesToFineGrained) {
  int64_t lid = result_.row_lid(0);
  auto text = db_->AskExplanation("explain row " + std::to_string(lid));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.value().find("derivation"), std::string::npos);
}

TEST_F(ExplainNl, UnknownQuestionRejected) {
  EXPECT_FALSE(db_->AskExplanation("make me a sandwich").ok());
}

}  // namespace
}  // namespace kathdb::engine
