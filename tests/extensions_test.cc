// Tests for the extension features: function version rollback (§4 "safe
// roll-backs"), the cached keyword-similarity physical alternative, and a
// differential property test of the SQL engine against a reference
// evaluator.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/movie_dataset.h"
#include "engine/kathdb.h"
#include "fao/function.h"
#include "fao/registry.h"
#include "sql/engine.h"

namespace kathdb {
namespace {

// ---------------------------------------------------------------- rollback

TEST(RollbackTest, RestoresOldBodyAsNewVersion) {
  fao::FunctionRegistry reg;
  fao::FunctionSpec v1;
  v1.name = "classify_boring";
  v1.template_id = "classify_boring_stats";
  v1.source_text = "original heuristic";
  reg.RegisterNewVersion(v1);
  fao::FunctionSpec v2 = v1;
  v2.template_id = "classify_boring_pixels";
  v2.source_text = "pixel rewrite";
  reg.RegisterNewVersion(v2);

  auto v3 = reg.RollbackTo("classify_boring", 1);
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  EXPECT_EQ(v3.value(), 3);
  // The latest version carries version-1's body; history is intact.
  auto latest = reg.Latest("classify_boring").value();
  EXPECT_EQ(latest.template_id, "classify_boring_stats");
  EXPECT_NE(latest.source_text.find("rolled back from v1"),
            std::string::npos);
  EXPECT_EQ(reg.Version("classify_boring", 2).value().template_id,
            "classify_boring_pixels");
}

TEST(RollbackTest, UnknownTargetsFail) {
  fao::FunctionRegistry reg;
  EXPECT_FALSE(reg.RollbackTo("ghost", 1).ok());
  fao::FunctionSpec v1;
  v1.name = "f";
  v1.template_id = "sql";
  reg.RegisterNewVersion(v1);
  EXPECT_FALSE(reg.RollbackTo("f", 7).ok());
}

TEST(RollbackTest, RepairedFunctionCanBeRolledBack) {
  // After an HEIC repair bumps classify_boring to v2, the user can roll
  // back to v1 (e.g. if they reject the patch), yielding v3 == v1's body.
  data::DatasetOptions opts;
  opts.num_movies = 12;
  opts.heic_fraction = 0.5;
  engine::KathDBOptions db_opts;
  db_opts.optimizer.boring_impl = "pixels";
  auto ds = data::GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  engine::KathDB db(db_opts);
  ASSERT_TRUE(data::IngestDataset(ds.value(), &db).ok());
  llm::ScriptedUser user({"uncommon scenes", "recent please", "OK"});
  auto outcome = db.Query(
      "Sort the given films in the table by how exciting they are, but "
      "the poster should be 'boring'",
      &user);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GE(db.registry()->VersionsOf("classify_boring").size(), 2u);
  auto rolled = db.registry()->RollbackTo("classify_boring", 1);
  ASSERT_TRUE(rolled.ok());
  auto latest = db.registry()->Latest("classify_boring").value();
  EXPECT_FALSE(latest.params.GetBool("heic_conversion"));
}

// -------------------------------------------- cached keyword similarity

class CachedSimilarityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::DatasetOptions opts;
    opts.num_movies = 20;
    auto ds = data::GenerateMovieDataset(opts);
    ASSERT_TRUE(ds.ok());
    db_ = std::make_unique<engine::KathDB>();
    ASSERT_TRUE(data::IngestDataset(ds.value(), db_.get()).ok());
    ctx_ = db_->MakeContext();
  }

  fao::FunctionSpec Spec(const std::string& tmpl) {
    fao::FunctionSpec spec;
    spec.name = "gen_score";
    spec.template_id = tmpl;
    Json kw = Json::Array();
    for (const char* k : {"gun", "murder", "chase", "explosion"}) {
      kw.Append(Json::Str(k));
    }
    spec.params.Set("keywords", std::move(kw));
    spec.params.Set("output_column", Json::Str("score"));
    return spec;
  }

  std::unique_ptr<engine::KathDB> db_;
  fao::ExecContext ctx_;
};

TEST_F(CachedSimilarityTest, CachedMatchesPlainExactly) {
  auto base = db_->catalog()->Get("movie_table").value();
  auto plain_fn =
      fao::InstantiateFunction(Spec("keyword_similarity_score")).value();
  auto cached_fn =
      fao::InstantiateFunction(Spec("keyword_similarity_cached")).value();
  auto plain = plain_fn->Execute({base}, &ctx_);
  auto cached = cached_fn->Execute({base}, &ctx_);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(cached.ok());
  ASSERT_EQ(plain->num_rows(), cached->num_rows());
  auto pidx = *plain->schema().IndexOf("score");
  auto cidx = *cached->schema().IndexOf("score");
  for (size_t r = 0; r < plain->num_rows(); ++r) {
    EXPECT_NEAR(plain->at(r, pidx).AsDouble(),
                cached->at(r, cidx).AsDouble(), 1e-9)
        << "row " << r;
  }
}

TEST_F(CachedSimilarityTest, OptimizerConsidersBothSimilarityImpls) {
  llm::ScriptedUser user({"uncommon scenes", "recent", "OK"});
  auto outcome = db_->Query(
      "Sort the given films in the table by how exciting they are, but "
      "the poster should be 'boring'",
      &user);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // The chosen spec is one of the two equivalent implementations, and the
  // result is correct either way.
  for (const auto& n : outcome->physical_plan.nodes) {
    if (n.sig.name == "gen_exciting_score") {
      EXPECT_TRUE(n.spec.template_id == "keyword_similarity_score" ||
                  n.spec.template_id == "keyword_similarity_cached");
    }
  }
  auto tidx = outcome->result.schema().IndexOf("title");
  ASSERT_TRUE(tidx.has_value());
  EXPECT_EQ(outcome->result.at(0, *tidx).AsString(), "Guilty by Suspicion");
}

// --------------------------------------- SQL differential property test

/// Reference evaluator: manual scan-and-filter over the table, compared
/// against the SQL engine for randomly generated predicates.
class SqlDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlDifferential, FilterCountMatchesReferenceEvaluator) {
  Rng rng(GetParam());
  rel::Catalog catalog;
  auto t = std::make_shared<rel::Table>(
      "data", rel::Schema({{"a", rel::DataType::kInt},
                           {"b", rel::DataType::kInt},
                           {"c", rel::DataType::kDouble}}));
  for (int i = 0; i < 200; ++i) {
    t->AppendRow({rel::Value::Int(rng.NextInt(-20, 20)),
                  rel::Value::Int(rng.NextInt(0, 9)),
                  rel::Value::Double(rng.NextDouble() * 10 - 5)});
  }
  ASSERT_TRUE(catalog.Register(t).ok());
  sql::SqlEngine engine(&catalog);

  for (int trial = 0; trial < 20; ++trial) {
    int64_t x = rng.NextInt(-20, 20);
    int64_t y = rng.NextInt(0, 9);
    double z = rng.NextDouble() * 10 - 5;
    const char* ops[] = {"<", "<=", ">", ">=", "=", "<>"};
    std::string op1 = ops[rng.NextInt(0, 5)];
    std::string op2 = ops[rng.NextInt(0, 5)];
    bool use_or = rng.NextBool(0.5);
    std::string sql = "SELECT COUNT(*) AS n FROM data WHERE (a " + op1 +
                      " " + std::to_string(x) + " " +
                      (use_or ? "OR" : "AND") + " b " + op2 + " " +
                      std::to_string(y) + ") AND c < " +
                      std::to_string(z);
    auto result = engine.Execute(sql);
    ASSERT_TRUE(result.ok()) << sql << ": " << result.status().ToString();

    auto cmp = [](const std::string& op, double lhs, double rhs) {
      if (op == "<") return lhs < rhs;
      if (op == "<=") return lhs <= rhs;
      if (op == ">") return lhs > rhs;
      if (op == ">=") return lhs >= rhs;
      if (op == "=") return lhs == rhs;
      return lhs != rhs;
    };
    int64_t expected = 0;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      double a = t->at(r, 0).AsDouble();
      double b = t->at(r, 1).AsDouble();
      double c = t->at(r, 2).AsDouble();
      bool left = use_or ? (cmp(op1, a, x) || cmp(op2, b, y))
                         : (cmp(op1, a, x) && cmp(op2, b, y));
      if (left && c < z) ++expected;
    }
    EXPECT_EQ(result.value().at(0, 0).AsInt(), expected) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// Differential: GROUP BY aggregate vs manual accumulation.
class GroupByDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupByDifferential, SumPerGroupMatchesReference) {
  Rng rng(GetParam() * 31);
  rel::Catalog catalog;
  auto t = std::make_shared<rel::Table>(
      "data", rel::Schema({{"g", rel::DataType::kInt},
                           {"v", rel::DataType::kDouble}}));
  std::map<int64_t, double> expected_sum;
  std::map<int64_t, int64_t> expected_count;
  for (int i = 0; i < 300; ++i) {
    int64_t g = rng.NextInt(0, 6);
    double v = rng.NextDouble() * 100;
    t->AppendRow({rel::Value::Int(g), rel::Value::Double(v)});
    expected_sum[g] += v;
    ++expected_count[g];
  }
  ASSERT_TRUE(catalog.Register(t).ok());
  sql::SqlEngine engine(&catalog);
  auto result = engine.Execute(
      "SELECT g, COUNT(*) AS n, SUM(v) AS total FROM data GROUP BY g "
      "ORDER BY g");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().num_rows(), expected_sum.size());
  for (size_t r = 0; r < result.value().num_rows(); ++r) {
    int64_t g = result.value().at(r, 0).AsInt();
    EXPECT_EQ(result.value().at(r, 1).AsInt(), expected_count[g]);
    EXPECT_NEAR(result.value().at(r, 2).AsDouble(), expected_sum[g], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupByDifferential,
                         ::testing::Values(11u, 12u, 13u, 14u));

}  // namespace
}  // namespace kathdb
