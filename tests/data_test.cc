// Unit tests for src/data: the synthetic MMQA-like movie corpus.

#include <gtest/gtest.h>

#include "data/movie_dataset.h"

namespace kathdb::data {
namespace {

TEST(DatasetTest, DeterministicForSameSeed) {
  DatasetOptions opts;
  opts.num_movies = 20;
  auto a = GenerateMovieDataset(opts);
  auto b = GenerateMovieDataset(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->movie_table->num_rows(), b->movie_table->num_rows());
  for (size_t r = 0; r < a->movie_table->num_rows(); ++r) {
    EXPECT_EQ(a->movie_table->at(r, 1).AsString(),
              b->movie_table->at(r, 1).AsString());
  }
  EXPECT_EQ(a->plots[5].text, b->plots[5].text);
}

TEST(DatasetTest, DifferentSeedsDiffer) {
  DatasetOptions a_opts;
  a_opts.num_movies = 20;
  a_opts.seed = 1;
  DatasetOptions b_opts = a_opts;
  b_opts.seed = 2;
  auto a = GenerateMovieDataset(a_opts);
  auto b = GenerateMovieDataset(b_opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  int diff = 0;
  for (size_t r = 2; r < 20; ++r) {  // skip anchors
    if (a->movie_table->at(r, 1).AsString() !=
        b->movie_table->at(r, 1).AsString()) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 5);
}

TEST(DatasetTest, AnchorsPresentAndMostRecent) {
  DatasetOptions opts;
  opts.num_movies = 30;
  auto ds = GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  const rel::Table& t = *ds->movie_table;
  EXPECT_EQ(t.at(0, 1).AsString(), "Guilty by Suspicion");
  EXPECT_EQ(t.at(0, 2).AsInt(), 1991);
  EXPECT_EQ(t.at(1, 1).AsString(), "Clean and Sober");
  EXPECT_EQ(t.at(1, 2).AsInt(), 1988);
  // 1991 is the corpus maximum so the anchor's recency score is 1.0.
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_LE(t.at(r, 2).AsInt(), 1991);
  }
}

TEST(DatasetTest, TruthLabelsConsistentWithConstruction) {
  DatasetOptions opts;
  opts.num_movies = 40;
  auto ds = GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  // Anchors: exciting + boring.
  const MovieTruth* gbs = ds->TruthOf(1);
  ASSERT_NE(gbs, nullptr);
  EXPECT_TRUE(gbs->exciting_plot);
  EXPECT_TRUE(gbs->boring_poster);
  // Non-anchor movies never combine exciting plot with boring poster
  // (keeps the anchors as the unique Figure-6 top-2).
  for (const auto& truth : ds->truth) {
    if (truth.mid <= 2) continue;
    EXPECT_FALSE(truth.exciting_plot && truth.boring_poster);
  }
  EXPECT_EQ(ds->TruthOf(999), nullptr);
}

TEST(DatasetTest, PosterStatsMatchTruth) {
  DatasetOptions opts;
  opts.num_movies = 40;
  auto ds = GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  for (const auto& truth : ds->truth) {
    // Resolve the movie's vid.
    int64_t vid = 0;
    for (size_t r = 0; r < ds->movie_table->num_rows(); ++r) {
      if (ds->movie_table->at(r, 0).AsInt() == truth.mid) {
        vid = ds->movie_table->at(r, 4).AsInt();
      }
    }
    auto it = ds->posters.find(vid);
    if (it == ds->posters.end()) continue;  // shared poster
    if (truth.boring_poster) {
      EXPECT_LT(it->second.color_variance, 0.055);
    } else {
      EXPECT_GT(it->second.color_variance, 0.055);
    }
  }
}

TEST(DatasetTest, HeicFractionProducesHeicPosters) {
  DatasetOptions opts;
  opts.num_movies = 40;
  opts.heic_fraction = 0.5;
  auto ds = GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  int heic = 0;
  for (const auto& [vid, poster] : ds->posters) {
    if (poster.format == "heic") ++heic;
  }
  EXPECT_GT(heic, 5);
  EXPECT_LT(heic, 35);
}

TEST(DatasetTest, DuplicatePostersShareVids) {
  DatasetOptions opts;
  opts.num_movies = 40;
  opts.duplicate_poster_fraction = 0.5;
  auto ds = GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  std::map<int64_t, int> vid_counts;
  for (size_t r = 0; r < ds->movie_table->num_rows(); ++r) {
    ++vid_counts[ds->movie_table->at(r, 4).AsInt()];
  }
  int shared = 0;
  for (const auto& [vid, count] : vid_counts) {
    if (count > 1) ++shared;
  }
  EXPECT_GT(shared, 0);
}

TEST(DatasetTest, TooSmallRejected) {
  DatasetOptions opts;
  opts.num_movies = 1;
  EXPECT_FALSE(GenerateMovieDataset(opts).ok());
}

TEST(DatasetTest, NoAnchorsOption) {
  DatasetOptions opts;
  opts.num_movies = 10;
  opts.include_anchors = false;
  auto ds = GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->movie_table->num_rows(), 10u);
  for (size_t r = 0; r < ds->movie_table->num_rows(); ++r) {
    EXPECT_NE(ds->movie_table->at(r, 1).AsString(), "Guilty by Suspicion");
  }
}

// Sweep: corpus size scales cleanly.
class DatasetSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(DatasetSizeSweep, AllModalitiesAligned) {
  DatasetOptions opts;
  opts.num_movies = GetParam();
  opts.duplicate_poster_fraction = 0.0;
  auto ds = GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  size_t n = static_cast<size_t>(GetParam());
  EXPECT_EQ(ds->movie_table->num_rows(), n);
  EXPECT_EQ(ds->plots.size(), n);
  EXPECT_EQ(ds->posters.size(), n);  // unique posters
  EXPECT_EQ(ds->truth.size(), n);
  // Every movie's did/vid resolve to a plot and poster.
  for (size_t r = 0; r < n; ++r) {
    int64_t did = ds->movie_table->at(r, 3).AsInt();
    int64_t vid = ds->movie_table->at(r, 4).AsInt();
    bool has_plot = false;
    for (const auto& p : ds->plots) has_plot |= (p.did == did);
    EXPECT_TRUE(has_plot);
    EXPECT_TRUE(ds->posters.count(vid) > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DatasetSizeSweep,
                         ::testing::Values(2, 5, 25, 100, 400));

}  // namespace
}  // namespace kathdb::data
