/// \file agg_sort_test.cc
/// \brief Differential tests: the columnar aggregate/sort kernels against
/// the retained row-at-a-time reference implementations.
///
/// Every case runs the SAME logical plan four ways — {row kernel,
/// columnar kernel} x {MaterializeRows, Materialize} — and requires all
/// four tables to be byte-identical: schema, cells with their exact
/// types, lineage ids, fingerprints. The shapes sweep key/input types
/// (int, double, dictionary string, bool, type-mixed), NULLs in keys and
/// aggregate inputs, hash-collision-prone multi-key groupings, global
/// aggregates over empty and non-empty inputs, multi-chunk inputs (past
/// kChunkRows), zero-copy view inputs, NaN sort keys and stable-sort
/// ties. Error paths must match too, message for message.

#include "relational/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "relational/table.h"

namespace kathdb::rel {
namespace {

void ExpectIdentical(const Table& a, const Table& b, const char* label) {
  ASSERT_TRUE(a.schema() == b.schema())
      << label << ": " << a.schema().ToString() << " vs "
      << b.schema().ToString();
  ASSERT_EQ(a.num_rows(), b.num_rows()) << label;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint()) << label;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.row_lid(r), b.row_lid(r)) << label << " row " << r;
    for (size_t c = 0; c < a.schema().num_columns(); ++c) {
      EXPECT_EQ(a.at(r, c).type(), b.at(r, c).type())
          << label << " row " << r << " col " << c;
      EXPECT_EQ(a.at(r, c), b.at(r, c))
          << label << " row " << r << " col " << c;
    }
  }
}

using PlanFn = std::function<OperatorPtr(TablePtr, ExecImpl)>;

/// Runs `make` four ways and requires one identical answer.
void ExpectFourWayIdentical(const TablePtr& input, const PlanFn& make) {
  auto run = [&](ExecImpl impl, bool chunked) {
    auto op = make(input, impl);
    auto r = chunked ? Materialize(op.get(), "out")
                     : MaterializeRows(op.get(), "out");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(*r) : Table();
  };
  Table row_rows = run(ExecImpl::kRow, false);
  Table row_chunked = run(ExecImpl::kRow, true);
  Table col_rows = run(ExecImpl::kColumnar, false);
  Table col_chunked = run(ExecImpl::kColumnar, true);
  ExpectIdentical(row_rows, row_chunked, "row kernel rows-vs-chunked");
  ExpectIdentical(row_rows, col_rows, "row-vs-columnar (row pull)");
  ExpectIdentical(row_rows, col_chunked, "row-vs-columnar (chunked pull)");
}

PlanFn AggPlan(std::vector<std::string> groups, std::vector<AggSpec> aggs) {
  return [groups = std::move(groups), aggs = std::move(aggs)](
             TablePtr t, ExecImpl impl) {
    return MakeAggregate(MakeSeqScan(std::move(t)), groups, aggs, impl);
  };
}

PlanFn SortPlan(std::vector<SortKey> keys) {
  return [keys = std::move(keys)](TablePtr t, ExecImpl impl) {
    return MakeSort(MakeSeqScan(std::move(t)), keys, impl);
  };
}

/// Deterministic table with every column flavor; rows % kChunkRows != 0
/// so the last chunk is ragged. NULLs land in keys and measures alike.
TablePtr MakeWideTable(size_t rows) {
  Schema schema;
  schema.AddColumn("k_int", DataType::kInt);
  schema.AddColumn("k_str", DataType::kString);
  schema.AddColumn("k_bool", DataType::kBool);
  schema.AddColumn("v_int", DataType::kInt);
  schema.AddColumn("v_dbl", DataType::kDouble);
  schema.AddColumn("v_str", DataType::kString);
  auto t = std::make_shared<Table>("wide", schema);
  static const char* kCats[] = {"alpha", "beta", "gamma", ""};
  uint64_t s = 0x9E3779B97F4A7C15ULL;
  for (size_t i = 0; i < rows; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    Row row;
    row.push_back(s % 11 == 0 ? Value::Null()
                              : Value::Int(static_cast<int64_t>(s % 7)));
    row.push_back(s % 13 == 0 ? Value::Null() : Value::Str(kCats[s % 4]));
    row.push_back(s % 17 == 0 ? Value::Null() : Value::Bool((s & 2) != 0));
    row.push_back(s % 5 == 0
                      ? Value::Null()
                      : Value::Int(static_cast<int64_t>(s % 1000) - 500));
    row.push_back(s % 6 == 0 ? Value::Null()
                             : Value::Double(static_cast<double>(s % 997) /
                                             31.0));
    row.push_back(s % 7 == 0 ? Value::Null()
                             : Value::Str("s" + std::to_string(s % 29)));
    t->AppendRow(std::move(row), static_cast<int64_t>(i + 1));
  }
  return t;
}

std::vector<AggSpec> AllAggs(const std::string& col) {
  return {{AggFn::kCount, "", "n"},
          {AggFn::kSum, col, "sum"},
          {AggFn::kAvg, col, "avg"},
          {AggFn::kMin, col, "min"},
          {AggFn::kMax, col, "max"}};
}

// ---------------------------------------------------------------------------
// Aggregate differentials

TEST(AggDifferential, IntKeyAllAggsOverDouble) {
  ExpectFourWayIdentical(MakeWideTable(999), AggPlan({"k_int"},
                                                     AllAggs("v_dbl")));
}

TEST(AggDifferential, DictKeyAllAggsOverInt) {
  ExpectFourWayIdentical(MakeWideTable(999), AggPlan({"k_str"},
                                                     AllAggs("v_int")));
}

TEST(AggDifferential, BoolKeyAllAggsOverString) {
  // SUM/AVG over strings reproduce the row semantics (strings coerce to
  // 0.0); MIN/MAX compare lexicographically.
  ExpectFourWayIdentical(MakeWideTable(999), AggPlan({"k_bool"},
                                                     AllAggs("v_str")));
}

TEST(AggDifferential, MultiKeyGrouping) {
  ExpectFourWayIdentical(
      MakeWideTable(999),
      AggPlan({"k_str", "k_int", "k_bool"}, AllAggs("v_dbl")));
}

TEST(AggDifferential, GlobalAggregateNoKeys) {
  ExpectFourWayIdentical(MakeWideTable(500), AggPlan({}, AllAggs("v_dbl")));
}

TEST(AggDifferential, GlobalAggregateOverEmptyInputYieldsOneRow) {
  auto empty = MakeWideTable(0);
  ExpectFourWayIdentical(empty, AggPlan({}, AllAggs("v_int")));
  auto op = MakeAggregate(MakeSeqScan(empty), {}, AllAggs("v_int"));
  auto r = Materialize(op.get(), "out");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->at(0, 0), Value::Int(0));   // COUNT
  EXPECT_TRUE(r->at(0, 2).is_null());      // AVG of nothing
}

TEST(AggDifferential, GroupedAggregateOverEmptyInputYieldsNoRows) {
  ExpectFourWayIdentical(MakeWideTable(0),
                         AggPlan({"k_int"}, AllAggs("v_dbl")));
}

TEST(AggDifferential, MultiChunkInput) {
  // > 2 chunks of kChunkRows with a ragged tail.
  ExpectFourWayIdentical(MakeWideTable(2 * kChunkRows + 777),
                         AggPlan({"k_str", "k_int"}, AllAggs("v_dbl")));
}

TEST(AggDifferential, ViewInputSharesParentBuffers) {
  auto full = MakeWideTable(2000);
  auto view = std::make_shared<Table>(full->Slice(311, 1777));
  ASSERT_TRUE(view->is_view());
  ExpectFourWayIdentical(view, AggPlan({"k_str"}, AllAggs("v_int")));
}

TEST(AggDifferential, MixedEncodingColumn) {
  Schema schema;
  schema.AddColumn("k", DataType::kString);
  schema.AddColumn("v", DataType::kString);
  auto t = std::make_shared<Table>("mixed", schema);
  t->AppendRow({Value::Int(1), Value::Int(10)});
  t->AppendRow({Value::Str("one"), Value::Double(2.5)});  // demote both
  t->AppendRow({Value::Int(1), Value::Str("zzz")});
  t->AppendRow({Value::Null(), Value::Bool(true)});
  t->AppendRow({Value::Str("one"), Value::Null()});
  ExpectFourWayIdentical(t, AggPlan({"k"}, AllAggs("v")));
}

TEST(AggDifferential, OutputRowsCarryNoLineage) {
  auto t = MakeWideTable(200);
  for (ExecImpl impl : {ExecImpl::kRow, ExecImpl::kColumnar}) {
    auto op = MakeAggregate(MakeSeqScan(t), {"k_int"}, AllAggs("v_dbl"),
                            impl);
    auto r = Materialize(op.get(), "out");
    ASSERT_TRUE(r.ok());
    for (size_t i = 0; i < r->num_rows(); ++i) {
      EXPECT_EQ(r->row_lid(i), 0);
    }
  }
}

TEST(AggDifferential, UnknownColumnErrorsMatchWordForWord) {
  auto t = MakeWideTable(10);
  auto msg = [&](ExecImpl impl, std::vector<std::string> groups,
                 std::vector<AggSpec> aggs) {
    auto op = MakeAggregate(MakeSeqScan(t), std::move(groups),
                            std::move(aggs), impl);
    auto r = Materialize(op.get(), "out");
    EXPECT_FALSE(r.ok());
    return r.ok() ? std::string() : r.status().message();
  };
  EXPECT_EQ(msg(ExecImpl::kRow, {"nope"}, AllAggs("v_dbl")),
            msg(ExecImpl::kColumnar, {"nope"}, AllAggs("v_dbl")));
  EXPECT_EQ(msg(ExecImpl::kRow, {"k_int"}, {{AggFn::kSum, "gone", "s"}}),
            msg(ExecImpl::kColumnar, {"k_int"}, {{AggFn::kSum, "gone", "s"}}));
}

// ---------------------------------------------------------------------------
// Sort differentials

TEST(SortDifferential, SingleIntKeyAscending) {
  ExpectFourWayIdentical(MakeWideTable(999), SortPlan({{"v_int", false}}));
}

TEST(SortDifferential, MultiKeyMixedDirections) {
  ExpectFourWayIdentical(
      MakeWideTable(999),
      SortPlan({{"k_str", false}, {"v_dbl", true}, {"v_int", false}}));
}

TEST(SortDifferential, DictKeyDescendingPreservesLids) {
  auto t = MakeWideTable(500);
  ExpectFourWayIdentical(t, SortPlan({{"v_str", true}}));
  auto op = MakeSort(MakeSeqScan(t), {{"v_str", true}});
  auto r = Materialize(op.get(), "out");
  ASSERT_TRUE(r.ok());
  bool any_lid = false;
  for (size_t i = 0; i < r->num_rows(); ++i) any_lid |= r->row_lid(i) != 0;
  EXPECT_TRUE(any_lid);  // sort is order-only: input lineage rides along
}

TEST(SortDifferential, StableTiesKeepInputOrder) {
  // k_bool has 2 distinct non-NULL values over 999 rows: nearly every
  // comparison ties, so any instability would reorder lids.
  ExpectFourWayIdentical(MakeWideTable(999), SortPlan({{"k_bool", false}}));
}

TEST(SortDifferential, NaNAndInfinityKeys) {
  Schema schema;
  schema.AddColumn("d", DataType::kDouble);
  schema.AddColumn("tag", DataType::kInt);
  auto t = std::make_shared<Table>("nan", schema);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  int64_t tag = 0;
  for (double d : {1.5, nan, -inf, 0.0, inf, nan, -0.0, 2.5}) {
    t->AppendRow({Value::Double(d), Value::Int(tag)},
                 /*lid=*/tag + 1);
    ++tag;
  }
  t->AppendRow({Value::Null(), Value::Int(tag)}, tag + 1);
  ExpectFourWayIdentical(t, SortPlan({{"d", false}}));
  ExpectFourWayIdentical(t, SortPlan({{"d", true}}));
}

TEST(SortDifferential, MixedEncodingKeyColumn) {
  Schema schema;
  schema.AddColumn("k", DataType::kString);
  auto t = std::make_shared<Table>("mixed", schema);
  t->AppendRow({Value::Int(5)});
  t->AppendRow({Value::Str("five")});
  t->AppendRow({Value::Double(4.5)});
  t->AppendRow({Value::Null()});
  t->AppendRow({Value::Bool(true)});
  t->AppendRow({Value::Int(-3)});
  ExpectFourWayIdentical(t, SortPlan({{"k", false}}));
  ExpectFourWayIdentical(t, SortPlan({{"k", true}}));
}

TEST(SortDifferential, MultiChunkViewInput) {
  auto full = MakeWideTable(2 * kChunkRows + 333);
  auto view = std::make_shared<Table>(full->Slice(100, 2 * kChunkRows));
  ASSERT_TRUE(view->is_view());
  ExpectFourWayIdentical(view,
                         SortPlan({{"v_dbl", true}, {"k_str", false}}));
}

TEST(SortDifferential, EmptyInput) {
  ExpectFourWayIdentical(MakeWideTable(0), SortPlan({{"v_int", false}}));
}

TEST(SortDifferential, UnknownColumnErrorsMatchWordForWord) {
  auto t = MakeWideTable(10);
  auto msg = [&](ExecImpl impl) {
    auto op = MakeSort(MakeSeqScan(t), {{"missing", false}}, impl);
    auto r = Materialize(op.get(), "out");
    EXPECT_FALSE(r.ok());
    return r.ok() ? std::string() : r.status().message();
  };
  EXPECT_EQ(msg(ExecImpl::kRow), msg(ExecImpl::kColumnar));
}

TEST(SortDifferential, DescribeMatchesRowKernel) {
  auto t = MakeWideTable(5);
  auto a = MakeSort(MakeSeqScan(t), {{"v_int", true}, {"k_str", false}},
                    ExecImpl::kRow);
  auto b = MakeSort(MakeSeqScan(t), {{"v_int", true}, {"k_str", false}},
                    ExecImpl::kColumnar);
  EXPECT_EQ(a->Describe(), b->Describe());
  auto c = MakeAggregate(MakeSeqScan(t), {"k_int"}, AllAggs("v_dbl"),
                         ExecImpl::kRow);
  auto d = MakeAggregate(MakeSeqScan(t), {"k_int"}, AllAggs("v_dbl"),
                         ExecImpl::kColumnar);
  EXPECT_EQ(c->Describe(), d->Describe());
}

}  // namespace
}  // namespace kathdb::rel
