// Tests for the KathDB facade edge cases and executor option knobs.

#include <gtest/gtest.h>

#include "data/movie_dataset.h"
#include "engine/kathdb.h"

namespace kathdb::engine {
namespace {

TEST(FacadeTest, QueryOnEmptyDbFailsCleanly) {
  KathDB db;
  llm::ScriptedUser user;
  auto outcome = db.Query("Sort the films by how exciting they are", &user);
  EXPECT_FALSE(outcome.ok());
}

TEST(FacadeTest, NullTableRejected) {
  KathDB db;
  EXPECT_FALSE(db.RegisterTable(nullptr).ok());
}

TEST(FacadeTest, DuplicateTableRejected) {
  KathDB db;
  auto t = std::make_shared<rel::Table>(
      "t", rel::Schema({{"x", rel::DataType::kInt}}));
  ASSERT_TRUE(db.RegisterTable(t).ok());
  EXPECT_FALSE(db.RegisterTable(t).ok());
}

TEST(FacadeTest, RegisteredTableGetsIngestLineage) {
  KathDB db;
  auto t = std::make_shared<rel::Table>(
      "t", rel::Schema({{"x", rel::DataType::kInt}}));
  ASSERT_TRUE(db.RegisterTable(t).ok());
  ASSERT_NE(t->table_lid(), 0);
  auto edges = db.lineage()->EdgesOf(t->table_lid());
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].src_uri, "table://t");
  EXPECT_EQ(edges[0].func_id, "load_data");
}

TEST(FacadeTest, ContextWiredToComponents) {
  KathDB db;
  fao::ExecContext ctx = db.MakeContext();
  EXPECT_EQ(ctx.catalog, db.catalog());
  EXPECT_EQ(ctx.lineage, db.lineage());
  EXPECT_EQ(ctx.meter, db.meter());
  EXPECT_EQ(ctx.images, db.images());
  EXPECT_EQ(ctx.image_loader, db.image_loader());
}

TEST(ExecutorOptionsTest, ZeroRepairAttemptsFailsOnHeic) {
  data::DatasetOptions opts;
  opts.num_movies = 10;
  opts.heic_fraction = 1.0;  // every poster is HEIC
  KathDBOptions db_opts;
  db_opts.optimizer.boring_impl = "pixels";
  db_opts.executor.max_repair_attempts = 0;
  auto ds = data::GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  KathDB db(db_opts);
  ASSERT_TRUE(data::IngestDataset(ds.value(), &db).ok());
  llm::ScriptedUser user({"uncommon scenes", "recent", "OK"});
  auto outcome = db.Query(
      "Sort the given films in the table by how exciting they are, but "
      "the poster should be 'boring'",
      &user);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsSyntacticError());
}

TEST(ExecutorOptionsTest, RepairAllowedSucceedsOnSameInput) {
  data::DatasetOptions opts;
  opts.num_movies = 10;
  opts.heic_fraction = 1.0;
  KathDBOptions db_opts;
  db_opts.optimizer.boring_impl = "pixels";
  db_opts.executor.max_repair_attempts = 2;  // default-style
  auto ds = data::GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  KathDB db(db_opts);
  ASSERT_TRUE(data::IngestDataset(ds.value(), &db).ok());
  llm::ScriptedUser user({"uncommon scenes", "recent", "OK"});
  auto outcome = db.Query(
      "Sort the given films in the table by how exciting they are, but "
      "the poster should be 'boring'",
      &user);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->report.total_repairs, 1);
}

TEST(FacadeTest, MeterAccumulatesAcrossQueries) {
  data::DatasetOptions opts;
  opts.num_movies = 10;
  auto ds = data::GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  KathDB db;
  ASSERT_TRUE(data::IngestDataset(ds.value(), &db).ok());
  llm::ScriptedUser u1({"uncommon scenes", "recent", "OK"});
  ASSERT_TRUE(db.Query("Sort the given films in the table by how exciting "
                       "they are, but the poster should be 'boring'",
                       &u1)
                  .ok());
  int64_t after_first = db.meter()->total_tokens();
  llm::ScriptedUser u2;
  ASSERT_TRUE(
      db.Query("Find the films where the poster should be 'boring'", &u2)
          .ok());
  EXPECT_GT(db.meter()->total_tokens(), after_first);
}

TEST(FacadeTest, LastOutcomeRetainedForExplanations) {
  data::DatasetOptions opts;
  opts.num_movies = 10;
  auto ds = data::GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  KathDB db;
  ASSERT_TRUE(data::IngestDataset(ds.value(), &db).ok());
  EXPECT_FALSE(db.last_outcome().has_value());
  llm::ScriptedUser user({"uncommon scenes", "recent", "OK"});
  ASSERT_TRUE(db.Query("Sort the given films in the table by how exciting "
                       "they are, but the poster should be 'boring'",
                       &user)
                  .ok());
  ASSERT_TRUE(db.last_outcome().has_value());
  EXPECT_EQ(db.last_outcome()->physical_plan.nodes.size(), 10u);
}

}  // namespace
}  // namespace kathdb::engine
