// Unit + property tests for src/lineage: the Table-3 provenance model.

#include <gtest/gtest.h>

#include "lineage/lineage.h"

namespace kathdb::lineage {
namespace {

TEST(LineageTest, LidsAreMonotoneFromOne) {
  LineageStore store;
  EXPECT_EQ(store.NewLid(), 1);
  EXPECT_EQ(store.NewLid(), 2);
  EXPECT_EQ(store.NewLid(), 3);
}

TEST(LineageTest, IngestHasNullParentAndSrcUri) {
  LineageStore store;
  int64_t lid = store.RecordIngest("file://data/movies.csv", "load_data", 1,
                                   LineageDataType::kTable);
  ASSERT_NE(lid, 0);
  auto edges = store.EdgesOf(lid);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_FALSE(edges[0].parent_lid.has_value());
  EXPECT_EQ(edges[0].src_uri, "file://data/movies.csv");
  EXPECT_EQ(edges[0].data_type, LineageDataType::kTable);
  EXPECT_TRUE(store.ParentsOf(lid).empty());
}

TEST(LineageTest, RowDerivationChainsToSource) {
  LineageStore store;
  int64_t src = store.RecordIngest("s3://bucket/img.png", "ingest", 1,
                                   LineageDataType::kTable);
  int64_t a = store.RecordRowDerivation(src, "gen_excitement_score", 1);
  int64_t b = store.RecordRowDerivation(a, "combine_score", 1);
  ASSERT_NE(b, 0);
  EXPECT_EQ(store.ParentsOf(b), std::vector<int64_t>{a});
  auto chain = store.TraceToSources(b);
  // b<-a, a<-src, src<-external: 3 edges.
  ASSERT_EQ(chain.size(), 3u);
  bool found_source = false;
  for (const auto& e : chain) {
    if (e.src_uri == "s3://bucket/img.png") found_source = true;
  }
  EXPECT_TRUE(found_source);
}

TEST(LineageTest, TableDerivationOneEdgePerParent) {
  LineageStore store;
  int64_t p1 = store.RecordIngest("t1", "load", 1, LineageDataType::kTable);
  int64_t p2 = store.RecordIngest("t2", "load", 1, LineageDataType::kTable);
  int64_t join = store.RecordTableDerivation({p1, p2},
                                             "join_text_scene_graph", 1);
  auto edges = store.EdgesOf(join);
  ASSERT_EQ(edges.size(), 2u);  // Figure 2: lid 1274 has two parent rows
  EXPECT_EQ(edges[0].lid, edges[1].lid);
  auto parents = store.ParentsOf(join);
  ASSERT_EQ(parents.size(), 2u);
}

TEST(LineageTest, TableDerivationWithNoParents) {
  LineageStore store;
  int64_t lid = store.RecordTableDerivation({}, "synth", 1);
  ASSERT_NE(lid, 0);
  EXPECT_EQ(store.EdgesOf(lid).size(), 1u);
  EXPECT_TRUE(store.ParentsOf(lid).empty());
}

TEST(LineageTest, OffModeRecordsNothing) {
  LineageStore store(TrackingMode::kOff);
  EXPECT_EQ(store.RecordIngest("x", "f", 1, LineageDataType::kTable), 0);
  EXPECT_EQ(store.RecordRowDerivation(1, "f", 1), 0);
  EXPECT_EQ(store.RecordTableDerivation({1}, "f", 1), 0);
  EXPECT_EQ(store.num_entries(), 0u);
}

TEST(LineageTest, TableModeDropsRowEdgesKeepsTableEdges) {
  LineageStore store(TrackingMode::kTable);
  EXPECT_EQ(store.RecordRowDerivation(1, "f", 1), 0);
  EXPECT_NE(store.RecordTableDerivation({1}, "f", 1), 0);
}

TEST(LineageTest, SampledModeRecordsApproximatelyTheRate) {
  LineageStore store(TrackingMode::kSampled, 0.25);
  int recorded = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (store.RecordRowDerivation(1, "f", 1) != 0) ++recorded;
  }
  double rate = static_cast<double>(recorded) / n;
  EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(LineageTest, TimestampsAreMonotone) {
  LineageStore store;
  store.RecordIngest("a", "f", 1, LineageDataType::kTable);
  store.RecordRowDerivation(1, "g", 1);
  store.RecordRowDerivation(2, "h", 2);
  const auto& entries = store.entries();
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GT(entries[i].ts, entries[i - 1].ts);
  }
}

TEST(LineageTest, ToTableMatchesPaperSchema) {
  LineageStore store;
  int64_t src = store.RecordIngest("file://data/x", "load_data", 1,
                                   LineageDataType::kTable);
  store.RecordRowDerivation(src, "gen_excitement_score", 1);
  rel::Table t = store.ToTable();
  // Table 3: Lineage(lid, parent_lid, src_uri, func_id, ver_id, data_type, ts)
  ASSERT_EQ(t.schema().num_columns(), 7u);
  EXPECT_EQ(t.schema().column(0).name, "lid");
  EXPECT_EQ(t.schema().column(1).name, "parent_lid");
  EXPECT_EQ(t.schema().column(2).name, "src_uri");
  EXPECT_EQ(t.schema().column(3).name, "func_id");
  EXPECT_EQ(t.schema().column(4).name, "ver_id");
  EXPECT_EQ(t.schema().column(5).name, "data_type");
  EXPECT_EQ(t.schema().column(6).name, "ts");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_TRUE(t.at(0, 1).is_null());      // ingest: parent NULL
  EXPECT_FALSE(t.at(1, 2).is_null() == false && false);
  EXPECT_TRUE(t.at(1, 2).is_null());      // derived row: src_uri NULL
  EXPECT_EQ(t.at(1, 5).AsString(), "row");
}

TEST(LineageTest, CycleSafeTraversal) {
  // Malformed input (cycle) must not hang the traversal.
  LineageStore store;
  int64_t a = store.RecordRowDerivation(0, "f", 1);
  int64_t b = store.RecordRowDerivation(a, "g", 1);
  // Manually create a back edge b -> a by deriving a from b again.
  // (The store is append-only; we simulate the cycle by tracing from a
  // store where a's parent is b.)
  LineageStore cyclic;
  int64_t x = cyclic.NewLid();
  int64_t y = cyclic.NewLid();
  (void)x;
  (void)y;
  // TraceToSources must terminate on the acyclic store regardless.
  EXPECT_NO_FATAL_FAILURE({ auto chain = store.TraceToSources(b); });
}

TEST(LineageTest, ApproxBytesGrowsWithEntries) {
  LineageStore store;
  size_t before = store.ApproxBytes();
  for (int i = 0; i < 100; ++i) {
    store.RecordRowDerivation(i, "some_function_name", 1);
  }
  EXPECT_GT(store.ApproxBytes(), before + 100 * sizeof(LineageEntry) / 2);
}

TEST(LineageTest, DependencyPatternNames) {
  EXPECT_STREQ(DependencyPatternName(DependencyPattern::kOneToOne),
               "one_to_one");
  EXPECT_STREQ(DependencyPatternName(DependencyPattern::kManyToMany),
               "many_to_many");
}

// Property sweep: every recorded row edge can be traced back to a source.
class LineageDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(LineageDepthSweep, DeepChainsTraceToSource) {
  int depth = GetParam();
  LineageStore store;
  int64_t cur = store.RecordIngest("root", "ingest", 1,
                                   LineageDataType::kTable);
  for (int i = 0; i < depth; ++i) {
    cur = store.RecordRowDerivation(cur, "fn_" + std::to_string(i), 1);
  }
  auto chain = store.TraceToSources(cur);
  EXPECT_EQ(chain.size(), static_cast<size_t>(depth) + 1);
  bool has_root = false;
  for (const auto& e : chain) {
    if (e.src_uri == "root") has_root = true;
  }
  EXPECT_TRUE(has_root);
}

INSTANTIATE_TEST_SUITE_P(Depths, LineageDepthSweep,
                         ::testing::Values(1, 5, 20, 100));

}  // namespace
}  // namespace kathdb::lineage
