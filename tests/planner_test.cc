// Unit tests for src/planner: plan writer, tool user, plan verifier.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "parser/nl_parser.h"
#include "planner/plan_generator.h"

namespace kathdb::planner {
namespace {

using fao::FunctionSignature;
using fao::LogicalPlan;

class PlannerFixture : public ::testing::Test {
 protected:
  PlannerFixture() : llm_(llm::KathLargeSpec(), &meter_) {
    auto movies = std::make_shared<rel::Table>(
        "movie_table", rel::Schema({{"mid", rel::DataType::kInt},
                                    {"title", rel::DataType::kString},
                                    {"year", rel::DataType::kInt},
                                    {"did", rel::DataType::kInt},
                                    {"vid", rel::DataType::kInt}}));
    movies->AppendRow({rel::Value::Int(1), rel::Value::Str("A"),
                       rel::Value::Int(1991), rel::Value::Int(1),
                       rel::Value::Int(1)});
    (void)catalog_.Register(movies);
    auto ents = std::make_shared<rel::Table>(
        "text_entities", rel::Schema({{"did", rel::DataType::kInt},
                                      {"eid", rel::DataType::kInt}}));
    ents->AppendRow({rel::Value::Int(1), rel::Value::Int(10)});
    (void)catalog_.Register(ents, rel::RelationKind::kView);
    auto objs = std::make_shared<rel::Table>(
        "scene_objects", rel::Schema({{"vid", rel::DataType::kInt},
                                      {"oid", rel::DataType::kInt}}));
    objs->AppendRow({rel::Value::Int(1), rel::Value::Int(20)});
    (void)catalog_.Register(objs, rel::RelationKind::kView);
  }

  parser::QueryIntent PaperIntent(bool with_recency) {
    parser::QueryIntent intent;
    intent.raw_query = "sort by exciting, boring poster";
    intent.table = "movie_table";
    intent.action = "sort";
    parser::Criterion rank{"exciting", "text", "rank", "uncommon scenes",
                           0.7};
    parser::Criterion filter{"boring", "image", "filter", "", 1.0};
    intent.criteria = {rank, filter};
    if (with_recency) {
      parser::Criterion rec{"recent", "metadata", "rank", "", 0.3};
      // Keep "rank" unique for FindByRole: recency uses term lookup.
      rec.role = "rank_recency";
      intent.criteria.push_back(rec);
      intent.criteria.back().term = "recent";
    }
    return intent;
  }

  llm::UsageMeter meter_;
  llm::SimulatedLLM llm_;
  rel::Catalog catalog_;
};

TEST_F(PlannerFixture, DraftPlanHasTenNodesForFullIntent) {
  LogicalPlanGenerator gen(&llm_, &catalog_);
  auto intent = PaperIntent(true);
  LogicalPlan plan = gen.DraftPlan(intent, {});
  // §6: 10 logical plan nodes.
  EXPECT_EQ(plan.nodes.size(), 10u);
  EXPECT_EQ(plan.nodes.front().name, "select_columns");
  EXPECT_EQ(plan.nodes.back().name, "rank_films");
  EXPECT_EQ(plan.FinalOutput(), "films_ranked");
}

TEST_F(PlannerFixture, DraftPlanWithoutRecencySkipsCombine) {
  LogicalPlanGenerator gen(&llm_, &catalog_);
  auto intent = PaperIntent(false);
  LogicalPlan plan = gen.DraftPlan(intent, {});
  for (const auto& n : plan.nodes) {
    EXPECT_NE(n.name, "combine_scores");
    EXPECT_NE(n.name, "gen_recency_score");
  }
}

TEST_F(PlannerFixture, VerifierApprovesGoodPlan) {
  LogicalPlanGenerator gen(&llm_, &catalog_);
  PlanVerifier verifier(&llm_, &catalog_);
  LogicalPlan plan = gen.DraftPlan(PaperIntent(true), {});
  VerifierReport report = verifier.Verify(plan);
  EXPECT_TRUE(report.approved) << kathdb::Join(report.hints, "; ");
  // The verifier consulted the tool user (sampler / joinability).
  EXPECT_GT(verifier.tools().invocations(), 0);
}

TEST_F(PlannerFixture, VerifierRejectsUnknownInput) {
  PlanVerifier verifier(&llm_, &catalog_);
  LogicalPlan plan;
  FunctionSignature sig;
  sig.name = "select";
  sig.inputs = {"ghost_table"};
  sig.output = "out";
  plan.nodes.push_back(sig);
  VerifierReport report = verifier.Verify(plan);
  EXPECT_FALSE(report.approved);
  ASSERT_FALSE(report.hints.empty());
  EXPECT_NE(report.hints[0].find("ghost_table"), std::string::npos);
}

TEST_F(PlannerFixture, VerifierRejectsForwardReference) {
  PlanVerifier verifier(&llm_, &catalog_);
  LogicalPlan plan;
  FunctionSignature a;
  a.name = "first";
  a.inputs = {"later_output"};  // produced only by the next node
  a.output = "x";
  FunctionSignature b;
  b.name = "second";
  b.inputs = {"movie_table"};
  b.output = "later_output";
  plan.nodes = {a, b};
  EXPECT_FALSE(verifier.Verify(plan).approved);
}

TEST_F(PlannerFixture, VerifierRejectsDuplicateOutputs) {
  PlanVerifier verifier(&llm_, &catalog_);
  LogicalPlan plan;
  FunctionSignature a;
  a.name = "a";
  a.inputs = {"movie_table"};
  a.output = "same";
  plan.nodes = {a, a};
  EXPECT_FALSE(verifier.Verify(plan).approved);
}

TEST_F(PlannerFixture, VerifierRejectsEmptyPlan) {
  PlanVerifier verifier(&llm_, &catalog_);
  EXPECT_FALSE(verifier.Verify(LogicalPlan{}).approved);
}

TEST_F(PlannerFixture, VerifierChecksJoinability) {
  PlanVerifier verifier(&llm_, &catalog_);
  // Register a relation sharing no columns with movie_table.
  auto orphan = std::make_shared<rel::Table>(
      "orphan", rel::Schema({{"zzz", rel::DataType::kString}}));
  orphan->AppendRow({rel::Value::Str("x")});
  (void)catalog_.Register(orphan);
  LogicalPlan plan;
  FunctionSignature join;
  join.name = "join_orphan";
  join.inputs = {"movie_table", "orphan"};
  join.output = "joined";
  plan.nodes = {join};
  VerifierReport report = verifier.Verify(plan);
  EXPECT_FALSE(report.approved);
  bool join_hint = false;
  for (const auto& h : report.hints) {
    if (h.find("joinable") != std::string::npos) join_hint = true;
  }
  EXPECT_TRUE(join_hint);
}

TEST_F(PlannerFixture, GenerateEndToEndApproves) {
  LogicalPlanGenerator gen(&llm_, &catalog_);
  parser::QuerySketch sketch;
  sketch.query = "q";
  sketch.steps = {"step"};
  auto intent = PaperIntent(true);
  auto plan = gen.Generate(sketch, intent);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(gen.last_report().approved);
  EXPECT_EQ(plan->nodes.size(), 10u);
}

TEST_F(PlannerFixture, GenerateFailsWhenBaseTableMissing) {
  rel::Catalog empty;
  LogicalPlanGenerator gen(&llm_, &empty);
  parser::QuerySketch sketch;
  auto intent = PaperIntent(true);
  intent.table = "missing_table";
  auto plan = gen.Generate(sketch, intent);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kPlanRejected);
}

TEST_F(PlannerFixture, ToolUserSamplesRows) {
  ToolUser tools(&catalog_);
  auto sample = tools.SampleRows("movie_table", 5);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().num_rows(), 1u);
  std::string on;
  EXPECT_TRUE(tools.TestJoinability("movie_table", "text_entities", &on));
  EXPECT_EQ(on, "did");
}

}  // namespace
}  // namespace kathdb::planner
